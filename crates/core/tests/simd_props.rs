//! Differential property tests: the batched (SIMD) grid kernels —
//! [`overflow_curve`] and [`within_miss_budget_curve`] — must be
//! bit-identical to the scalar single-capacity oracles
//! ([`overflow_count`], [`within_miss_budget`]) for every grid length
//! around the lane width (0 ..= 2×8 covers full batches, empty grids, and
//! every scalar-remainder size), over randomised bursty workloads,
//! including lanes that must fall back to the saturating scalar path.
//! No external property-testing crate: a deterministic splitmix-style
//! generator drives the rounds.

use gqos_core::{overflow_count, overflow_curve, within_miss_budget, within_miss_budget_curve};
use gqos_trace::{Iops, SimDuration, SimTime, Workload};

/// Deterministic 64-bit generator (splitmix64) so failures replay exactly.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    /// A bursty arrival stream: mostly small gaps, occasional long idle
    /// stretches, and runs of identical timestamps (ties are legal).
    fn workload(&mut self, len: usize, start: u64) -> Workload {
        let mut t = start;
        let arrivals = (0..len)
            .map(|_| {
                t += match self.below(10) {
                    0..=5 => self.below(2_000_000), // ≤ 2 ms
                    6..=7 => 0,                     // a tie (burst)
                    8 => self.below(200_000_000),   // ≤ 200 ms idle
                    _ => self.below(5_000_000_000), // ≤ 5 s idle
                };
                SimTime::from_nanos(t)
            })
            .collect::<Vec<_>>();
        Workload::from_arrivals(arrivals)
    }

    /// A capacity grid of the given length, unsorted and with possible
    /// duplicates; every capacity yields at least one queue slot at a
    /// 10 ms deadline (the non-degenerate regime both paths accept).
    fn grid(&mut self, len: usize) -> Vec<Iops> {
        (0..len)
            .map(|_| Iops::new((101 + self.below(5_000)) as f64))
            .collect()
    }
}

const DEADLINE: SimDuration = SimDuration::from_millis(10);
/// Twice the widest SIMD batch (LANE_BATCH = 8 lanes).
const MAX_GRID: usize = 16;

#[test]
fn overflow_curve_is_bit_identical_to_the_scalar_oracle() {
    let mut rng = Rng(0xf00d_0001);
    for round in 0..60 {
        let len = (rng.below(400) + 1) as usize;
        let workload = rng.workload(len, 0);
        for len in 0..=MAX_GRID {
            let grid = rng.grid(len);
            let batched = overflow_curve(&workload, &grid, DEADLINE);
            let scalar: Vec<u64> = grid
                .iter()
                .map(|&c| overflow_count(&workload, c, DEADLINE))
                .collect();
            assert_eq!(batched, scalar, "round {round}, grid length {len}");
        }
    }
}

#[test]
fn budget_curve_is_bit_identical_to_the_scalar_oracle() {
    let mut rng = Rng(0xf00d_0002);
    for round in 0..60 {
        let len = (rng.below(400) + 1) as usize;
        let workload = rng.workload(len, 0);
        let budget = rng.below(workload.len() as u64 + 1);
        for len in 0..=MAX_GRID {
            let grid = rng.grid(len);
            let batched = within_miss_budget_curve(&workload, &grid, DEADLINE, budget);
            let scalar: Vec<bool> = grid
                .iter()
                .map(|&c| within_miss_budget(&workload, c, DEADLINE, budget))
                .collect();
            assert_eq!(batched, scalar, "round {round}, grid length {len}");
        }
    }
}

/// Arrivals close to the end of representable time force the kernel's
/// overflow guard to reroute lanes to the saturating scalar scan; mixed
/// grids must still agree element-wise with the oracle.
#[test]
fn horizon_adjacent_workloads_still_match_the_oracle() {
    let mut rng = Rng(0xf00d_0003);
    let start = u64::MAX - 40_000_000_000; // 40 s of headroom before the horizon
    for round in 0..20 {
        let workload = rng.workload(50, start);
        for len in [1, 7, 8, 9, 16] {
            let grid = rng.grid(len);
            let batched = overflow_curve(&workload, &grid, DEADLINE);
            let scalar: Vec<u64> = grid
                .iter()
                .map(|&c| overflow_count(&workload, c, DEADLINE))
                .collect();
            assert_eq!(batched, scalar, "round {round}, grid length {len}");
        }
    }
}

/// The empty workload is a fixed point of both paths: no arrivals, no
/// overflow, every budget met.
#[test]
fn empty_workload_matches_on_every_grid_length() {
    let mut rng = Rng(0xf00d_0004);
    let workload = Workload::from_arrivals(Vec::<SimTime>::new());
    for len in 0..=MAX_GRID {
        let grid = rng.grid(len);
        assert_eq!(overflow_curve(&workload, &grid, DEADLINE), vec![0u64; len]);
        assert_eq!(
            within_miss_budget_curve(&workload, &grid, DEADLINE, 0),
            vec![true; len]
        );
    }
}
