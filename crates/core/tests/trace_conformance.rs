//! Trace-replay conformance: per-request lifecycles reconstructed from the
//! event trace must reproduce the simulation's own aggregate metrics
//! exactly — same completion counts, same miss fractions, bit-identical
//! response sketches — for every recombination policy on a fig5-style run.

use gqos_core::{CapacityPlanner, Provision, RecombinePolicy, WorkloadShaper};
use gqos_sim::{ReplayedRun, ServiceClass, TraceHandle};
use gqos_trace::gen::profiles::TraceProfile;
use gqos_trace::SimDuration;

const DEADLINE_MS: u64 = 50;

/// A fig5-style shaped WebSearch run: 30 s of trace, planned at (90%, 50 ms).
fn shaped() -> (gqos_trace::Workload, WorkloadShaper, SimDuration) {
    let deadline = SimDuration::from_millis(DEADLINE_MS);
    let workload = TraceProfile::WebSearch.generate(SimDuration::from_secs(30), 42);
    let planner = CapacityPlanner::new(&workload, deadline);
    let provision = Provision::with_default_surplus(planner.min_capacity(0.90), deadline);
    let shaper = WorkloadShaper::new(provision, deadline);
    (workload, shaper, deadline)
}

#[test]
fn replayed_metrics_equal_aggregate_metrics() {
    let (workload, shaper, deadline) = shaped();
    for policy in RecombinePolicy::ALL {
        let (trace, sink) = TraceHandle::memory();
        let report = shaper.run_traced(&workload, policy, trace);
        let events = sink.borrow().events();
        let replay = ReplayedRun::from_events(&events);

        assert_eq!(
            replay.requests_seen(),
            workload.len(),
            "{policy}: replay lost requests"
        );
        assert_eq!(replay.unfinished(), report.unfinished(), "{policy}");

        for class in [ServiceClass::PRIMARY, ServiceClass::OVERFLOW] {
            assert_eq!(
                replay.completed_in(class.index()),
                report.completed_in(class),
                "{policy}/{class:?}: completion counts diverged"
            );
            assert_eq!(
                replay.miss_count(class.index(), deadline),
                report.miss_count(class, deadline),
                "{policy}/{class:?}: miss counts diverged"
            );
            let replayed = replay.miss_fraction(class.index(), deadline);
            let aggregate = report.miss_fraction(class, deadline);
            assert_eq!(
                replayed, aggregate,
                "{policy}/{class:?}: miss fraction {replayed} != aggregate {aggregate}"
            );
            assert_eq!(
                replay.response_sketch(class.index()),
                report.response_sketch_for(class),
                "{policy}/{class:?}: replayed sketch diverged from aggregate"
            );
        }
    }
}

#[test]
fn event_counts_reconcile_with_the_workload() {
    let (workload, shaper, _) = shaped();
    let n = workload.len() as u64;
    for policy in RecombinePolicy::ALL {
        let (trace, sink) = TraceHandle::memory();
        let report = shaper.run_traced(&workload, policy, trace);
        let events = sink.borrow().events();
        let counts = ReplayedRun::from_events(&events).counts();

        assert_eq!(counts.arrivals, n, "{policy}: arrival count");
        assert_eq!(counts.dispatched, n, "{policy}: dispatch count");
        assert_eq!(counts.completed, report.completed() as u64, "{policy}");
        match policy {
            // FCFS has no RTT classifier, hence no admission decisions.
            RecombinePolicy::Fcfs => {
                assert_eq!(counts.admitted + counts.diverted, 0, "{policy}")
            }
            _ => assert_eq!(
                counts.admitted + counts.diverted,
                n,
                "{policy}: every arrival must be admitted or diverted"
            ),
        }
        assert_eq!(counts.degradation_changes, 0, "{policy}: healthy run");
        assert_eq!(sink.borrow().dropped(), 0, "{policy}: unbounded sink");
    }
}

#[test]
fn lifecycle_audit_finds_no_violations() {
    let (workload, shaper, _) = shaped();
    for policy in RecombinePolicy::ALL {
        let (trace, sink) = TraceHandle::memory();
        let _ = shaper.run_traced(&workload, policy, trace);
        let events = sink.borrow().events();
        let violations = ReplayedRun::from_events(&events).audit();
        assert!(
            violations.is_empty(),
            "{policy}: lifecycle violations: {violations:?}"
        );
    }
}

#[test]
fn deadline_verdicts_match_the_miss_convention() {
    // The engine stamps `deadline_met = response <= deadline`; the replayed
    // miss fraction counts strictly-late completions. Exactly-on-deadline
    // requests are hits under both, so the two stay consistent.
    let (workload, shaper, deadline) = shaped();
    for policy in RecombinePolicy::ALL {
        let (trace, sink) = TraceHandle::memory();
        let report = shaper.run_traced(&workload, policy, trace);
        let events = sink.borrow().events();
        let late = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    gqos_sim::TraceEvent::Completed {
                        deadline_met: Some(false),
                        ..
                    }
                )
            })
            .count();
        let mut expected = 0;
        for class in [ServiceClass::PRIMARY, ServiceClass::OVERFLOW] {
            expected += report.miss_count(class, deadline);
        }
        assert_eq!(late, expected, "{policy}: verdict stamps != miss counts");
    }
}
