//! Property tests: the columnar integer kernels agree with the legacy
//! request-struct scan on arbitrary workloads.
//!
//! The seed implementation walked `Vec<Request>` with a per-completion
//! drain loop around [`RttClassifier`]; the kernels replaced it with a
//! bulk-drain integer scan over the cached arrival column. `legacy_scan`
//! below is a literal transcription of the seed loop (kept *here*, outside
//! the library, as the reference semantics) — assignments, counts, and
//! budget early-exits must coincide exactly, because experiment outputs and
//! planner quotes are required to stay byte-identical across the rewrite.

use gqos_core::{
    decompose, decompose_with_budget, overflow_count, overflow_curve, within_miss_budget,
    within_miss_budget_curve, DecomposeScratch, RttClassifier,
};
use gqos_sim::ServiceClass;
use gqos_trace::{Iops, SimDuration, SimTime, Workload};
use proptest::prelude::*;

/// The seed's scan loop: emulates the dedicated primary server's
/// completions one at a time and hands each request's class to `visit`.
/// Stops (returning `false`) when `visit` declines to continue.
fn legacy_scan(
    workload: &Workload,
    capacity: Iops,
    deadline: SimDuration,
    mut visit: impl FnMut(ServiceClass) -> bool,
) -> bool {
    let mut rtt = RttClassifier::new(capacity, deadline);
    let service = capacity.service_time().max(SimDuration::from_nanos(1));
    let mut next_done = SimTime::ZERO;
    for r in workload.iter() {
        while rtt.len_q1() > 0 && next_done <= r.arrival {
            rtt.primary_departed();
            next_done += service;
        }
        if rtt.len_q1() == 0 {
            next_done = r.arrival + service;
        }
        if !visit(rtt.classify()) {
            return false;
        }
    }
    true
}

/// Legacy full decomposition: per-request assignments and overflow count.
fn legacy_decompose(w: &Workload, c: Iops, d: SimDuration) -> (Vec<ServiceClass>, u64) {
    let mut assignments = Vec::with_capacity(w.len());
    let mut overflow = 0u64;
    legacy_scan(w, c, d, |class| {
        if class != ServiceClass::PRIMARY {
            overflow += 1;
        }
        assignments.push(class);
        true
    });
    (assignments, overflow)
}

/// Legacy budgeted probe: `false` as soon as overflow exceeds `budget`.
fn legacy_within_budget(w: &Workload, c: Iops, d: SimDuration, budget: u64) -> bool {
    let mut overflow = 0u64;
    legacy_scan(w, c, d, |class| {
        if class != ServiceClass::PRIMARY {
            overflow += 1;
            if overflow > budget {
                return false;
            }
        }
        true
    })
}

prop_compose! {
    /// An arbitrary workload: bursty gap sequence (many zero gaps — i.e.
    /// simultaneous arrivals — plus calm stretches), up to ~6 s long.
    fn arb_workload()(gaps in prop::collection::vec(
        prop_oneof![
            Just(0u64),                  // burst: same-instant arrival
            1u64..1_000_000,             // sub-millisecond spacing
            1_000_000u64..50_000_000,    // calm: 1–50 ms
        ],
        0..120,
    )) -> Workload {
        let mut t = 0u64;
        Workload::from_arrivals(gaps.into_iter().map(|g| {
            t += g;
            SimTime::from_nanos(t)
        }))
    }
}

prop_compose! {
    /// A non-degenerate (C, δ) pair: C·δ ranges from ~1.5 to ~300 slots.
    fn arb_params()(c in 300.0f64..3000.0, dms in 5u64..100) -> (Iops, SimDuration) {
        (Iops::new(c), SimDuration::from_millis(dms))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn columnar_decompose_matches_legacy(w in arb_workload(), p in arb_params()) {
        let (c, d) = p;
        let (legacy_assignments, legacy_overflow) = legacy_decompose(&w, c, d);
        let columnar = decompose(&w, c, d);
        prop_assert_eq!(columnar.assignments(), legacy_assignments.as_slice());
        prop_assert_eq!(columnar.overflow_count(), legacy_overflow);
        prop_assert_eq!(
            columnar.primary_count() + columnar.overflow_count(),
            w.len() as u64
        );
        prop_assert_eq!(overflow_count(&w, c, d), legacy_overflow);
    }

    #[test]
    fn scratch_reuse_matches_legacy(w in arb_workload(), p in arb_params()) {
        let (c, d) = p;
        let (legacy_assignments, legacy_overflow) = legacy_decompose(&w, c, d);
        // A dirty scratch (pre-filled from an unrelated workload) must not
        // leak state into the next run.
        let mut scratch = DecomposeScratch::new();
        let warmup = Workload::from_arrivals(vec![SimTime::ZERO; 7]);
        let _ = scratch.decompose(&warmup, Iops::new(500.0), SimDuration::from_millis(10));
        let view = scratch.decompose(&w, c, d);
        prop_assert_eq!(view.assignments(), legacy_assignments.as_slice());
        prop_assert_eq!(view.overflow_count(), legacy_overflow);
    }

    #[test]
    fn budget_early_exit_matches_legacy(
        w in arb_workload(),
        p in arb_params(),
        budget in 0u64..140,
    ) {
        let (c, d) = p;
        prop_assert_eq!(
            within_miss_budget(&w, c, d, budget),
            legacy_within_budget(&w, c, d, budget)
        );
        let budgeted = decompose_with_budget(&w, c, d, budget);
        prop_assert_eq!(budgeted.is_some(), legacy_within_budget(&w, c, d, budget));
        if let Some(full) = budgeted {
            let (legacy_assignments, legacy_overflow) = legacy_decompose(&w, c, d);
            prop_assert_eq!(full.assignments(), legacy_assignments.as_slice());
            prop_assert_eq!(full.overflow_count(), legacy_overflow);
            prop_assert!(full.overflow_count() <= budget);
        }
    }

    #[test]
    fn overflow_curve_matches_legacy_per_capacity(
        w in arb_workload(),
        dms in 5u64..100,
        grid in prop::collection::vec(1.0f64..4000.0, 1..8),
    ) {
        let d = SimDuration::from_millis(dms);
        let capacities: Vec<Iops> = grid.into_iter().map(Iops::new).collect();
        let fused = overflow_curve(&w, &capacities, d);
        for (i, &c) in capacities.iter().enumerate() {
            if c.requests_within(d) == 0 {
                // Degenerate lane: the documented everything-overflows
                // convention (the legacy scan panics here).
                prop_assert_eq!(fused[i], w.len() as u64, "degenerate C={}", c);
            } else {
                let (_, legacy_overflow) = legacy_decompose(&w, c, d);
                prop_assert_eq!(fused[i], legacy_overflow, "C={}", c);
            }
        }
    }

    #[test]
    fn budget_curve_matches_legacy_per_capacity(
        w in arb_workload(),
        dms in 5u64..100,
        grid in prop::collection::vec(1.0f64..4000.0, 1..8),
        budget in 0u64..140,
    ) {
        let d = SimDuration::from_millis(dms);
        let capacities: Vec<Iops> = grid.into_iter().map(Iops::new).collect();
        let fused = within_miss_budget_curve(&w, &capacities, d, budget);
        for (i, &c) in capacities.iter().enumerate() {
            if c.requests_within(d) == 0 {
                prop_assert_eq!(fused[i], w.len() as u64 <= budget, "degenerate C={}", c);
            } else {
                prop_assert_eq!(
                    fused[i],
                    legacy_within_budget(&w, c, d, budget),
                    "C={} budget={}", c, budget
                );
            }
        }
    }
}
