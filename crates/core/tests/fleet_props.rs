//! Property tests for the fleet placement engine.
//!
//! Three contracts are differential, pinned against the cold planner as
//! the reference semantics:
//!
//! 1. the parallel packer vs a brute-force subset-partition enumeration on
//!    small fleets (≤ 8 tenants, ≤ 3 servers): the packed server count is
//!    optimal-or-within-one whenever the fleet is packable at all, and
//!    every bin's consolidated quote meets `(f, δ)` under its capacity;
//! 2. [`QuoteCache`] quotes vs cold [`CapacityPlanner::min_capacity`]
//!    bit-identity under random quote/workload-change/epoch-bump
//!    sequences;
//! 3. [`ServerBin`]'s incrementally-maintained consolidated quote vs
//!    cold-planning the materialised merge under random add/remove
//!    sequences.

use gqos_core::{
    merge_all, CapacityPlanner, FleetPlacer, FleetTenant, QosTarget, QuoteCache, ServerBin,
    TenantId,
};
use gqos_parallel::WorkerPool;
use gqos_trace::{Iops, SimDuration, SimTime, Workload};
use proptest::prelude::*;

prop_compose! {
    /// A small bursty tenant workload: mixed same-instant bursts and calm
    /// stretches, 1–40 arrivals.
    fn arb_tenant_workload()(gaps in prop::collection::vec(
        prop_oneof![
            Just(0u64),                  // burst: same-instant arrival
            1u64..1_000_000,             // sub-millisecond spacing
            1_000_000u64..80_000_000,    // calm: 1–80 ms
        ],
        1..40,
    )) -> Workload {
        let mut t = 0u64;
        Workload::from_arrivals(gaps.into_iter().map(|g| {
            t += g;
            SimTime::from_nanos(t)
        }))
    }
}

prop_compose! {
    /// A small fleet of 1–8 tenants with dense ids.
    fn arb_fleet()(workloads in prop::collection::vec(arb_tenant_workload(), 1..=8))
        -> Vec<FleetTenant>
    {
        workloads
            .into_iter()
            .enumerate()
            .map(|(i, w)| FleetTenant::new(TenantId::new(i), w))
            .collect()
    }
}

fn arb_fraction() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.85), Just(0.9), Just(0.95), Just(1.0)]
}

/// Cold reference: `Cmin` of the merged workloads of `members`.
fn cold_consolidated(tenants: &[FleetTenant], members: u32, target: QosTarget) -> u64 {
    let clients: Vec<&Workload> = tenants
        .iter()
        .enumerate()
        .filter(|(i, _)| members & (1 << i) != 0)
        .map(|(_, t)| t.workload())
        .collect();
    if clients.is_empty() {
        return 1; // unused; masks are non-empty below
    }
    let merged = merge_all(&clients);
    CapacityPlanner::new(&merged, target.deadline())
        .min_capacity(target.fraction())
        .get() as u64
}

/// Minimum number of feasible bins partitioning the full tenant set, via
/// subset DP over the 2^n masks — `None` if some tenant fits nowhere even
/// alone.
fn optimal_bins(feasible: &[bool], n: usize) -> Option<u32> {
    let full = (1u32 << n) - 1;
    let mut best = vec![u32::MAX; (full + 1) as usize];
    best[0] = 0;
    for mask in 1..=full {
        // Iterate non-empty submasks of `mask`.
        let mut sub = mask;
        while sub > 0 {
            if feasible[sub as usize] && best[(mask ^ sub) as usize] != u32::MAX {
                best[mask as usize] = best[mask as usize].min(best[(mask ^ sub) as usize] + 1);
            }
            sub = (sub - 1) & mask;
        }
    }
    (best[full as usize] != u32::MAX).then(|| best[full as usize])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Packer vs brute force: whenever a full partition onto `servers`
    /// feasible bins exists, the packer places everyone on at most one
    /// server more than optimal; and always, every bin's consolidated
    /// quote fits its capacity.
    #[test]
    fn packer_is_optimal_or_within_one(
        tenants in arb_fleet(),
        fraction in arb_fraction(),
        dms in 5u64..50,
        headroom in 1.2f64..3.0,
        servers in 1usize..=3,
    ) {
        let deadline = SimDuration::from_millis(dms);
        let target = QosTarget::new(fraction, deadline);
        let n = tenants.len();

        // Capacity: generous enough that every tenant fits alone.
        let max_solo = tenants
            .iter()
            .map(|t| {
                CapacityPlanner::new(t.workload(), deadline)
                    .min_capacity(fraction)
                    .get() as u64
            })
            .max()
            .unwrap();
        let capacity = ((max_solo as f64) * headroom).ceil() as u64;

        // Brute force: feasibility of every non-empty subset, then the
        // minimal partition size.
        let full = (1u32 << n) - 1;
        let mut feasible = vec![false; (full + 1) as usize];
        for mask in 1..=full {
            feasible[mask as usize] =
                cold_consolidated(&tenants, mask, target) <= capacity;
        }
        let optimal = optimal_bins(&feasible, n).expect("every tenant fits alone");

        let placer = FleetPlacer::new(target, Iops::new(capacity as f64));
        let mut cache = QuoteCache::new(deadline);
        let pool = WorkerPool::new(4);
        let placement = placer.pack(&tenants, servers, &mut cache, &pool).unwrap();

        // Every bin's consolidated quote meets (f, δ) under its capacity —
        // checked against the cold planner, not the bin's own cache.
        for bin in placement.bins() {
            if bin.is_empty() {
                continue;
            }
            let mask = bin
                .members()
                .iter()
                .fold(0u32, |m, id| m | (1 << id.index()));
            let cold = cold_consolidated(&tenants, mask, target);
            prop_assert_eq!(bin.quote_int(), cold, "bin quote must equal cold");
            prop_assert!(cold <= capacity, "bin over capacity");
        }

        if optimal as usize <= servers {
            prop_assert!(
                placement.unplaced().is_empty(),
                "a full {optimal}-bin partition exists but {:?} were unplaced",
                placement.unplaced()
            );
            prop_assert!(
                (placement.servers_used() as u32) <= optimal + 1,
                "used {} servers, optimal {optimal}",
                placement.servers_used()
            );
        }
    }

    /// Cached quotes are bit-identical to cold `min_capacity` under random
    /// interleavings of quotes, workload changes, and SLA epoch bumps.
    #[test]
    fn cache_is_bit_identical_under_mutation_sequences(
        mut tenants in arb_fleet(),
        replacements in prop::collection::vec(arb_tenant_workload(), 4),
        ops in prop::collection::vec((0usize..32, 0usize..4, 0usize..3), 1..24),
        dms in 5u64..50,
    ) {
        let deadline = SimDuration::from_millis(dms);
        let fractions = [0.85, 0.9, 0.95, 1.0];
        let mut cache = QuoteCache::new(deadline);
        for (pick, which, kind) in ops {
            let idx = pick % tenants.len();
            match kind {
                0 => {
                    let f = fractions[which];
                    let cached = cache.quote(&tenants[idx], f);
                    let cold = CapacityPlanner::new(tenants[idx].workload(), deadline)
                        .min_capacity(f);
                    prop_assert_eq!(
                        cached.get().to_bits(),
                        cold.get().to_bits(),
                        "tenant {} f={}", idx, f
                    );
                }
                1 => tenants[idx].set_workload(replacements[which].clone()),
                _ => tenants[idx].bump_epoch(),
            }
        }
        // Final sweep: every tenant, every fraction, after all mutations.
        for t in &tenants {
            for &f in &fractions {
                let cached = cache.quote(t, f);
                let cold = CapacityPlanner::new(t.workload(), deadline).min_capacity(f);
                prop_assert_eq!(cached.get().to_bits(), cold.get().to_bits());
            }
        }
    }

    /// The incrementally-maintained consolidated quote equals cold-planning
    /// the materialised merge after every add/remove.
    #[test]
    fn bin_delta_updates_match_cold_consolidation(
        tenants in arb_fleet(),
        ops in prop::collection::vec(0usize..32, 1..20),
        fraction in arb_fraction(),
        dms in 5u64..50,
    ) {
        let deadline = SimDuration::from_millis(dms);
        let target = QosTarget::new(fraction, deadline);
        let mut bin = ServerBin::new(target);
        let mut resident: Vec<usize> = Vec::new();
        for op in ops {
            let idx = op % tenants.len();
            let t = &tenants[idx];
            if let Some(at) = resident.iter().position(|&r| r == idx) {
                prop_assert!(bin.remove(t.id(), t.workload().arrival_column().nanos()));
                resident.remove(at);
            } else {
                bin.add(t.id(), t.workload().arrival_column().nanos());
                resident.push(idx);
            }
            let cold = if resident.is_empty() {
                // An empty bin quotes the domain floor, like the planner
                // on an empty workload.
                CapacityPlanner::new(&Workload::new(), deadline)
                    .min_capacity(fraction)
                    .get() as u64
            } else {
                let clients: Vec<&Workload> =
                    resident.iter().map(|&r| tenants[r].workload()).collect();
                let merged = merge_all(&clients);
                CapacityPlanner::new(&merged, deadline)
                    .min_capacity(fraction)
                    .get() as u64
            };
            prop_assert_eq!(bin.quote_int(), cold, "resident {:?}", resident);
        }
    }

    /// Placements are identical for serial and parallel pools on random
    /// fleets.
    #[test]
    fn pack_matches_serial_for_any_pool(
        tenants in arb_fleet(),
        fraction in arb_fraction(),
        dms in 5u64..50,
        servers in 1usize..=3,
        threads in 2usize..=8,
    ) {
        let deadline = SimDuration::from_millis(dms);
        let target = QosTarget::new(fraction, deadline);
        let capacity = Iops::new(5000.0);
        let placer = FleetPlacer::new(target, capacity);
        let mut cache_a = QuoteCache::new(deadline);
        let mut cache_b = QuoteCache::new(deadline);
        let serial = placer
            .pack(&tenants, servers, &mut cache_a, &WorkerPool::serial())
            .unwrap();
        let parallel = placer
            .pack(&tenants, servers, &mut cache_b, &WorkerPool::new(threads))
            .unwrap();
        for t in &tenants {
            prop_assert_eq!(serial.server_of(t.id()), parallel.server_of(t.id()));
        }
        prop_assert_eq!(serial.unplaced(), parallel.unplaced());
        prop_assert_eq!(serial.stats(), parallel.stats());
    }
}
