//! The degradation contract, adversarially checked.
//!
//! Under *any* fault schedule, a Q1 request admitted while the server was
//! actually delivering at least the admission-time negotiated capacity
//! fraction — over the whole deadline window, with no latency jitter
//! nearby — still meets `δ`. Degradation may shed arrivals to Q2 (that is
//! its job) but must never let an honestly-admitted primary miss.

use gqos_core::{
    DegradationController, DegradationPolicy, Provision, RecombinePolicy, WorkloadShaper,
};
use gqos_faults::FaultSchedule;
use gqos_trace::{Iops, SimDuration, SimTime, Workload};
use proptest::prelude::*;

/// Feeds the controller one completion whose observed service time
/// encodes an instantaneous capacity ratio of `inst` against a 1 ms
/// nominal: `observed = nominal / inst`, so the estimator sees `inst`
/// (up to sub-ppm rounding of the nanosecond grid).
fn observe_ratio(controller: &mut DegradationController, inst: f64) -> Option<f64> {
    let nominal = SimDuration::from_nanos(1_000_000);
    let observed = SimDuration::from_nanos((1_000_000.0 / inst).round() as u64);
    controller.observe(observed, nominal)
}

/// A calm stream with periodic bursts — enough pressure to keep Q1 near
/// its bound so renegotiation actually bites.
fn bursty_workload(cmin: f64, cycles: u64, depth_seed: u64) -> Workload {
    let mut arrivals = Vec::new();
    let period_ms = 100u64;
    let per_cycle = (cmin * (period_ms as f64) / 1000.0 * 0.7).ceil() as u64;
    for cycle in 0..cycles {
        let base = cycle * period_ms;
        for i in 0..per_cycle {
            arrivals.push(SimTime::from_millis(
                base + i * period_ms / per_cycle.max(1),
            ));
        }
        // Every few cycles, a deep burst at the cycle boundary.
        if (cycle + depth_seed).is_multiple_of(4) {
            for _ in 0..per_cycle {
                arrivals.push(SimTime::from_millis(base));
            }
        }
    }
    Workload::from_arrivals(arrivals)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every recombination policy and every generated fault schedule:
    /// admissions whose deadline window the server honoured at the
    /// admission-time fraction complete within the deadline.
    #[test]
    fn honest_admissions_meet_the_deadline(
        seed in 0u64..1_000,
        severity in 0.0f64..1.0,
        cmin in 150u64..400,
        delta_ms in 20u64..60,
    ) {
        let cmin = cmin as f64;
        let delta = SimDuration::from_millis(delta_ms);
        let c = Iops::new(cmin);
        if c.requests_within(delta) == 0 {
            return Ok(());
        }
        // The paper's no-miss provision: ΔC = Cmin.
        let provision = Provision::new(c, c);
        let shaper = WorkloadShaper::new(provision, delta);
        let workload = bursty_workload(cmin, 30, seed % 4);
        let span = workload.span().max(SimDuration::from_secs(1));
        let schedule = FaultSchedule::generate(seed, span, severity);

        for policy in RecombinePolicy::ALL {
            let (report, admissions) =
                shaper.run_with_faults_logged(&workload, policy, &schedule);
            for record in &admissions {
                let window_end = record.at + delta;
                // Jitter near the window voids the capacity accounting:
                // an in-flight dispatch delayed just before admission can
                // push work past what the rate factor alone predicts.
                let guard_start = record
                    .at
                    .checked_sub(delta)
                    .unwrap_or(SimTime::ZERO);
                if schedule.has_jitter_in(guard_start, window_end) {
                    continue;
                }
                if schedule.min_rate_factor(record.at, window_end) < record.factor {
                    continue;
                }
                let completion = report
                    .records()
                    .iter()
                    .find(|r| r.id == record.id)
                    .unwrap_or_else(|| panic!("{policy}: admitted {} never completed", record.id));
                prop_assert!(
                    completion.response_time() <= delta,
                    "{policy}: request {} admitted at {} under factor {:.3} \
                     missed: response {} > {delta} (severity {severity:.2}, seed {seed})",
                    record.id,
                    record.at,
                    record.factor,
                    completion.response_time(),
                );
            }
        }
    }

    /// The admission log itself is well-formed: timestamps are
    /// non-decreasing and factors stay within the negotiated ladder.
    #[test]
    fn admission_log_is_monotonic_and_bounded(
        seed in 0u64..500,
        severity in 0.0f64..1.0,
    ) {
        let c = Iops::new(250.0);
        let delta = SimDuration::from_millis(20);
        let shaper = WorkloadShaper::new(Provision::new(c, c), delta);
        let workload = bursty_workload(250.0, 20, seed % 4);
        let span = workload.span().max(SimDuration::from_secs(1));
        let schedule = FaultSchedule::generate(seed, span, severity);
        let (_, admissions) =
            shaper.run_with_faults_logged(&workload, RecombinePolicy::Miser, &schedule);
        for pair in admissions.windows(2) {
            prop_assert!(pair[0].at <= pair[1].at);
        }
        for record in &admissions {
            prop_assert!(record.factor > 0.0 && record.factor <= 1.0);
        }
    }

    /// The oscillation guard: once the controller has settled on a rung,
    /// borderline observations alternating around that rung's capacity
    /// fraction — strictly inside the policy's 2% headroom margin — must
    /// never change the level. No `Some` from `observe`, no factor
    /// drift; the ladder only moves when the estimate genuinely leaves
    /// the rung's band.
    #[test]
    fn borderline_oscillation_never_flaps_the_rung(
        level in 1usize..=5,
        eps_hi in 0.0005f64..0.016,
        eps_lo in 0.0005f64..0.016,
        window in 4usize..32,
        wobble in 50usize..300,
    ) {
        let policy = DegradationPolicy::default();
        let s = policy.steps()[level];
        let mut controller = DegradationController::new(policy, window);

        // Settle: a sustained fault at exactly `s` walks the controller
        // down the ladder. Degradation is monotone on the way — every
        // emitted renegotiation is strictly deeper than the last.
        let mut last_emitted = f64::INFINITY;
        for _ in 0..600 {
            if let Some(factor) = observe_ratio(&mut controller, s) {
                prop_assert!(
                    factor < last_emitted,
                    "settling emitted a non-deepening renegotiation: {factor} after {last_emitted}"
                );
                last_emitted = factor;
            }
        }
        prop_assert_eq!(controller.factor(), s, "controller must settle on the faulted rung");

        // Oscillate: capacity observations alternate just above and just
        // below the rung, both inside the margin. The quantised level —
        // and therefore the admission bound — must not move at all.
        for i in 0..wobble {
            let inst = if i % 2 == 0 { s * (1.0 + eps_hi) } else { s * (1.0 - eps_lo) };
            let change = observe_ratio(&mut controller, inst);
            prop_assert_eq!(
                change, None,
                "borderline wobble {} (inst {:.5}) renegotiated off rung {}",
                i, inst, s
            );
            prop_assert_eq!(controller.factor(), s);
        }
    }
}
