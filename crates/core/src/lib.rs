//! # gqos-core — graduated QoS by decomposing bursts
//!
//! A from-scratch Rust implementation of *"Graduated QoS by Decomposing
//! Bursts: Don't Let the Tail Wag Your Server"* (Lu, Varman, Doshi —
//! ICDCS 2009).
//!
//! Bursty storage workloads force a painful choice: provision for the worst
//! burst (several times the average rate) or let bursts wreck response
//! times for the entire workload. This crate implements the paper's third
//! way — *workload shaping*:
//!
//! 1. **Decompose** the arrival stream online with [`RttClassifier`] /
//!    [`decompose`] (Algorithm 1): a provably optimal bounded-queue rule
//!    that isolates the overflowing tail into a best-effort class while
//!    guaranteeing the rest a response time `δ` at capacity `Cmin`.
//! 2. **Recombine** the classes for service with [`RecombinePolicy`]:
//!    dedicated servers ([`SplitScheduler`]), proportional sharing
//!    ([`FairQueueScheduler`]), or slack-stealing ([`MiserScheduler`],
//!    Algorithm 2).
//! 3. **Plan capacity** with [`CapacityPlanner`] — binary search for
//!    `Cmin(f, δ)` — and price graduated SLAs from the resulting menu.
//! 4. **Consolidate clients** with [`ConsolidationStudy`]: sums of reshaped
//!    capacities accurately predict multiplexed requirements.
//!
//! The [`CascadeDecomposer`] extends decomposition to more than two classes
//! (graduated response-time distributions), as the paper sketches.
//!
//! # Examples
//!
//! The headline workflow — plan a graduated SLA and shape the workload:
//!
//! ```
//! use gqos_core::{QosTarget, RecombinePolicy, WorkloadShaper};
//! use gqos_sim::ServiceClass;
//! use gqos_trace::{SimDuration, SimTime, Workload};
//!
//! // A calm stream with an overwhelming burst.
//! let mut arrivals: Vec<SimTime> = (0..100).map(|i| SimTime::from_millis(i * 10)).collect();
//! arrivals.extend(vec![SimTime::from_millis(333); 40]);
//! let workload = Workload::from_arrivals(arrivals);
//!
//! // Guarantee 90% of requests a 20 ms response time.
//! let target = QosTarget::new(0.90, SimDuration::from_millis(20));
//! let shaper = WorkloadShaper::plan(&workload, target);
//!
//! // Serve with Miser: primaries guaranteed, the burst's tail follows in
//! // the stream's own slack.
//! let report = shaper.run(&workload, RecombinePolicy::Miser);
//! let primary = report.stats_for(ServiceClass::PRIMARY);
//! assert!(primary.fraction_within(target.deadline()) > 0.99);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod admission;
mod cascade;
mod consolidate;
mod degrade;
mod edf;
mod fair;
mod fleet;
mod graduated;
mod kernel;
mod miser;
mod offline;
mod planner;
mod pricing;
mod rtt;
mod shaper;
mod sla;
mod split;
mod target;
mod tenant;

pub use admission::{Admission, AdmissionController, AdmissionError};
pub use cascade::{CascadeDecomposer, CascadeDecomposition, CascadeLevel};
pub use consolidate::{
    merge_all, ConsolidationError, ConsolidationReport, ConsolidationStudy, LazyConsolidation,
};
pub use degrade::{
    AdaptiveScheduler, AdmissionLog, AdmissionRecord, CapacityAdaptive, DegradationController,
    DegradationPolicy,
};
pub use edf::{EdfScheduler, LatePolicy};
pub use fair::FairQueueScheduler;
pub use fleet::{
    FleetError, FleetPlacer, FleetTenant, PackStats, Placement, QuoteCache, ServerBin,
};
pub use graduated::GraduatedScheduler;
pub use kernel::{overflow_curve, within_miss_budget_curve};
pub use miser::MiserScheduler;
pub use offline::{rtt_period_bound, slotted_lower_bound, OptimalityCheck};
pub use planner::{CapacityPlanner, MenuError, SeedCurve, SlaQuote};
pub use pricing::{PricingModel, Quote};
pub use rtt::{
    checked_max_queue, decompose, decompose_with_budget, optimal_drop_lower_bound, overflow_count,
    within_miss_budget, CapacityOverflow, DecomposeScratch, Decomposition, RttClassifier,
    ScratchDecomposition,
};
pub use shaper::{RecombinePolicy, WorkloadShaper};
pub use sla::{sla_from_fractions, SlaDistribution, SlaVerification, TargetOutcome};
pub use split::{SplitScheduler, SPLIT_OVERFLOW_SERVER, SPLIT_PRIMARY_SERVER};
pub use target::{Provision, QosTarget};
pub use tenant::{merge_tenants, MultiTenantScheduler, TenantConfig, TenantId};

// The unshaped baseline scheduler lives in the simulation crate; re-export
// it so downstream users find all four policies in one place.
pub use gqos_sim::FcfsScheduler;
