//! Multi-level decomposition — the paper's "two (or more in general)
//! classes" generalisation.
//!
//! A cascade of RTT classifiers with graduated deadlines: an arriving
//! request is admitted to the first (tightest) class with a free slot,
//! spilling down through progressively looser classes, and only requests
//! that fit nowhere land in best-effort. This yields a full response-time
//! *distribution* SLA — e.g. 90% within 10 ms, 98% within 50 ms, rest best
//! effort — from the same bounded-counter machinery as two-class RTT.

use std::fmt;

use gqos_sim::ServiceClass;
use gqos_trace::{Iops, SimDuration, SimTime, Workload};

/// One level of a cascade: a capacity share and its deadline.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct CascadeLevel {
    /// Capacity reserved for this level.
    pub capacity: Iops,
    /// Response-time bound of this level.
    pub deadline: SimDuration,
}

/// A graduated multi-class decomposer.
///
/// Levels must be ordered by strictly increasing deadline. Class `i`
/// corresponds to level `i`; requests that fit no level are classified
/// `ServiceClass::new(levels.len())` (best effort).
///
/// # Examples
///
/// ```
/// use gqos_core::{CascadeDecomposer, CascadeLevel};
/// use gqos_trace::{Iops, SimDuration, SimTime, Workload};
///
/// let levels = vec![
///     CascadeLevel { capacity: Iops::new(200.0), deadline: SimDuration::from_millis(10) },
///     CascadeLevel { capacity: Iops::new(100.0), deadline: SimDuration::from_millis(50) },
/// ];
/// let cascade = CascadeDecomposer::new(levels);
/// let w = Workload::from_arrivals(vec![SimTime::ZERO; 10]);
/// let result = cascade.decompose(&w);
/// // 2 fit in the 10 ms class, 5 more in the 50 ms class, 3 best effort.
/// assert_eq!(result.count_of(0), 2);
/// assert_eq!(result.count_of(1), 5);
/// assert_eq!(result.count_of(2), 3);
/// ```
#[derive(Clone, Debug)]
pub struct CascadeDecomposer {
    levels: Vec<CascadeLevel>,
}

impl CascadeDecomposer {
    /// Creates a cascade from levels ordered by increasing deadline.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty, deadlines are not strictly increasing,
    /// or any level's `⌊C·δ⌋` is zero.
    pub fn new(levels: Vec<CascadeLevel>) -> Self {
        assert!(!levels.is_empty(), "cascade needs at least one level");
        for pair in levels.windows(2) {
            assert!(
                pair[0].deadline < pair[1].deadline,
                "cascade deadlines must be strictly increasing"
            );
        }
        for (i, level) in levels.iter().enumerate() {
            assert!(
                level.capacity.requests_within(level.deadline) >= 1,
                "level {i} admits no requests (C x delta < 1)"
            );
        }
        CascadeDecomposer { levels }
    }

    /// The configured levels.
    pub fn levels(&self) -> &[CascadeLevel] {
        &self.levels
    }

    /// Number of classes including the trailing best-effort class.
    pub fn classes(&self) -> usize {
        self.levels.len() + 1
    }

    /// Decomposes a workload: each request is assigned the first level with
    /// a free slot (its own dedicated-capacity emulation per level), else
    /// the best-effort class.
    pub fn decompose(&self, workload: &Workload) -> CascadeDecomposition {
        struct LevelState {
            max_q: u64,
            len_q: u64,
            service: SimDuration,
            next_done: SimTime,
        }
        let mut states: Vec<LevelState> = self
            .levels
            .iter()
            .map(|l| LevelState {
                max_q: l.capacity.requests_within(l.deadline),
                len_q: 0,
                service: l.capacity.service_time().max(SimDuration::from_nanos(1)),
                next_done: SimTime::ZERO,
            })
            .collect();

        let mut assignments = Vec::with_capacity(workload.len());
        let mut counts = vec![0u64; self.classes()];
        for r in workload.iter() {
            let mut assigned = self.levels.len(); // default: best effort
            for (i, s) in states.iter_mut().enumerate() {
                // Drain this level's completions up to the arrival.
                while s.len_q > 0 && s.next_done <= r.arrival {
                    s.len_q -= 1;
                    s.next_done += s.service;
                }
                if s.len_q == 0 {
                    s.next_done = r.arrival + s.service;
                }
                if assigned == self.levels.len() && s.len_q < s.max_q {
                    s.len_q += 1;
                    assigned = i;
                }
            }
            counts[assigned] += 1;
            assignments.push(ServiceClass::new(assigned as u8));
        }
        CascadeDecomposition {
            assignments,
            counts,
        }
    }
}

impl fmt::Display for CascadeDecomposer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cascade of {} levels", self.levels.len())
    }
}

/// The per-class outcome of a cascade decomposition.
#[derive(Clone, Debug)]
pub struct CascadeDecomposition {
    assignments: Vec<ServiceClass>,
    counts: Vec<u64>,
}

impl CascadeDecomposition {
    /// Class of each request by position.
    pub fn assignments(&self) -> &[ServiceClass] {
        &self.assignments
    }

    /// Requests assigned to class `class`.
    pub fn count_of(&self, class: u8) -> u64 {
        self.counts[class as usize]
    }

    /// Cumulative fraction of requests in classes `0..=class` — the
    /// graduated SLA distribution.
    pub fn cumulative_fraction(&self, class: u8) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let covered: u64 = self.counts[..=(class as usize)].iter().sum();
        covered as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lvl(c: f64, ms: u64) -> CascadeLevel {
        CascadeLevel {
            capacity: Iops::new(c),
            deadline: SimDuration::from_millis(ms),
        }
    }

    #[test]
    fn single_level_matches_two_class_rtt() {
        let cascade = CascadeDecomposer::new(vec![lvl(200.0, 10)]);
        let w = Workload::from_arrivals(vec![SimTime::ZERO; 5]);
        let d = cascade.decompose(&w);
        // maxQ1 = 2 -> 2 primary, 3 best effort.
        assert_eq!(d.count_of(0), 2);
        assert_eq!(d.count_of(1), 3);
        let rtt = crate::rtt::decompose(&w, Iops::new(200.0), SimDuration::from_millis(10));
        assert_eq!(d.count_of(0), rtt.primary_count());
    }

    #[test]
    fn burst_spills_through_levels() {
        let cascade = CascadeDecomposer::new(vec![lvl(300.0, 10), lvl(100.0, 50), lvl(50.0, 200)]);
        // maxQ per level: 3, 5, 10.
        let w = Workload::from_arrivals(vec![SimTime::ZERO; 20]);
        let d = cascade.decompose(&w);
        assert_eq!(d.count_of(0), 3);
        assert_eq!(d.count_of(1), 5);
        assert_eq!(d.count_of(2), 10);
        assert_eq!(d.count_of(3), 2);
        assert!((d.cumulative_fraction(1) - 0.4).abs() < 1e-12);
        assert_eq!(d.cumulative_fraction(3), 1.0);
    }

    #[test]
    fn calm_traffic_stays_in_the_top_class() {
        let cascade = CascadeDecomposer::new(vec![lvl(200.0, 10), lvl(50.0, 100)]);
        let w = Workload::from_arrivals((0..50).map(|i| SimTime::from_millis(i * 20)));
        let d = cascade.decompose(&w);
        assert_eq!(d.count_of(0), 50);
        assert_eq!(d.cumulative_fraction(0), 1.0);
    }

    #[test]
    fn levels_recover_after_draining() {
        let cascade = CascadeDecomposer::new(vec![lvl(100.0, 20)]); // maxQ 2
        let mut arrivals = vec![SimTime::ZERO; 3];
        arrivals.push(SimTime::from_secs(1)); // long after the burst drained
        let w = Workload::from_arrivals(arrivals);
        let d = cascade.decompose(&w);
        assert_eq!(d.count_of(0), 3);
        assert_eq!(d.count_of(1), 1);
    }

    #[test]
    fn classes_counts_levels_plus_best_effort() {
        let cascade = CascadeDecomposer::new(vec![lvl(100.0, 20), lvl(100.0, 40)]);
        assert_eq!(cascade.classes(), 3);
        assert_eq!(cascade.levels().len(), 2);
        assert!(cascade.to_string().contains("2 levels"));
    }

    #[test]
    fn empty_workload_is_vacuously_covered() {
        let cascade = CascadeDecomposer::new(vec![lvl(100.0, 20)]);
        let d = cascade.decompose(&Workload::new());
        assert_eq!(d.cumulative_fraction(0), 1.0);
        assert!(d.assignments().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_cascade_rejected() {
        let _ = CascadeDecomposer::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unordered_deadlines_rejected() {
        let _ = CascadeDecomposer::new(vec![lvl(100.0, 50), lvl(100.0, 10)]);
    }

    #[test]
    #[should_panic(expected = "admits no requests")]
    fn degenerate_level_rejected() {
        let _ = CascadeDecomposer::new(vec![lvl(10.0, 10)]);
    }
}
