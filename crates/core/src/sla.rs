//! Response-time *distribution* SLAs and their verification.
//!
//! The paper replaces the single worst-case guarantee with "a distribution
//! of response times": e.g. *90% within 10 ms, 99% within 100 ms, rest best
//! effort*. [`SlaDistribution`] is that contract as a value, checkable
//! against any simulation run — the auditor the provider and client both
//! point at.

use std::fmt;

use gqos_sim::{ResponseStats, RunReport};
use gqos_trace::SimDuration;

use crate::target::QosTarget;

/// A multi-point response-time SLA: each target binds a fraction of the
/// *whole* workload to a deadline; targets must tighten monotonically
/// (larger fractions get larger deadlines).
///
/// # Examples
///
/// ```
/// use gqos_core::{QosTarget, SlaDistribution};
/// use gqos_trace::SimDuration;
///
/// let sla = SlaDistribution::new(vec![
///     QosTarget::new(0.90, SimDuration::from_millis(10)),
///     QosTarget::new(0.99, SimDuration::from_millis(100)),
/// ]);
/// assert_eq!(sla.targets().len(), 2);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct SlaDistribution {
    targets: Vec<QosTarget>,
}

impl SlaDistribution {
    /// Creates a distribution SLA.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty, or fractions/deadlines are not
    /// strictly increasing.
    pub fn new(targets: Vec<QosTarget>) -> Self {
        assert!(!targets.is_empty(), "an SLA needs at least one target");
        for pair in targets.windows(2) {
            assert!(
                pair[0].fraction() < pair[1].fraction(),
                "SLA fractions must be strictly increasing"
            );
            assert!(
                pair[0].deadline() < pair[1].deadline(),
                "SLA deadlines must be strictly increasing"
            );
        }
        SlaDistribution { targets }
    }

    /// The targets, tightest first.
    pub fn targets(&self) -> &[QosTarget] {
        &self.targets
    }

    /// Verifies a simulation run against every target, over the whole
    /// workload (unfinished requests count as misses).
    pub fn verify(&self, report: &RunReport) -> SlaVerification {
        self.verify_stats(&report.stats())
    }

    /// Verifies pre-computed response statistics against every target.
    pub fn verify_stats(&self, stats: &ResponseStats) -> SlaVerification {
        let outcomes = self
            .targets
            .iter()
            .map(|&target| {
                let achieved = stats.fraction_within(target.deadline());
                TargetOutcome {
                    target,
                    achieved,
                    met: achieved + 1e-12 >= target.fraction(),
                }
            })
            .collect();
        SlaVerification { outcomes }
    }
}

impl fmt::Display for SlaDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.targets.iter().map(|t| t.to_string()).collect();
        write!(f, "SLA[{}]", parts.join("; "))
    }
}

/// One target's audited outcome.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct TargetOutcome {
    /// The contractual target.
    pub target: QosTarget,
    /// The fraction actually achieved within the target's deadline.
    pub achieved: f64,
    /// Whether the target was met.
    pub met: bool,
}

impl fmt::Display for TargetOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: achieved {:.2}% [{}]",
            self.target,
            self.achieved * 100.0,
            if self.met { "MET" } else { "VIOLATED" }
        )
    }
}

/// The audit result for a whole [`SlaDistribution`].
#[derive(Clone, PartialEq, Debug)]
pub struct SlaVerification {
    outcomes: Vec<TargetOutcome>,
}

impl SlaVerification {
    /// Per-target outcomes, tightest target first.
    pub fn outcomes(&self) -> &[TargetOutcome] {
        &self.outcomes
    }

    /// `true` when every target was met.
    pub fn all_met(&self) -> bool {
        self.outcomes.iter().all(|o| o.met)
    }

    /// The violated targets, if any.
    pub fn violations(&self) -> Vec<TargetOutcome> {
        self.outcomes.iter().filter(|o| !o.met).copied().collect()
    }

    /// The worst shortfall across targets: `max(required − achieved, 0)`.
    pub fn worst_shortfall(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|o| (o.target.fraction() - o.achieved).max(0.0))
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for SlaVerification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{o}")?;
        }
        Ok(())
    }
}

/// Convenience: builds the SLA a [`CascadeDecomposer`](crate::CascadeDecomposer)
/// cascade is designed to deliver, from its levels' cumulative coverage of
/// a specific workload decomposition.
pub fn sla_from_fractions(pairs: &[(f64, SimDuration)]) -> SlaDistribution {
    SlaDistribution::new(pairs.iter().map(|&(f, d)| QosTarget::new(f, d)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqos_sim::{simulate, FixedRateServer};
    use gqos_trace::{Iops, SimTime, Workload};

    fn dms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn sla() -> SlaDistribution {
        SlaDistribution::new(vec![
            QosTarget::new(0.90, dms(20)),
            QosTarget::new(0.99, dms(100)),
        ])
    }

    #[test]
    fn met_sla_verifies_clean() {
        // A lightly loaded FCFS server: everything is fast.
        let w = Workload::from_arrivals((0..100).map(|i| SimTime::from_millis(i * 20)));
        let report = simulate(
            &w,
            gqos_sim::FcfsScheduler::new(),
            FixedRateServer::new(Iops::new(200.0)),
        );
        let v = sla().verify(&report);
        assert!(v.all_met(), "{v}");
        assert!(v.violations().is_empty());
        assert_eq!(v.worst_shortfall(), 0.0);
        assert_eq!(v.outcomes().len(), 2);
    }

    #[test]
    fn violated_sla_reports_the_shortfall() {
        // A deep burst on a small server: the 90%-in-20ms target fails.
        let w = Workload::from_arrivals(vec![SimTime::ZERO; 50]);
        let report = simulate(
            &w,
            gqos_sim::FcfsScheduler::new(),
            FixedRateServer::new(Iops::new(100.0)),
        );
        let v = sla().verify(&report);
        assert!(!v.all_met());
        let violations = v.violations();
        assert!(!violations.is_empty());
        assert!(
            v.worst_shortfall() > 0.5,
            "shortfall {}",
            v.worst_shortfall()
        );
        assert!(v.to_string().contains("VIOLATED"));
    }

    #[test]
    fn shaped_run_meets_its_planned_distribution() {
        use crate::{QosTarget as T, RecombinePolicy, WorkloadShaper};
        let mut arrivals: Vec<SimTime> = (0..300).map(|i| SimTime::from_millis(i * 10)).collect();
        arrivals.extend(vec![SimTime::from_millis(777); 30]);
        let w = Workload::from_arrivals(arrivals);
        let shaper = WorkloadShaper::plan(&w, T::new(0.90, dms(20)));
        let report = shaper.run(&w, RecombinePolicy::FairQueue);
        // The plan guarantees the first point; the burst tail clears well
        // within a second at Cmin + dC.
        let sla = SlaDistribution::new(vec![
            QosTarget::new(0.90, dms(20)),
            QosTarget::new(0.999, SimDuration::from_secs(5)),
        ]);
        let v = sla.verify(&report);
        assert!(v.all_met(), "{v}");
    }

    #[test]
    fn helper_builds_from_pairs() {
        let sla = sla_from_fractions(&[(0.9, dms(10)), (0.99, dms(50))]);
        assert_eq!(sla.targets().len(), 2);
        assert!(sla.to_string().contains("SLA["));
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn empty_sla_rejected() {
        let _ = SlaDistribution::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "fractions must be strictly increasing")]
    fn non_increasing_fractions_rejected() {
        let _ = SlaDistribution::new(vec![
            QosTarget::new(0.99, dms(10)),
            QosTarget::new(0.90, dms(50)),
        ]);
    }

    #[test]
    #[should_panic(expected = "deadlines must be strictly increasing")]
    fn non_increasing_deadlines_rejected() {
        let _ = SlaDistribution::new(vec![
            QosTarget::new(0.90, dms(50)),
            QosTarget::new(0.99, dms(10)),
        ]);
    }
}
