//! RTT — the paper's optimal online decomposition algorithm (Algorithm 1).
//!
//! RTT partitions an arrival stream into a primary class `Q1` (guaranteed a
//! response time of `δ` at capacity `C`) and an overflow class `Q2`, using a
//! single bounded counter: a request joins `Q1` if fewer than
//! `maxQ1 = ⌊C·δ⌋` primary requests are pending, else it is diverted.
//! Despite its simplicity it is *optimal*: no partitioning algorithm, online
//! or offline, can place more requests in the deadline-meeting class
//! (Lemmas 1–3 of the paper; verified against brute force and the Lemma 1
//! bound in this module's tests).
//!
//! The offline entry points ([`decompose`], [`within_miss_budget`],
//! [`overflow_count`], [`DecomposeScratch`]) run on the crate's
//! allocation-free integer kernels, scanning the workload's cached columnar
//! arrival view ([`Workload::arrival_column`]) instead of the request
//! structs; the online [`RttClassifier`] remains the per-request admission
//! rule schedulers embed.

use std::error::Error;
use std::fmt;

use gqos_sim::ServiceClass;
use gqos_trace::{Iops, Request, SimDuration, Workload};

use crate::kernel::{scan_overflow, scan_within_budget, RttParams, RttState};

/// Typed overflow error: `⌊C·δ⌋` exceeds the 64-bit primary-queue counter.
///
/// The queue bound is an integer; a `(C, δ)` pair whose product reaches
/// `2^64` cannot be represented (and no physical trace could fill such a
/// queue anyway). [`checked_max_queue`] reports the offending pair instead
/// of silently wrapping or saturating.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CapacityOverflow {
    /// The capacity of the offending pair.
    pub capacity: Iops,
    /// The deadline of the offending pair.
    pub deadline: SimDuration,
}

impl fmt::Display for CapacityOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "C x delta = {} x {} overflows the 64-bit queue bound",
            self.capacity, self.deadline
        )
    }
}

impl Error for CapacityOverflow {}

/// The primary-queue bound `⌊C·δ⌋` with an overflow check: `Err` when the
/// product does not fit a `u64` instead of a saturating cast.
///
/// # Panics
///
/// Panics if `deadline` is zero.
///
/// # Errors
///
/// Returns [`CapacityOverflow`] when `C·δ ≥ 2^64`.
///
/// # Examples
///
/// ```
/// use gqos_core::checked_max_queue;
/// use gqos_trace::{Iops, SimDuration};
///
/// let delta = SimDuration::from_millis(20);
/// assert_eq!(checked_max_queue(Iops::new(100.0), delta), Ok(2));
/// assert!(checked_max_queue(Iops::new(1e21), SimDuration::from_secs(100)).is_err());
/// ```
pub fn checked_max_queue(capacity: Iops, deadline: SimDuration) -> Result<u64, CapacityOverflow> {
    assert!(!deadline.is_zero(), "deadline must be positive");
    let product = capacity.get() * deadline.as_secs_f64();
    // `u64::MAX as f64` rounds up to 2^64 exactly, so `>=` catches every
    // product the counter cannot hold.
    if product >= u64::MAX as f64 {
        return Err(CapacityOverflow { capacity, deadline });
    }
    Ok(product as u64)
}

/// Online RTT classifier: the bounded-queue admission rule, reusable by any
/// recombination scheduler.
///
/// The embedding scheduler must report primary-class departures via
/// [`primary_departed`](RttClassifier::primary_departed) so the pending
/// count stays accurate.
///
/// # Examples
///
/// ```
/// use gqos_core::RttClassifier;
/// use gqos_sim::ServiceClass;
/// use gqos_trace::{Iops, SimDuration};
///
/// // C·δ = 100 × 0.02 = 2 primary slots.
/// let mut rtt = RttClassifier::new(Iops::new(100.0), SimDuration::from_millis(20));
/// assert_eq!(rtt.max_queue(), 2);
/// assert_eq!(rtt.classify(), ServiceClass::PRIMARY);
/// assert_eq!(rtt.classify(), ServiceClass::PRIMARY);
/// assert_eq!(rtt.classify(), ServiceClass::OVERFLOW); // Q1 full
/// rtt.primary_departed();
/// assert_eq!(rtt.classify(), ServiceClass::PRIMARY);
/// ```
#[derive(Clone, Debug)]
pub struct RttClassifier {
    capacity: Iops,
    deadline: SimDuration,
    max_q1: u64,
    len_q1: u64,
    /// Degradation factor applied to `capacity` when sizing `max_q1`;
    /// 1.0 on a healthy server.
    degradation: f64,
}

impl RttClassifier {
    /// Creates a classifier for the given primary capacity and deadline.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero, if `⌊C·δ⌋` is zero (the capacity
    /// cannot complete even one request within the deadline, so no request
    /// could ever be guaranteed), or if `⌊C·δ⌋` overflows the 64-bit queue
    /// counter (see [`checked_max_queue`]).
    pub fn new(capacity: Iops, deadline: SimDuration) -> Self {
        let max_q1 = checked_max_queue(capacity, deadline).unwrap_or_else(|e| panic!("{e}"));
        assert!(
            max_q1 >= 1,
            "C x delta = {} x {} admits no requests; raise capacity or deadline",
            capacity,
            deadline
        );
        RttClassifier {
            capacity,
            deadline,
            max_q1,
            len_q1: 0,
            degradation: 1.0,
        }
    }

    /// The primary-queue bound `maxQ1 = ⌊C_eff·δ⌋` (with
    /// `C_eff = degradation · C`).
    pub fn max_queue(&self) -> u64 {
        self.max_q1
    }

    /// Pending primary requests (queued or in service).
    pub fn len_q1(&self) -> u64 {
        self.len_q1
    }

    /// Remaining primary slots, `maxQ1 − lenQ1` — the paper's per-request
    /// slack value at admission time. Saturates at zero: after a downward
    /// renegotiation `lenQ1` may temporarily exceed the shrunken bound.
    pub fn slack(&self) -> u64 {
        self.max_q1.saturating_sub(self.len_q1)
    }

    /// Renegotiates the admission bound against an estimated effective
    /// capacity `C_eff = factor · C`: shrinks (or restores)
    /// `maxQ1 = ⌊C_eff·δ⌋`, so *new* arrivals are shed to the overflow
    /// class while already-admitted requests keep their slots. A factor of
    /// zero (outage) closes Q1 to new admissions entirely.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite, or if
    /// `⌊C_eff·δ⌋` overflows the 64-bit queue counter (only possible with a
    /// factor far above 1 — see [`checked_max_queue`]).
    pub fn set_degradation(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "degradation factor must be finite and non-negative: {factor}"
        );
        self.degradation = factor;
        self.max_q1 = match Iops::try_new(self.capacity.get() * factor) {
            Some(c_eff) => {
                checked_max_queue(c_eff, self.deadline).unwrap_or_else(|e| panic!("{e}"))
            }
            None => 0,
        };
    }

    /// The current degradation factor (1.0 on a healthy server).
    pub fn degradation(&self) -> f64 {
        self.degradation
    }

    /// The capacity the classifier was built with.
    pub fn capacity(&self) -> Iops {
        self.capacity
    }

    /// The deadline the classifier was built with.
    pub fn deadline(&self) -> SimDuration {
        self.deadline
    }

    /// Classifies the next arriving request (Algorithm 1): `PRIMARY` if it
    /// fits in `Q1`, `OVERFLOW` otherwise. Increments the pending count on
    /// admission.
    pub fn classify(&mut self) -> ServiceClass {
        if self.len_q1 < self.max_q1 {
            self.len_q1 += 1;
            ServiceClass::PRIMARY
        } else {
            ServiceClass::OVERFLOW
        }
    }

    /// Records that a primary request left the system (service completed).
    ///
    /// # Panics
    ///
    /// Panics if no primary request is pending (scheduler bookkeeping bug).
    pub fn primary_departed(&mut self) {
        assert!(self.len_q1 > 0, "primary departure with empty Q1");
        self.len_q1 -= 1;
    }
}

impl fmt::Display for RttClassifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RTT(C={}, delta={}, {}/{} slots used)",
            self.capacity, self.deadline, self.len_q1, self.max_q1
        )
    }
}

/// The result of decomposing a whole workload offline.
#[derive(Clone, Debug)]
pub struct Decomposition {
    assignments: Vec<ServiceClass>,
    primary: u64,
    overflow: u64,
    capacity: Iops,
    deadline: SimDuration,
}

impl Decomposition {
    /// Class of each request, indexed by
    /// [`RequestId`](gqos_trace::RequestId) position.
    pub fn assignments(&self) -> &[ServiceClass] {
        &self.assignments
    }

    /// Class assigned to one request.
    pub fn class_of(&self, request: &Request) -> ServiceClass {
        self.assignments[request.id.as_usize()]
    }

    /// Number of requests admitted to the primary class.
    pub fn primary_count(&self) -> u64 {
        self.primary
    }

    /// Number of requests diverted to the overflow class (the paper's
    /// "dropped" count — they are still served, just not guaranteed).
    pub fn overflow_count(&self) -> u64 {
        self.overflow
    }

    /// Fraction of the workload in the primary class, in `[0, 1]`.
    /// Returns 1.0 for an empty workload (vacuously guaranteed).
    pub fn primary_fraction(&self) -> f64 {
        let total = self.primary + self.overflow;
        if total == 0 {
            1.0
        } else {
            self.primary as f64 / total as f64
        }
    }

    /// The capacity used for the decomposition.
    pub fn capacity(&self) -> Iops {
        self.capacity
    }

    /// The deadline used for the decomposition.
    pub fn deadline(&self) -> SimDuration {
        self.deadline
    }

    /// Recycles this decomposition's assignment storage into a
    /// [`DecomposeScratch`], so a caller that has finished reading the
    /// result can run the next probe without a fresh allocation.
    pub fn into_scratch(self) -> DecomposeScratch {
        DecomposeScratch {
            assignments: self.assignments,
        }
    }

    /// Splits `workload` into its primary and overflow sub-workloads
    /// (re-identified), in that order.
    ///
    /// # Panics
    ///
    /// Panics if `workload` is not the workload this decomposition was
    /// computed from (length mismatch).
    pub fn split(&self, workload: &Workload) -> (Workload, Workload) {
        assert_eq!(
            workload.len(),
            self.assignments.len(),
            "decomposition does not match workload"
        );
        let mut q1 = Vec::with_capacity(self.primary as usize);
        let mut q2 = Vec::with_capacity(self.overflow as usize);
        for r in workload.iter() {
            match self.assignments[r.id.as_usize()] {
                ServiceClass::PRIMARY => q1.push(*r),
                _ => q2.push(*r),
            }
        }
        (Workload::from_requests(q1), Workload::from_requests(q2))
    }
}

impl fmt::Display for Decomposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2}% primary ({} of {} requests) at C={}",
            self.primary_fraction() * 100.0,
            self.primary,
            self.primary + self.overflow,
            self.capacity
        )
    }
}

/// Decomposes a whole workload offline with RTT against a dedicated
/// rate-`C` primary server (deterministic service time `1/C`).
///
/// Every admitted request is guaranteed to finish within `deadline` when the
/// primary class is served FCFS at capacity `capacity` — see
/// `q1_meets_deadline_by_construction` in the tests.
///
/// # Panics
///
/// Panics if `deadline` is zero or `⌊C·δ⌋ = 0` (see [`RttClassifier::new`]).
///
/// # Examples
///
/// ```
/// use gqos_core::decompose;
/// use gqos_trace::{Iops, SimDuration, SimTime, Workload};
///
/// // Three simultaneous arrivals, capacity for two within the deadline.
/// let w = Workload::from_arrivals(vec![SimTime::ZERO; 3]);
/// let d = decompose(&w, Iops::new(100.0), SimDuration::from_millis(20));
/// assert_eq!(d.primary_count(), 2);
/// assert_eq!(d.overflow_count(), 1);
/// ```
pub fn decompose(workload: &Workload, capacity: Iops, deadline: SimDuration) -> Decomposition {
    let mut scratch = DecomposeScratch::new();
    let (primary, overflow) = scratch
        .run(workload, RttParams::new(capacity, deadline), u64::MAX)
        .expect("unbudgeted scan always completes");
    Decomposition {
        assignments: scratch.assignments,
        primary,
        overflow,
        capacity,
        deadline,
    }
}

/// Like [`decompose`], but aborts as soon as the overflow count exceeds
/// `budget` (the planner's miss budget `N − ⌈f·N⌉`), returning `None`.
///
/// When it returns `Some`, the decomposition is identical to what
/// [`decompose`] produces and its overflow count is at most `budget`. The
/// early exit is what makes the capacity search cheap on failing probes: a
/// capacity far below `Cmin` diverts requests from the start of the trace,
/// so the probe touches only a small prefix instead of scanning all `N`
/// requests.
///
/// # Panics
///
/// Panics if `deadline` is zero or `⌊C·δ⌋ = 0` (see [`RttClassifier::new`]).
///
/// # Examples
///
/// ```
/// use gqos_core::{decompose, decompose_with_budget};
/// use gqos_trace::{Iops, SimDuration, SimTime, Workload};
///
/// let w = Workload::from_arrivals(vec![SimTime::ZERO; 3]);
/// let (c, d) = (Iops::new(100.0), SimDuration::from_millis(20));
/// // Capacity for two of three: one overflow.
/// assert!(decompose_with_budget(&w, c, d, 0).is_none());
/// let full = decompose_with_budget(&w, c, d, 1).expect("within budget");
/// assert_eq!(full.assignments(), decompose(&w, c, d).assignments());
/// ```
pub fn decompose_with_budget(
    workload: &Workload,
    capacity: Iops,
    deadline: SimDuration,
    budget: u64,
) -> Option<Decomposition> {
    let mut scratch = DecomposeScratch::new();
    let counts = scratch.run(workload, RttParams::new(capacity, deadline), budget)?;
    let (primary, overflow) = counts;
    Some(Decomposition {
        assignments: scratch.assignments,
        primary,
        overflow,
        capacity,
        deadline,
    })
}

/// Counting-only budget probe: does RTT at this capacity divert at most
/// `budget` requests? Equivalent to
/// `decompose_with_budget(..).is_some()` without allocating the
/// per-request assignment vector — the planner's inner-loop primitive.
///
/// # Panics
///
/// Panics if `deadline` is zero or `⌊C·δ⌋ = 0` (see [`RttClassifier::new`]).
pub fn within_miss_budget(
    workload: &Workload,
    capacity: Iops,
    deadline: SimDuration,
    budget: u64,
) -> bool {
    scan_within_budget(
        workload.arrival_column().nanos(),
        RttParams::new(capacity, deadline),
        budget,
    )
}

/// The overflow count of [`decompose`] without materialising the
/// decomposition — a single allocation-free pass over the arrival column,
/// used by [`CapacityPlanner::fraction_guaranteed`](crate::CapacityPlanner::fraction_guaranteed).
///
/// # Panics
///
/// Panics if `deadline` is zero or `⌊C·δ⌋ = 0` (see [`RttClassifier::new`]).
pub fn overflow_count(workload: &Workload, capacity: Iops, deadline: SimDuration) -> u64 {
    scan_overflow(
        workload.arrival_column().nanos(),
        RttParams::new(capacity, deadline),
    )
}

/// Reusable storage for offline decompositions: run many probes, allocate
/// (at most) once.
///
/// [`decompose`] allocates a fresh assignment vector per call — fine for a
/// one-shot analysis, wasteful inside a planner loop or an experiment grid
/// that decomposes the same trace at hundreds of capacities. A scratch
/// holds the vector across calls; each call clears and refills it, growing
/// only when a workload is larger than anything seen before.
///
/// # Examples
///
/// ```
/// use gqos_core::{decompose, DecomposeScratch};
/// use gqos_trace::{Iops, SimDuration, SimTime, Workload};
///
/// let w = Workload::from_arrivals(vec![SimTime::ZERO; 3]);
/// let (c, d) = (Iops::new(100.0), SimDuration::from_millis(20));
/// let mut scratch = DecomposeScratch::new();
/// let view = scratch.decompose(&w, c, d);
/// assert_eq!(view.overflow_count(), 1);
/// assert_eq!(view.assignments(), decompose(&w, c, d).assignments());
/// ```
#[derive(Clone, Default, Debug)]
pub struct DecomposeScratch {
    assignments: Vec<ServiceClass>,
}

impl DecomposeScratch {
    /// Creates an empty scratch (first use allocates).
    pub fn new() -> Self {
        DecomposeScratch::default()
    }

    /// Creates a scratch pre-sized for workloads of `capacity` requests.
    pub fn with_capacity(capacity: usize) -> Self {
        DecomposeScratch {
            assignments: Vec::with_capacity(capacity),
        }
    }

    /// Decomposes `workload` into this scratch, returning a borrowed view
    /// with the same contents [`decompose`] would produce.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero or `⌊C·δ⌋ = 0` (see
    /// [`RttClassifier::new`]).
    pub fn decompose(
        &mut self,
        workload: &Workload,
        capacity: Iops,
        deadline: SimDuration,
    ) -> ScratchDecomposition<'_> {
        let (primary, overflow) = self
            .run(workload, RttParams::new(capacity, deadline), u64::MAX)
            .expect("unbudgeted scan always completes");
        ScratchDecomposition {
            assignments: &self.assignments,
            primary,
            overflow,
            capacity,
            deadline,
        }
    }

    /// Budgeted variant: like [`decompose_with_budget`], `None` as soon as
    /// the overflow count exceeds `budget` (the scratch then holds only the
    /// scanned prefix and is ready for reuse).
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero or `⌊C·δ⌋ = 0` (see
    /// [`RttClassifier::new`]).
    pub fn decompose_with_budget(
        &mut self,
        workload: &Workload,
        capacity: Iops,
        deadline: SimDuration,
        budget: u64,
    ) -> Option<ScratchDecomposition<'_>> {
        let (primary, overflow) = self.run(workload, RttParams::new(capacity, deadline), budget)?;
        Some(ScratchDecomposition {
            assignments: &self.assignments,
            primary,
            overflow,
            capacity,
            deadline,
        })
    }

    /// Algorithm 1 over the cached arrival column: fills `assignments` and
    /// returns `(primary, overflow)` counts, or `None` once overflow
    /// exceeds `budget`.
    fn run(&mut self, workload: &Workload, params: RttParams, budget: u64) -> Option<(u64, u64)> {
        self.assignments.clear();
        let arrivals = workload.arrival_column().nanos();
        self.assignments.reserve(arrivals.len());
        let mut state = RttState::default();
        let mut primary = 0u64;
        let mut overflow = 0u64;
        for &arrival in arrivals {
            if state.admit(params, arrival) {
                primary += 1;
                self.assignments.push(ServiceClass::PRIMARY);
            } else {
                overflow += 1;
                if overflow > budget {
                    return None;
                }
                self.assignments.push(ServiceClass::OVERFLOW);
            }
        }
        Some((primary, overflow))
    }
}

/// A decomposition whose assignment storage is borrowed from a
/// [`DecomposeScratch`] — the counts and accessors of [`Decomposition`]
/// without owning the vector.
#[derive(Copy, Clone, Debug)]
pub struct ScratchDecomposition<'s> {
    assignments: &'s [ServiceClass],
    primary: u64,
    overflow: u64,
    capacity: Iops,
    deadline: SimDuration,
}

impl ScratchDecomposition<'_> {
    /// Class of each request, indexed by
    /// [`RequestId`](gqos_trace::RequestId) position.
    pub fn assignments(&self) -> &[ServiceClass] {
        self.assignments
    }

    /// Number of requests admitted to the primary class.
    pub fn primary_count(&self) -> u64 {
        self.primary
    }

    /// Number of requests diverted to the overflow class.
    pub fn overflow_count(&self) -> u64 {
        self.overflow
    }

    /// Fraction of the workload in the primary class, in `[0, 1]`
    /// (1.0 for an empty workload).
    pub fn primary_fraction(&self) -> f64 {
        let total = self.primary + self.overflow;
        if total == 0 {
            1.0
        } else {
            self.primary as f64 / total as f64
        }
    }

    /// The capacity used for the decomposition.
    pub fn capacity(&self) -> Iops {
        self.capacity
    }

    /// The deadline used for the decomposition.
    pub fn deadline(&self) -> SimDuration {
        self.deadline
    }

    /// An owning copy, detached from the scratch.
    pub fn to_decomposition(&self) -> Decomposition {
        Decomposition {
            assignments: self.assignments.to_vec(),
            primary: self.primary,
            overflow: self.overflow,
            capacity: self.capacity,
            deadline: self.deadline,
        }
    }
}

/// The smallest number of requests that must be diverted at this capacity
/// and deadline by *any* algorithm — the paper's Lemma 1 bound, summed over
/// busy periods. RTT achieves this bound (Lemmas 2–3).
pub fn optimal_drop_lower_bound(workload: &Workload, capacity: Iops, deadline: SimDuration) -> u64 {
    gqos_trace::ServiceAnalysis::new(workload, capacity, deadline).lower_bound_misses()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqos_sim::{simulate, FcfsScheduler, FixedRateServer};
    use gqos_trace::SimTime;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn dms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn classifier_admits_up_to_bound() {
        let mut rtt = RttClassifier::new(Iops::new(1000.0), dms(5));
        assert_eq!(rtt.max_queue(), 5);
        for _ in 0..5 {
            assert_eq!(rtt.classify(), ServiceClass::PRIMARY);
        }
        assert_eq!(rtt.classify(), ServiceClass::OVERFLOW);
        assert_eq!(rtt.len_q1(), 5);
        assert_eq!(rtt.slack(), 0);
    }

    #[test]
    fn classifier_slack_shrinks_with_occupancy() {
        let mut rtt = RttClassifier::new(Iops::new(400.0), dms(10));
        assert_eq!(rtt.max_queue(), 4);
        assert_eq!(rtt.slack(), 4);
        rtt.classify();
        assert_eq!(rtt.slack(), 3);
        rtt.primary_departed();
        assert_eq!(rtt.slack(), 4);
    }

    #[test]
    fn degradation_shrinks_and_restores_the_bound() {
        let mut rtt = RttClassifier::new(Iops::new(1000.0), dms(5)); // maxQ1 = 5
        for _ in 0..4 {
            rtt.classify();
        }
        assert_eq!(rtt.slack(), 1);
        // Halve the effective capacity: bound 2, occupancy 4 -> slack
        // saturates at 0 and new arrivals are shed.
        rtt.set_degradation(0.5);
        assert_eq!(rtt.max_queue(), 2);
        assert_eq!(rtt.degradation(), 0.5);
        assert_eq!(rtt.slack(), 0);
        assert_eq!(rtt.classify(), ServiceClass::OVERFLOW);
        // Admitted requests keep their slots and drain normally.
        for _ in 0..4 {
            rtt.primary_departed();
        }
        assert_eq!(rtt.len_q1(), 0);
        // Full recovery restores the original bound exactly.
        rtt.set_degradation(1.0);
        assert_eq!(rtt.max_queue(), 5);
    }

    #[test]
    fn outage_degradation_closes_q1() {
        let mut rtt = RttClassifier::new(Iops::new(1000.0), dms(5));
        rtt.set_degradation(0.0);
        assert_eq!(rtt.max_queue(), 0);
        assert_eq!(rtt.classify(), ServiceClass::OVERFLOW);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_degradation_rejected() {
        let mut rtt = RttClassifier::new(Iops::new(1000.0), dms(5));
        rtt.set_degradation(-0.5);
    }

    #[test]
    #[should_panic(expected = "empty Q1")]
    fn departure_underflow_is_a_bug() {
        let mut rtt = RttClassifier::new(Iops::new(100.0), dms(20));
        rtt.primary_departed();
    }

    #[test]
    #[should_panic(expected = "admits no requests")]
    fn degenerate_bound_rejected() {
        // 10 IOPS x 10 ms = 0.1 -> maxQ1 = 0.
        let _ = RttClassifier::new(Iops::new(10.0), dms(10));
    }

    #[test]
    fn checked_max_queue_matches_float_floor_in_range() {
        let delta = dms(20);
        assert_eq!(checked_max_queue(Iops::new(100.0), delta), Ok(2));
        assert_eq!(checked_max_queue(Iops::new(150.0), dms(10)), Ok(1));
        // Just inside the counter: ~2^63 slots is absurd but representable.
        let huge = checked_max_queue(Iops::new(9.2e18), SimDuration::from_secs(1));
        assert!(huge.is_ok_and(|q| q > u64::MAX / 4), "{huge:?}");
    }

    #[test]
    fn checked_max_queue_rejects_u64_max_adjacent_products() {
        // 1e19 × 10 s = 1e20 ≥ 2^64 ≈ 1.8e19: typed error, not a wrap.
        let err = checked_max_queue(Iops::new(1e19), SimDuration::from_secs(10)).unwrap_err();
        assert_eq!(err.capacity, Iops::new(1e19));
        assert_eq!(err.deadline, SimDuration::from_secs(10));
        assert!(err.to_string().contains("overflows"), "{err}");
        // Exactly at the boundary the counter cannot hold the bound either.
        assert!(checked_max_queue(Iops::new(u64::MAX as f64), SimDuration::from_secs(1)).is_err());
    }

    #[test]
    #[should_panic(expected = "overflows the 64-bit queue bound")]
    fn classifier_rejects_overflowing_bound() {
        let _ = RttClassifier::new(Iops::new(1e19), SimDuration::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "overflows the 64-bit queue bound")]
    fn renegotiation_rejects_overflowing_bound() {
        let mut rtt = RttClassifier::new(Iops::new(1e18), SimDuration::from_secs(10));
        // A factor far above 1 pushes C_eff·δ past 2^64.
        rtt.set_degradation(1e6);
    }

    #[test]
    fn display_formats() {
        let rtt = RttClassifier::new(Iops::new(100.0), dms(20));
        assert!(rtt.to_string().contains("RTT("));
        let w = Workload::from_arrivals([ms(0)]);
        let d = decompose(&w, Iops::new(100.0), dms(20));
        assert!(d.to_string().contains("primary"));
    }

    #[test]
    fn smooth_workload_is_fully_primary() {
        // 10 ms apart at 100 IOPS: each request finishes before the next.
        let w = Workload::from_arrivals((0..50).map(|i| ms(10 * i)));
        let d = decompose(&w, Iops::new(100.0), dms(10));
        assert_eq!(d.overflow_count(), 0);
        assert_eq!(d.primary_fraction(), 1.0);
    }

    #[test]
    fn figure3_like_scenario_drops_the_minimum() {
        // A Figure 3-style pattern: C = 1 per unit, δ = 1 unit.
        // Arrivals (units of 1 s): 1@0, 2@1, 1@2.
        // maxQ1 = 1. t=0: admit (pending 1, done@1). t=1: drain, admit one,
        // divert one. t=2: drain, admit.
        let w = Workload::from_arrivals([
            SimTime::from_secs(0),
            SimTime::from_secs(1),
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        ]);
        let d = decompose(&w, Iops::new(1.0), SimDuration::from_secs(1));
        assert_eq!(d.overflow_count(), 1);
        // Lemma 1 agrees.
        assert_eq!(
            optimal_drop_lower_bound(&w, Iops::new(1.0), SimDuration::from_secs(1)),
            1
        );
    }

    #[test]
    fn burst_overflow_count_matches_lemma1() {
        // 10 simultaneous arrivals, room for 3.
        let w = Workload::from_arrivals(vec![SimTime::ZERO; 10]);
        let c = Iops::new(300.0);
        let d = decompose(&w, c, dms(10));
        assert_eq!(d.primary_count(), 3);
        assert_eq!(d.overflow_count(), 7);
        assert_eq!(optimal_drop_lower_bound(&w, c, dms(10)), 7);
    }

    #[test]
    fn q1_meets_deadline_by_construction() {
        // Whatever the arrival pattern, all admitted requests served FCFS on
        // a dedicated C-rate server finish within δ.
        let arrivals: Vec<SimTime> = (0..200)
            .flat_map(|i| {
                // Alternating calm stretches and 8-deep bursts.
                if i % 10 == 0 {
                    vec![ms(i * 7); 8]
                } else {
                    vec![ms(i * 7)]
                }
            })
            .collect();
        let w = Workload::from_arrivals(arrivals);
        let c = Iops::new(500.0);
        let delta = dms(10);
        let d = decompose(&w, c, delta);
        assert!(d.overflow_count() > 0, "test needs an overloaded pattern");
        let (q1, _q2) = d.split(&w);
        let report = simulate(&q1, FcfsScheduler::new(), FixedRateServer::new(c));
        assert_eq!(report.completed(), q1.len());
        let stats = report.stats();
        assert!(
            stats.max().expect("non-empty") <= delta,
            "a Q1 request missed: max {}",
            stats.max().unwrap()
        );
    }

    #[test]
    fn rtt_matches_lemma1_bound_on_bursty_patterns() {
        // Multiple separated bursts: the lower bound sums per busy period
        // and RTT must achieve it exactly.
        let mut arrivals = Vec::new();
        for burst in 0..5u64 {
            let base = burst * 10_000; // 10 s apart
            for i in 0..(3 + burst) {
                arrivals.push(ms(base + i)); // near-simultaneous
            }
        }
        let w = Workload::from_arrivals(arrivals);
        let c = Iops::new(200.0);
        let delta = dms(10);
        let d = decompose(&w, c, delta);
        assert_eq!(
            d.overflow_count(),
            optimal_drop_lower_bound(&w, c, delta),
            "RTT must drop exactly the optimal number"
        );
        assert!(d.overflow_count() > 0);
    }

    #[test]
    fn split_partitions_the_workload() {
        let w = Workload::from_arrivals(vec![SimTime::ZERO; 5]);
        let d = decompose(&w, Iops::new(200.0), dms(10));
        let (q1, q2) = d.split(&w);
        assert_eq!(q1.len() + q2.len(), w.len());
        assert_eq!(q1.len() as u64, d.primary_count());
        assert_eq!(d.class_of(&w.requests()[0]), ServiceClass::PRIMARY);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn split_rejects_wrong_workload() {
        let w = Workload::from_arrivals(vec![SimTime::ZERO; 5]);
        let d = decompose(&w, Iops::new(200.0), dms(10));
        let other = Workload::from_arrivals(vec![SimTime::ZERO; 3]);
        let _ = d.split(&other);
    }

    #[test]
    fn empty_workload_decomposition() {
        let d = decompose(&Workload::new(), Iops::new(100.0), dms(10));
        assert_eq!(d.primary_fraction(), 1.0);
        assert_eq!(d.primary_count(), 0);
        assert!(d.assignments().is_empty());
    }

    #[test]
    fn accessors_round_trip() {
        let w = Workload::from_arrivals([ms(0)]);
        let d = decompose(&w, Iops::new(150.0), dms(20));
        assert_eq!(d.capacity().get(), 150.0);
        assert_eq!(d.deadline(), dms(20));
    }

    #[test]
    fn scratch_reuse_matches_fresh_decompose() {
        let bursty = {
            let mut arrivals: Vec<SimTime> = (0..100).map(|i| ms(i * 3)).collect();
            arrivals.extend(vec![ms(50); 15]);
            Workload::from_arrivals(arrivals)
        };
        let small = Workload::from_arrivals(vec![SimTime::ZERO; 4]);
        let (c, delta) = (Iops::new(400.0), dms(10));
        let mut scratch = DecomposeScratch::with_capacity(8);
        for w in [&bursty, &small, &bursty] {
            let fresh = decompose(w, c, delta);
            let view = scratch.decompose(w, c, delta);
            assert_eq!(view.assignments(), fresh.assignments());
            assert_eq!(view.primary_count(), fresh.primary_count());
            assert_eq!(view.overflow_count(), fresh.overflow_count());
            assert_eq!(view.primary_fraction(), fresh.primary_fraction());
            assert_eq!(view.capacity(), c);
            assert_eq!(view.deadline(), delta);
            assert_eq!(view.to_decomposition().assignments(), fresh.assignments());
        }
    }

    #[test]
    fn scratch_budget_abort_then_reuse() {
        let w = Workload::from_arrivals(vec![SimTime::ZERO; 10]);
        let (c, delta) = (Iops::new(300.0), dms(10)); // 3 slots, 7 overflow
        let mut scratch = DecomposeScratch::new();
        assert!(scratch.decompose_with_budget(&w, c, delta, 6).is_none());
        let ok = scratch
            .decompose_with_budget(&w, c, delta, 7)
            .expect("within budget");
        assert_eq!(ok.overflow_count(), 7);
        assert_eq!(ok.assignments(), decompose(&w, c, delta).assignments());
    }

    #[test]
    fn into_scratch_recycles_storage() {
        let w = Workload::from_arrivals(vec![SimTime::ZERO; 64]);
        let d = decompose(&w, Iops::new(300.0), dms(10));
        let expected = d.assignments().to_vec();
        let mut scratch = d.into_scratch();
        assert!(scratch.assignments.capacity() >= 64, "storage kept");
        let view = scratch.decompose(&w, Iops::new(300.0), dms(10));
        assert_eq!(view.assignments(), expected.as_slice());
    }

    #[test]
    fn overflow_count_agrees_with_decompose() {
        let mut arrivals: Vec<SimTime> = (0..200).map(|i| ms(i * 4)).collect();
        arrivals.extend(vec![ms(111); 30]);
        let w = Workload::from_arrivals(arrivals);
        for c in [150.0, 400.0, 1200.0] {
            let c = Iops::new(c);
            assert_eq!(
                overflow_count(&w, c, dms(10)),
                decompose(&w, c, dms(10)).overflow_count()
            );
        }
    }

    /// Brute-force optimal decomposition for tiny workloads: try every
    /// subset as "kept", check feasibility on the slotted server, return
    /// the max kept size.
    fn brute_force_max_kept(w: &Workload, c: Iops, delta: SimDuration) -> u64 {
        let n = w.len();
        assert!(n <= 16, "brute force limited to tiny workloads");
        let service = c.service_time();
        let mut best = 0u64;
        'subsets: for mask in 0..(1u32 << n) {
            let kept = mask.count_ones() as u64;
            if kept <= best {
                continue;
            }
            // FCFS-feasibility of the kept subset (EDF == FCFS here since
            // all deadlines are arrival + delta and arrivals are ordered).
            let mut free_at = SimTime::ZERO;
            for (i, r) in w.iter().enumerate() {
                if mask & (1 << i) == 0 {
                    continue;
                }
                let start = free_at.max(r.arrival);
                let done = start + service;
                if done > r.arrival + delta {
                    continue 'subsets;
                }
                free_at = done;
            }
            best = kept;
        }
        best
    }

    #[test]
    fn rtt_is_optimal_vs_brute_force_on_crafted_cases() {
        let c = Iops::new(100.0); // 10 ms service
        let delta = dms(20); // maxQ1 = 2
        let cases: Vec<Vec<SimTime>> = vec![
            vec![ms(0); 4],
            vec![ms(0), ms(0), ms(5), ms(6), ms(30)],
            vec![ms(0), ms(1), ms(2), ms(3), ms(4), ms(5)],
            vec![ms(0), ms(25), ms(25), ms(25), ms(60), ms(60)],
            (0..10).map(|i| ms(i * 3)).collect(),
        ];
        for arrivals in cases {
            let w = Workload::from_arrivals(arrivals.clone());
            let d = decompose(&w, c, delta);
            let best = brute_force_max_kept(&w, c, delta);
            assert_eq!(
                d.primary_count(),
                best,
                "RTT suboptimal on {arrivals:?}: kept {} vs optimal {best}",
                d.primary_count()
            );
        }
    }
}
