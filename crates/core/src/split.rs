//! Split — recombination on two dedicated physical servers.
//!
//! The simplest recombination strategy: the primary class gets its own
//! server of capacity `Cmin`, the overflow class a separate server of
//! capacity `ΔC` (in the spirit of write off-loading to idle spindles).
//! Isolation is perfect, but so is the waste: when either class idles, its
//! capacity cannot help the other — which is exactly what the FairQueue and
//! Miser comparisons in Figure 6 quantify.

use std::collections::VecDeque;
use std::fmt;

use gqos_sim::{Dispatch, PolicyTag, Scheduler, ServerId, ServiceClass, TraceEvent, TraceHandle};
use gqos_trace::{Request, SimDuration, SimTime};

use crate::degrade::CapacityAdaptive;
use crate::rtt::RttClassifier;
use crate::target::Provision;

/// Index of the primary server in a Split simulation.
pub const SPLIT_PRIMARY_SERVER: ServerId = ServerId::new(0);
/// Index of the overflow server in a Split simulation.
pub const SPLIT_OVERFLOW_SERVER: ServerId = ServerId::new(1);

/// The Split scheduler: RTT decomposition onto two dedicated servers.
///
/// Build the simulation with exactly two servers: server 0 at
/// [`Provision::cmin`], server 1 at [`Provision::delta_c`].
///
/// # Examples
///
/// ```
/// use gqos_core::{SplitScheduler, Provision};
/// use gqos_sim::{FixedRateServer, Simulation};
/// use gqos_trace::{Iops, SimDuration, SimTime, Workload};
///
/// let p = Provision::new(Iops::new(200.0), Iops::new(50.0));
/// let deadline = SimDuration::from_millis(20);
/// let w = Workload::from_arrivals(vec![SimTime::ZERO; 6]);
/// let report = Simulation::new(&w, SplitScheduler::new(p, deadline))
///     .server(FixedRateServer::new(p.cmin()))
///     .server(FixedRateServer::new(p.delta_c()))
///     .run();
/// assert_eq!(report.completed(), 6);
/// ```
#[derive(Clone, Debug)]
pub struct SplitScheduler {
    rtt: RttClassifier,
    q1: VecDeque<Request>,
    q2: VecDeque<Request>,
    trace: TraceHandle,
}

impl SplitScheduler {
    /// Creates a Split scheduler; admission uses `provision.cmin()`.
    ///
    /// # Panics
    ///
    /// Panics if the RTT bound `⌊Cmin·δ⌋` is zero.
    pub fn new(provision: Provision, deadline: SimDuration) -> Self {
        SplitScheduler::with_trace(provision, deadline, TraceHandle::disabled())
    }

    /// Like [`new`](SplitScheduler::new), emitting `Admitted`/`Diverted`
    /// (with Q1 depth) and `Dispatched` (policy tag `split`) events into
    /// `trace`.
    pub fn with_trace(provision: Provision, deadline: SimDuration, trace: TraceHandle) -> Self {
        SplitScheduler {
            rtt: RttClassifier::new(provision.cmin(), deadline),
            q1: VecDeque::new(),
            q2: VecDeque::new(),
            trace,
        }
    }

    /// Queued primary requests.
    pub fn primary_pending(&self) -> usize {
        self.q1.len()
    }

    /// Queued overflow requests.
    pub fn overflow_pending(&self) -> usize {
        self.q2.len()
    }
}

impl Scheduler for SplitScheduler {
    fn on_arrival(&mut self, request: Request, now: SimTime) {
        match self.rtt.classify() {
            ServiceClass::PRIMARY => {
                self.trace.emit_with(|| TraceEvent::Admitted {
                    at: now,
                    id: request.id.index(),
                    queue_depth: self.rtt.len_q1(),
                });
                self.q1.push_back(request);
            }
            _ => {
                self.trace.emit_with(|| TraceEvent::Diverted {
                    at: now,
                    id: request.id.index(),
                    queue_depth: self.rtt.len_q1(),
                });
                self.q2.push_back(request);
            }
        }
    }

    fn next_for(&mut self, server: ServerId, now: SimTime) -> Dispatch {
        let (queue, class) = match server {
            SPLIT_PRIMARY_SERVER => (&mut self.q1, ServiceClass::PRIMARY),
            SPLIT_OVERFLOW_SERVER => (&mut self.q2, ServiceClass::OVERFLOW),
            other => panic!("Split runs on exactly two servers, got {other}"),
        };
        match queue.pop_front() {
            Some(r) => {
                self.trace.emit_with(|| TraceEvent::Dispatched {
                    at: now,
                    id: r.id.index(),
                    class: class.index(),
                    server: server.index(),
                    policy: PolicyTag::Split,
                    slack: None,
                });
                Dispatch::Serve(r, class)
            }
            None => Dispatch::Idle,
        }
    }

    fn on_completion(&mut self, _request: &Request, class: ServiceClass, _now: SimTime) {
        if class == ServiceClass::PRIMARY {
            self.rtt.primary_departed();
        }
    }

    fn pending(&self) -> usize {
        self.q1.len() + self.q2.len()
    }
}

impl CapacityAdaptive for SplitScheduler {
    /// Split has no cross-class capacity to rebalance; renegotiation only
    /// shrinks the admission bound so new arrivals shed to Q2.
    fn renegotiate(&mut self, factor: f64) {
        self.rtt.set_degradation(factor);
    }

    fn degradation_factor(&self) -> f64 {
        self.rtt.degradation()
    }

    fn primary_backlog(&self) -> u64 {
        self.q1.len() as u64
    }
}

impl fmt::Display for SplitScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Split({}, q1={}, q2={})",
            self.rtt,
            self.q1.len(),
            self.q2.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqos_sim::{FixedRateServer, Simulation};
    use gqos_trace::{Iops, Workload};

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn dms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn run(
        workload: &Workload,
        cmin: f64,
        delta_c: f64,
        deadline: SimDuration,
    ) -> gqos_sim::RunReport {
        let p = Provision::new(Iops::new(cmin), Iops::new(delta_c));
        Simulation::new(workload, SplitScheduler::new(p, deadline))
            .server(FixedRateServer::new(p.cmin()))
            .server(FixedRateServer::new(p.delta_c()))
            .run()
    }

    #[test]
    fn primary_deadlines_always_hold() {
        // Dedicated Cmin server + RTT admission = hard guarantee, any load.
        let mut arrivals = Vec::new();
        for c in 0..40u64 {
            for i in 0..((c % 9) + 1) {
                arrivals.push(ms(c * 50 + i));
            }
        }
        let w = Workload::from_arrivals(arrivals);
        let deadline = dms(20);
        let report = run(&w, 250.0, 25.0, deadline);
        let primary = report.stats_for(ServiceClass::PRIMARY);
        assert!(primary.max().unwrap() <= deadline);
        assert_eq!(report.completed(), w.len());
    }

    #[test]
    fn overflow_served_on_slow_dedicated_server() {
        // Burst of 6, room for 2 primary; overflow drains at delta_c only.
        let w = Workload::from_arrivals(vec![ms(0); 6]);
        let report = run(&w, 100.0, 50.0, dms(20));
        assert_eq!(report.completed_in(ServiceClass::PRIMARY), 2);
        assert_eq!(report.completed_in(ServiceClass::OVERFLOW), 4);
        // 4 overflow at 50 IOPS: last completes at 80 ms.
        let o = report.stats_for(ServiceClass::OVERFLOW);
        assert_eq!(o.max().unwrap(), dms(80));
    }

    #[test]
    fn capacity_is_not_shared_across_classes() {
        // Identical total capacity as a hypothetical shared server, but the
        // idle primary server cannot help the overflow backlog.
        let w = Workload::from_arrivals(vec![ms(0); 10]);
        // maxQ1 = 2, so 8 overflow at 10 IOPS: 800 ms to drain.
        let report = run(&w, 100.0, 10.0, dms(20));
        let o = report.stats_for(ServiceClass::OVERFLOW);
        assert_eq!(o.max().unwrap(), SimDuration::from_millis(800));
    }

    #[test]
    #[should_panic(expected = "exactly two servers")]
    fn rejects_third_server() {
        let p = Provision::new(Iops::new(100.0), Iops::new(10.0));
        let mut s = SplitScheduler::new(p, dms(20));
        let _ = s.next_for(ServerId::new(2), ms(0));
    }

    #[test]
    fn pending_counts_both_queues() {
        let p = Provision::new(Iops::new(100.0), Iops::new(10.0));
        let mut s = SplitScheduler::new(p, dms(20)); // maxQ1 = 2
        for _ in 0..5 {
            s.on_arrival(Request::at(ms(0)), ms(0));
        }
        assert_eq!(s.primary_pending(), 2);
        assert_eq!(s.overflow_pending(), 3);
        assert_eq!(s.pending(), 5);
        assert!(s.to_string().contains("Split("));
    }
}
