//! Graduated multi-class serving at runtime.
//!
//! [`CascadeDecomposer`](crate::CascadeDecomposer) analyses how a workload
//! splits across more than two classes; this module *serves* such a split:
//! per-level RTT admission (tightest class first, spilling downwards), with
//! the levels multiplexed on one shared server through start-time fair
//! queueing weighted by the level capacities.
//!
//! The guarantee argument mirrors the two-class FairQueue case, level by
//! level. Fair queueing guarantees level `i` a service rate of at least
//! `C_i` while it is backlogged (its weight share of `ΣC_j + ΔC` exceeds
//! `C_i`), and RTT admission caps its pending count at `⌊C_i·δ_i⌋` — so an
//! admitted level-`i` request finishes within `⌊C_i·δ_i⌋ / C_i ≤ δ_i`, up
//! to interleaving granularity, which the surplus `ΔC` absorbs exactly as
//! in the paper's two-class analysis. Strict priority would *not* work
//! here: a saturated tight level would drain at full server speed, admit
//! far beyond its budget, and starve the looser guaranteed levels.

use std::fmt;

use gqos_fairqueue::{FlowId, FlowScheduler, Sfq};
use gqos_sim::{Dispatch, Scheduler, ServerId, ServiceClass};
#[cfg(test)]
use gqos_trace::SimDuration;
use gqos_trace::{Iops, Request, SimTime};

use crate::cascade::CascadeLevel;

/// An RTT-admission scheduler over a cascade of guaranteed levels plus a
/// trailing best-effort class, multiplexed by capacity-weighted fair
/// queueing.
///
/// Class `i` (for `i < levels`) completes under `ServiceClass::new(i)`;
/// spill-through requests complete under `ServiceClass::new(levels)`.
/// Pair it with a server of capacity [`required_capacity`] or more.
///
/// [`required_capacity`]: GraduatedScheduler::required_capacity
///
/// # Examples
///
/// ```
/// use gqos_core::{CascadeLevel, GraduatedScheduler};
/// use gqos_sim::{simulate, FixedRateServer, ServiceClass};
/// use gqos_trace::{Iops, SimDuration, SimTime, Workload};
///
/// let levels = vec![
///     CascadeLevel { capacity: Iops::new(200.0), deadline: SimDuration::from_millis(10) },
///     CascadeLevel { capacity: Iops::new(100.0), deadline: SimDuration::from_millis(50) },
/// ];
/// let scheduler = GraduatedScheduler::new(levels);
/// let capacity = scheduler.required_capacity();
/// let w = Workload::from_arrivals(vec![SimTime::ZERO; 10]);
/// let report = simulate(&w, scheduler, FixedRateServer::new(capacity));
/// // 2 requests in the 10 ms class, 5 in the 50 ms class, 3 best effort.
/// assert_eq!(report.completed_in(ServiceClass::new(0)), 2);
/// assert_eq!(report.completed_in(ServiceClass::new(1)), 5);
/// assert_eq!(report.completed_in(ServiceClass::new(2)), 3);
/// ```
#[derive(Clone, Debug)]
pub struct GraduatedScheduler {
    levels: Vec<LevelState>,
    /// One flow per guaranteed level plus a trailing best-effort flow.
    flows: Sfq,
}

#[derive(Clone, Debug)]
struct LevelState {
    level: CascadeLevel,
    max_q: u64,
    pending: u64, // queued + in service
}

impl GraduatedScheduler {
    /// Creates a scheduler over levels ordered by strictly increasing
    /// deadline.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or exceeds 254 entries, deadlines are
    /// not strictly increasing, or any level's `⌊C·δ⌋` is zero.
    pub fn new(levels: Vec<CascadeLevel>) -> Self {
        assert!(!levels.is_empty(), "cascade needs at least one level");
        assert!(levels.len() <= 254, "at most 254 levels (class encoding)");
        for pair in levels.windows(2) {
            assert!(
                pair[0].deadline < pair[1].deadline,
                "cascade deadlines must be strictly increasing"
            );
        }
        let levels: Vec<LevelState> = levels
            .into_iter()
            .enumerate()
            .map(|(i, level)| {
                let max_q = level.capacity.requests_within(level.deadline);
                assert!(max_q >= 1, "level {i} admits no requests (C x delta < 1)");
                LevelState {
                    level,
                    max_q,
                    pending: 0,
                }
            })
            .collect();
        let mut weights: Vec<f64> = levels.iter().map(|l| l.level.capacity.get()).collect();
        // The best-effort flow gets the surplus 1/δ_last weight.
        let last = levels.last().expect("non-empty cascade");
        weights.push(1.0 / last.level.deadline.as_secs_f64());
        GraduatedScheduler {
            levels,
            flows: Sfq::new(&weights),
        }
    }

    /// Number of guaranteed levels (the best-effort class is one more).
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// The configured level `i`.
    pub fn level(&self, i: usize) -> CascadeLevel {
        self.levels[i].level
    }

    /// The capacity the guarantee argument needs: the sum of the level
    /// capacities plus the surplus `1/δ_last` (one extra request per the
    /// loosest window, covering non-preemptible residue and feeding the
    /// best-effort class).
    pub fn required_capacity(&self) -> Iops {
        let sum: f64 = self.levels.iter().map(|l| l.level.capacity.get()).sum();
        let last = self.levels.last().expect("non-empty cascade");
        Iops::new(sum + 1.0 / last.level.deadline.as_secs_f64())
    }

    /// Queued requests at guaranteed level `i`.
    pub fn level_pending(&self, i: usize) -> usize {
        assert!(i < self.levels.len(), "no such level");
        self.flows.flow_len(FlowId::new(i))
    }

    /// Queued best-effort requests.
    pub fn best_effort_pending(&self) -> usize {
        self.flows.flow_len(FlowId::new(self.levels.len()))
    }
}

impl Scheduler for GraduatedScheduler {
    fn on_arrival(&mut self, request: Request, _now: SimTime) {
        for (i, state) in self.levels.iter_mut().enumerate() {
            if state.pending < state.max_q {
                state.pending += 1;
                self.flows.enqueue(FlowId::new(i), request);
                return;
            }
        }
        self.flows.enqueue(FlowId::new(self.levels.len()), request);
    }

    fn next_for(&mut self, _server: ServerId, _now: SimTime) -> Dispatch {
        match self.flows.dequeue() {
            Some((flow, r)) => Dispatch::Serve(r, ServiceClass::new(flow.index() as u8)),
            None => Dispatch::Idle,
        }
    }

    fn on_completion(&mut self, _request: &Request, class: ServiceClass, _now: SimTime) {
        let i = class.index() as usize;
        if i < self.levels.len() {
            let state = &mut self.levels[i];
            debug_assert!(state.pending > 0);
            state.pending -= 1;
        }
    }

    fn pending(&self) -> usize {
        self.flows.len()
    }
}

impl fmt::Display for GraduatedScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "graduated scheduler ({} levels + best effort, {} pending)",
            self.levels.len(),
            self.pending()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqos_sim::{simulate, FixedRateServer, RunReport};
    use gqos_trace::Workload;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn dms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn lvl(c: f64, deadline_ms: u64) -> CascadeLevel {
        CascadeLevel {
            capacity: Iops::new(c),
            deadline: dms(deadline_ms),
        }
    }

    fn run(w: &Workload, levels: Vec<CascadeLevel>) -> RunReport {
        let s = GraduatedScheduler::new(levels);
        let c = s.required_capacity();
        simulate(w, s, FixedRateServer::new(c))
    }

    #[test]
    fn burst_spills_through_levels_like_the_decomposer() {
        let levels = vec![lvl(300.0, 10), lvl(100.0, 50), lvl(50.0, 200)];
        let w = Workload::from_arrivals(vec![SimTime::ZERO; 20]);
        let report = run(&w, levels.clone());
        // Same counts the offline CascadeDecomposer predicts: 3, 5, 10, 2.
        assert_eq!(report.completed_in(ServiceClass::new(0)), 3);
        assert_eq!(report.completed_in(ServiceClass::new(1)), 5);
        assert_eq!(report.completed_in(ServiceClass::new(2)), 10);
        assert_eq!(report.completed_in(ServiceClass::new(3)), 2);
        let offline = crate::CascadeDecomposer::new(levels).decompose(&w);
        assert_eq!(offline.count_of(0), 3);
        assert_eq!(offline.count_of(3), 2);
    }

    #[test]
    fn every_guaranteed_level_meets_its_own_deadline() {
        // An adversarial pattern of repeating deep bursts.
        let mut arrivals = Vec::new();
        for c in 0..60u64 {
            let depth = 3 + (c % 11);
            for i in 0..depth {
                arrivals.push(ms(c * 80 + i % 2));
            }
        }
        let w = Workload::from_arrivals(arrivals);
        let levels = vec![lvl(250.0, 10), lvl(120.0, 50), lvl(60.0, 200)];
        let report = run(&w, levels.clone());
        assert_eq!(report.completed(), w.len());
        for (i, level) in levels.iter().enumerate() {
            let stats = report.stats_for(ServiceClass::new(i as u8));
            if let Some(max) = stats.max() {
                assert!(
                    max <= level.deadline,
                    "level {i} missed: max {} > {}",
                    max,
                    level.deadline
                );
            }
        }
    }

    #[test]
    fn calm_traffic_stays_in_the_top_class() {
        let w = Workload::from_arrivals((0..100).map(|i| ms(i * 20)));
        let report = run(&w, vec![lvl(200.0, 10), lvl(50.0, 100)]);
        assert_eq!(report.completed_in(ServiceClass::new(0)), 100);
        assert_eq!(report.completed_in(ServiceClass::new(1)), 0);
    }

    #[test]
    fn best_effort_is_served_work_conservingly() {
        // A burst whose tail lands in best effort still completes quickly
        // once the guaranteed queues drain.
        let w = Workload::from_arrivals(vec![SimTime::ZERO; 30]);
        let report = run(&w, vec![lvl(200.0, 10), lvl(100.0, 50)]);
        assert_eq!(report.completed(), 30);
        let be = report.stats_for(ServiceClass::new(2));
        assert!(!be.is_empty());
        assert!(be.max().unwrap() < SimDuration::from_secs(1));
    }

    #[test]
    fn accessors_and_display() {
        let s = GraduatedScheduler::new(vec![lvl(200.0, 10), lvl(100.0, 50)]);
        assert_eq!(s.levels(), 2);
        assert_eq!(s.level(0).deadline, dms(10));
        assert_eq!(s.level_pending(0), 0);
        assert_eq!(s.best_effort_pending(), 0);
        // 300 + 1/0.05 = 320.
        assert!((s.required_capacity().get() - 320.0).abs() < 1e-9);
        assert!(s.to_string().contains("2 levels"));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unordered_levels_rejected() {
        let _ = GraduatedScheduler::new(vec![lvl(100.0, 50), lvl(100.0, 10)]);
    }

    #[test]
    #[should_panic(expected = "admits no requests")]
    fn degenerate_level_rejected() {
        let _ = GraduatedScheduler::new(vec![lvl(10.0, 10)]);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_cascade_rejected() {
        let _ = GraduatedScheduler::new(vec![]);
    }
}
