//! QoS targets and provisioned capacities.

use std::fmt;

use gqos_trace::{Iops, SimDuration};

/// A graduated QoS target: a fraction `f` of the workload must complete
/// within the response-time bound `δ`.
///
/// The paper's SLAs are pairs like *(90%, 10 ms)*: at least 90% of requests
/// finish within 10 ms, the rest are served best-effort.
///
/// # Examples
///
/// ```
/// use gqos_core::QosTarget;
/// use gqos_trace::SimDuration;
///
/// let target = QosTarget::new(0.90, SimDuration::from_millis(10));
/// assert_eq!(target.fraction(), 0.90);
/// ```
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct QosTarget {
    fraction: f64,
    deadline: SimDuration,
}

impl QosTarget {
    /// Creates a target guaranteeing `fraction` of requests within
    /// `deadline`.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]` or `deadline` is zero.
    pub fn new(fraction: f64, deadline: SimDuration) -> Self {
        assert!(
            fraction.is_finite() && fraction > 0.0 && fraction <= 1.0,
            "guaranteed fraction must be in (0, 1]: {fraction}"
        );
        assert!(!deadline.is_zero(), "deadline must be positive");
        QosTarget { fraction, deadline }
    }

    /// A full guarantee: 100% of requests within `deadline` (the
    /// traditional, burst-dominated provisioning the paper improves on).
    pub fn full(deadline: SimDuration) -> Self {
        QosTarget::new(1.0, deadline)
    }

    /// The guaranteed fraction in `(0, 1]`.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }

    /// The response-time bound δ.
    pub fn deadline(&self) -> SimDuration {
        self.deadline
    }

    /// `true` if this target covers the whole workload.
    pub fn is_full(&self) -> bool {
        self.fraction >= 1.0
    }
}

impl fmt::Display for QosTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2}% within {:.1} ms",
            self.fraction * 100.0,
            self.deadline.as_millis_f64()
        )
    }
}

/// A provisioned capacity: the primary reservation `Cmin` plus the surplus
/// `ΔC` that keeps the overflow class from starving.
///
/// The paper provisions `Cmin + ΔC` with `ΔC = 1/δ` by default, and proves
/// Miser can never cause a primary miss when `ΔC = Cmin`.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct Provision {
    cmin: Iops,
    delta_c: Iops,
}

impl Provision {
    /// Creates a provision from its two components.
    pub fn new(cmin: Iops, delta_c: Iops) -> Self {
        Provision { cmin, delta_c }
    }

    /// The paper's default surplus for a deadline δ: `ΔC = 1/δ` (one extra
    /// request per deadline window).
    pub fn with_default_surplus(cmin: Iops, deadline: SimDuration) -> Self {
        let delta = Iops::new(1.0 / deadline.as_secs_f64());
        Provision::new(cmin, delta)
    }

    /// The primary-class reservation.
    pub fn cmin(&self) -> Iops {
        self.cmin
    }

    /// The overflow surplus.
    pub fn delta_c(&self) -> Iops {
        self.delta_c
    }

    /// The total capacity `Cmin + ΔC`.
    pub fn total(&self) -> Iops {
        Iops::new(self.cmin.get() + self.delta_c.get())
    }

    /// Weights for proportional sharing in the ratio `Cmin : ΔC`.
    pub fn weights(&self) -> [f64; 2] {
        [self.cmin.get(), self.delta_c.get()]
    }
}

impl fmt::Display for Provision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}+{:.0} IOPS", self.cmin.get(), self.delta_c.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_accessors() {
        let t = QosTarget::new(0.99, SimDuration::from_millis(50));
        assert_eq!(t.fraction(), 0.99);
        assert_eq!(t.deadline(), SimDuration::from_millis(50));
        assert!(!t.is_full());
        assert!(QosTarget::full(SimDuration::from_millis(5)).is_full());
    }

    #[test]
    fn target_display() {
        let t = QosTarget::new(0.9, SimDuration::from_millis(10));
        assert_eq!(t.to_string(), "90.00% within 10.0 ms");
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn zero_fraction_rejected() {
        let _ = QosTarget::new(0.0, SimDuration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn fraction_above_one_rejected() {
        let _ = QosTarget::new(1.5, SimDuration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn zero_deadline_rejected() {
        let _ = QosTarget::new(0.5, SimDuration::ZERO);
    }

    #[test]
    fn provision_totals_and_weights() {
        let p = Provision::new(Iops::new(400.0), Iops::new(100.0));
        assert_eq!(p.total().get(), 500.0);
        assert_eq!(p.weights(), [400.0, 100.0]);
        assert_eq!(p.cmin().get(), 400.0);
        assert_eq!(p.delta_c().get(), 100.0);
        assert_eq!(p.to_string(), "400+100 IOPS");
    }

    #[test]
    fn default_surplus_is_inverse_deadline() {
        // δ = 50 ms -> ΔC = 20 IOPS, matching the paper's Figure 6 setup.
        let p = Provision::with_default_surplus(Iops::new(328.0), SimDuration::from_millis(50));
        assert!((p.delta_c().get() - 20.0).abs() < 1e-9);
        // δ = 10 ms -> ΔC = 100 IOPS.
        let p = Provision::with_default_surplus(Iops::new(410.0), SimDuration::from_millis(10));
        assert!((p.delta_c().get() - 100.0).abs() < 1e-9);
    }
}
