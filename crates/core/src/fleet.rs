//! Fleet-scale placement: packing thousands of tenants onto simulated
//! servers with the capacity planner as the costing kernel.
//!
//! The paper prices one tenant (or one co-located set) at a time; the
//! ROADMAP's north star is millions of users. A naive bin-packer would
//! call [`CapacityPlanner::min_capacity`] `O(tenants × servers × sweep)`
//! times — minutes for a thousand tenants. This module makes fleet
//! placement sub-second with three ingredients:
//!
//! 1. **[`QuoteCache`]** — each tenant's standalone overflow curve is
//!    computed once over the doubling [`SeedCurve`] grid and its
//!    `Cmin(f, δ)` quotes are memoized by `(epoch, f)`; a quote is
//!    invalidated only when the tenant's workload or SLA changes (the
//!    epoch bumps). Cached quotes are **bit-identical** to the cold
//!    planner's: both are the unique minimal integer capacity meeting the
//!    miss budget, and every probe answers the same exact feasibility
//!    question.
//! 2. **Incremental consolidation ([`ServerBin`])** — each server keeps
//!    its residents' *merged* arrival column; "tenant T joins server S"
//!    is a zero-allocation feasibility probe streamed over the two sorted
//!    columns ([`merged_within_budget`]), and committing an add/remove is
//!    a linear multiset merge/subtract that marks the cached consolidated
//!    quote stale; the next quote read re-resolves it by a bisection
//!    warm-started from the previous value, so a burst of commits pays
//!    for one search, not one per commit. Equal arrival instants are
//!    interchangeable to the admit kernel, so the delta-maintained column
//!    equals the from-scratch merge element for element — the lazily
//!    re-resolved quote is exactly the cold quote (enforced by the
//!    `fleet_props` differential suite).
//! 3. **[`FleetPlacer`]** — a first-fit-decreasing packer with *bin
//!    retirement*: tenants are offered to the open bins in server-index
//!    order, and an occupied bin that rejects a tenant ahead of the
//!    chosen one is closed to the rest of the pass. A whole pack
//!    therefore issues at most `tenants + servers` decisive probes
//!    instead of `tenants × servers`. Probes run as a serial scout on
//!    the front candidate plus fixed-width rounds fanned out over a
//!    [`WorkerPool`]; widths, candidate order, and positional assembly
//!    are all independent of the pool, so placements are byte-identical
//!    across 1/2/4/8 threads.
//!    [`replan_degraded`](FleetPlacer::replan_degraded) re-places only
//!    the affected server's tenants when a
//!    [`DegradationController`](crate::DegradationController) drops a
//!    rung.
//!
//! # Examples
//!
//! ```
//! use gqos_core::{FleetPlacer, FleetTenant, QosTarget, QuoteCache, TenantId};
//! use gqos_parallel::WorkerPool;
//! use gqos_trace::{Iops, SimDuration, SimTime, Workload};
//!
//! let deadline = SimDuration::from_millis(10);
//! let tenants: Vec<FleetTenant> = (0..6)
//!     .map(|i| {
//!         let w = Workload::from_arrivals(vec![SimTime::from_millis(100 * i); 4]);
//!         FleetTenant::new(TenantId::new(i as usize), w)
//!     })
//!     .collect();
//! let placer = FleetPlacer::new(QosTarget::new(0.9, deadline), Iops::new(900.0));
//! let mut cache = QuoteCache::new(deadline);
//! let pool = WorkerPool::new(4);
//! let placement = placer.pack(&tenants, 4, &mut cache, &pool).unwrap();
//! assert!(placement.unplaced().is_empty());
//! assert!(placement.servers_used() <= 4);
//! ```

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use gqos_parallel::WorkerPool;
use gqos_trace::{Iops, SimDuration, Workload};

use crate::kernel::{merged_within_budget, within_miss_budget_ns};
use crate::planner::{capacity_floor, miss_budget, resolve_cmin_ns, CapacityPlanner, SeedCurve};
use crate::target::QosTarget;
use crate::tenant::TenantId;

/// A fleet placement request was impossible or malformed.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum FleetError {
    /// The fleet has zero servers: nothing can be placed.
    NoServers,
    /// The quote cache was built for a different deadline than the
    /// placer's target — its memoized quotes would answer the wrong
    /// question.
    DeadlineMismatch {
        /// The cache's deadline.
        cache: SimDuration,
        /// The placer's target deadline.
        target: SimDuration,
    },
    /// A replan named a server index outside the placement.
    UnknownServer {
        /// The offending server index.
        node: usize,
        /// The number of servers in the placement.
        servers: usize,
    },
    /// A degradation factor outside `(0, 1]`.
    BadFactor {
        /// The offending factor.
        value: f64,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FleetError::NoServers => f.write_str("fleet placement requires at least one server"),
            FleetError::DeadlineMismatch { cache, target } => write!(
                f,
                "quote cache deadline {cache} differs from target deadline {target}"
            ),
            FleetError::UnknownServer { node, servers } => {
                write!(f, "server {node} out of range (fleet has {servers})")
            }
            FleetError::BadFactor { value } => {
                write!(f, "degradation factor must be in (0, 1]: got {value}")
            }
        }
    }
}

impl Error for FleetError {}

/// One tenant of the fleet: an identity, its workload profile, and an
/// **epoch** that advances whenever the workload or SLA changes.
///
/// The epoch is the [`QuoteCache`]'s invalidation contract: cached curves
/// and quotes are keyed by `(tenant, epoch)`, so a stale epoch can never
/// answer for a changed workload, and an unchanged tenant is never
/// re-planned.
#[derive(Clone, Debug)]
pub struct FleetTenant {
    id: TenantId,
    workload: Workload,
    epoch: u64,
}

impl FleetTenant {
    /// Creates a tenant at epoch 0. Fleet operations assume ids are
    /// unique within one fleet.
    pub fn new(id: TenantId, workload: Workload) -> Self {
        FleetTenant {
            id,
            workload,
            epoch: 0,
        }
    }

    /// Creates a tenant at an explicit `epoch` — the re-admission path:
    /// a control plane re-adding a previously removed tenant must resume
    /// at its last fenced epoch (or later) so stale retried commands and
    /// stale cached quotes from the earlier incarnation stay dead.
    pub fn with_epoch(id: TenantId, workload: Workload, epoch: u64) -> Self {
        FleetTenant {
            id,
            workload,
            epoch,
        }
    }

    /// The tenant's identity.
    pub fn id(&self) -> TenantId {
        self.id
    }

    /// The tenant's workload profile.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The invalidation epoch: bumped by every workload or SLA change.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Replaces the workload profile and advances the epoch, invalidating
    /// every cached curve and quote for this tenant.
    pub fn set_workload(&mut self, workload: Workload) {
        self.workload = workload;
        self.epoch += 1;
    }

    /// Advances the epoch without touching the workload — the hook for
    /// SLA changes tracked outside the profile.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// The tenant's sorted arrival column in nanoseconds.
    fn col(&self) -> &[u64] {
        self.workload.arrival_column().nanos()
    }
}

/// Per-tenant seed curve and `Cmin(f, δ)` quote memo keyed by
/// `(tenant epoch, f)`, at one fixed deadline `δ`.
///
/// The first quote for a tenant builds its [`SeedCurve`] (one fused
/// overflow pass over the doubling grid) and resolves the bracket by wide
/// bisection; every further fraction reuses the curve, and repeat
/// fractions return the memoized integer with no probe at all. A quote is
/// invalidated **only** by an epoch bump ([`FleetTenant::set_workload`] /
/// [`FleetTenant::bump_epoch`]) — the cache compares epochs on every
/// access and rebuilds the entry when they differ.
///
/// Cached quotes are bit-identical to the cold
/// [`CapacityPlanner::min_capacity`]: both paths return the unique
/// minimal integer capacity whose overflow count meets the miss budget.
#[derive(Clone, Debug)]
pub struct QuoteCache {
    deadline: SimDuration,
    entries: BTreeMap<TenantId, CacheEntry>,
    hits: u64,
    misses: u64,
}

#[derive(Clone, Debug)]
struct CacheEntry {
    epoch: u64,
    seed: SeedCurve,
    /// `fraction.to_bits() → Cmin` — exact-bits keying, so two fractions
    /// compare equal iff the planner would treat them identically.
    quotes: BTreeMap<u64, u64>,
}

impl QuoteCache {
    /// An empty cache for quotes at `deadline`.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero.
    pub fn new(deadline: SimDuration) -> Self {
        assert!(!deadline.is_zero(), "deadline must be positive");
        QuoteCache {
            deadline,
            entries: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The deadline all quotes answer for.
    pub fn deadline(&self) -> SimDuration {
        self.deadline
    }

    /// `Cmin(fraction, δ)` for the tenant — memoized, epoch-checked, and
    /// bit-identical to [`CapacityPlanner::min_capacity`].
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]`.
    pub fn quote(&mut self, tenant: &FleetTenant, fraction: f64) -> Iops {
        Iops::new(self.quote_int(tenant, fraction) as f64)
    }

    /// [`quote`](Self::quote) as the raw integer IOPS the searches work
    /// in.
    pub fn quote_int(&mut self, tenant: &FleetTenant, fraction: f64) -> u64 {
        assert!(
            fraction.is_finite() && fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]: {fraction}"
        );
        let deadline = self.deadline;
        let entry = self
            .entries
            .entry(tenant.id)
            .and_modify(|e| {
                if e.epoch != tenant.epoch {
                    // Epoch moved: every cached curve and quote is stale.
                    e.epoch = tenant.epoch;
                    e.seed = SeedCurve::new(&tenant.workload, deadline);
                    e.quotes.clear();
                }
            })
            .or_insert_with(|| CacheEntry {
                epoch: tenant.epoch,
                seed: SeedCurve::new(&tenant.workload, deadline),
                quotes: BTreeMap::new(),
            });
        if let Some(&cmin) = entry.quotes.get(&fraction.to_bits()) {
            self.hits += 1;
            return cmin;
        }
        self.misses += 1;
        let budget = miss_budget(tenant.workload.len() as u64, fraction);
        let (lo, hi) = entry.seed.bracket(budget);
        let cmin = match lo {
            // The domain floor meets the budget: it is Cmin by minimality.
            None => hi,
            Some(lo) => resolve_cmin_ns(tenant.col(), deadline, budget, lo, hi),
        };
        entry.quotes.insert(fraction.to_bits(), cmin);
        cmin
    }

    /// Prefills the cache for every tenant whose `(epoch, fraction)`
    /// quote is missing, fanning the independent cold searches out over
    /// `pool`. The resulting memo (and every later
    /// [`quote_int`](Self::quote_int)) is identical for any pool width —
    /// each per-tenant search is self-contained and lands in its own
    /// entry. Each computed quote counts as one miss, exactly as if it
    /// had been demanded serially.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]`.
    pub fn warm_batch(&mut self, tenants: &[FleetTenant], fraction: f64, pool: &WorkerPool) {
        assert!(
            fraction.is_finite() && fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]: {fraction}"
        );
        let deadline = self.deadline;
        let missing: Vec<&FleetTenant> = tenants
            .iter()
            .filter(|t| match self.entries.get(&t.id) {
                Some(e) => e.epoch != t.epoch || !e.quotes.contains_key(&fraction.to_bits()),
                None => true,
            })
            .collect();
        let computed = pool.map(missing, |t| {
            let seed = SeedCurve::new(&t.workload, deadline);
            let budget = miss_budget(t.workload.len() as u64, fraction);
            let cmin = match seed.bracket(budget) {
                (None, hi) => hi,
                (Some(lo), hi) => resolve_cmin_ns(t.col(), deadline, budget, lo, hi),
            };
            (t.id, t.epoch, seed, cmin)
        });
        for (id, epoch, seed, cmin) in computed {
            self.misses += 1;
            match self.entries.get_mut(&id) {
                // Same epoch: keep the entry's other memoized fractions.
                Some(e) if e.epoch == epoch => {
                    e.quotes.insert(fraction.to_bits(), cmin);
                }
                _ => {
                    let mut quotes = BTreeMap::new();
                    quotes.insert(fraction.to_bits(), cmin);
                    self.entries.insert(
                        id,
                        CacheEntry {
                            epoch,
                            seed,
                            quotes,
                        },
                    );
                }
            }
        }
    }

    /// Drops a tenant's entry outright (e.g. the tenant left the fleet).
    pub fn invalidate(&mut self, id: TenantId) {
        self.entries.remove(&id);
    }

    /// Number of tenants with a cached entry.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no tenant has been quoted yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Memo hits since construction (quotes answered with zero probes).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Memo misses since construction (quotes that ran a bisection).
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// One server's resident set: the merged arrival column of its tenants
/// and the cached consolidated quote, maintained incrementally.
///
/// Adding or removing one tenant never re-concatenates the co-located
/// workloads: the column is updated by a linear two-pointer multiset
/// merge/subtract, which marks the cached quote **stale** instead of
/// re-searching on the spot. The next quote read re-resolves it by a
/// bisection **warm-started** from the previous value — so a pack that
/// commits fifteen tenants to a bin pays for one consolidated search,
/// not fifteen. The warm walk brackets in *both* directions — at `f < 1`
/// adding arrivals also grows the miss budget, so the consolidated quote
/// may legitimately decrease. Feasibility is monotone in capacity for
/// any fixed column, so the warm-started search returns the same unique
/// minimal integer as a cold search (pinned by `fleet_props`).
///
/// The quote cell is atomic so a bin stays `Sync` while parallel admit
/// probes hold shared references; a racing re-resolve is benign because
/// every thread computes the identical minimal integer.
#[derive(Debug)]
pub struct ServerBin {
    target: QosTarget,
    col: Vec<u64>,
    members: Vec<TenantId>,
    /// Last resolved consolidated quote; serves as the warm hint while
    /// `stale` is set.
    quote: AtomicU64,
    /// Set by [`add`](Self::add)/[`remove`](Self::remove), cleared by the
    /// next quote read.
    stale: AtomicBool,
}

impl Clone for ServerBin {
    fn clone(&self) -> Self {
        ServerBin {
            target: self.target,
            col: self.col.clone(),
            members: self.members.clone(),
            quote: AtomicU64::new(self.quote.load(Ordering::Relaxed)),
            stale: AtomicBool::new(self.stale.load(Ordering::Relaxed)),
        }
    }
}

impl ServerBin {
    /// An empty bin for `target`; its quote is the domain floor `⌈1/δ⌉`.
    pub fn new(target: QosTarget) -> Self {
        ServerBin {
            target,
            col: Vec::new(),
            members: Vec::new(),
            quote: AtomicU64::new(capacity_floor(target.deadline())),
            stale: AtomicBool::new(false),
        }
    }

    /// The QoS target every resident is consolidated under.
    pub fn target(&self) -> QosTarget {
        self.target
    }

    /// Resident tenant ids, ascending.
    pub fn members(&self) -> &[TenantId] {
        &self.members
    }

    /// Total resident arrivals.
    pub fn len(&self) -> usize {
        self.col.len()
    }

    /// `true` when no tenant is resident.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The merged resident arrival column (sorted nanoseconds).
    pub fn arrivals(&self) -> &[u64] {
        &self.col
    }

    /// The cached consolidated quote: `Cmin(f, δ)` of the merged resident
    /// column — identical to cold-planning the merged workload. If
    /// commits have made the cached value stale, this re-resolves it
    /// first (bisection warm-started from the stale value) and stores the
    /// result, so repeated reads are free.
    pub fn quote(&self) -> Iops {
        Iops::new(self.quote_int() as f64)
    }

    /// [`quote`](Self::quote) as raw integer IOPS.
    pub fn quote_int(&self) -> u64 {
        // Acquire pairs with the Release in `resolve`/`add`/`remove`: a
        // clean flag guarantees the matching quote store is visible.
        if !self.stale.load(Ordering::Acquire) {
            return self.quote.load(Ordering::Relaxed);
        }
        let hint = self.quote.load(Ordering::Relaxed);
        let fresh = hinted_cmin(
            &self.col,
            self.target.deadline(),
            miss_budget(self.col.len() as u64, self.target.fraction()),
            Some(hint),
        );
        self.quote.store(fresh, Ordering::Relaxed);
        self.stale.store(false, Ordering::Release);
        fresh
    }

    /// Would admitting a tenant with column `tenant_col` keep the
    /// consolidated quote within `capacity`? One allocation-free budget
    /// probe streamed over the two sorted columns — the column is never
    /// materialised and the scan aborts as soon as the budget busts.
    pub fn admits(&self, tenant_col: &[u64], capacity: Iops) -> bool {
        let total = (self.col.len() + tenant_col.len()) as u64;
        let budget = miss_budget(total, self.target.fraction());
        merged_within_budget(
            &self.col,
            tenant_col,
            capacity,
            self.target.deadline(),
            budget,
        )
    }

    /// Commits a tenant: linear multiset merge of the columns; the cached
    /// quote is marked stale and re-resolved lazily on the next read.
    pub fn add(&mut self, id: TenantId, tenant_col: &[u64]) {
        let mut merged = Vec::with_capacity(self.col.len() + tenant_col.len());
        let (mut i, mut j) = (0, 0);
        while i < self.col.len() && j < tenant_col.len() {
            if self.col[i] <= tenant_col[j] {
                merged.push(self.col[i]);
                i += 1;
            } else {
                merged.push(tenant_col[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&self.col[i..]);
        merged.extend_from_slice(&tenant_col[j..]);
        self.col = merged;
        let at = self.members.partition_point(|&m| m < id);
        self.members.insert(at, id);
        self.stale.store(true, Ordering::Release);
    }

    /// Removes a resident tenant: multiset-subtracts its column (each of
    /// the tenant's arrival values is removed once) and marks the quote
    /// stale for lazy re-resolution. Returns `false` if the tenant was
    /// not resident.
    pub fn remove(&mut self, id: TenantId, tenant_col: &[u64]) -> bool {
        let Ok(at) = self.members.binary_search(&id) else {
            return false;
        };
        self.members.remove(at);
        let mut kept = Vec::with_capacity(self.col.len() - tenant_col.len());
        let mut j = 0;
        for &v in &self.col {
            if j < tenant_col.len() && v == tenant_col[j] {
                j += 1;
            } else {
                kept.push(v);
            }
        }
        debug_assert_eq!(j, tenant_col.len(), "tenant column was not a subset");
        self.col = kept;
        self.stale.store(true, Ordering::Release);
        true
    }
}

/// Warm-started exact `Cmin` search over a raw column: establishes a
/// `(failing lo, meeting hi]` bracket by geometric walk from `hint`
/// (downward when the hint meets, upward when it fails — the consolidated
/// quote can move either way under an add at `f < 1`), then resolves it
/// by wide bisection. Returns the same unique minimal integer capacity as
/// a cold search from the floor; the hint only changes how fast the
/// bracket is found.
fn hinted_cmin(col: &[u64], deadline: SimDuration, budget: u64, hint: Option<u64>) -> u64 {
    let floor = capacity_floor(deadline);
    if col.is_empty() {
        return floor;
    }
    let meets = |c: u64| within_miss_budget_ns(col, Iops::new(c as f64), deadline, budget);
    if meets(floor) {
        return floor;
    }
    let start = hint.unwrap_or(floor).max(floor);
    let mut step = 1u64;
    let (lo, hi) = if start > floor && meets(start) {
        // Hint meets: walk down geometrically until a capacity fails.
        let mut hi = start;
        loop {
            let cand = start.saturating_sub(step).max(floor);
            if meets(cand) {
                hi = cand;
            } else {
                break (cand, hi);
            }
            step = step.saturating_mul(2);
        }
    } else {
        // Hint fails (or is the failing floor): walk up by doubling.
        let mut lo = start;
        loop {
            let cand = start.checked_add(step).expect("capacity search overflow");
            if meets(cand) {
                break (lo, cand);
            }
            lo = cand;
            step = step.checked_mul(2).expect("capacity search overflow");
        }
    };
    resolve_cmin_ns(col, deadline, budget, lo, hi)
}

/// Deterministic counters of one pack or replan: no wall-clock, so
/// experiment output built from them is byte-identical across runs and
/// thread counts.
#[derive(Copy, Clone, Default, PartialEq, Eq, Debug)]
pub struct PackStats {
    /// Candidate feasibility probes issued against bins.
    pub probes: u64,
    /// Tenants placed onto a server.
    pub placed: u64,
    /// Tenants that fit on no server.
    pub unplaced: u64,
    /// Quote-cache memo hits observed during the operation.
    pub cache_hits: u64,
    /// Quote-cache memo misses observed during the operation.
    pub cache_misses: u64,
}

/// A fleet assignment: per-server bins, the tenant → server map, and the
/// tenants nothing could host.
#[derive(Clone, Debug)]
pub struct Placement {
    target: QosTarget,
    capacity: u64,
    bins: Vec<ServerBin>,
    factors: Vec<f64>,
    down: Vec<bool>,
    assignment: BTreeMap<TenantId, usize>,
    unplaced: Vec<TenantId>,
    stats: PackStats,
}

impl Placement {
    fn new(target: QosTarget, capacity: u64, servers: usize) -> Self {
        Placement {
            target,
            capacity,
            bins: (0..servers).map(|_| ServerBin::new(target)).collect(),
            factors: vec![1.0; servers],
            down: vec![false; servers],
            assignment: BTreeMap::new(),
            unplaced: Vec::new(),
            stats: PackStats::default(),
        }
    }

    /// The QoS target the fleet is packed under.
    pub fn target(&self) -> QosTarget {
        self.target
    }

    /// Total servers in the fleet (used or not).
    pub fn servers(&self) -> usize {
        self.bins.len()
    }

    /// Servers hosting at least one tenant.
    pub fn servers_used(&self) -> usize {
        self.bins.iter().filter(|b| !b.is_empty()).count()
    }

    /// The per-server bins, by server index.
    pub fn bins(&self) -> &[ServerBin] {
        &self.bins
    }

    /// The server hosting `id`, if placed.
    pub fn server_of(&self, id: TenantId) -> Option<usize> {
        self.assignment.get(&id).copied()
    }

    /// Tenants that fit on no server, in the order they were rejected.
    pub fn unplaced(&self) -> &[TenantId] {
        &self.unplaced
    }

    /// Deterministic counters of the pack that built this placement.
    pub fn stats(&self) -> PackStats {
        self.stats
    }

    /// The nominal (undegraded) per-server capacity in integer IOPS.
    pub fn nominal_capacity(&self) -> u64 {
        self.capacity
    }

    /// The server's current degradation factor (1.0 nominal).
    pub fn factor(&self, node: usize) -> f64 {
        self.factors[node]
    }

    /// `true` while the server is marked down
    /// ([`FleetPlacer::replan_node_down`]): no tenant is offered to it.
    pub fn is_down(&self, node: usize) -> bool {
        self.down[node]
    }

    /// The down servers, ascending.
    pub fn down_nodes(&self) -> Vec<usize> {
        (0..self.down.len()).filter(|&n| self.down[n]).collect()
    }

    /// The server's effective capacity: `⌊nominal × factor⌋`, at least 1.
    pub fn effective_capacity(&self, node: usize) -> u64 {
        (((self.capacity as f64) * self.factors[node]).floor() as u64).max(1)
    }
}

/// The fleet bin-packer: first-fit-decreasing tenant order with bin
/// retirement, planner-exact costing.
///
/// Tenants are ordered by descending standalone quote (ties break on
/// ascending [`TenantId`]); each is offered to the **open** servers in
/// ascending index order through [`ServerBin::admits`] probes and
/// committed to the first feasible candidate. An *occupied* bin that
/// rejects a tenant ahead of the chosen one is **closed** for the rest
/// of the pass — with decreasing quotes a rejecting bin is essentially
/// full, so re-probing it for every later tenant would buy little and
/// cost a column scan each time. Closing caps the decisive probes of a
/// whole pack at `placed + servers` instead of `tenants × servers`.
/// Empty bins never close: their verdict judges the tenant alone (a
/// standalone misfit), not the bin. The trade is a slightly less
/// aggressive fill than exhaustive first-fit — a closed bin might have
/// admitted a later, smaller tenant — bought deliberately: it is what
/// turns fleet packing from quadratic probe volume into linear.
///
/// Probes run as a serial scout on the front candidate (which almost
/// always admits) plus fixed-width rounds fanned out over the pool when
/// the scout misses. Candidate order, round widths, and positional probe
/// assembly are all independent of the pool, so placements — and the
/// probe counters — are byte-identical across thread counts.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct FleetPlacer {
    target: QosTarget,
    capacity: u64,
}

impl FleetPlacer {
    /// A placer for `target` with `server_capacity` IOPS per server
    /// (truncated to the integer grid the quote searches run on).
    pub fn new(target: QosTarget, server_capacity: Iops) -> Self {
        FleetPlacer {
            target,
            capacity: (server_capacity.get().floor() as u64).max(1),
        }
    }

    /// The QoS target tenants are consolidated under.
    pub fn target(&self) -> QosTarget {
        self.target
    }

    /// Nominal per-server capacity in integer IOPS.
    pub fn server_capacity(&self) -> u64 {
        self.capacity
    }

    /// Packs the fleet onto at most `servers` servers.
    ///
    /// Standalone quotes come from (and warm) `cache`; candidate probes
    /// fan out over `pool`. The result is identical for any pool width.
    ///
    /// # Errors
    ///
    /// [`FleetError::NoServers`] when `servers == 0`;
    /// [`FleetError::DeadlineMismatch`] when the cache answers for a
    /// different deadline.
    pub fn pack(
        &self,
        tenants: &[FleetTenant],
        servers: usize,
        cache: &mut QuoteCache,
        pool: &WorkerPool,
    ) -> Result<Placement, FleetError> {
        self.pack_avoiding(tenants, servers, &[], cache, pool)
    }

    /// [`pack`](Self::pack) with the servers in `down` marked down before
    /// any tenant is offered — the from-scratch placement of a degraded
    /// fleet, and the convergence oracle the control plane's incremental
    /// state is checked against.
    ///
    /// # Errors
    ///
    /// As [`pack`](Self::pack), plus [`FleetError::UnknownServer`] for a
    /// down index outside the fleet.
    pub fn pack_avoiding(
        &self,
        tenants: &[FleetTenant],
        servers: usize,
        down: &[usize],
        cache: &mut QuoteCache,
        pool: &WorkerPool,
    ) -> Result<Placement, FleetError> {
        if servers == 0 {
            return Err(FleetError::NoServers);
        }
        if cache.deadline() != self.target.deadline() {
            return Err(FleetError::DeadlineMismatch {
                cache: cache.deadline(),
                target: self.target.deadline(),
            });
        }
        let mut placement = Placement::new(self.target, self.capacity, servers);
        for &node in down {
            if node >= servers {
                return Err(FleetError::UnknownServer { node, servers });
            }
            placement.down[node] = true;
        }
        let (hits0, misses0) = (cache.hits(), cache.misses());
        // Fan the independent cold standalone searches out over the pool;
        // the ordering pass below then runs entirely on memo hits.
        cache.warm_batch(tenants, self.target.fraction(), pool);
        let order = self.decreasing_order(tenants, cache);
        let mut closed = vec![false; servers];
        for (idx, _) in order {
            let tenant = &tenants[idx];
            self.place_one(&mut placement, tenant.id(), tenant.col(), &mut closed, pool);
        }
        placement.stats.cache_hits = cache.hits() - hits0;
        placement.stats.cache_misses = cache.misses() - misses0;
        Ok(placement)
    }

    /// The naive cold-costing baseline: classic exhaustive first-fit
    /// decreasing, `O(tenants × servers × search)`. Every standalone
    /// quote is a fresh [`CapacityPlanner::min_capacity`] search, and
    /// every candidate — re-probed for every tenant, with no retirement —
    /// is costed by materialising the merged column and running a full
    /// cold consolidated search; every commit re-quotes the bin cold. No
    /// cache, no incremental column, no warm hints, no pool: exactly what
    /// a fleet packer looks like without this module's three ingredients,
    /// and the performance baseline `fleet_bench` and `perf_report`
    /// compare against.
    ///
    /// Because it never retires a bin, its placements may differ from
    /// [`pack`](Self::pack) when a once-rejecting bin would have admitted
    /// a later, smaller tenant; both packers are individually
    /// deterministic and every placement they produce respects the
    /// per-server capacity.
    ///
    /// # Errors
    ///
    /// [`FleetError::NoServers`] when `servers == 0`.
    pub fn pack_naive(
        &self,
        tenants: &[FleetTenant],
        servers: usize,
    ) -> Result<Placement, FleetError> {
        if servers == 0 {
            return Err(FleetError::NoServers);
        }
        let deadline = self.target.deadline();
        let fraction = self.target.fraction();
        let mut placement = Placement::new(self.target, self.capacity, servers);
        let mut order: Vec<(usize, u64)> = tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let planner = CapacityPlanner::new(&t.workload, deadline);
                (i, planner.min_capacity(fraction).get() as u64)
            })
            .collect();
        order.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then(tenants[a.0].id().cmp(&tenants[b.0].id()))
        });
        for (idx, _) in order {
            let tenant = &tenants[idx];
            let tcol = tenant.col();
            let mut chosen = None;
            for node in 0..placement.bins.len() {
                let bin = &placement.bins[node];
                let mut merged = Vec::with_capacity(bin.col.len() + tcol.len());
                merged.extend_from_slice(&bin.col);
                merged.extend_from_slice(tcol);
                merged.sort_unstable();
                let cold = cold_cmin(&merged, deadline, fraction);
                placement.stats.probes += 1;
                if cold <= placement.effective_capacity(node) {
                    chosen = Some(node);
                    break;
                }
            }
            match chosen {
                Some(node) => {
                    placement.bins[node].add(tenant.id(), tcol);
                    // Keep the bin's quote cold too: recompute unhinted.
                    let cold = cold_cmin(&placement.bins[node].col, deadline, fraction);
                    placement.bins[node].quote.store(cold, Ordering::Relaxed);
                    placement.bins[node].stale.store(false, Ordering::Release);
                    placement.assignment.insert(tenant.id(), node);
                    placement.stats.placed += 1;
                }
                None => {
                    placement.unplaced.push(tenant.id());
                    placement.stats.unplaced += 1;
                }
            }
        }
        Ok(placement)
    }

    /// Re-places only the tenants of `node` after its capacity degrades
    /// to `factor × nominal` — the online hook for a
    /// [`DegradationController`](crate::DegradationController) rung drop
    /// (pass its [`factor()`](crate::DegradationController::factor)).
    /// Every resident of `node` is evicted, the factor is recorded, and
    /// the evicted tenants re-enter normal candidate selection in
    /// descending-quote order — the degraded server itself may readmit as
    /// many as its reduced capacity carries. Other servers' residents are
    /// never touched. Returns the deterministic counters of the replan.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownServer`] for an out-of-range node,
    /// [`FleetError::BadFactor`] for a factor outside `(0, 1]`,
    /// [`FleetError::DeadlineMismatch`] as in [`pack`](Self::pack).
    pub fn replan_degraded(
        &self,
        placement: &mut Placement,
        tenants: &[FleetTenant],
        node: usize,
        factor: f64,
        cache: &mut QuoteCache,
        pool: &WorkerPool,
    ) -> Result<PackStats, FleetError> {
        if node >= placement.bins.len() {
            return Err(FleetError::UnknownServer {
                node,
                servers: placement.bins.len(),
            });
        }
        if !(factor.is_finite() && factor > 0.0 && factor <= 1.0) {
            return Err(FleetError::BadFactor { value: factor });
        }
        if cache.deadline() != self.target.deadline() {
            return Err(FleetError::DeadlineMismatch {
                cache: cache.deadline(),
                target: self.target.deadline(),
            });
        }
        let (hits0, misses0) = (cache.hits(), cache.misses());
        let stats0 = placement.stats;
        placement.factors[node] = factor;
        let evicted: Vec<TenantId> = placement.bins[node].members().to_vec();
        placement.bins[node] = ServerBin::new(self.target);
        for id in &evicted {
            placement.assignment.remove(id);
        }
        let affected: Vec<&FleetTenant> = tenants
            .iter()
            .filter(|t| evicted.contains(&t.id()))
            .collect();
        let order = self.decreasing_order_of(&affected, cache);
        // Fresh retirement state: the replan judges today's bins, not the
        // rejections recorded while the original pack was still filling.
        let mut closed = vec![false; placement.bins.len()];
        for (idx, _) in order {
            let tenant = affected[idx];
            self.place_one(placement, tenant.id(), tenant.col(), &mut closed, pool);
        }
        Ok(PackStats {
            probes: placement.stats.probes - stats0.probes,
            placed: placement.stats.placed - stats0.placed,
            unplaced: placement.stats.unplaced - stats0.unplaced,
            cache_hits: cache.hits() - hits0,
            cache_misses: cache.misses() - misses0,
        })
    }

    /// Places one tenant into an existing placement — the `AddTenant`
    /// hook of a live control plane. The tenant is offered to the open,
    /// up servers exactly as one [`pack`](Self::pack) step would; if it
    /// was previously recorded unplaced and now fits, the unplaced record
    /// is cleared. Placing an already-placed tenant is a no-op returning
    /// its current server.
    ///
    /// Returns the hosting server, or `None` when no server admits the
    /// tenant (it is recorded unplaced, never dropped).
    ///
    /// # Errors
    ///
    /// [`FleetError::DeadlineMismatch`] as in [`pack`](Self::pack).
    pub fn place_into(
        &self,
        placement: &mut Placement,
        tenant: &FleetTenant,
        cache: &mut QuoteCache,
        pool: &WorkerPool,
    ) -> Result<Option<usize>, FleetError> {
        self.place_avoiding(placement, tenant, &[], cache, pool)
    }

    /// [`place_into`](Self::place_into) with the servers in `avoid`
    /// additionally excluded from candidacy — the `DrainTenant` hook,
    /// where the target must differ from the server being vacated.
    ///
    /// # Errors
    ///
    /// As [`place_into`](Self::place_into), plus
    /// [`FleetError::UnknownServer`] for an avoided index outside the
    /// fleet.
    pub fn place_avoiding(
        &self,
        placement: &mut Placement,
        tenant: &FleetTenant,
        avoid: &[usize],
        cache: &mut QuoteCache,
        pool: &WorkerPool,
    ) -> Result<Option<usize>, FleetError> {
        if cache.deadline() != self.target.deadline() {
            return Err(FleetError::DeadlineMismatch {
                cache: cache.deadline(),
                target: self.target.deadline(),
            });
        }
        for &node in avoid {
            if node >= placement.bins.len() {
                return Err(FleetError::UnknownServer {
                    node,
                    servers: placement.bins.len(),
                });
            }
        }
        if let Some(node) = placement.assignment.get(&tenant.id()).copied() {
            return Ok(Some(node));
        }
        let (hits0, misses0) = (cache.hits(), cache.misses());
        // Warm (and epoch-check) the standalone quote so the cache state
        // matches what a full pack of the same tenant set would hold.
        let _ = cache.quote_int(tenant, self.target.fraction());
        placement.unplaced.retain(|&id| id != tenant.id());
        let mut closed = vec![false; placement.bins.len()];
        for &node in avoid {
            closed[node] = true;
        }
        self.place_one(placement, tenant.id(), tenant.col(), &mut closed, pool);
        placement.stats.cache_hits += cache.hits() - hits0;
        placement.stats.cache_misses += cache.misses() - misses0;
        Ok(placement.assignment.get(&tenant.id()).copied())
    }

    /// Removes one tenant from the placement — the `RemoveTenant` /
    /// drain-eviction hook. The hosting bin multiset-subtracts the
    /// tenant's column; any unplaced record is cleared too. Returns the
    /// server the tenant was evicted from, or `None` if it was not
    /// placed.
    pub fn evict(&self, placement: &mut Placement, tenant: &FleetTenant) -> Option<usize> {
        placement.unplaced.retain(|&id| id != tenant.id());
        let node = placement.assignment.remove(&tenant.id())?;
        placement.bins[node].remove(tenant.id(), tenant.col());
        Some(node)
    }

    /// Marks `node` down and re-places its residents on the remaining up
    /// servers — the `NodeDown` hook. Like
    /// [`replan_degraded`](Self::replan_degraded), only the failed
    /// server's tenants move; residents that fit nowhere are recorded
    /// unplaced (never dropped) and can be refilled once a node returns
    /// via [`mark_node_up`](Self::mark_node_up) +
    /// [`place_into`](Self::place_into). Marking an already-down node is
    /// an idempotent no-op returning zeroed stats.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownServer`] for an out-of-range node,
    /// [`FleetError::DeadlineMismatch`] as in [`pack`](Self::pack).
    pub fn replan_node_down(
        &self,
        placement: &mut Placement,
        tenants: &[FleetTenant],
        node: usize,
        cache: &mut QuoteCache,
        pool: &WorkerPool,
    ) -> Result<PackStats, FleetError> {
        if node >= placement.bins.len() {
            return Err(FleetError::UnknownServer {
                node,
                servers: placement.bins.len(),
            });
        }
        if cache.deadline() != self.target.deadline() {
            return Err(FleetError::DeadlineMismatch {
                cache: cache.deadline(),
                target: self.target.deadline(),
            });
        }
        if placement.down[node] {
            return Ok(PackStats::default());
        }
        let (hits0, misses0) = (cache.hits(), cache.misses());
        let stats0 = placement.stats;
        placement.down[node] = true;
        let evicted: Vec<TenantId> = placement.bins[node].members().to_vec();
        placement.bins[node] = ServerBin::new(self.target);
        for id in &evicted {
            placement.assignment.remove(id);
        }
        let affected: Vec<&FleetTenant> = tenants
            .iter()
            .filter(|t| evicted.contains(&t.id()))
            .collect();
        let order = self.decreasing_order_of(&affected, cache);
        let mut closed = vec![false; placement.bins.len()];
        for (idx, _) in order {
            let tenant = affected[idx];
            self.place_one(placement, tenant.id(), tenant.col(), &mut closed, pool);
        }
        Ok(PackStats {
            probes: placement.stats.probes - stats0.probes,
            placed: placement.stats.placed - stats0.placed,
            unplaced: placement.stats.unplaced - stats0.unplaced,
            cache_hits: cache.hits() - hits0,
            cache_misses: cache.misses() - misses0,
        })
    }

    /// Clears a server's down mark — the `NodeUp` hook. The recovered
    /// server starts empty; the caller decides when (and whether) to
    /// refill it, typically behind a flap-damping guard. Returns `true`
    /// when the node was down.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownServer`] for an out-of-range node.
    pub fn mark_node_up(&self, placement: &mut Placement, node: usize) -> Result<bool, FleetError> {
        if node >= placement.bins.len() {
            return Err(FleetError::UnknownServer {
                node,
                servers: placement.bins.len(),
            });
        }
        let was_down = placement.down[node];
        placement.down[node] = false;
        Ok(was_down)
    }

    /// Standalone quotes for every tenant, ordered by descending quote
    /// with ties on ascending id.
    fn decreasing_order(
        &self,
        tenants: &[FleetTenant],
        cache: &mut QuoteCache,
    ) -> Vec<(usize, u64)> {
        let mut order: Vec<(usize, u64)> = tenants
            .iter()
            .enumerate()
            .map(|(i, t)| (i, cache.quote_int(t, self.target.fraction())))
            .collect();
        order.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then(tenants[a.0].id().cmp(&tenants[b.0].id()))
        });
        order
    }

    /// [`decreasing_order`](Self::decreasing_order) over a borrowed
    /// subset (the replan path).
    fn decreasing_order_of(
        &self,
        tenants: &[&FleetTenant],
        cache: &mut QuoteCache,
    ) -> Vec<(usize, u64)> {
        let mut order: Vec<(usize, u64)> = tenants
            .iter()
            .enumerate()
            .map(|(i, t)| (i, cache.quote_int(t, self.target.fraction())))
            .collect();
        order.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then(tenants[a.0].id().cmp(&tenants[b.0].id()))
        });
        order
    }

    /// Offers one tenant to the open bins in ascending index order,
    /// commits it to the first feasible one, or records it unplaced.
    ///
    /// The first candidate is probed by a serial scout — it is the oldest
    /// never-rejecting bin and admits the vast majority of tenants, so
    /// the common case costs one streamed column scan and no pool
    /// round-trip. When the scout misses, the remaining candidates are
    /// probed in fixed-width parallel rounds. Every *occupied* candidate
    /// rejected ahead of the winner is closed (`closed[node] = true`) for
    /// the rest of the pass; rejections probed past the winner inside its
    /// round are discarded, so the closure set — and with it every later
    /// placement — is a pure function of the candidate order, never of
    /// the round width or pool. Empty bins are never closed.
    fn place_one(
        &self,
        placement: &mut Placement,
        id: TenantId,
        tcol: &[u64],
        closed: &mut [bool],
        pool: &WorkerPool,
    ) {
        /// Candidates probed by the serial scout round.
        const SCOUT: usize = 1;
        /// Candidates per parallel round after the scout — fixed, never
        /// the pool width.
        const PROBE_BATCH: usize = 8;

        let candidates: Vec<usize> = (0..placement.bins.len())
            .filter(|&n| !closed[n] && !placement.down[n])
            .collect();
        let mut chosen = None;
        let mut next = 0;
        while next < candidates.len() && chosen.is_none() {
            let width = if next == 0 { SCOUT } else { PROBE_BATCH };
            let batch: Vec<usize> = candidates[next..(next + width).min(candidates.len())].to_vec();
            next += batch.len();
            placement.stats.probes += batch.len() as u64;
            let verdicts: Vec<bool> = {
                let probe_view = &*placement;
                pool.map(batch.clone(), |node| {
                    probe_view.bins[node]
                        .admits(tcol, Iops::new(probe_view.effective_capacity(node) as f64))
                })
            };
            let winner = verdicts.iter().position(|&v| v);
            let rejected_ahead = winner.unwrap_or(batch.len());
            for &node in &batch[..rejected_ahead] {
                if !placement.bins[node].is_empty() {
                    closed[node] = true;
                }
            }
            chosen = winner.map(|pos| batch[pos]);
        }
        match chosen {
            Some(node) => {
                placement.bins[node].add(id, tcol);
                placement.assignment.insert(id, node);
                placement.stats.placed += 1;
            }
            None => {
                placement.unplaced.push(id);
                placement.stats.unplaced += 1;
            }
        }
    }
}

/// A cold, unhinted consolidated `Cmin` over a raw merged column: seed
/// grid from scratch plus bracket resolution — the cost profile of
/// [`CapacityPlanner::min_capacity`] on the materialised merge, used only
/// by the naive reference packer.
fn cold_cmin(col: &[u64], deadline: SimDuration, fraction: f64) -> u64 {
    let budget = miss_budget(col.len() as u64, fraction);
    let seed = SeedCurve::from_nanos(col, deadline);
    match seed.bracket(budget) {
        (None, hi) => hi,
        (Some(lo), hi) => resolve_cmin_ns(col, deadline, budget, lo, hi),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consolidate::merge_all;
    use gqos_trace::SimTime;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn dms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    /// A small deterministic fleet: staggered steady streams with bursts
    /// of varying depth.
    fn fleet(n: usize) -> Vec<FleetTenant> {
        (0..n)
            .map(|i| {
                let mut arrivals: Vec<SimTime> =
                    (0..60).map(|k| ms(k * 10 + i as u64 * 3)).collect();
                arrivals.extend(vec![ms(200 + 70 * i as u64); 5 + 3 * (i % 4)]);
                FleetTenant::new(TenantId::new(i), Workload::from_arrivals(arrivals))
            })
            .collect()
    }

    #[test]
    fn cached_quotes_are_bit_identical_to_cold_min_capacity() {
        let tenants = fleet(6);
        let mut cache = QuoteCache::new(dms(10));
        for f in [0.9, 0.95, 1.0] {
            for t in &tenants {
                let cached = cache.quote(t, f);
                let cold = CapacityPlanner::new(t.workload(), dms(10)).min_capacity(f);
                assert_eq!(
                    cached.get().to_bits(),
                    cold.get().to_bits(),
                    "tenant {:?} f={f}",
                    t.id()
                );
            }
        }
        let misses = cache.misses();
        // Every repeat is a memo hit with no new probe.
        for f in [0.9, 0.95, 1.0] {
            for t in &tenants {
                let _ = cache.quote(t, f);
            }
        }
        assert_eq!(cache.misses(), misses);
        assert_eq!(cache.hits(), 18);
        assert_eq!(cache.len(), 6);
    }

    #[test]
    fn epoch_bump_invalidates_cached_quotes() {
        let mut tenant = FleetTenant::new(
            TenantId::new(0),
            Workload::from_arrivals(vec![SimTime::ZERO; 10]),
        );
        let mut cache = QuoteCache::new(dms(10));
        assert_eq!(cache.quote_int(&tenant, 1.0), 1000);
        assert_eq!(tenant.epoch(), 0);
        tenant.set_workload(Workload::from_arrivals(vec![SimTime::ZERO; 20]));
        assert_eq!(tenant.epoch(), 1);
        assert_eq!(cache.quote_int(&tenant, 1.0), 2000, "stale quote served");
        // An SLA-only bump also invalidates, and the rebuilt entry
        // re-plans (a miss, not a hit).
        let misses = cache.misses();
        tenant.bump_epoch();
        assert_eq!(cache.quote_int(&tenant, 1.0), 2000);
        assert_eq!(cache.misses(), misses + 1);
        cache.invalidate(tenant.id());
        assert!(cache.is_empty());
    }

    #[test]
    fn incremental_bin_quote_matches_cold_consolidation() {
        let tenants = fleet(5);
        let target = QosTarget::new(0.92, dms(10));
        let mut bin = ServerBin::new(target);
        let mut resident: Vec<usize> = Vec::new();
        // A fixed add/remove script exercising growth and shrinkage.
        let script: &[(bool, usize)] = &[
            (true, 0),
            (true, 3),
            (true, 1),
            (false, 3),
            (true, 4),
            (true, 2),
            (false, 0),
            (true, 3),
        ];
        for &(add, idx) in script {
            let t = &tenants[idx];
            if add {
                bin.add(t.id(), t.col());
                resident.push(idx);
            } else {
                assert!(bin.remove(t.id(), t.col()));
                resident.retain(|&r| r != idx);
            }
            let clients: Vec<&Workload> = resident.iter().map(|&r| tenants[r].workload()).collect();
            let merged = merge_all(&clients);
            let cold = CapacityPlanner::new(&merged, dms(10)).min_capacity(0.92);
            assert_eq!(
                bin.quote().get().to_bits(),
                cold.get().to_bits(),
                "after {:?} with {resident:?}",
                (add, idx)
            );
            assert_eq!(bin.len(), merged.len());
        }
        assert!(!bin.remove(TenantId::new(99), &[]), "non-resident remove");
    }

    #[test]
    fn admits_agrees_with_cold_consolidated_quote() {
        let tenants = fleet(4);
        let target = QosTarget::new(0.9, dms(10));
        let mut bin = ServerBin::new(target);
        bin.add(tenants[0].id(), tenants[0].col());
        bin.add(tenants[1].id(), tenants[1].col());
        let candidate = &tenants[2];
        let clients = [
            tenants[0].workload(),
            tenants[1].workload(),
            candidate.workload(),
        ];
        let merged = merge_all(&clients);
        let cold = CapacityPlanner::new(&merged, dms(10))
            .min_capacity(0.9)
            .get() as u64;
        assert!(bin.admits(candidate.col(), Iops::new(cold as f64)));
        assert!(!bin.admits(candidate.col(), Iops::new((cold - 1) as f64)));
    }

    #[test]
    fn hinted_search_matches_cold_from_any_hint() {
        let tenants = fleet(3);
        let clients: Vec<&Workload> = tenants.iter().map(FleetTenant::workload).collect();
        let merged = merge_all(&clients);
        let col = merged.arrival_column().nanos();
        for f in [0.9, 1.0] {
            let budget = miss_budget(col.len() as u64, f);
            let cold = hinted_cmin(col, dms(10), budget, None);
            assert_eq!(
                cold,
                CapacityPlanner::new(&merged, dms(10)).min_capacity(f).get() as u64
            );
            for hint in [1, 100, cold - 1, cold, cold + 1, cold * 7, 1_000_000] {
                assert_eq!(
                    hinted_cmin(col, dms(10), budget, Some(hint)),
                    cold,
                    "hint={hint} f={f}"
                );
            }
        }
        assert_eq!(
            hinted_cmin(&[], dms(10), 0, Some(12345)),
            100,
            "empty→floor"
        );
    }

    #[test]
    fn pack_is_deterministic_across_thread_counts() {
        let tenants = fleet(12);
        let placer = FleetPlacer::new(QosTarget::new(0.9, dms(10)), Iops::new(1500.0));
        let mut reference: Option<Vec<Option<usize>>> = None;
        for threads in [1usize, 2, 4, 8] {
            let mut cache = QuoteCache::new(dms(10));
            let pool = WorkerPool::new(threads);
            let p = placer.pack(&tenants, 5, &mut cache, &pool).unwrap();
            let assignment: Vec<Option<usize>> =
                tenants.iter().map(|t| p.server_of(t.id())).collect();
            match &reference {
                None => reference = Some(assignment),
                Some(r) => assert_eq!(r, &assignment, "{threads} threads"),
            }
        }
    }

    #[test]
    fn naive_baseline_is_feasible_deterministic_and_cold_costed() {
        let tenants = fleet(9);
        let placer = FleetPlacer::new(QosTarget::new(0.93, dms(10)), Iops::new(1200.0));
        let mut cache = QuoteCache::new(dms(10));
        let pool = WorkerPool::new(4);
        let fast = placer.pack(&tenants, 4, &mut cache, &pool).unwrap();
        let naive = placer.pack_naive(&tenants, 4).unwrap();
        // Both packers answer the same feasibility question, so every bin
        // either builds respects its server's capacity, and they agree on
        // which tenants the fleet can host at all.
        for p in [&fast, &naive] {
            for node in 0..p.servers() {
                assert!(
                    p.bins()[node].quote_int() <= p.effective_capacity(node),
                    "server {node} over capacity"
                );
            }
        }
        assert_eq!(fast.stats().placed, naive.stats().placed);
        assert_eq!(fast.unplaced(), naive.unplaced());
        // The baseline re-probes every candidate for every tenant — the
        // quadratic cost profile the fast packer's retirement rule avoids.
        let rerun = placer.pack_naive(&tenants, 4).unwrap();
        for t in &tenants {
            assert_eq!(
                naive.server_of(t.id()),
                rerun.server_of(t.id()),
                "naive baseline must be deterministic for {:?}",
                t.id()
            );
        }
        // Naive bin quotes are cold by construction: recomputing from the
        // merged residents reproduces them bit for bit.
        for node in 0..naive.servers() {
            let members = naive.bins()[node].members();
            if members.is_empty() {
                continue;
            }
            let clients: Vec<&Workload> = tenants
                .iter()
                .filter(|t| members.contains(&t.id()))
                .map(FleetTenant::workload)
                .collect();
            let merged = merge_all(&clients);
            let cold = CapacityPlanner::new(&merged, dms(10)).min_capacity(0.93);
            assert_eq!(naive.bins()[node].quote_int(), cold.get() as u64);
        }
    }

    #[test]
    fn every_placed_server_quote_fits_its_capacity() {
        let tenants = fleet(10);
        let placer = FleetPlacer::new(QosTarget::new(0.9, dms(10)), Iops::new(1400.0));
        let mut cache = QuoteCache::new(dms(10));
        let pool = WorkerPool::new(2);
        let p = placer.pack(&tenants, 6, &mut cache, &pool).unwrap();
        let stats = p.stats();
        assert_eq!(stats.placed + stats.unplaced, tenants.len() as u64);
        assert!(stats.probes > 0);
        for node in 0..p.servers() {
            assert!(
                p.bins()[node].quote_int() <= p.effective_capacity(node),
                "server {node} over capacity"
            );
        }
        // Placed + unplaced partitions the fleet.
        for t in &tenants {
            let placed = p.server_of(t.id()).is_some();
            let rejected = p.unplaced().contains(&t.id());
            assert!(placed ^ rejected, "tenant {:?}", t.id());
        }
    }

    #[test]
    fn oversized_tenant_is_reported_unplaced() {
        let big = FleetTenant::new(
            TenantId::new(0),
            Workload::from_arrivals(vec![SimTime::ZERO; 500]),
        );
        let small = FleetTenant::new(
            TenantId::new(1),
            Workload::from_arrivals((0..20).map(|i| ms(i * 50)).collect::<Vec<_>>()),
        );
        let placer = FleetPlacer::new(QosTarget::full(dms(10)), Iops::new(2000.0));
        let mut cache = QuoteCache::new(dms(10));
        let pool = WorkerPool::serial();
        let p = placer
            .pack(&[big.clone(), small], 2, &mut cache, &pool)
            .unwrap();
        assert_eq!(p.unplaced(), &[big.id()]);
        assert_eq!(p.servers_used(), 1);
    }

    #[test]
    fn replan_degraded_moves_only_the_affected_server() {
        let tenants = fleet(10);
        let placer = FleetPlacer::new(QosTarget::new(0.9, dms(10)), Iops::new(1400.0));
        let mut cache = QuoteCache::new(dms(10));
        let pool = WorkerPool::new(4);
        let mut p = placer.pack(&tenants, 6, &mut cache, &pool).unwrap();
        let node = p
            .bins()
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .max_by_key(|(_, b)| b.members().len())
            .map(|(i, _)| i)
            .unwrap();
        let before: BTreeMap<TenantId, usize> = tenants
            .iter()
            .filter_map(|t| p.server_of(t.id()).map(|s| (t.id(), s)))
            .collect();
        let moved: Vec<TenantId> = p.bins()[node].members().to_vec();
        let stats = placer
            .replan_degraded(&mut p, &tenants, node, 0.5, &mut cache, &pool)
            .unwrap();
        assert_eq!(p.factor(node), 0.5);
        assert_eq!(p.effective_capacity(node), 700);
        assert_eq!(stats.placed + stats.unplaced, moved.len() as u64);
        for (id, server) in &before {
            if !moved.contains(id) {
                assert_eq!(p.server_of(*id), Some(*server), "{id:?} must not move");
            }
        }
        for node in 0..p.servers() {
            assert!(p.bins()[node].quote_int() <= p.effective_capacity(node));
        }
    }

    #[test]
    fn replan_is_deterministic_across_thread_counts() {
        let tenants = fleet(10);
        let placer = FleetPlacer::new(QosTarget::new(0.9, dms(10)), Iops::new(1400.0));
        let mut reference: Option<Vec<Option<usize>>> = None;
        for threads in [1usize, 2, 4, 8] {
            let mut cache = QuoteCache::new(dms(10));
            let pool = WorkerPool::new(threads);
            let mut p = placer.pack(&tenants, 6, &mut cache, &pool).unwrap();
            placer
                .replan_degraded(&mut p, &tenants, 0, 0.6, &mut cache, &pool)
                .unwrap();
            let assignment: Vec<Option<usize>> =
                tenants.iter().map(|t| p.server_of(t.id())).collect();
            match &reference {
                None => reference = Some(assignment),
                Some(r) => assert_eq!(r, &assignment, "{threads} threads"),
            }
        }
    }

    #[test]
    fn fleet_errors_are_typed_and_displayed() {
        let tenants = fleet(2);
        let placer = FleetPlacer::new(QosTarget::new(0.9, dms(10)), Iops::new(1000.0));
        let mut cache = QuoteCache::new(dms(10));
        let pool = WorkerPool::serial();
        assert_eq!(
            placer.pack(&tenants, 0, &mut cache, &pool).unwrap_err(),
            FleetError::NoServers
        );
        assert_eq!(
            placer.pack_naive(&tenants, 0).unwrap_err(),
            FleetError::NoServers
        );
        let mut wrong = QuoteCache::new(dms(20));
        assert!(matches!(
            placer.pack(&tenants, 2, &mut wrong, &pool).unwrap_err(),
            FleetError::DeadlineMismatch { .. }
        ));
        let mut p = placer.pack(&tenants, 2, &mut cache, &pool).unwrap();
        assert!(matches!(
            placer
                .replan_degraded(&mut p, &tenants, 7, 0.5, &mut cache, &pool)
                .unwrap_err(),
            FleetError::UnknownServer {
                node: 7,
                servers: 2
            }
        ));
        assert!(matches!(
            placer
                .replan_degraded(&mut p, &tenants, 0, 0.0, &mut cache, &pool)
                .unwrap_err(),
            FleetError::BadFactor { .. }
        ));
        assert!(FleetError::NoServers.to_string().contains("at least one"));
        assert!(FleetError::UnknownServer {
            node: 7,
            servers: 2
        }
        .to_string()
        .contains("out of range"));
        assert!(FleetError::BadFactor { value: -1.0 }
            .to_string()
            .contains("(0, 1]"));
    }

    #[test]
    fn place_into_and_evict_roundtrip() {
        let tenants = fleet(8);
        let placer = FleetPlacer::new(QosTarget::new(0.9, dms(10)), Iops::new(1400.0));
        let mut cache = QuoteCache::new(dms(10));
        let pool = WorkerPool::new(2);
        let mut p = placer.pack(&tenants, 4, &mut cache, &pool).unwrap();
        let t = &tenants[3];
        let home = p.server_of(t.id()).expect("placed by pack");
        // Idempotent: placing a placed tenant returns its current server.
        assert_eq!(
            placer.place_into(&mut p, t, &mut cache, &pool).unwrap(),
            Some(home)
        );
        let from = placer.evict(&mut p, t).expect("was placed");
        assert_eq!(from, home);
        assert_eq!(p.server_of(t.id()), None);
        assert!(!p.bins()[from].members().contains(&t.id()));
        // Re-placing lands it somewhere feasible again.
        let node = placer
            .place_into(&mut p, t, &mut cache, &pool)
            .unwrap()
            .expect("fits again");
        assert_eq!(p.server_of(t.id()), Some(node));
        assert!(p.bins()[node].quote_int() <= p.effective_capacity(node));
        // Evicting an unplaced tenant is None.
        placer.evict(&mut p, t);
        assert_eq!(placer.evict(&mut p, t), None);
        // Avoiding the old home forces a different target.
        let moved = placer
            .place_avoiding(&mut p, t, &[node], &mut cache, &pool)
            .unwrap();
        if let Some(m) = moved {
            assert_ne!(m, node, "avoided server must not host the tenant");
        }
        assert!(matches!(
            placer
                .place_avoiding(&mut p, &tenants[0], &[99], &mut cache, &pool)
                .unwrap_err(),
            FleetError::UnknownServer { node: 99, .. }
        ));
    }

    #[test]
    fn replan_node_down_moves_only_that_node_and_is_idempotent() {
        let tenants = fleet(10);
        let placer = FleetPlacer::new(QosTarget::new(0.9, dms(10)), Iops::new(1400.0));
        let mut cache = QuoteCache::new(dms(10));
        let pool = WorkerPool::new(4);
        let mut p = placer.pack(&tenants, 6, &mut cache, &pool).unwrap();
        let node = p
            .bins()
            .iter()
            .position(|b| !b.is_empty())
            .expect("some bin is occupied");
        let moved: Vec<TenantId> = p.bins()[node].members().to_vec();
        let before: BTreeMap<TenantId, usize> = tenants
            .iter()
            .filter_map(|t| p.server_of(t.id()).map(|s| (t.id(), s)))
            .collect();
        let stats = placer
            .replan_node_down(&mut p, &tenants, node, &mut cache, &pool)
            .unwrap();
        assert!(p.is_down(node));
        assert_eq!(p.down_nodes(), vec![node]);
        assert!(p.bins()[node].is_empty(), "down node must be vacated");
        assert_eq!(stats.placed + stats.unplaced, moved.len() as u64);
        for (id, server) in &before {
            if !moved.contains(id) {
                assert_eq!(p.server_of(*id), Some(*server), "{id:?} must not move");
            } else {
                assert_ne!(p.server_of(*id), Some(node), "{id:?} left on down node");
            }
        }
        // Idempotent: a duplicate NodeDown changes nothing.
        let again = placer
            .replan_node_down(&mut p, &tenants, node, &mut cache, &pool)
            .unwrap();
        assert_eq!(again, PackStats::default());
        // Recovery: the node is offerable again after mark_node_up.
        assert!(placer.mark_node_up(&mut p, node).unwrap());
        assert!(!p.is_down(node));
        assert!(!placer.mark_node_up(&mut p, node).unwrap());
        assert!(matches!(
            placer.mark_node_up(&mut p, 77).unwrap_err(),
            FleetError::UnknownServer { node: 77, .. }
        ));
    }

    #[test]
    fn pack_avoiding_never_uses_down_servers() {
        let tenants = fleet(10);
        let placer = FleetPlacer::new(QosTarget::new(0.9, dms(10)), Iops::new(1400.0));
        let mut cache = QuoteCache::new(dms(10));
        let pool = WorkerPool::new(2);
        let p = placer
            .pack_avoiding(&tenants, 6, &[1, 4], &mut cache, &pool)
            .unwrap();
        assert!(p.bins()[1].is_empty() && p.bins()[4].is_empty());
        assert!(p.is_down(1) && p.is_down(4));
        assert_eq!(p.down_nodes(), vec![1, 4]);
        for t in &tenants {
            if let Some(node) = p.server_of(t.id()) {
                assert!(node != 1 && node != 4);
            }
        }
        assert!(matches!(
            placer
                .pack_avoiding(&tenants, 6, &[6], &mut cache, &pool)
                .unwrap_err(),
            FleetError::UnknownServer {
                node: 6,
                servers: 6
            }
        ));
    }

    #[test]
    fn incremental_node_down_matches_from_scratch_pack_avoiding() {
        let tenants = fleet(12);
        let placer = FleetPlacer::new(QosTarget::new(0.9, dms(10)), Iops::new(1500.0));
        let pool = WorkerPool::new(4);
        let mut cache = QuoteCache::new(dms(10));
        let mut live = placer.pack(&tenants, 5, &mut cache, &pool).unwrap();
        placer
            .replan_node_down(&mut live, &tenants, 2, &mut cache, &pool)
            .unwrap();
        // The oracle: both paths respect capacity and leave node 2 empty;
        // the surviving assignment is feasible either way.
        let mut fresh_cache = QuoteCache::new(dms(10));
        let scratch = placer
            .pack_avoiding(&tenants, 5, &[2], &mut fresh_cache, &pool)
            .unwrap();
        for p in [&live, &scratch] {
            assert!(p.bins()[2].is_empty());
            for node in 0..p.servers() {
                assert!(p.bins()[node].quote_int() <= p.effective_capacity(node));
            }
        }
    }

    #[test]
    fn empty_fleet_packs_to_empty_placement() {
        let placer = FleetPlacer::new(QosTarget::new(0.9, dms(10)), Iops::new(1000.0));
        let mut cache = QuoteCache::new(dms(10));
        let pool = WorkerPool::new(2);
        let p = placer.pack(&[], 3, &mut cache, &pool).unwrap();
        assert_eq!(p.servers_used(), 0);
        assert_eq!(p.servers(), 3);
        assert!(p.unplaced().is_empty());
        assert_eq!(p.stats(), PackStats::default());
        assert_eq!(p.nominal_capacity(), 1000);
        assert_eq!(p.target().fraction(), 0.9);
    }
}
