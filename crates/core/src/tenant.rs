//! Multi-tenant shaping: several clients, one shared server.
//!
//! The paper's deployment setting (Section 1): a storage service hosts many
//! rate-controlled clients, each with its own SLA, and must (a) isolate
//! them from each other's demand overruns and (b) decompose each client's
//! own bursts. This module combines both levels:
//!
//! - each tenant gets its own [`RttClassifier`] at its planned `Cmin_i`
//!   and deadline `δ_i` (per-client decomposition), and
//! - the shared server multiplexes all tenants' classes through start-time
//!   fair queueing, primaries weighted by `Cmin_i` and overflows by
//!   `ΔC_i` (cross-client isolation).
//!
//! Provision the server with at least `Σ (Cmin_i + ΔC_i)` — which, after
//! decomposition, is an accurate estimate of what the merged workloads
//! need (Section 4.4).

use std::fmt;

use gqos_fairqueue::{FlowId, FlowScheduler, HierarchicalSfq, LeafId, Sfq};
use gqos_sim::{Dispatch, Scheduler, ServerId, ServiceClass};
use gqos_trace::{Iops, Request, RequestId, SimDuration, SimTime, Workload};

use crate::rtt::RttClassifier;
use crate::target::Provision;

/// Identifier of a tenant within one [`MultiTenantScheduler`].
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Default, Debug)]
pub struct TenantId(usize);

impl TenantId {
    /// Creates a tenant id from its index.
    pub const fn new(index: usize) -> Self {
        TenantId(index)
    }

    /// The tenant's index.
    pub const fn index(self) -> usize {
        self.0
    }

    /// The service class this tenant's guaranteed requests complete under.
    pub fn primary_class(self) -> ServiceClass {
        ServiceClass::new((self.0 * 2) as u8)
    }

    /// The service class this tenant's overflow requests complete under.
    pub fn overflow_class(self) -> ServiceClass {
        ServiceClass::new((self.0 * 2 + 1) as u8)
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// One tenant's shaping configuration.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct TenantConfig {
    /// The tenant's planned provision (`Cmin_i`, `ΔC_i`).
    pub provision: Provision,
    /// The tenant's response-time bound `δ_i`.
    pub deadline: SimDuration,
}

impl TenantConfig {
    /// Creates a config.
    pub fn new(provision: Provision, deadline: SimDuration) -> Self {
        TenantConfig {
            provision,
            deadline,
        }
    }
}

/// Merges per-tenant workloads into one arrival stream, returning the
/// merged workload and the tenant owning each request (indexed by
/// [`RequestId`]).
///
/// # Examples
///
/// ```
/// use gqos_core::merge_tenants;
/// use gqos_trace::{SimTime, Workload};
///
/// let a = Workload::from_arrivals([SimTime::from_millis(1)]);
/// let b = Workload::from_arrivals([SimTime::from_millis(2)]);
/// let (merged, owners) = merge_tenants(&[&a, &b]);
/// assert_eq!(merged.len(), 2);
/// assert_eq!(owners[0].index(), 0);
/// assert_eq!(owners[1].index(), 1);
/// ```
pub fn merge_tenants(workloads: &[&Workload]) -> (Workload, Vec<TenantId>) {
    // Tag each request with its tenant through the block field being
    // irrelevant here: collect (arrival order) pairs then sort stably.
    let mut tagged: Vec<(Request, TenantId)> = Vec::new();
    for (t, w) in workloads.iter().enumerate() {
        for r in w.iter() {
            tagged.push((*r, TenantId::new(t)));
        }
    }
    tagged.sort_by_key(|(r, _)| r.arrival);
    let owners: Vec<TenantId> = tagged.iter().map(|&(_, t)| t).collect();
    let merged = Workload::from_requests(tagged.into_iter().map(|(r, _)| r));
    (merged, owners)
}

/// The two-level multi-tenant scheduler.
///
/// Drive it with the exact workload returned by [`merge_tenants`] — request
/// identities index the ownership table.
///
/// Completion classes encode `(tenant, class)` as
/// [`TenantId::primary_class`] / [`TenantId::overflow_class`], so a
/// [`RunReport`](gqos_sim::RunReport) yields per-tenant statistics via
/// `stats_for`.
///
/// # Examples
///
/// ```
/// use gqos_core::{merge_tenants, MultiTenantScheduler, Provision, TenantConfig, TenantId};
/// use gqos_sim::{simulate, FixedRateServer};
/// use gqos_trace::{Iops, SimDuration, SimTime, Workload};
///
/// let a = Workload::from_arrivals(vec![SimTime::ZERO; 4]);
/// let b = Workload::from_arrivals(vec![SimTime::from_millis(5); 4]);
/// let (merged, owners) = merge_tenants(&[&a, &b]);
/// let config = TenantConfig::new(
///     Provision::new(Iops::new(200.0), Iops::new(50.0)),
///     SimDuration::from_millis(20),
/// );
/// let scheduler = MultiTenantScheduler::new(vec![config, config], owners);
/// let report = simulate(&merged, scheduler, FixedRateServer::new(Iops::new(500.0)));
/// assert_eq!(report.completed(), 8);
/// assert!(report.completed_in(TenantId::new(0).primary_class()) > 0);
/// ```
pub struct MultiTenantScheduler {
    tenants: Vec<TenantState>,
    owners: Vec<TenantId>,
    flows: FlowPlan,
}

/// How the shared server splits capacity across tenant classes.
enum FlowPlan {
    /// One flat weight per (tenant, class): a tenant's idle class donates
    /// its share to *everyone*.
    Flat(Sfq),
    /// Two levels: tenants by total provision, classes within each tenant —
    /// a tenant's idle class donates to its *own* other class first.
    Hierarchical(HierarchicalSfq),
}

struct TenantState {
    config: TenantConfig,
    rtt: RttClassifier,
}

impl MultiTenantScheduler {
    /// Creates a scheduler for the given tenants and ownership table
    /// (from [`merge_tenants`]).
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty, more than 127 tenants are configured
    /// (class encoding limit), any owner index is out of range, or any
    /// tenant's RTT bound `⌊Cmin·δ⌋` is zero.
    pub fn new(configs: Vec<TenantConfig>, owners: Vec<TenantId>) -> Self {
        assert!(!configs.is_empty(), "at least one tenant is required");
        // Flow layout: 2 flat flows per tenant — primary_i at weight
        // Cmin_i, overflow_i at weight delta_c_i.
        let mut weights = Vec::with_capacity(configs.len() * 2);
        for c in &configs {
            weights.push(c.provision.cmin().get());
            weights.push(c.provision.delta_c().get());
        }
        Self::build(configs, owners, FlowPlan::Flat(Sfq::new(&weights)))
    }

    /// Creates a scheduler with *hierarchical* sharing: tenants split the
    /// server by total provision, and each tenant splits its own share
    /// `Cmin_i : ΔC_i` between its classes — so a tenant's idle overflow
    /// budget boosts its own primary class before helping neighbours.
    ///
    /// # Panics
    ///
    /// Same conditions as [`MultiTenantScheduler::new`].
    pub fn hierarchical(configs: Vec<TenantConfig>, owners: Vec<TenantId>) -> Self {
        assert!(!configs.is_empty(), "at least one tenant is required");
        let spec: Vec<(f64, Vec<f64>)> = configs
            .iter()
            .map(|c| {
                (
                    c.provision.total().get(),
                    vec![c.provision.cmin().get(), c.provision.delta_c().get()],
                )
            })
            .collect();
        Self::build(
            configs,
            owners,
            FlowPlan::Hierarchical(HierarchicalSfq::new(&spec)),
        )
    }

    fn build(configs: Vec<TenantConfig>, owners: Vec<TenantId>, flows: FlowPlan) -> Self {
        assert!(!configs.is_empty(), "at least one tenant is required");
        assert!(
            configs.len() <= 127,
            "at most 127 tenants are supported (class encoding)"
        );
        assert!(
            owners.iter().all(|t| t.index() < configs.len()),
            "ownership table references an unknown tenant"
        );
        let tenants = configs
            .into_iter()
            .map(|config| TenantState {
                rtt: RttClassifier::new(config.provision.cmin(), config.deadline),
                config,
            })
            .collect();
        MultiTenantScheduler {
            tenants,
            owners,
            flows,
        }
    }

    /// Number of tenants.
    pub fn tenants(&self) -> usize {
        self.tenants.len()
    }

    /// The configuration of one tenant.
    pub fn config(&self, tenant: TenantId) -> TenantConfig {
        self.tenants[tenant.index()].config
    }

    /// The total capacity the tenants' provisions add up to — what the
    /// shared server should be provisioned with.
    pub fn required_capacity(&self) -> Iops {
        Iops::new(
            self.tenants
                .iter()
                .map(|t| t.config.provision.total().get())
                .sum(),
        )
    }

    fn owner_of(&self, id: RequestId) -> TenantId {
        *self
            .owners
            .get(id.as_usize())
            .expect("request outside the merged workload")
    }
}

impl Scheduler for MultiTenantScheduler {
    fn on_arrival(&mut self, request: Request, _now: SimTime) {
        let tenant = self.owner_of(request.id);
        let t = tenant.index();
        let class = self.tenants[t].rtt.classify();
        let leaf = usize::from(class != ServiceClass::PRIMARY);
        match &mut self.flows {
            FlowPlan::Flat(sfq) => sfq.enqueue(FlowId::new(t * 2 + leaf), request),
            FlowPlan::Hierarchical(h) => h.enqueue_leaf(LeafId { group: t, leaf }, request),
        }
    }

    fn next_for(&mut self, _server: ServerId, _now: SimTime) -> Dispatch {
        let served = match &mut self.flows {
            FlowPlan::Flat(sfq) => sfq
                .dequeue()
                .map(|(flow, r)| (flow.index() / 2, flow.index() % 2, r)),
            FlowPlan::Hierarchical(h) => {
                h.dequeue_leaf().map(|(leaf, r)| (leaf.group, leaf.leaf, r))
            }
        };
        match served {
            Some((t, leaf, request)) => {
                let tenant = TenantId::new(t);
                let class = if leaf == 0 {
                    tenant.primary_class()
                } else {
                    tenant.overflow_class()
                };
                Dispatch::Serve(request, class)
            }
            None => Dispatch::Idle,
        }
    }

    fn on_completion(&mut self, _request: &Request, class: ServiceClass, _now: SimTime) {
        if class.index().is_multiple_of(2) {
            let tenant = (class.index() / 2) as usize;
            self.tenants[tenant].rtt.primary_departed();
        }
    }

    fn pending(&self) -> usize {
        match &self.flows {
            FlowPlan::Flat(sfq) => sfq.len(),
            FlowPlan::Hierarchical(h) => h.len(),
        }
    }
}

impl fmt::Debug for MultiTenantScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MultiTenantScheduler")
            .field("tenants", &self.tenants.len())
            .field("pending", &self.pending())
            .finish_non_exhaustive()
    }
}

impl fmt::Display for MultiTenantScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "multi-tenant shaper ({} tenants, {} pending, {:.0} IOPS required)",
            self.tenants.len(),
            self.pending(),
            self.required_capacity().get()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqos_sim::{simulate, FixedRateServer, RunReport};

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn dms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn config(cmin: f64, delta: f64, deadline_ms: u64) -> TenantConfig {
        TenantConfig::new(
            Provision::new(Iops::new(cmin), Iops::new(delta)),
            dms(deadline_ms),
        )
    }

    fn run(workloads: &[&Workload], configs: Vec<TenantConfig>, capacity: f64) -> RunReport {
        let (merged, owners) = merge_tenants(workloads);
        let scheduler = MultiTenantScheduler::new(configs, owners);
        simulate(
            &merged,
            scheduler,
            FixedRateServer::new(Iops::new(capacity)),
        )
    }

    #[test]
    fn merge_tenants_tags_by_origin() {
        let a = Workload::from_arrivals([ms(3), ms(1)]);
        let b = Workload::from_arrivals([ms(2)]);
        let (merged, owners) = merge_tenants(&[&a, &b]);
        assert_eq!(merged.len(), 3);
        // Sorted arrivals: 1 (a), 2 (b), 3 (a).
        assert_eq!(
            owners,
            vec![TenantId::new(0), TenantId::new(1), TenantId::new(0)]
        );
    }

    #[test]
    fn class_encoding_round_trips() {
        let t = TenantId::new(3);
        assert_eq!(t.primary_class().index(), 6);
        assert_eq!(t.overflow_class().index(), 7);
        assert_eq!(t.to_string(), "tenant3");
        assert_eq!(t.index(), 3);
    }

    #[test]
    fn smooth_tenants_all_meet_their_deadlines() {
        let a = Workload::from_arrivals((0..100).map(|i| ms(i * 10)));
        let b = Workload::from_arrivals((0..100).map(|i| ms(i * 10 + 5)));
        let cfg = config(200.0, 20.0, 20);
        let report = run(&[&a, &b], vec![cfg, cfg], 440.0);
        assert_eq!(report.completed(), 200);
        for t in [TenantId::new(0), TenantId::new(1)] {
            let stats = report.stats_for(t.primary_class());
            assert_eq!(stats.len(), 100, "{t} lost requests to overflow");
            assert!(stats.max().unwrap() <= dms(20), "{t} missed deadlines");
        }
    }

    #[test]
    fn bursty_tenant_cannot_hurt_its_neighbour() {
        // Tenant 0: smooth 100 IOPS. Tenant 1: an overwhelming burst.
        let a = Workload::from_arrivals((0..200).map(|i| ms(i * 10)));
        let mut burst: Vec<SimTime> = vec![ms(500); 300];
        burst.extend((0..50).map(|i| ms(i * 40)));
        let b = Workload::from_arrivals(burst);
        let cfg_a = config(200.0, 20.0, 20);
        let cfg_b = config(200.0, 20.0, 20);
        let report = run(&[&a, &b], vec![cfg_a, cfg_b], 440.0);
        let t0 = report.stats_for(TenantId::new(0).primary_class());
        assert_eq!(t0.len(), 200, "tenant 0 requests diverted");
        assert!(
            t0.fraction_within(dms(20)) > 0.99,
            "tenant 0 hurt by tenant 1's burst: {:.3}",
            t0.fraction_within(dms(20))
        );
        // Tenant 1's own burst went to its overflow class instead.
        assert!(report.completed_in(TenantId::new(1).overflow_class()) > 100);
    }

    #[test]
    fn per_tenant_deadlines_can_differ() {
        let a = Workload::from_arrivals(vec![ms(0); 4]);
        let b = Workload::from_arrivals(vec![ms(0); 4]);
        // Tenant 0: tight 10 ms bound (maxQ1 = 2); tenant 1: loose 100 ms
        // (maxQ1 = 20).
        let report = run(
            &[&a, &b],
            vec![config(200.0, 20.0, 10), config(200.0, 20.0, 100)],
            440.0,
        );
        assert_eq!(report.completed_in(TenantId::new(0).primary_class()), 2);
        assert_eq!(report.completed_in(TenantId::new(0).overflow_class()), 2);
        assert_eq!(report.completed_in(TenantId::new(1).primary_class()), 4);
    }

    #[test]
    fn required_capacity_sums_provisions() {
        let s = MultiTenantScheduler::new(
            vec![config(200.0, 20.0, 20), config(300.0, 30.0, 20)],
            vec![],
        );
        assert_eq!(s.required_capacity().get(), 550.0);
        assert_eq!(s.tenants(), 2);
        assert_eq!(s.config(TenantId::new(1)).provision.cmin().get(), 300.0);
        assert!(s.to_string().contains("2 tenants"));
        assert!(format!("{s:?}").contains("MultiTenantScheduler"));
    }

    #[test]
    fn hierarchical_mode_completes_and_isolates() {
        let a = Workload::from_arrivals((0..100).map(|i| ms(i * 10)));
        let mut burst: Vec<SimTime> = vec![ms(300); 200];
        burst.extend((0..50).map(|i| ms(i * 20)));
        let b = Workload::from_arrivals(burst);
        let (merged, owners) = merge_tenants(&[&a, &b]);
        let cfg = config(200.0, 20.0, 20);
        let scheduler = MultiTenantScheduler::hierarchical(vec![cfg, cfg], owners);
        let report = simulate(&merged, scheduler, FixedRateServer::new(Iops::new(440.0)));
        assert_eq!(report.completed(), merged.len());
        let t0 = report.stats_for(TenantId::new(0).primary_class());
        assert!(t0.fraction_within(dms(20)) > 0.99);
    }

    #[test]
    fn hierarchical_keeps_idle_share_inside_the_tenant() {
        // Tenant 0: an overflow-only burst (its primary bound is 1 slot and
        // it never refills). Tenant 1: a steady all-primary stream that
        // keeps its heavy flow busy. Under flat weights the only active
        // flows are o0 (weight 20) and p1 (weight 180): tenant 0 gets ~10%
        // of the server. Under hierarchical sharing the tenants split
        // 50:50 regardless of which class is active.
        let share_of_tenant0 = |hier: bool| -> f64 {
            let burst0 = Workload::from_arrivals(vec![ms(0); 300]);
            // 400/s offered: tenant 1's primary flow stays backlogged.
            let w1 =
                Workload::from_arrivals((0..800).map(|i| SimTime::from_micros(i as u64 * 2500)));
            let (merged, owners) = merge_tenants(&[&burst0, &w1]);
            let cfg0 = config(180.0, 20.0, 10); // maxQ1 = 1: all overflow
            let cfg1 = config(180.0, 20.0, 100); // maxQ1 = 18: all primary
            let scheduler = if hier {
                MultiTenantScheduler::hierarchical(vec![cfg0, cfg1], owners)
            } else {
                MultiTenantScheduler::new(vec![cfg0, cfg1], owners)
            };
            let report = simulate(&merged, scheduler, FixedRateServer::new(Iops::new(400.0)));
            // Count tenant 0 completions in the first 200 dispatches.
            let mut records: Vec<_> = report.records().to_vec();
            records.sort_by_key(|r| r.dispatched);
            let t0 = records
                .iter()
                .take(200)
                .filter(|r| r.class.index() / 2 == 0)
                .count();
            t0 as f64 / 200.0
        };
        let flat = share_of_tenant0(false);
        let hier = share_of_tenant0(true);
        assert!(
            hier > flat + 0.15,
            "hierarchical {hier:.2} should beat flat {flat:.2} for the overflow-only tenant"
        );
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn empty_tenants_rejected() {
        let _ = MultiTenantScheduler::new(vec![], vec![]);
    }

    #[test]
    #[should_panic(expected = "unknown tenant")]
    fn owner_table_validated() {
        let _ = MultiTenantScheduler::new(vec![config(100.0, 10.0, 20)], vec![TenantId::new(5)]);
    }

    #[test]
    #[should_panic(expected = "outside the merged workload")]
    fn foreign_workload_detected() {
        let a = Workload::from_arrivals([ms(0)]);
        let (_, owners) = merge_tenants(&[&a]);
        let scheduler = MultiTenantScheduler::new(vec![config(100.0, 10.0, 20)], owners);
        // A two-request workload was never merged: the second id is unknown.
        let w = Workload::from_arrivals([ms(0), ms(1)]);
        let _ = simulate(&w, scheduler, FixedRateServer::new(Iops::new(100.0)));
    }
}
