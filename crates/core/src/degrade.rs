//! Graceful QoS degradation: the adaptive control loop that keeps Q1
//! honest when the server itself misbehaves.
//!
//! The paper's guarantee — every admitted request finishes within `δ` —
//! rests on the server actually delivering `Cmin`. When effective capacity
//! drops (rebuilds, flushes, outages), holding `maxQ1 = ⌊Cmin·δ⌋` silently
//! converts the guarantee into a lie. The graceful alternative implemented
//! here renegotiates the guarantee *downward in graduated steps*: a
//! [`DegradationController`] tracks `C_eff/C` from observed service times
//! (via [`CapacityEstimator`]) and walks a [`DegradationPolicy`] ladder;
//! every step change calls [`CapacityAdaptive::renegotiate`] on the
//! scheduler, which shrinks the RTT bound to `⌊C_eff·δ⌋` — shedding *new*
//! arrivals to Q2 rather than letting queued Q1 requests miss — and
//! recomputes Miser slack and FairQueue weights against `C_eff`.
//!
//! [`AdaptiveScheduler`] wires the loop into any recombination scheduler
//! without touching the engine: it observes dispatches and completions from
//! inside the [`Scheduler`] interface.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use gqos_faults::CapacityEstimator;
use gqos_sim::{
    Dispatch, FcfsScheduler, Scheduler, ServerId, ServiceClass, TraceEvent, TraceHandle,
};
use gqos_trace::{Iops, Request, RequestId, SimDuration, SimTime};

/// The graduated ladder of renegotiated capacity fractions, descending from
/// 1.0 (healthy), plus the headroom margin used when climbing back up.
///
/// Degradation is immediate (jump straight to the step matching the
/// estimate — shedding late is how deadlines get missed) while recovery is
/// deliberate: one step at a time, and only after
/// [`recovery_patience`](DegradationPolicy::recovery_patience) consecutive
/// healthy observations, so a flapping server does not whipsaw the
/// admission bound.
#[derive(Clone, PartialEq, Debug)]
pub struct DegradationPolicy {
    steps: Vec<f64>,
    margin: f64,
    recovery_patience: u32,
}

impl DegradationPolicy {
    /// Creates a policy from a descending ladder of capacity fractions.
    ///
    /// `margin` is the relative headroom for step selection (a step `s`
    /// matches an estimate `e` when `s ≤ e·(1 + margin)`), and
    /// `recovery_patience` the number of consecutive better-than-current
    /// observations required before climbing one step.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty, does not start at 1.0, is not strictly
    /// descending, contains a non-positive entry, or `margin` is negative.
    pub fn new(steps: Vec<f64>, margin: f64, recovery_patience: u32) -> Self {
        assert!(!steps.is_empty(), "degradation ladder must not be empty");
        assert_eq!(steps[0], 1.0, "degradation ladder must start at 1.0");
        assert!(
            steps.windows(2).all(|w| w[0] > w[1]),
            "degradation ladder must be strictly descending"
        );
        assert!(
            steps.iter().all(|&s| s.is_finite() && s > 0.0),
            "degradation steps must be finite and positive"
        );
        assert!(
            margin.is_finite() && margin >= 0.0,
            "margin must be finite and non-negative"
        );
        DegradationPolicy {
            steps,
            margin,
            recovery_patience,
        }
    }

    /// The ladder of capacity fractions, descending from 1.0.
    pub fn steps(&self) -> &[f64] {
        &self.steps
    }

    /// The capacity fraction at `level` (0 = healthy).
    pub fn factor_at(&self, level: usize) -> f64 {
        self.steps[level]
    }

    /// The deepest (most conservative) ladder level whose fraction the
    /// estimate still supports, with headroom `margin`.
    fn level_for(&self, estimate: f64) -> usize {
        let ceiling = estimate * (1.0 + self.margin);
        self.steps
            .iter()
            .position(|&s| s <= ceiling)
            .unwrap_or(self.steps.len() - 1)
    }

    /// Number of healthy observations required before climbing a step.
    pub fn recovery_patience(&self) -> u32 {
        self.recovery_patience
    }
}

impl Default for DegradationPolicy {
    /// The ladder used throughout the experiments:
    /// `[1.0, 0.9, 0.75, 0.5, 0.25, 0.1]`, 2% headroom, patience 8.
    fn default() -> Self {
        DegradationPolicy::new(vec![1.0, 0.9, 0.75, 0.5, 0.25, 0.1], 0.02, 8)
    }
}

/// Tracks the effective capacity online and decides when to renegotiate.
///
/// Feed it one `(observed, nominal)` service-time pair per completion; it
/// returns `Some(new_factor)` whenever the graduated level changes.
///
/// On a healthy server every observation is exactly 1.0, the estimator
/// never moves off its 1.0 fixed point, and the controller never fires —
/// which is what keeps fault-free runs byte-identical to unadapted ones.
#[derive(Clone, Debug)]
pub struct DegradationController {
    policy: DegradationPolicy,
    estimator: CapacityEstimator,
    level: usize,
    recovery_streak: u32,
}

impl DegradationController {
    /// Creates a controller with the given policy and estimator window.
    pub fn new(policy: DegradationPolicy, window: usize) -> Self {
        DegradationController {
            policy,
            estimator: CapacityEstimator::new(window),
            level: 0,
            recovery_streak: 0,
        }
    }

    /// The current renegotiated capacity fraction `φ̂` — what admission
    /// control believes the server can sustain.
    pub fn factor(&self) -> f64 {
        self.policy.factor_at(self.level)
    }

    /// The raw capacity estimate `C_eff/C` the ladder quantises.
    pub fn estimate(&self) -> f64 {
        self.estimator.estimate()
    }

    /// `true` while the ladder sits below the nominal rung — the freeze
    /// signal for the SLO-window feedback controller's non-interference
    /// rule: latencies observed against a degraded server say nothing
    /// about a tenant's *share*, so the share loop must hold rather than
    /// fight the ladder's renegotiation.
    pub fn is_degraded(&self) -> bool {
        self.level > 0
    }

    /// Folds one completion into the estimate; returns the new factor if
    /// the graduated level changed.
    pub fn observe(&mut self, observed: SimDuration, nominal: SimDuration) -> Option<f64> {
        let estimate = self.estimator.observe(observed, nominal);
        let target = self.policy.level_for(estimate);
        if target > self.level {
            // Degrade immediately, straight to the supported level.
            self.level = target;
            self.recovery_streak = 0;
            return Some(self.factor());
        }
        if target < self.level {
            self.recovery_streak += 1;
            if self.recovery_streak > self.policy.recovery_patience() {
                // Recover gradually: one rung per patience run.
                self.level -= 1;
                self.recovery_streak = 0;
                return Some(self.factor());
            }
        } else {
            self.recovery_streak = 0;
        }
        None
    }
}

impl fmt::Display for DegradationController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "degradation level {} (factor {:.2}, estimate {:.3})",
            self.level,
            self.factor(),
            self.estimate()
        )
    }
}

/// A scheduler whose admission bound can be renegotiated against an
/// estimated effective capacity — the contract [`AdaptiveScheduler`]
/// drives.
pub trait CapacityAdaptive: Scheduler {
    /// Renegotiates the guarantee for `C_eff = factor · C`: shrink the RTT
    /// bound, recompute slack/weights. `factor` is in `[0, 1]`.
    fn renegotiate(&mut self, factor: f64);

    /// The currently negotiated factor.
    fn degradation_factor(&self) -> f64;

    /// Pending primary (Q1) requests — used to detect, around an arrival,
    /// whether it was admitted to Q1.
    fn primary_backlog(&self) -> u64;
}

/// The unshaped baseline has no admission bound to renegotiate; the
/// degradation invariant is vacuous for it.
impl CapacityAdaptive for FcfsScheduler {
    fn renegotiate(&mut self, _factor: f64) {}

    fn degradation_factor(&self) -> f64 {
        1.0
    }

    fn primary_backlog(&self) -> u64 {
        0
    }
}

/// One Q1 admission, as witnessed by an [`AdaptiveScheduler`]: which
/// request, when, and what capacity fraction admission control believed in
/// at that instant. The degradation invariant quantifies over these
/// records: if the server actually sustained `factor` over the request's
/// deadline window, the request met its deadline.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct AdmissionRecord {
    /// The admitted request.
    pub id: RequestId,
    /// Admission instant.
    pub at: SimTime,
    /// The controller's negotiated capacity fraction `φ̂` at admission.
    pub factor: f64,
}

/// Shared handle to an [`AdaptiveScheduler`]'s admission log.
pub type AdmissionLog = Rc<RefCell<Vec<AdmissionRecord>>>;

/// Wraps a recombination scheduler with the degradation control loop:
/// per-completion capacity estimation, graduated renegotiation, and an
/// optional admission log for auditing the degradation invariant.
///
/// The wrapper is transparent to the engine — it implements [`Scheduler`]
/// by delegation, recording dispatch instants in [`next_for`] and deriving
/// observed service times in [`on_completion`]. With a healthy server the
/// controller never fires and the wrapped scheduler behaves identically to
/// an unwrapped one.
///
/// [`next_for`]: Scheduler::next_for
/// [`on_completion`]: Scheduler::on_completion
#[derive(Debug)]
pub struct AdaptiveScheduler<S> {
    inner: S,
    controller: DegradationController,
    /// Nominal (healthy) service time per server, indexed by [`ServerId`].
    nominals: Vec<SimDuration>,
    /// `(request, dispatch instant, server)` for requests in service.
    in_flight: Vec<(RequestId, SimTime, usize)>,
    log: Option<AdmissionLog>,
    trace: TraceHandle,
}

impl<S: CapacityAdaptive> AdaptiveScheduler<S> {
    /// Wraps `inner`; `server_rates` lists the nominal capacity of each
    /// server in [`ServerId`] order (needed to translate observed service
    /// times into capacity fractions).
    ///
    /// # Panics
    ///
    /// Panics if `server_rates` is empty.
    pub fn new(inner: S, controller: DegradationController, server_rates: &[Iops]) -> Self {
        assert!(!server_rates.is_empty(), "at least one server rate needed");
        AdaptiveScheduler {
            inner,
            controller,
            nominals: server_rates.iter().map(|r| r.service_time()).collect(),
            in_flight: Vec::new(),
            log: None,
            trace: TraceHandle::disabled(),
        }
    }

    /// Enables admission logging and returns the shared log handle.
    pub fn with_admission_log(mut self) -> (Self, AdmissionLog) {
        let log: AdmissionLog = Rc::new(RefCell::new(Vec::new()));
        self.log = Some(Rc::clone(&log));
        (self, log)
    }

    /// Emits a `DegradationChanged` event into `trace` at every graduated
    /// rung change (both degradations and recoveries).
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    /// The wrapped scheduler.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The controller's current view of the server.
    pub fn controller(&self) -> &DegradationController {
        &self.controller
    }
}

impl<S: CapacityAdaptive> Scheduler for AdaptiveScheduler<S> {
    fn on_arrival(&mut self, request: Request, now: SimTime) {
        let id = request.id;
        let before = self.inner.primary_backlog();
        self.inner.on_arrival(request, now);
        if let Some(log) = &self.log {
            if self.inner.primary_backlog() > before {
                log.borrow_mut().push(AdmissionRecord {
                    id,
                    at: now,
                    factor: self.controller.factor(),
                });
            }
        }
    }

    fn next_for(&mut self, server: ServerId, now: SimTime) -> Dispatch {
        let dispatch = self.inner.next_for(server, now);
        if let Dispatch::Serve(request, _) = &dispatch {
            self.in_flight.push((request.id, now, server.index()));
        }
        dispatch
    }

    fn on_completion(&mut self, request: &Request, class: ServiceClass, now: SimTime) {
        self.inner.on_completion(request, class, now);
        if let Some(pos) = self
            .in_flight
            .iter()
            .position(|&(id, _, _)| id == request.id)
        {
            let (_, dispatched, server) = self.in_flight.swap_remove(pos);
            let observed = now.saturating_duration_since(dispatched);
            let nominal = self.nominals[server];
            let before = self.controller.factor();
            if let Some(factor) = self.controller.observe(observed, nominal) {
                self.trace.emit_with(|| TraceEvent::DegradationChanged {
                    at: now,
                    from_factor: before,
                    to_factor: factor,
                });
                self.inner.renegotiate(factor);
            }
        }
    }

    fn pending(&self) -> usize {
        self.inner.pending()
    }
}

impl<S: CapacityAdaptive + fmt::Display> fmt::Display for AdaptiveScheduler<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "adaptive[{}] {}", self.controller, self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miser::MiserScheduler;
    use crate::target::Provision;

    fn dms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn ladder_selection_with_margin() {
        let p = DegradationPolicy::default();
        assert_eq!(p.level_for(1.0), 0);
        // 2% headroom lets a near-healthy estimate count as healthy.
        assert_eq!(p.level_for(0.985), 0);
        assert_eq!(p.level_for(0.6), 3); // 0.5 rung
        assert_eq!(p.level_for(0.05), 5); // below the ladder: deepest rung
        assert_eq!(p.factor_at(5), 0.1);
        assert_eq!(p.steps().len(), 6);
        assert_eq!(p.recovery_patience(), 8);
    }

    #[test]
    fn controller_degrades_fast_and_recovers_slowly() {
        let mut c = DegradationController::new(DegradationPolicy::default(), 4);
        assert_eq!(c.factor(), 1.0);
        // A burst of 4x service times: degrade within a few completions.
        let mut changed = None;
        for _ in 0..20 {
            if let Some(f) = c.observe(dms(40), dms(10)) {
                changed = Some(f);
            }
        }
        let degraded = changed.expect("controller never degraded");
        assert!(degraded <= 0.5, "degraded factor {degraded}");
        // Healthy again: recovery takes at least `patience` observations
        // per rung and climbs one rung at a time.
        let mut upgrades = Vec::new();
        for _ in 0..200 {
            if let Some(f) = c.observe(dms(10), dms(10)) {
                upgrades.push(f);
            }
        }
        assert!(!upgrades.is_empty(), "controller never recovered");
        assert!(
            upgrades.windows(2).all(|w| w[0] < w[1]),
            "recovery must climb monotonically: {upgrades:?}"
        );
        assert_eq!(*upgrades.last().unwrap(), 1.0, "full recovery expected");
        assert!(c.to_string().contains("level 0"));
    }

    #[test]
    fn healthy_observations_never_fire() {
        let mut c = DegradationController::new(DegradationPolicy::default(), 16);
        for _ in 0..10_000 {
            assert_eq!(c.observe(dms(10), dms(10)), None);
        }
        assert_eq!(c.factor(), 1.0);
        assert_eq!(c.estimate(), 1.0);
    }

    #[test]
    fn adaptive_wrapper_sheds_under_degradation() {
        // Miser with maxQ1 = 5; a stream of 3x-stretched completions must
        // shrink the bound and start shedding.
        let p = Provision::new(Iops::new(100.0), Iops::new(100.0));
        let inner = MiserScheduler::new(p, dms(50));
        let controller = DegradationController::new(DegradationPolicy::default(), 4);
        let (mut s, log) =
            AdaptiveScheduler::new(inner, controller, &[p.total()]).with_admission_log();

        let mut now = SimTime::ZERO;
        // Drive dispatch/complete cycles with 3x the nominal 5 ms service.
        for id in 0..30u64 {
            let r = Request::at(now).with_id(RequestId::new(id));
            s.on_arrival(r, now);
            if let Dispatch::Serve(req, class) = s.next_for(ServerId::new(0), now) {
                now += dms(15); // nominal is 5 ms at 200 IOPS
                s.on_completion(&req, class, now);
            }
        }
        assert!(
            s.controller().factor() < 1.0,
            "controller failed to degrade: {}",
            s.controller()
        );
        assert!(s.inner().to_string().contains("Miser("));
        let records = log.borrow();
        assert!(!records.is_empty());
        // Later admissions carry the degraded factor.
        assert!(records.last().unwrap().factor < 1.0);
        assert!(records.first().unwrap().factor == 1.0);
    }

    #[test]
    fn fcfs_is_vacuously_adaptive() {
        let mut s = FcfsScheduler::new();
        s.renegotiate(0.1);
        assert_eq!(s.degradation_factor(), 1.0);
        assert_eq!(s.primary_backlog(), 0);
    }

    #[test]
    #[should_panic(expected = "must start at 1.0")]
    fn ladder_must_start_healthy() {
        let _ = DegradationPolicy::new(vec![0.9, 0.5], 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "strictly descending")]
    fn ladder_must_descend() {
        let _ = DegradationPolicy::new(vec![1.0, 0.5, 0.5], 0.0, 1);
    }
}
