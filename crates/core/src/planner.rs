//! Capacity planning: the binary search of Section 2.2.
//!
//! Given a workload profile, a response-time bound `δ`, and a guaranteed
//! fraction `f`, find the minimum capacity `Cmin` such that RTT decomposition
//! puts at least a fraction `f` of requests in the primary class. Because
//! RTT is optimal, no capacity below `Cmin` can guarantee `f` under *any*
//! partitioning — so the search yields the true provisioning requirement.

use std::fmt;

use gqos_parallel::WorkerPool;
use gqos_trace::{Iops, SimDuration, Workload};

use crate::kernel::{overflow_curve, overflow_curve_ns, within_miss_budget_multi_ns, LANE_BATCH};
use crate::rtt::{overflow_count, within_miss_budget};
use crate::target::{Provision, QosTarget};

/// Why an SLA-menu request was rejected: a guaranteed fraction that is not
/// a real number in `(0, 1]`. Returned by [`CapacityPlanner::try_menu`]
/// and [`CapacityPlanner::try_menu_parallel`]; the panicking wrappers
/// ([`menu`](CapacityPlanner::menu),
/// [`menu_parallel`](CapacityPlanner::menu_parallel)) panic with the same
/// message.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum MenuError {
    /// The fraction at `index` is NaN or infinite.
    NotFinite {
        /// Position of the offending fraction in the request.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// The fraction at `index` is outside the guaranteeable range `(0, 1]`.
    OutOfRange {
        /// Position of the offending fraction in the request.
        index: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for MenuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MenuError::NotFinite { index, value } => write!(
                f,
                "menu fraction #{index} must be a finite number (got {value})"
            ),
            MenuError::OutOfRange { index, value } => {
                write!(f, "menu fraction #{index} must be in (0, 1]: got {value}")
            }
        }
    }
}

impl std::error::Error for MenuError {}

/// Validates a menu request: every fraction finite and in `(0, 1]`.
fn validate_fractions(fractions: &[f64]) -> Result<(), MenuError> {
    for (index, &value) in fractions.iter().enumerate() {
        if !value.is_finite() {
            return Err(MenuError::NotFinite { index, value });
        }
        if value <= 0.0 || value > 1.0 {
            return Err(MenuError::OutOfRange { index, value });
        }
    }
    Ok(())
}

/// Plans capacity for one workload at a fixed deadline.
///
/// # Examples
///
/// ```
/// use gqos_core::CapacityPlanner;
/// use gqos_trace::{SimDuration, SimTime, Workload};
///
/// // A burst of 10 simultaneous requests, then silence.
/// let w = Workload::from_arrivals(vec![SimTime::ZERO; 10]);
/// let planner = CapacityPlanner::new(&w, SimDuration::from_millis(10));
/// // All 10 within 10 ms needs 1000 IOPS; 50% needs only 500.
/// assert_eq!(planner.min_capacity(1.0).get(), 1000.0);
/// assert_eq!(planner.min_capacity(0.5).get(), 500.0);
/// ```
#[derive(Clone, Debug)]
pub struct CapacityPlanner<'w> {
    workload: &'w Workload,
    deadline: SimDuration,
}

impl<'w> CapacityPlanner<'w> {
    /// Creates a planner for `workload` with response-time bound `deadline`.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero.
    pub fn new(workload: &'w Workload, deadline: SimDuration) -> Self {
        assert!(!deadline.is_zero(), "deadline must be positive");
        CapacityPlanner { workload, deadline }
    }

    /// The deadline being planned for.
    pub fn deadline(&self) -> SimDuration {
        self.deadline
    }

    /// Fraction of the workload RTT places in the primary class at
    /// `capacity` (1.0 for an empty workload).
    ///
    /// Runs on the counting kernel ([`overflow_count`]): one allocation-free
    /// pass over the arrival column, no assignment vector.
    pub fn fraction_guaranteed(&self, capacity: Iops) -> f64 {
        if capacity.requests_within(self.deadline) == 0 {
            return if self.workload.is_empty() { 1.0 } else { 0.0 };
        }
        let total = self.workload.len() as u64;
        if total == 0 {
            return 1.0;
        }
        let primary = total - overflow_count(self.workload, capacity, self.deadline);
        primary as f64 / total as f64
    }

    /// [`fraction_guaranteed`](Self::fraction_guaranteed) for a whole
    /// capacity grid, evaluated by the fused [`overflow_curve`] kernel in a
    /// single pass over the workload. Degenerate capacities (`⌊C·δ⌋ = 0`)
    /// yield 0.0 (1.0 on an empty workload), exactly as the scalar method
    /// reports them.
    pub fn fraction_curve(&self, capacities: &[Iops]) -> Vec<f64> {
        let total = self.workload.len() as u64;
        if total == 0 {
            return vec![1.0; capacities.len()];
        }
        overflow_curve(self.workload, capacities, self.deadline)
            .into_iter()
            .map(|overflow| (total - overflow) as f64 / total as f64)
            .collect()
    }

    /// The minimum integer capacity (IOPS) guaranteeing at least `fraction`
    /// of the workload within the deadline — `Cmin(f, δ)`.
    ///
    /// Converges by doubling plus binary search in `O(log C)` RTT probes,
    /// as in the paper. Each probe is budget-bounded
    /// ([`within_miss_budget`]): it aborts as soon as the overflow count
    /// exceeds the miss budget `N − ⌈f·N⌉`, so failing probes (most of the
    /// search) touch only a prefix of the trace.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]`.
    pub fn min_capacity(&self, fraction: f64) -> Iops {
        Iops::new(self.search_cmin(fraction, None) as f64)
    }

    /// `true` when integer `capacity` (IOPS) guarantees at least
    /// `fraction` of the workload within the deadline — **the exact
    /// budget-bounded predicate [`min_capacity`](Self::min_capacity)
    /// bisects on**, exposed so the SLO-window feedback controller's
    /// analytic taps and its controller-vs-oracle tests share it bit for
    /// bit: `meets_fraction(c, f)` ⇔ `c ≥ Cmin(f, δ)` for `c` at or
    /// above the capacity floor.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]`.
    pub fn meets_fraction(&self, capacity: u64, fraction: f64) -> bool {
        assert!(
            fraction.is_finite() && fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]: {fraction}"
        );
        if self.workload.is_empty() {
            return true;
        }
        if capacity == 0 {
            return false;
        }
        let budget = self.miss_budget(fraction);
        within_miss_budget(
            self.workload,
            Iops::new(capacity as f64),
            self.deadline,
            budget,
        )
    }

    /// The miss budget for `fraction` over this workload: the largest
    /// overflow count that still leaves a primary fraction of at least
    /// `fraction` under the exact `primary/total >= fraction` comparison
    /// [`fraction_guaranteed`](Self::fraction_guaranteed) performs.
    fn miss_budget(&self, fraction: f64) -> u64 {
        miss_budget(self.workload.len() as u64, fraction)
    }

    /// Core capacity search. `warm` is a known lower bracket: a capacity
    /// that is minimal for some fraction `f' <= fraction` (so `Cmin` here
    /// is at least `warm`, and `warm − 1` cannot meet the target). The
    /// menu sweep threads each result into the next fraction's search.
    fn search_cmin(&self, fraction: f64, warm: Option<u64>) -> u64 {
        assert!(
            fraction.is_finite() && fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]: {fraction}"
        );
        let floor = self.capacity_floor();
        if self.workload.is_empty() {
            return floor;
        }

        let budget = self.miss_budget(fraction);
        let meets =
            |c: u64| within_miss_budget(self.workload, Iops::new(c as f64), self.deadline, budget);

        // `start` is the least capacity Cmin could be: the domain floor, or
        // the warm bracket from an easier fraction.
        let start = warm.map_or(floor, |w| w.max(floor));
        if meets(start) {
            return start;
        }

        // Grow an upper bound by doubling, keeping the last failing
        // capacity as the lower bracket. The peak burst bounds this: N
        // simultaneous requests need at most N/δ.
        let mut lo = start; // invariant: lo fails, hi meets
        let mut hi = start.max(self.workload.mean_iops().ceil() as u64).max(1);
        while !meets(hi) {
            lo = hi;
            hi = hi.checked_mul(2).expect("capacity search overflow");
        }
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if meets(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }

    /// Smallest capacity with a non-degenerate RTT bound: `C·δ ≥ 1`.
    fn capacity_floor(&self) -> u64 {
        capacity_floor(self.deadline)
    }

    /// The full provision for a target: `Cmin(f, δ)` plus the default
    /// surplus `ΔC = 1/δ`.
    ///
    /// # Panics
    ///
    /// Panics if `target.deadline()` differs from this planner's deadline.
    pub fn provision(&self, target: QosTarget) -> Provision {
        assert_eq!(
            target.deadline(),
            self.deadline,
            "target deadline differs from planner deadline"
        );
        Provision::with_default_surplus(self.min_capacity(target.fraction()), self.deadline)
    }

    /// Evaluates `Cmin` for each fraction, producing one row of the paper's
    /// Table 1.
    ///
    /// The fractions are swept in ascending order (results are returned in
    /// input order regardless): because `Cmin` is monotone in `f`, each
    /// result warm-starts the next search's lower bracket, so the sweep
    /// does one doubling phase for the whole row instead of one per entry.
    ///
    /// # Panics
    ///
    /// Panics with the [`MenuError`] message if any fraction is NaN,
    /// infinite, or outside `(0, 1]` — use [`try_menu`](Self::try_menu)
    /// for a non-panicking rejection path.
    pub fn menu(&self, fractions: &[f64]) -> Vec<SlaQuote> {
        self.try_menu(fractions).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`menu`](Self::menu) that rejects invalid fractions instead of
    /// panicking: every fraction must be finite and in `(0, 1]`, otherwise
    /// the first offender is reported as a [`MenuError`] and no search
    /// runs.
    pub fn try_menu(&self, fractions: &[f64]) -> Result<Vec<SlaQuote>, MenuError> {
        validate_fractions(fractions)?;
        let order = ascending_order(fractions);
        let mut quotes: Vec<Option<SlaQuote>> = vec![None; fractions.len()];
        let mut warm = None;
        for &i in &order {
            let cmin = self.search_cmin(fractions[i], warm);
            warm = Some(cmin);
            quotes[i] = Some(SlaQuote {
                target: QosTarget::new(fractions[i], self.deadline),
                cmin: Iops::new(cmin as f64),
            });
        }
        Ok(quotes
            .into_iter()
            .map(|q| q.expect("every entry filled"))
            .collect())
    }

    /// [`menu`](Self::menu) with the ascending fraction sweep partitioned
    /// into contiguous per-worker ranges over `pool` — byte-identical
    /// quotes, a fraction of the probe work.
    ///
    /// One fused [`overflow_curve`] pass over the doubling seed grid
    /// `⌈1/δ⌉·2^k` (the analytic curve behind
    /// [`fraction_curve`](Self::fraction_curve)) brackets every fraction's
    /// `Cmin` between consecutive grid points before any search runs. The
    /// sorted fractions are then split into contiguous ranges, one per
    /// worker; within a range each result warm-starts the next fraction's
    /// lower bracket exactly as the serial sweep does, and each bracket is
    /// resolved by *wide bisection*: up to [`LANE_BATCH`] interior
    /// capacities probed per fused [`within_miss_budget_multi`] pass,
    /// shrinking the bracket ~9× per pass instead of 2×.
    ///
    /// Every probe answers the same exact integer feasibility question as
    /// the serial search (the fused kernels are bit-equal to the scalar
    /// scans), and both paths return the unique minimal integer capacity
    /// per fraction, so the output is guaranteed identical to
    /// [`menu`](Self::menu)'s, entry for entry — see
    /// `parallel_menu_is_byte_identical` in the tests. With a serial pool
    /// this *is* the warm-started serial sweep.
    ///
    /// # Panics
    ///
    /// Panics with the [`MenuError`] message if any fraction is NaN,
    /// infinite, or outside `(0, 1]` — use
    /// [`try_menu_parallel`](Self::try_menu_parallel) for a non-panicking
    /// rejection path.
    pub fn menu_parallel(&self, fractions: &[f64], pool: &WorkerPool) -> Vec<SlaQuote> {
        self.try_menu_parallel(fractions, pool)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`menu_parallel`](Self::menu_parallel) that rejects invalid
    /// fractions instead of panicking, with the same contract as
    /// [`try_menu`](Self::try_menu).
    pub fn try_menu_parallel(
        &self,
        fractions: &[f64],
        pool: &WorkerPool,
    ) -> Result<Vec<SlaQuote>, MenuError> {
        validate_fractions(fractions)?;
        if pool.is_serial() || fractions.len() <= 1 || self.workload.is_empty() {
            return self.try_menu(fractions);
        }

        // Seed: one fused overflow pass over the doubling grid gives every
        // fraction an exact (failing, meeting] capacity bracket.
        let seed = SeedCurve::new(self.workload, self.deadline);

        // Contiguous per-worker ranges of the ascending sweep.
        let order = ascending_order(fractions);
        let workers = pool.threads().max(1);
        let chunk = order.len().div_ceil(workers);
        let ranges: Vec<Vec<usize>> = order.chunks(chunk).map(<[usize]>::to_vec).collect();

        let resolved: Vec<Vec<(usize, u64)>> = pool.map(ranges, |range| {
            let mut out = Vec::with_capacity(range.len());
            let mut warm = None;
            for i in range {
                let cmin = self.resolve_bracket(fractions[i], &seed, warm);
                warm = Some(cmin);
                out.push((i, cmin));
            }
            out
        });

        let mut quotes: Vec<Option<SlaQuote>> = vec![None; fractions.len()];
        for (i, cmin) in resolved.into_iter().flatten() {
            quotes[i] = Some(SlaQuote {
                target: QosTarget::new(fractions[i], self.deadline),
                cmin: Iops::new(cmin as f64),
            });
        }
        Ok(quotes
            .into_iter()
            .map(|q| q.expect("every entry filled"))
            .collect())
    }

    /// Resolves one fraction's `Cmin` from its seed bracket by wide
    /// bisection. `warm` is the previous (easier) fraction's exact `Cmin`
    /// from the same range: `warm − 1` cannot meet this fraction either
    /// (budgets shrink as `f` grows), so it tightens the lower bracket.
    fn resolve_bracket(&self, fraction: f64, seed: &SeedCurve, warm: Option<u64>) -> u64 {
        let budget = self.miss_budget(fraction);
        let (seed_lo, hi) = seed.bracket(budget);
        let Some(seed_lo) = seed_lo else {
            // The domain floor itself meets the budget: minimal by
            // construction, exactly as the serial search returns `start`.
            return hi;
        };
        let lo = seed_lo.max(warm.unwrap_or(0).saturating_sub(1));
        resolve_cmin_ns(
            self.workload.arrival_column().nanos(),
            self.deadline,
            budget,
            lo,
            hi,
        )
    }
}

/// The miss budget for `fraction` over a workload of `total` requests: the
/// largest overflow count that still leaves a primary fraction of at least
/// `fraction` under the exact `primary/total >= fraction` comparison
/// [`CapacityPlanner::fraction_guaranteed`] performs.
///
/// The smallest integer `need` with `need/total >= fraction` is first
/// estimated in floating point and then adjusted to match f64 division
/// exactly, so budget probes and fraction comparisons can never disagree.
pub(crate) fn miss_budget(total: u64, fraction: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let mut need = ((fraction * total as f64).ceil() as u64).min(total);
    while need > 0 && (need - 1) as f64 / total as f64 >= fraction {
        need -= 1;
    }
    while need < total && (need as f64) / (total as f64) < fraction {
        need += 1;
    }
    total - need
}

/// Smallest capacity with a non-degenerate RTT bound at `deadline`:
/// `C·δ ≥ 1`.
pub(crate) fn capacity_floor(deadline: SimDuration) -> u64 {
    (1.0 / deadline.as_secs_f64()).ceil().max(1.0) as u64
}

/// Wide bisection over a raw arrival column: shrinks the bracket
/// `(lo fails, hi meets]` to the unique minimal integer capacity meeting
/// `budget`, probing up to [`LANE_BATCH`] interior capacities per fused
/// [`within_miss_budget_multi_ns`] pass (~9× bracket shrink per pass
/// instead of 2×). Requires `lo < hi`, `lo` failing and `hi` meeting.
pub(crate) fn resolve_cmin_ns(
    col: &[u64],
    deadline: SimDuration,
    budget: u64,
    mut lo: u64,
    mut hi: u64,
) -> u64 {
    while hi - lo > 1 {
        let width = (hi - lo) as u128;
        let m = (width - 1).min(LANE_BATCH as u128) as u64;
        let point = |i: u64| lo + (width * i as u128 / (m as u128 + 1)) as u64;
        let probes: Vec<(Iops, u64)> = (1..=m)
            .map(|i| (Iops::new(point(i) as f64), budget))
            .collect();
        let verdicts = within_miss_budget_multi_ns(col, &probes, deadline);
        // Overflow is monotone in capacity: the verdicts flip from
        // failing to meeting exactly once across the probes.
        let mut new_lo = lo;
        let mut new_hi = hi;
        for (k, &meets) in verdicts.iter().enumerate() {
            let c = point(k as u64 + 1);
            if meets {
                new_hi = c;
                break;
            }
            new_lo = c;
        }
        (lo, hi) = (new_lo, new_hi);
    }
    hi
}

/// The doubling capacity seed grid `⌈1/δ⌉·2^k` of one workload at one
/// deadline (stopping once `⌊C·δ⌋ ≥ N`, a capacity that admits
/// everything), with its exact overflow counts from one fused
/// [`overflow_curve`] pass.
///
/// Built once per `(workload, deadline)`, a seed curve brackets
/// `Cmin(f, δ)` for *every* fraction at once:
/// [`bracket`](Self::bracket) maps a miss budget to the consecutive grid
/// pair `(failing lo, meeting hi)`, leaving only a narrow bisection to
/// resolve the exact quote. [`CapacityPlanner::menu_parallel`] seeds its
/// worker sweeps with one; the fleet [`QuoteCache`](crate::QuoteCache)
/// keeps one per tenant and memoizes the resolved quotes.
#[derive(Clone, Debug)]
pub struct SeedCurve {
    grid: Vec<u64>,
    counts: Vec<u64>,
}

impl SeedCurve {
    /// Builds the seed curve: one fused overflow pass over the doubling
    /// grid.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero.
    pub fn new(workload: &Workload, deadline: SimDuration) -> Self {
        SeedCurve::from_nanos(workload.arrival_column().nanos(), deadline)
    }

    /// [`new`](Self::new) over a raw sorted arrival column — the fleet
    /// consolidation path holds merged columns, not [`Workload`]s.
    pub(crate) fn from_nanos(col: &[u64], deadline: SimDuration) -> Self {
        assert!(!deadline.is_zero(), "deadline must be positive");
        let n = col.len() as u64;
        let floor = capacity_floor(deadline);
        let mut grid = vec![floor];
        let mut c = floor;
        while Iops::new(c as f64).requests_within(deadline) < n {
            c = c.checked_mul(2).expect("capacity search overflow");
            grid.push(c);
        }
        let capacities: Vec<Iops> = grid.iter().map(|&c| Iops::new(c as f64)).collect();
        let counts = overflow_curve_ns(col, &capacities, deadline);
        SeedCurve { grid, counts }
    }

    /// The doubling capacity grid (IOPS), ascending from the domain floor
    /// `⌈1/δ⌉`.
    pub fn grid(&self) -> &[u64] {
        &self.grid
    }

    /// Exact overflow counts per grid capacity, aligned with
    /// [`grid`](Self::grid); non-increasing, ending at 0.
    pub fn overflow_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The bracket for a miss budget: `(Some(lo), hi)` where `lo` is the
    /// largest grid capacity exceeding the budget and `hi` the smallest
    /// meeting it, or `(None, floor)` when the domain floor already meets
    /// it (then `floor` *is* `Cmin`). A meeting `hi` always exists: the
    /// grid's last capacity admits the whole workload.
    pub fn bracket(&self, budget: u64) -> (Option<u64>, u64) {
        let j = self
            .counts
            .iter()
            .position(|&overflow| overflow <= budget)
            .expect("seed grid tops out at an admit-all capacity");
        if j == 0 {
            (None, self.grid[0])
        } else {
            (Some(self.grid[j - 1]), self.grid[j])
        }
    }
}

/// Indices of `fractions` sorted ascending by value. Callers have already
/// validated the fractions, so the total order is the numeric order.
fn ascending_order(fractions: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..fractions.len()).collect();
    order.sort_by(|&a, &b| fractions[a].total_cmp(&fractions[b]));
    order
}

/// One entry of an SLA menu: a target and its minimum capacity.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct SlaQuote {
    /// The guaranteed target.
    pub target: QosTarget,
    /// The minimum capacity achieving it.
    pub cmin: Iops,
}

impl fmt::Display for SlaQuote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {:.0} IOPS", self.target, self.cmin.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqos_trace::SimTime;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn dms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn burst_full_guarantee_needs_burst_rate() {
        let w = Workload::from_arrivals(vec![SimTime::ZERO; 10]);
        let p = CapacityPlanner::new(&w, dms(10));
        assert_eq!(p.min_capacity(1.0).get(), 1000.0);
    }

    #[test]
    fn relaxing_fraction_reduces_capacity_sharply() {
        // The paper's knee: a deep spike that is under 10% of the workload.
        // Exempting it collapses the capacity requirement.
        let mut arrivals: Vec<SimTime> = (0..500).map(|i| ms(i * 10)).collect();
        arrivals.extend(vec![ms(2500); 40]); // 40-deep spike, ~7% of total
        let w = Workload::from_arrivals(arrivals);
        let p = CapacityPlanner::new(&w, dms(10));
        let c100 = p.min_capacity(1.0).get();
        let c90 = p.min_capacity(0.90).get();
        assert!(
            c100 > 3.0 * c90,
            "expected sharp knee: C(100%)={c100}, C(90%)={c90}"
        );
    }

    #[test]
    fn min_capacity_is_minimal() {
        let mut arrivals: Vec<SimTime> = (0..50).map(|i| ms(i * 7)).collect();
        arrivals.extend(vec![ms(100); 12]);
        let w = Workload::from_arrivals(arrivals);
        let p = CapacityPlanner::new(&w, dms(10));
        for f in [0.9, 0.95, 1.0] {
            let c = p.min_capacity(f);
            assert!(p.fraction_guaranteed(c) >= f);
            let below = Iops::new(c.get() - 1.0);
            if below.get() >= 100.0 {
                assert!(
                    p.fraction_guaranteed(below) < f,
                    "capacity {} was not minimal for f={f}",
                    c.get()
                );
            }
        }
    }

    #[test]
    fn smooth_workload_has_flat_menu() {
        // Evenly spaced arrivals: Cmin barely depends on the fraction.
        let w = Workload::from_arrivals((0..500).map(|i| ms(i * 5)));
        let p = CapacityPlanner::new(&w, dms(10));
        let menu = p.menu(&[0.9, 0.99, 1.0]);
        let c90 = menu[0].cmin.get();
        let c100 = menu[2].cmin.get();
        assert!(
            c100 <= c90 * 1.5,
            "smooth workload should not knee: {c90} vs {c100}"
        );
        assert!(menu[0].to_string().contains("IOPS"));
    }

    #[test]
    fn menu_is_monotonic_in_fraction() {
        let mut arrivals: Vec<SimTime> = (0..200).map(|i| ms(i * 11)).collect();
        arrivals.extend(vec![ms(777); 30]);
        let w = Workload::from_arrivals(arrivals);
        let p = CapacityPlanner::new(&w, dms(20));
        let menu = p.menu(&[0.90, 0.95, 0.99, 1.0]);
        for pair in menu.windows(2) {
            assert!(
                pair[1].cmin.get() >= pair[0].cmin.get(),
                "menu not monotonic: {pair:?}"
            );
        }
    }

    #[test]
    fn longer_deadline_needs_less_capacity() {
        let mut arrivals: Vec<SimTime> = (0..100).map(|i| ms(i * 13)).collect();
        arrivals.extend(vec![ms(300); 20]);
        let w = Workload::from_arrivals(arrivals);
        let c_tight = CapacityPlanner::new(&w, dms(5)).min_capacity(0.95);
        let c_loose = CapacityPlanner::new(&w, dms(50)).min_capacity(0.95);
        assert!(c_loose.get() < c_tight.get());
    }

    #[test]
    fn fraction_curve_matches_scalar_fraction_guaranteed() {
        let mut arrivals: Vec<SimTime> = (0..300).map(|i| ms(i * 9)).collect();
        arrivals.extend(vec![ms(1200); 35]);
        let w = Workload::from_arrivals(arrivals);
        let p = CapacityPlanner::new(&w, dms(10));
        // Includes a degenerate capacity (50 × 10 ms < 1 slot).
        let grid: Vec<Iops> = [50.0, 120.0, 300.0, 700.0, 2500.0].map(Iops::new).to_vec();
        let curve = p.fraction_curve(&grid);
        for (i, &c) in grid.iter().enumerate() {
            assert_eq!(curve[i], p.fraction_guaranteed(c), "C={c}");
        }
        let empty = Workload::new();
        let pe = CapacityPlanner::new(&empty, dms(10));
        assert_eq!(pe.fraction_curve(&grid), vec![1.0; grid.len()]);
    }

    #[test]
    fn parallel_menu_is_byte_identical() {
        let mut arrivals: Vec<SimTime> = (0..400).map(|i| ms(i * 6)).collect();
        arrivals.extend(vec![ms(900); 50]);
        arrivals.extend(vec![ms(2100); 20]);
        let w = Workload::from_arrivals(arrivals);
        let p = CapacityPlanner::new(&w, dms(10));
        // Deliberately unsorted fractions: order must be preserved.
        let fractions = [0.99, 0.90, 1.0, 0.95, 0.999];
        let serial = p.menu(&fractions);
        for threads in [1usize, 2, 4, 8] {
            let pool = gqos_parallel::WorkerPool::new(threads);
            let parallel = p.menu_parallel(&fractions, &pool);
            assert_eq!(parallel.len(), serial.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.target, b.target, "{threads} threads");
                assert_eq!(
                    a.cmin.get().to_bits(),
                    b.cmin.get().to_bits(),
                    "{threads} threads: quotes must be byte-identical"
                );
            }
        }
    }

    #[test]
    fn try_menu_rejects_bad_fractions_without_panicking() {
        let w = Workload::from_arrivals([SimTime::ZERO]);
        let p = CapacityPlanner::new(&w, dms(10));
        let pool = WorkerPool::new(4);
        assert!(matches!(
            p.try_menu(&[0.9, f64::NAN]),
            Err(MenuError::NotFinite { index: 1, .. })
        ));
        assert!(matches!(
            p.try_menu(&[0.5, 0.0]),
            Err(MenuError::OutOfRange { index: 1, .. })
        ));
        assert!(matches!(
            p.try_menu_parallel(&[1.5, 0.9], &pool),
            Err(MenuError::OutOfRange { index: 0, .. })
        ));
        assert!(matches!(
            p.try_menu_parallel(&[0.9, f64::INFINITY], &pool),
            Err(MenuError::NotFinite { index: 1, .. })
        ));
        // Valid requests still succeed through the fallible path.
        let quotes = p.try_menu(&[1.0]).expect("valid fraction");
        assert_eq!(quotes[0].cmin.get(), 100.0);
    }

    #[test]
    #[should_panic(expected = "must be a finite number")]
    fn menu_panics_on_nan_with_the_documented_message() {
        let w = Workload::from_arrivals([SimTime::ZERO]);
        let _ = CapacityPlanner::new(&w, dms(10)).menu(&[f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn menu_parallel_panics_on_out_of_range_with_the_documented_message() {
        let w = Workload::from_arrivals([SimTime::ZERO]);
        let pool = WorkerPool::new(2);
        let _ = CapacityPlanner::new(&w, dms(10)).menu_parallel(&[-0.25], &pool);
    }

    #[test]
    fn menu_error_displays_the_offender() {
        let nan = MenuError::NotFinite {
            index: 3,
            value: f64::NAN,
        };
        assert_eq!(
            nan.to_string(),
            "menu fraction #3 must be a finite number (got NaN)"
        );
        let range = MenuError::OutOfRange {
            index: 0,
            value: 2.0,
        };
        assert_eq!(
            range.to_string(),
            "menu fraction #0 must be in (0, 1]: got 2"
        );
    }

    #[test]
    fn parallel_menu_handles_duplicates_wide_menus_and_odd_pools() {
        // More fractions than workers, duplicates landing in different
        // worker ranges, and a pool wider than the menu: every shape must
        // reproduce the serial quotes exactly.
        let mut arrivals: Vec<SimTime> = (0..300).map(|i| ms(i * 6)).collect();
        arrivals.extend(vec![ms(450); 40]);
        arrivals.extend(vec![ms(1800); 15]);
        let w = Workload::from_arrivals(arrivals);
        let p = CapacityPlanner::new(&w, dms(10));
        let fractions = [0.95, 0.90, 0.95, 1.0, 0.99, 0.90, 0.999, 0.93];
        let serial = p.menu(&fractions);
        for threads in [2usize, 3, 5, 16] {
            let pool = WorkerPool::new(threads);
            let parallel = p.menu_parallel(&fractions, &pool);
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.cmin.get().to_bits(), b.cmin.get().to_bits(), "{threads}");
                assert_eq!(a.target, b.target, "{threads}");
            }
        }
    }

    #[test]
    fn seed_curve_brackets_every_fraction() {
        let mut arrivals: Vec<SimTime> = (0..200).map(|i| ms(i * 8)).collect();
        arrivals.extend(vec![ms(333); 25]);
        let w = Workload::from_arrivals(arrivals);
        let p = CapacityPlanner::new(&w, dms(10));
        let seed = SeedCurve::new(&w, dms(10));
        assert_eq!(seed.grid()[0], 100, "grid starts at the domain floor");
        assert!(
            seed.grid().windows(2).all(|g| g[1] == g[0] * 2),
            "doubling grid"
        );
        assert!(
            seed.overflow_counts().windows(2).all(|c| c[1] <= c[0]),
            "overflow counts non-increasing"
        );
        for f in [0.9, 0.99, 1.0] {
            let budget = p.miss_budget(f);
            let (lo, hi) = seed.bracket(budget);
            let cmin = p.search_cmin(f, None);
            assert!(cmin <= hi, "f={f}: Cmin {cmin} above bracket top {hi}");
            if let Some(lo) = lo {
                assert!(cmin > lo, "f={f}: Cmin {cmin} not above failing lo {lo}");
            } else {
                assert_eq!(cmin, hi, "floor meets: Cmin is the floor");
            }
        }
    }

    #[test]
    fn empty_workload_needs_only_floor() {
        let w = Workload::new();
        let p = CapacityPlanner::new(&w, dms(10));
        assert_eq!(p.min_capacity(1.0).get(), 100.0); // 1/δ
        assert_eq!(p.fraction_guaranteed(Iops::new(100.0)), 1.0);
    }

    #[test]
    fn provision_adds_default_surplus() {
        let w = Workload::from_arrivals(vec![SimTime::ZERO; 5]);
        let p = CapacityPlanner::new(&w, dms(10));
        let prov = p.provision(QosTarget::new(1.0, dms(10)));
        assert_eq!(prov.cmin().get(), 500.0);
        assert_eq!(prov.delta_c().get(), 100.0);
        assert_eq!(prov.total().get(), 600.0);
    }

    #[test]
    #[should_panic(expected = "deadline differs")]
    fn provision_checks_deadline() {
        let w = Workload::from_arrivals([SimTime::ZERO]);
        let p = CapacityPlanner::new(&w, dms(10));
        let _ = p.provision(QosTarget::new(1.0, dms(20)));
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn fraction_validated() {
        let w = Workload::from_arrivals([SimTime::ZERO]);
        let _ = CapacityPlanner::new(&w, dms(10)).min_capacity(0.0);
    }

    #[test]
    fn sub_iops_floor_capacity_reports_zero_guarantee() {
        let w = Workload::from_arrivals([SimTime::ZERO]);
        let p = CapacityPlanner::new(&w, dms(10));
        // 50 IOPS × 10 ms < 1 slot: nothing can be guaranteed.
        assert_eq!(p.fraction_guaranteed(Iops::new(50.0)), 0.0);
    }
}
