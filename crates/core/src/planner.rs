//! Capacity planning: the binary search of Section 2.2.
//!
//! Given a workload profile, a response-time bound `δ`, and a guaranteed
//! fraction `f`, find the minimum capacity `Cmin` such that RTT decomposition
//! puts at least a fraction `f` of requests in the primary class. Because
//! RTT is optimal, no capacity below `Cmin` can guarantee `f` under *any*
//! partitioning — so the search yields the true provisioning requirement.

use std::fmt;

use gqos_parallel::WorkerPool;
use gqos_trace::{Iops, SimDuration, Workload};

use crate::kernel::overflow_curve;
use crate::rtt::{overflow_count, within_miss_budget};
use crate::target::{Provision, QosTarget};

/// Plans capacity for one workload at a fixed deadline.
///
/// # Examples
///
/// ```
/// use gqos_core::CapacityPlanner;
/// use gqos_trace::{SimDuration, SimTime, Workload};
///
/// // A burst of 10 simultaneous requests, then silence.
/// let w = Workload::from_arrivals(vec![SimTime::ZERO; 10]);
/// let planner = CapacityPlanner::new(&w, SimDuration::from_millis(10));
/// // All 10 within 10 ms needs 1000 IOPS; 50% needs only 500.
/// assert_eq!(planner.min_capacity(1.0).get(), 1000.0);
/// assert_eq!(planner.min_capacity(0.5).get(), 500.0);
/// ```
#[derive(Clone, Debug)]
pub struct CapacityPlanner<'w> {
    workload: &'w Workload,
    deadline: SimDuration,
}

impl<'w> CapacityPlanner<'w> {
    /// Creates a planner for `workload` with response-time bound `deadline`.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero.
    pub fn new(workload: &'w Workload, deadline: SimDuration) -> Self {
        assert!(!deadline.is_zero(), "deadline must be positive");
        CapacityPlanner { workload, deadline }
    }

    /// The deadline being planned for.
    pub fn deadline(&self) -> SimDuration {
        self.deadline
    }

    /// Fraction of the workload RTT places in the primary class at
    /// `capacity` (1.0 for an empty workload).
    ///
    /// Runs on the counting kernel ([`overflow_count`]): one allocation-free
    /// pass over the arrival column, no assignment vector.
    pub fn fraction_guaranteed(&self, capacity: Iops) -> f64 {
        if capacity.requests_within(self.deadline) == 0 {
            return if self.workload.is_empty() { 1.0 } else { 0.0 };
        }
        let total = self.workload.len() as u64;
        if total == 0 {
            return 1.0;
        }
        let primary = total - overflow_count(self.workload, capacity, self.deadline);
        primary as f64 / total as f64
    }

    /// [`fraction_guaranteed`](Self::fraction_guaranteed) for a whole
    /// capacity grid, evaluated by the fused [`overflow_curve`] kernel in a
    /// single pass over the workload. Degenerate capacities (`⌊C·δ⌋ = 0`)
    /// yield 0.0 (1.0 on an empty workload), exactly as the scalar method
    /// reports them.
    pub fn fraction_curve(&self, capacities: &[Iops]) -> Vec<f64> {
        let total = self.workload.len() as u64;
        if total == 0 {
            return vec![1.0; capacities.len()];
        }
        overflow_curve(self.workload, capacities, self.deadline)
            .into_iter()
            .map(|overflow| (total - overflow) as f64 / total as f64)
            .collect()
    }

    /// The minimum integer capacity (IOPS) guaranteeing at least `fraction`
    /// of the workload within the deadline — `Cmin(f, δ)`.
    ///
    /// Converges by doubling plus binary search in `O(log C)` RTT probes,
    /// as in the paper. Each probe is budget-bounded
    /// ([`within_miss_budget`]): it aborts as soon as the overflow count
    /// exceeds the miss budget `N − ⌈f·N⌉`, so failing probes (most of the
    /// search) touch only a prefix of the trace.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]`.
    pub fn min_capacity(&self, fraction: f64) -> Iops {
        Iops::new(self.search_cmin(fraction, None) as f64)
    }

    /// The miss budget for `fraction` over this workload: the largest
    /// overflow count that still leaves a primary fraction of at least
    /// `fraction` under the exact `primary/total >= fraction` comparison
    /// [`fraction_guaranteed`](Self::fraction_guaranteed) performs.
    fn miss_budget(&self, fraction: f64) -> u64 {
        let total = self.workload.len() as u64;
        // Smallest integer `need` with need/total >= fraction, adjusted to
        // match f64 division exactly so budget probes and fraction
        // comparisons can never disagree.
        let mut need = ((fraction * total as f64).ceil() as u64).min(total);
        while need > 0 && (need - 1) as f64 / total as f64 >= fraction {
            need -= 1;
        }
        while need < total && (need as f64) / (total as f64) < fraction {
            need += 1;
        }
        total - need
    }

    /// Core capacity search. `warm` is a known lower bracket: a capacity
    /// that is minimal for some fraction `f' <= fraction` (so `Cmin` here
    /// is at least `warm`, and `warm − 1` cannot meet the target). The
    /// menu sweep threads each result into the next fraction's search.
    fn search_cmin(&self, fraction: f64, warm: Option<u64>) -> u64 {
        assert!(
            fraction.is_finite() && fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]: {fraction}"
        );
        // Smallest capacity with a non-degenerate RTT bound: C·δ ≥ 1.
        let floor = (1.0 / self.deadline.as_secs_f64()).ceil().max(1.0) as u64;
        if self.workload.is_empty() {
            return floor;
        }

        let budget = self.miss_budget(fraction);
        let meets =
            |c: u64| within_miss_budget(self.workload, Iops::new(c as f64), self.deadline, budget);

        // `start` is the least capacity Cmin could be: the domain floor, or
        // the warm bracket from an easier fraction.
        let start = warm.map_or(floor, |w| w.max(floor));
        if meets(start) {
            return start;
        }

        // Grow an upper bound by doubling, keeping the last failing
        // capacity as the lower bracket. The peak burst bounds this: N
        // simultaneous requests need at most N/δ.
        let mut lo = start; // invariant: lo fails, hi meets
        let mut hi = start.max(self.workload.mean_iops().ceil() as u64).max(1);
        while !meets(hi) {
            lo = hi;
            hi = hi.checked_mul(2).expect("capacity search overflow");
        }
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if meets(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }

    /// The full provision for a target: `Cmin(f, δ)` plus the default
    /// surplus `ΔC = 1/δ`.
    ///
    /// # Panics
    ///
    /// Panics if `target.deadline()` differs from this planner's deadline.
    pub fn provision(&self, target: QosTarget) -> Provision {
        assert_eq!(
            target.deadline(),
            self.deadline,
            "target deadline differs from planner deadline"
        );
        Provision::with_default_surplus(self.min_capacity(target.fraction()), self.deadline)
    }

    /// Evaluates `Cmin` for each fraction, producing one row of the paper's
    /// Table 1.
    ///
    /// The fractions are swept in ascending order (results are returned in
    /// input order regardless): because `Cmin` is monotone in `f`, each
    /// result warm-starts the next search's lower bracket, so the sweep
    /// does one doubling phase for the whole row instead of one per entry.
    pub fn menu(&self, fractions: &[f64]) -> Vec<SlaQuote> {
        let mut order: Vec<usize> = (0..fractions.len()).collect();
        order.sort_by(|&a, &b| {
            fractions[a]
                .partial_cmp(&fractions[b])
                .expect("menu fraction must not be NaN")
        });
        let mut quotes: Vec<Option<SlaQuote>> = vec![None; fractions.len()];
        let mut warm = None;
        for &i in &order {
            let cmin = self.search_cmin(fractions[i], warm);
            warm = Some(cmin);
            quotes[i] = Some(SlaQuote {
                target: QosTarget::new(fractions[i], self.deadline),
                cmin: Iops::new(cmin as f64),
            });
        }
        quotes
            .into_iter()
            .map(|q| q.expect("every entry filled"))
            .collect()
    }

    /// [`menu`](Self::menu) with the fractions fanned across `pool` —
    /// byte-identical quotes, different wall-clock shape.
    ///
    /// Each fraction's search runs cold (no warm bracket: warm-starting is
    /// inherently sequential), so the parallel sweep does more total probe
    /// work than the serial one; it wins when the pool's width outweighs
    /// the redundant doubling phases — wide menus over long traces. Both
    /// paths return the exact minimal integer capacity per fraction and
    /// [`WorkerPool::map`] assembles results positionally, so the output is
    /// guaranteed identical to the serial menu's, entry for entry (see
    /// `parallel_menu_is_byte_identical` in the tests). With a serial pool
    /// this *is* the warm-started sweep.
    pub fn menu_parallel(&self, fractions: &[f64], pool: &WorkerPool) -> Vec<SlaQuote> {
        if pool.is_serial() || fractions.len() <= 1 {
            return self.menu(fractions);
        }
        pool.map(fractions.to_vec(), |fraction| SlaQuote {
            target: QosTarget::new(fraction, self.deadline),
            cmin: Iops::new(self.search_cmin(fraction, None) as f64),
        })
    }
}

/// One entry of an SLA menu: a target and its minimum capacity.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct SlaQuote {
    /// The guaranteed target.
    pub target: QosTarget,
    /// The minimum capacity achieving it.
    pub cmin: Iops,
}

impl fmt::Display for SlaQuote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {:.0} IOPS", self.target, self.cmin.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqos_trace::SimTime;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn dms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn burst_full_guarantee_needs_burst_rate() {
        let w = Workload::from_arrivals(vec![SimTime::ZERO; 10]);
        let p = CapacityPlanner::new(&w, dms(10));
        assert_eq!(p.min_capacity(1.0).get(), 1000.0);
    }

    #[test]
    fn relaxing_fraction_reduces_capacity_sharply() {
        // The paper's knee: a deep spike that is under 10% of the workload.
        // Exempting it collapses the capacity requirement.
        let mut arrivals: Vec<SimTime> = (0..500).map(|i| ms(i * 10)).collect();
        arrivals.extend(vec![ms(2500); 40]); // 40-deep spike, ~7% of total
        let w = Workload::from_arrivals(arrivals);
        let p = CapacityPlanner::new(&w, dms(10));
        let c100 = p.min_capacity(1.0).get();
        let c90 = p.min_capacity(0.90).get();
        assert!(
            c100 > 3.0 * c90,
            "expected sharp knee: C(100%)={c100}, C(90%)={c90}"
        );
    }

    #[test]
    fn min_capacity_is_minimal() {
        let mut arrivals: Vec<SimTime> = (0..50).map(|i| ms(i * 7)).collect();
        arrivals.extend(vec![ms(100); 12]);
        let w = Workload::from_arrivals(arrivals);
        let p = CapacityPlanner::new(&w, dms(10));
        for f in [0.9, 0.95, 1.0] {
            let c = p.min_capacity(f);
            assert!(p.fraction_guaranteed(c) >= f);
            let below = Iops::new(c.get() - 1.0);
            if below.get() >= 100.0 {
                assert!(
                    p.fraction_guaranteed(below) < f,
                    "capacity {} was not minimal for f={f}",
                    c.get()
                );
            }
        }
    }

    #[test]
    fn smooth_workload_has_flat_menu() {
        // Evenly spaced arrivals: Cmin barely depends on the fraction.
        let w = Workload::from_arrivals((0..500).map(|i| ms(i * 5)));
        let p = CapacityPlanner::new(&w, dms(10));
        let menu = p.menu(&[0.9, 0.99, 1.0]);
        let c90 = menu[0].cmin.get();
        let c100 = menu[2].cmin.get();
        assert!(
            c100 <= c90 * 1.5,
            "smooth workload should not knee: {c90} vs {c100}"
        );
        assert!(menu[0].to_string().contains("IOPS"));
    }

    #[test]
    fn menu_is_monotonic_in_fraction() {
        let mut arrivals: Vec<SimTime> = (0..200).map(|i| ms(i * 11)).collect();
        arrivals.extend(vec![ms(777); 30]);
        let w = Workload::from_arrivals(arrivals);
        let p = CapacityPlanner::new(&w, dms(20));
        let menu = p.menu(&[0.90, 0.95, 0.99, 1.0]);
        for pair in menu.windows(2) {
            assert!(
                pair[1].cmin.get() >= pair[0].cmin.get(),
                "menu not monotonic: {pair:?}"
            );
        }
    }

    #[test]
    fn longer_deadline_needs_less_capacity() {
        let mut arrivals: Vec<SimTime> = (0..100).map(|i| ms(i * 13)).collect();
        arrivals.extend(vec![ms(300); 20]);
        let w = Workload::from_arrivals(arrivals);
        let c_tight = CapacityPlanner::new(&w, dms(5)).min_capacity(0.95);
        let c_loose = CapacityPlanner::new(&w, dms(50)).min_capacity(0.95);
        assert!(c_loose.get() < c_tight.get());
    }

    #[test]
    fn fraction_curve_matches_scalar_fraction_guaranteed() {
        let mut arrivals: Vec<SimTime> = (0..300).map(|i| ms(i * 9)).collect();
        arrivals.extend(vec![ms(1200); 35]);
        let w = Workload::from_arrivals(arrivals);
        let p = CapacityPlanner::new(&w, dms(10));
        // Includes a degenerate capacity (50 × 10 ms < 1 slot).
        let grid: Vec<Iops> = [50.0, 120.0, 300.0, 700.0, 2500.0].map(Iops::new).to_vec();
        let curve = p.fraction_curve(&grid);
        for (i, &c) in grid.iter().enumerate() {
            assert_eq!(curve[i], p.fraction_guaranteed(c), "C={c}");
        }
        let empty = Workload::new();
        let pe = CapacityPlanner::new(&empty, dms(10));
        assert_eq!(pe.fraction_curve(&grid), vec![1.0; grid.len()]);
    }

    #[test]
    fn parallel_menu_is_byte_identical() {
        let mut arrivals: Vec<SimTime> = (0..400).map(|i| ms(i * 6)).collect();
        arrivals.extend(vec![ms(900); 50]);
        arrivals.extend(vec![ms(2100); 20]);
        let w = Workload::from_arrivals(arrivals);
        let p = CapacityPlanner::new(&w, dms(10));
        // Deliberately unsorted fractions: order must be preserved.
        let fractions = [0.99, 0.90, 1.0, 0.95, 0.999];
        let serial = p.menu(&fractions);
        for threads in [1usize, 2, 4, 8] {
            let pool = gqos_parallel::WorkerPool::new(threads);
            let parallel = p.menu_parallel(&fractions, &pool);
            assert_eq!(parallel.len(), serial.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.target, b.target, "{threads} threads");
                assert_eq!(
                    a.cmin.get().to_bits(),
                    b.cmin.get().to_bits(),
                    "{threads} threads: quotes must be byte-identical"
                );
            }
        }
    }

    #[test]
    fn empty_workload_needs_only_floor() {
        let w = Workload::new();
        let p = CapacityPlanner::new(&w, dms(10));
        assert_eq!(p.min_capacity(1.0).get(), 100.0); // 1/δ
        assert_eq!(p.fraction_guaranteed(Iops::new(100.0)), 1.0);
    }

    #[test]
    fn provision_adds_default_surplus() {
        let w = Workload::from_arrivals(vec![SimTime::ZERO; 5]);
        let p = CapacityPlanner::new(&w, dms(10));
        let prov = p.provision(QosTarget::new(1.0, dms(10)));
        assert_eq!(prov.cmin().get(), 500.0);
        assert_eq!(prov.delta_c().get(), 100.0);
        assert_eq!(prov.total().get(), 600.0);
    }

    #[test]
    #[should_panic(expected = "deadline differs")]
    fn provision_checks_deadline() {
        let w = Workload::from_arrivals([SimTime::ZERO]);
        let p = CapacityPlanner::new(&w, dms(10));
        let _ = p.provision(QosTarget::new(1.0, dms(20)));
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn fraction_validated() {
        let w = Workload::from_arrivals([SimTime::ZERO]);
        let _ = CapacityPlanner::new(&w, dms(10)).min_capacity(0.0);
    }

    #[test]
    fn sub_iops_floor_capacity_reports_zero_guarantee() {
        let w = Workload::from_arrivals([SimTime::ZERO]);
        let p = CapacityPlanner::new(&w, dms(10));
        // 50 IOPS × 10 ms < 1 slot: nothing can be guaranteed.
        assert_eq!(p.fraction_guaranteed(Iops::new(50.0)), 0.0);
    }
}
