//! The end-to-end workload shaper (the paper's Figure 1 architecture).
//!
//! Ties decomposition and recombination together: pick a QoS target, plan
//! (or supply) a provision, choose a recombination policy, and run the
//! shaped workload through the simulation engine.

use std::fmt;
use std::rc::Rc;

use gqos_faults::FaultSchedule;
use gqos_sim::{
    FcfsScheduler, FixedRateServer, ModulatedServer, RunReport, Scheduler, ServiceClass,
    ServiceModel, Simulation, TraceHandle,
};
use gqos_trace::{Iops, SimDuration, Workload};

use crate::degrade::{
    AdaptiveScheduler, AdmissionLog, AdmissionRecord, CapacityAdaptive, DegradationController,
    DegradationPolicy,
};
use crate::fair::FairQueueScheduler;
use crate::miser::MiserScheduler;
use crate::planner::CapacityPlanner;
use crate::split::SplitScheduler;
use crate::target::{Provision, QosTarget};

/// EWMA window (in completions) of the capacity estimator used by
/// [`WorkloadShaper::run_with_faults`]. Short enough to react within one
/// deadline's worth of completions at typical provisions.
const DEGRADATION_WINDOW: usize = 8;

/// How the decomposed classes are recombined for service — the four
/// policies evaluated in Section 4.3.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum RecombinePolicy {
    /// No decomposition: one FCFS queue on the total capacity (baseline).
    Fcfs,
    /// Dedicated servers: `Cmin` for the primary class, `ΔC` for overflow.
    Split,
    /// One shared server, proportional sharing `Cmin : ΔC` (SFQ).
    FairQueue,
    /// One shared server, slack-stealing (Algorithm 2).
    Miser,
}

impl RecombinePolicy {
    /// All policies in the paper's presentation order.
    pub const ALL: [RecombinePolicy; 4] = [
        RecombinePolicy::Fcfs,
        RecombinePolicy::Split,
        RecombinePolicy::FairQueue,
        RecombinePolicy::Miser,
    ];
}

impl fmt::Display for RecombinePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecombinePolicy::Fcfs => f.write_str("FCFS"),
            RecombinePolicy::Split => f.write_str("Split"),
            RecombinePolicy::FairQueue => f.write_str("FairQueue"),
            RecombinePolicy::Miser => f.write_str("Miser"),
        }
    }
}

/// A configured workload shaper: provision + deadline.
///
/// # Examples
///
/// Plan a 90%-within-20ms shaper for a bursty workload and compare FCFS
/// with Miser at identical total capacity:
///
/// ```
/// use gqos_core::{QosTarget, RecombinePolicy, WorkloadShaper};
/// use gqos_sim::ServiceClass;
/// use gqos_trace::{SimDuration, SimTime, Workload};
///
/// let mut arrivals: Vec<SimTime> = (0..200).map(|i| SimTime::from_millis(i * 10)).collect();
/// arrivals.extend(vec![SimTime::from_millis(555); 30]); // a burst
/// let workload = Workload::from_arrivals(arrivals);
///
/// let target = QosTarget::new(0.90, SimDuration::from_millis(20));
/// let shaper = WorkloadShaper::plan(&workload, target);
/// let fcfs = shaper.run(&workload, RecombinePolicy::Fcfs);
/// let miser = shaper.run(&workload, RecombinePolicy::Miser);
/// let d = SimDuration::from_millis(20);
/// assert!(miser.stats_for(ServiceClass::PRIMARY).fraction_within(d)
///     >= fcfs.stats().fraction_within(d));
/// ```
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct WorkloadShaper {
    provision: Provision,
    deadline: SimDuration,
}

impl WorkloadShaper {
    /// Creates a shaper from an explicit provision.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero.
    pub fn new(provision: Provision, deadline: SimDuration) -> Self {
        assert!(!deadline.is_zero(), "deadline must be positive");
        WorkloadShaper {
            provision,
            deadline,
        }
    }

    /// Plans the provision for `workload` at `target` (binary-searching
    /// `Cmin`, adding the default surplus `ΔC = 1/δ`) and returns the
    /// configured shaper.
    pub fn plan(workload: &Workload, target: QosTarget) -> Self {
        let planner = CapacityPlanner::new(workload, target.deadline());
        WorkloadShaper {
            provision: planner.provision(target),
            deadline: target.deadline(),
        }
    }

    /// The shaper's provision.
    pub fn provision(&self) -> Provision {
        self.provision
    }

    /// The shaper's deadline.
    pub fn deadline(&self) -> SimDuration {
        self.deadline
    }

    /// Runs `workload` under the given recombination policy at constant
    /// total capacity `Cmin + ΔC` and returns the simulation report.
    ///
    /// Under [`RecombinePolicy::Fcfs`] every request completes in class
    /// [`ServiceClass::PRIMARY`] (there is no decomposition); under the
    /// other policies, per-class statistics are available via
    /// [`RunReport::stats_for`].
    pub fn run(&self, workload: &Workload, policy: RecombinePolicy) -> RunReport {
        let p = self.provision;
        match policy {
            RecombinePolicy::Fcfs => Simulation::new(workload, FcfsScheduler::new())
                .server(FixedRateServer::new(p.total()))
                .run(),
            RecombinePolicy::Split => {
                Simulation::new(workload, SplitScheduler::new(p, self.deadline))
                    .server(FixedRateServer::new(p.cmin()))
                    .server(FixedRateServer::new(p.delta_c()))
                    .run()
            }
            RecombinePolicy::FairQueue => {
                Simulation::new(workload, FairQueueScheduler::new(p, self.deadline))
                    .server(FixedRateServer::new(p.total()))
                    .run()
            }
            RecombinePolicy::Miser => {
                Simulation::new(workload, MiserScheduler::new(p, self.deadline))
                    .server(FixedRateServer::new(p.total()))
                    .run()
            }
        }
    }

    /// Like [`run`](WorkloadShaper::run), but with the full event trace
    /// routed into `trace`: the engine emits `Arrival`/`Completed` (the
    /// latter judged against the shaper's deadline), the policy scheduler
    /// emits `Admitted`/`Diverted`/`Dispatched`.
    ///
    /// Tracing never changes scheduling decisions — a run traced into any
    /// sink produces a [`RunReport`] identical to the untraced
    /// [`run`](WorkloadShaper::run).
    pub fn run_traced(
        &self,
        workload: &Workload,
        policy: RecombinePolicy,
        trace: TraceHandle,
    ) -> RunReport {
        let p = self.provision;
        match policy {
            RecombinePolicy::Fcfs => {
                Simulation::new(workload, FcfsScheduler::with_trace(trace.clone()))
                    .server(FixedRateServer::new(p.total()))
                    .trace(trace)
                    .deadline(self.deadline)
                    .run()
            }
            RecombinePolicy::Split => Simulation::new(
                workload,
                SplitScheduler::with_trace(p, self.deadline, trace.clone()),
            )
            .server(FixedRateServer::new(p.cmin()))
            .server(FixedRateServer::new(p.delta_c()))
            .trace(trace)
            .deadline(self.deadline)
            .run(),
            RecombinePolicy::FairQueue => Simulation::new(
                workload,
                FairQueueScheduler::with_trace(p, self.deadline, trace.clone()),
            )
            .server(FixedRateServer::new(p.total()))
            .trace(trace)
            .deadline(self.deadline)
            .run(),
            RecombinePolicy::Miser => Simulation::new(
                workload,
                MiserScheduler::with_trace(p, self.deadline, trace.clone()),
            )
            .server(FixedRateServer::new(p.total()))
            .trace(trace)
            .deadline(self.deadline)
            .run(),
        }
    }

    /// Runs `workload` under `policy` on a server degraded by `schedule`,
    /// with the graduated-degradation control loop active: an online
    /// capacity estimator watches completions and renegotiates the RTT
    /// bound (plus Miser slacks / FairQueue weights) against `C_eff`.
    ///
    /// With an [empty](FaultSchedule::empty) schedule the result is
    /// identical to [`run`](WorkloadShaper::run) — the modulation and the
    /// controller are both exact no-ops on a healthy server.
    pub fn run_with_faults(
        &self,
        workload: &Workload,
        policy: RecombinePolicy,
        schedule: &FaultSchedule,
    ) -> RunReport {
        self.run_with_faults_logged(workload, policy, schedule).0
    }

    /// Like [`run_with_faults`](WorkloadShaper::run_with_faults), but also
    /// returns the admission log: every Q1 admission with the capacity
    /// fraction the controller had negotiated at that instant. This is the
    /// evidence for the degradation contract — an admitted request whose
    /// deadline window the server actually sustained at the admission-time
    /// fraction must meet `δ`.
    pub fn run_with_faults_logged(
        &self,
        workload: &Workload,
        policy: RecombinePolicy,
        schedule: &FaultSchedule,
    ) -> (RunReport, Vec<AdmissionRecord>) {
        let p = self.provision;
        let controller =
            || DegradationController::new(DegradationPolicy::default(), DEGRADATION_WINDOW);
        fn faulty(rate: Iops, schedule: &FaultSchedule) -> ModulatedServer<FixedRateServer> {
            ModulatedServer::new(FixedRateServer::new(rate), schedule.clone())
        }
        match policy {
            RecombinePolicy::Fcfs => run_adaptive(
                workload,
                AdaptiveScheduler::new(FcfsScheduler::new(), controller(), &[p.total()]),
                vec![faulty(p.total(), schedule)],
            ),
            RecombinePolicy::Split => run_adaptive(
                workload,
                AdaptiveScheduler::new(
                    SplitScheduler::new(p, self.deadline),
                    controller(),
                    &[p.cmin(), p.delta_c()],
                ),
                vec![faulty(p.cmin(), schedule), faulty(p.delta_c(), schedule)],
            ),
            RecombinePolicy::FairQueue => run_adaptive(
                workload,
                AdaptiveScheduler::new(
                    FairQueueScheduler::new(p, self.deadline),
                    controller(),
                    &[p.total()],
                ),
                vec![faulty(p.total(), schedule)],
            ),
            RecombinePolicy::Miser => run_adaptive(
                workload,
                AdaptiveScheduler::new(
                    MiserScheduler::new(p, self.deadline),
                    controller(),
                    &[p.total()],
                ),
                vec![faulty(p.total(), schedule)],
            ),
        }
    }

    /// Runs all four policies and returns `(policy, report)` pairs in the
    /// paper's order.
    pub fn run_all(&self, workload: &Workload) -> Vec<(RecombinePolicy, RunReport)> {
        RecombinePolicy::ALL
            .iter()
            .map(|&p| (p, self.run(workload, p)))
            .collect()
    }

    /// Fraction of the whole workload completing within the deadline under
    /// `policy` — the headline number of Figure 6.
    pub fn guaranteed_fraction(&self, workload: &Workload, policy: RecombinePolicy) -> f64 {
        self.run(workload, policy)
            .stats()
            .fraction_within(self.deadline)
    }

    /// A vacuous accessor used by reports: the class recombination policies
    /// guarantee (always [`ServiceClass::PRIMARY`]).
    pub fn guaranteed_class(&self) -> ServiceClass {
        ServiceClass::PRIMARY
    }
}

/// Runs an adaptive scheduler with its admission log enabled and extracts
/// the records once the simulation (and with it the scheduler's clone of
/// the log handle) is dropped.
fn run_adaptive<S: CapacityAdaptive, M: ServiceModel + 'static>(
    workload: &Workload,
    scheduler: AdaptiveScheduler<S>,
    servers: Vec<M>,
) -> (RunReport, Vec<AdmissionRecord>)
where
    AdaptiveScheduler<S>: Scheduler,
{
    let (scheduler, log) = scheduler.with_admission_log();
    let mut sim = Simulation::new(workload, scheduler);
    for server in servers {
        sim = sim.server(server);
    }
    let report = sim.run();
    let records = extract_log(log);
    (report, records)
}

fn extract_log(log: AdmissionLog) -> Vec<AdmissionRecord> {
    match Rc::try_unwrap(log) {
        Ok(cell) => cell.into_inner(),
        // The scheduler should be gone by now; fall back to a copy if not.
        Err(shared) => shared.borrow().clone(),
    }
}

impl fmt::Display for WorkloadShaper {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shaper({}, delta={:.0} ms)",
            self.provision,
            self.deadline.as_millis_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqos_trace::{Iops, SimTime};

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn dms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    /// A calm stream with one deep burst — the pattern the paper's shaping
    /// argument is about.
    fn bursty_workload() -> Workload {
        let mut arrivals: Vec<SimTime> = (0..300).map(|i| ms(i * 10)).collect();
        arrivals.extend(vec![ms(1000); 60]);
        arrivals.extend(vec![ms(2000); 40]);
        Workload::from_arrivals(arrivals)
    }

    #[test]
    fn plan_produces_feasible_provision() {
        let w = bursty_workload();
        let target = QosTarget::new(0.90, dms(20));
        let shaper = WorkloadShaper::plan(&w, target);
        assert!(shaper.provision().cmin().get() >= 100.0);
        assert!(shaper.deadline() == dms(20));
        // At the planned provision, the shaped policies meet the target.
        for policy in [RecombinePolicy::Split, RecombinePolicy::FairQueue] {
            let frac = shaper.guaranteed_fraction(&w, policy);
            assert!(
                frac >= 0.90,
                "{policy} met only {frac:.3} at planned capacity"
            );
        }
    }

    #[test]
    fn fcfs_baseline_is_worse_at_equal_capacity() {
        let w = bursty_workload();
        let shaper = WorkloadShaper::plan(&w, QosTarget::new(0.90, dms(20)));
        let fcfs = shaper.guaranteed_fraction(&w, RecombinePolicy::Fcfs);
        let fq = shaper.guaranteed_fraction(&w, RecombinePolicy::FairQueue);
        assert!(
            fq > fcfs,
            "shaping should beat FCFS at equal capacity: FCFS {fcfs:.3}, FQ {fq:.3}"
        );
    }

    #[test]
    fn miser_overflow_beats_split_overflow() {
        // Miser exploits slack; Split's overflow is stuck on a tiny server.
        let w = bursty_workload();
        let shaper = WorkloadShaper::plan(&w, QosTarget::new(0.90, dms(20)));
        let split = shaper.run(&w, RecombinePolicy::Split);
        let miser = shaper.run(&w, RecombinePolicy::Miser);
        let split_o = split.stats_for(ServiceClass::OVERFLOW);
        let miser_o = miser.stats_for(ServiceClass::OVERFLOW);
        assert!(
            miser_o.mean().unwrap() < split_o.mean().unwrap(),
            "Miser overflow mean {} vs Split {}",
            miser_o.mean().unwrap(),
            split_o.mean().unwrap()
        );
    }

    #[test]
    fn run_all_covers_every_policy() {
        let w = Workload::from_arrivals(vec![ms(0); 5]);
        let shaper =
            WorkloadShaper::new(Provision::new(Iops::new(200.0), Iops::new(100.0)), dms(20));
        let all = shaper.run_all(&w);
        assert_eq!(all.len(), 4);
        for (policy, report) in &all {
            assert_eq!(
                report.completed(),
                5,
                "{policy} failed to complete the workload"
            );
        }
    }

    #[test]
    fn policy_display_names_match_paper() {
        let names: Vec<String> = RecombinePolicy::ALL.iter().map(|p| p.to_string()).collect();
        assert_eq!(names, vec!["FCFS", "Split", "FairQueue", "Miser"]);
    }

    #[test]
    fn shaper_display() {
        let shaper =
            WorkloadShaper::new(Provision::new(Iops::new(328.0), Iops::new(20.0)), dms(50));
        assert!(shaper.to_string().contains("328"));
        assert_eq!(shaper.guaranteed_class(), ServiceClass::PRIMARY);
    }

    #[test]
    fn empty_fault_schedule_is_byte_identical_to_plain_run() {
        // The degradation contract's fault-free clause: with no faults, the
        // adaptive path must reproduce the plain path exactly — same
        // completion records, same classes, same nanoseconds.
        let w = bursty_workload();
        let shaper = WorkloadShaper::plan(&w, QosTarget::new(0.90, dms(20)));
        let empty = FaultSchedule::empty();
        for policy in RecombinePolicy::ALL {
            let plain = shaper.run(&w, policy);
            let (faulted, log) = shaper.run_with_faults_logged(&w, policy, &empty);
            assert_eq!(
                plain.records(),
                faulted.records(),
                "{policy}: empty schedule diverged from plain run"
            );
            // Every logged admission was negotiated at full capacity.
            assert!(log.iter().all(|r| r.factor == 1.0), "{policy}");
        }
    }

    #[test]
    fn outage_degrades_and_sheds_instead_of_missing() {
        // A mid-run slowdown: the controller must renegotiate downward and
        // later admissions must carry the degraded factor.
        let w = bursty_workload();
        let shaper = WorkloadShaper::plan(&w, QosTarget::new(0.90, dms(20)));
        let schedule = FaultSchedule::new(11).with_slowdown(
            SimTime::from_millis(500),
            SimDuration::from_secs(2),
            4.0,
        );
        let (report, log) = shaper.run_with_faults_logged(&w, RecombinePolicy::Miser, &schedule);
        assert_eq!(report.completed(), w.len());
        assert!(
            log.iter().any(|r| r.factor < 1.0),
            "no admission saw a degraded factor"
        );
        // Degraded admissions are rarer than healthy ones would have been:
        // shedding moved arrivals to Q2.
        let faulted_q1 = report.completed_in(ServiceClass::PRIMARY);
        let healthy_q1 = shaper
            .run(&w, RecombinePolicy::Miser)
            .completed_in(ServiceClass::PRIMARY);
        assert!(
            faulted_q1 < healthy_q1,
            "degradation did not shed: {faulted_q1} vs healthy {healthy_q1}"
        );
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn zero_deadline_rejected() {
        let _ = WorkloadShaper::new(
            Provision::new(Iops::new(1.0), Iops::new(1.0)),
            SimDuration::ZERO,
        );
    }
}
