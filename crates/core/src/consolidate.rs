//! Multi-client consolidation: estimating shared-server capacity
//! (Section 2.2 "Multiple Concurrent Clients" and Section 4.4).
//!
//! Summing each client's *worst-case* capacity over-provisions badly: it
//! assumes all bursts align. Summing each client's *reshaped* capacity
//! (`Cmin` at fraction `f < 1`) instead turns out to be an excellent
//! predictor of the true multiplexed requirement, because decomposition has
//! removed the high-variance portions whose alignment is unpredictable.
//! Figures 7 and 8 are built from the comparisons computed here.

use std::cell::OnceCell;
use std::error::Error;
use std::fmt;

use gqos_trace::{Iops, SimDuration, Workload};

use crate::planner::CapacityPlanner;
use crate::target::QosTarget;

/// A consolidation comparison was requested over an impossible input.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum ConsolidationError {
    /// The client list was empty: neither an additive estimate nor a
    /// merged requirement exists over zero clients.
    NoClients,
}

impl fmt::Display for ConsolidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsolidationError::NoClients => {
                f.write_str("consolidation requires at least one client workload")
            }
        }
    }
}

impl Error for ConsolidationError {}

/// The estimate-versus-actual capacity comparison for one set of
/// consolidated clients at one QoS target.
///
/// Both sides are [`Iops`], which is strictly positive and finite by
/// construction — there is no way to build a report whose
/// [`ratio`](ConsolidationReport::ratio) or
/// [`relative_error`](ConsolidationReport::relative_error) divides by
/// zero. The division-hazard lives one level up, in inputs the planner
/// cannot price (an empty client list); [`ConsolidationStudy::try_compare`]
/// surfaces those as a typed [`ConsolidationError`] instead of a panic.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct ConsolidationReport {
    /// Sum of the clients' individual `Cmin` values (the additive
    /// estimate).
    pub estimate: Iops,
    /// `Cmin` of the actual merged workload.
    pub actual: Iops,
}

impl ConsolidationReport {
    /// `actual / estimate`: below 1.0 means the additive estimate
    /// over-provisions (multiplexing gain), near 1.0 means it is accurate.
    ///
    /// Never NaN and never zero: both operands are [`Iops`], whose
    /// constructor rejects zero, negatives, and non-finite rates. The one
    /// documented sentinel is `+∞`, reachable only when the two rates
    /// differ by more than `f64`'s ~308 orders of magnitude — far outside
    /// any plannable capacity, but pinned by a regression test rather than
    /// left as an accidental outcome.
    pub fn ratio(&self) -> f64 {
        self.actual.get() / self.estimate.get()
    }

    /// Relative error `|actual − estimate| / actual`.
    ///
    /// Never NaN and never negative, by the same [`Iops`] invariant (and
    /// the same `+∞`-on-astronomical-mismatch sentinel) as
    /// [`ratio`](ConsolidationReport::ratio).
    pub fn relative_error(&self) -> f64 {
        (self.actual.get() - self.estimate.get()).abs() / self.actual.get()
    }
}

impl fmt::Display for ConsolidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "estimate {:.0} IOPS, actual {:.0} IOPS (ratio {:.2})",
            self.estimate.get(),
            self.actual.get(),
            self.ratio()
        )
    }
}

/// Plans capacity for consolidated clients at a QoS target.
///
/// # Examples
///
/// ```
/// use gqos_core::{ConsolidationStudy, QosTarget};
/// use gqos_trace::{SimDuration, SimTime, Workload};
///
/// let a = Workload::from_arrivals(vec![SimTime::ZERO; 5]);
/// let b = Workload::from_arrivals(vec![SimTime::from_millis(500); 5]);
/// let study = ConsolidationStudy::new(QosTarget::new(1.0, SimDuration::from_millis(10)));
/// let report = study.compare(&[&a, &b]);
/// // Non-overlapping bursts: the merged workload needs half the estimate.
/// assert!(report.ratio() < 0.6);
/// ```
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct ConsolidationStudy {
    target: QosTarget,
}

impl ConsolidationStudy {
    /// Creates a study at the given target.
    pub fn new(target: QosTarget) -> Self {
        ConsolidationStudy { target }
    }

    /// The study's QoS target.
    pub fn target(&self) -> QosTarget {
        self.target
    }

    /// The additive estimate: sum of each client's individual `Cmin`.
    ///
    /// # Panics
    ///
    /// Panics if `clients` is empty; use
    /// [`try_estimate`](ConsolidationStudy::try_estimate) for a typed
    /// error instead.
    pub fn estimate(&self, clients: &[&Workload]) -> Iops {
        self.try_estimate(clients)
            .expect("at least one client is required")
    }

    /// Fallible form of [`estimate`](ConsolidationStudy::estimate).
    ///
    /// # Errors
    ///
    /// Returns [`ConsolidationError::NoClients`] for an empty client list.
    pub fn try_estimate(&self, clients: &[&Workload]) -> Result<Iops, ConsolidationError> {
        if clients.is_empty() {
            return Err(ConsolidationError::NoClients);
        }
        let total: f64 = clients
            .iter()
            .map(|w| {
                CapacityPlanner::new(w, self.target.deadline())
                    .min_capacity(self.target.fraction())
                    .get()
            })
            .sum();
        Ok(Iops::new(total))
    }

    /// The true requirement: `Cmin` of the merged arrival stream.
    ///
    /// # Panics
    ///
    /// Panics if `clients` is empty; use
    /// [`try_actual`](ConsolidationStudy::try_actual) for a typed error
    /// instead.
    pub fn actual(&self, clients: &[&Workload]) -> Iops {
        self.try_actual(clients)
            .expect("at least one client is required")
    }

    /// Fallible form of [`actual`](ConsolidationStudy::actual).
    ///
    /// # Errors
    ///
    /// Returns [`ConsolidationError::NoClients`] for an empty client list.
    pub fn try_actual(&self, clients: &[&Workload]) -> Result<Iops, ConsolidationError> {
        if clients.is_empty() {
            return Err(ConsolidationError::NoClients);
        }
        let merged = merge_all(clients);
        Ok(CapacityPlanner::new(&merged, self.target.deadline())
            .min_capacity(self.target.fraction()))
    }

    /// Computes both sides of the comparison.
    ///
    /// # Panics
    ///
    /// Panics if `clients` is empty; use
    /// [`try_compare`](ConsolidationStudy::try_compare) for a typed error
    /// instead.
    pub fn compare(&self, clients: &[&Workload]) -> ConsolidationReport {
        self.try_compare(clients)
            .expect("at least one client is required")
    }

    /// Fallible form of [`compare`](ConsolidationStudy::compare).
    ///
    /// # Errors
    ///
    /// Returns [`ConsolidationError::NoClients`] for an empty client list.
    pub fn try_compare(
        &self,
        clients: &[&Workload],
    ) -> Result<ConsolidationReport, ConsolidationError> {
        Ok(ConsolidationReport {
            estimate: self.try_estimate(clients)?,
            actual: self.try_actual(clients)?,
        })
    }

    /// Compares a client against a time-shifted copy of itself — the
    /// paper's `Shift-1s` / `Shift-100s` experiment (Figure 7), modelling
    /// two instances of the same application whose bursts do not align.
    pub fn compare_shifted(&self, client: &Workload, shift: SimDuration) -> ConsolidationReport {
        let shifted = client.shifted(shift);
        self.compare(&[client, &shifted])
    }

    /// Lazy form of [`compare`](ConsolidationStudy::compare): neither side
    /// is planned until first accessed, and each side is planned at most
    /// once. [`try_compare`](ConsolidationStudy::try_compare) always pays
    /// for both sides even when the caller consumes only one; a
    /// [`LazyConsolidation`] defers each until demanded.
    ///
    /// # Errors
    ///
    /// Returns [`ConsolidationError::NoClients`] for an empty client list.
    pub fn try_lazy<'c>(
        &self,
        clients: &[&'c Workload],
    ) -> Result<LazyConsolidation<'c>, ConsolidationError> {
        LazyConsolidation::try_new(*self, clients)
    }
}

/// A consolidation comparison whose two sides are planned on demand.
///
/// [`ConsolidationStudy::try_compare`] eagerly prices both the additive
/// estimate and the merged actual — wasteful when the caller needs only
/// one side, and doubly wasteful for a *single-client* fleet, where the
/// merged stream **is** the lone client and the two sides coincide by
/// construction. `LazyConsolidation` memoizes each side in a
/// [`OnceCell`] and answers single-client `actual` from `estimate`
/// without re-planning, so [`ratio`](Self::ratio) on a one-client fleet
/// is exactly `1.0` (finite, by the [`Iops`] invariant — see the
/// regression test).
#[derive(Clone, Debug)]
pub struct LazyConsolidation<'c> {
    study: ConsolidationStudy,
    clients: Vec<&'c Workload>,
    estimate: OnceCell<Iops>,
    actual: OnceCell<Iops>,
}

impl<'c> LazyConsolidation<'c> {
    /// Builds the lazy comparison without planning anything.
    ///
    /// # Errors
    ///
    /// Returns [`ConsolidationError::NoClients`] for an empty client list.
    pub fn try_new(
        study: ConsolidationStudy,
        clients: &[&'c Workload],
    ) -> Result<Self, ConsolidationError> {
        if clients.is_empty() {
            return Err(ConsolidationError::NoClients);
        }
        Ok(LazyConsolidation {
            study,
            clients: clients.to_vec(),
            estimate: OnceCell::new(),
            actual: OnceCell::new(),
        })
    }

    /// The additive estimate, planned on first call and memoized.
    pub fn estimate(&self) -> Iops {
        *self
            .estimate
            .get_or_init(|| self.study.estimate(&self.clients))
    }

    /// The merged actual, planned on first call and memoized. A
    /// single-client fleet reuses [`estimate`](Self::estimate): merging
    /// one stream is the identity, so the sides are equal by construction.
    pub fn actual(&self) -> Iops {
        *self.actual.get_or_init(|| {
            if self.clients.len() == 1 {
                self.estimate()
            } else {
                self.study.actual(&self.clients)
            }
        })
    }

    /// `actual / estimate`, with both sides demanded (and memoized) on
    /// first call — same contract as [`ConsolidationReport::ratio`].
    pub fn ratio(&self) -> f64 {
        self.actual().get() / self.estimate().get()
    }

    /// Materialises the eager report from the (possibly already-memoized)
    /// sides.
    pub fn report(&self) -> ConsolidationReport {
        ConsolidationReport {
            estimate: self.estimate(),
            actual: self.actual(),
        }
    }
}

/// Merges any number of client workloads into one arrival stream.
pub fn merge_all(clients: &[&Workload]) -> Workload {
    let mut merged = match clients.first() {
        Some(w) => (*w).clone(),
        None => Workload::new(),
    };
    for w in &clients[1.min(clients.len())..] {
        merged = merged.merged(w);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqos_trace::SimTime;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn dms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn identical_aligned_bursts_match_the_estimate() {
        // Worst case: both clients burst at the same instant; the estimate
        // (2x individual) is exactly right.
        let w = Workload::from_arrivals(vec![SimTime::ZERO; 10]);
        let study = ConsolidationStudy::new(QosTarget::new(1.0, dms(10)));
        let report = study.compare(&[&w, &w]);
        assert_eq!(report.estimate.get(), 2000.0);
        assert_eq!(report.actual.get(), 2000.0);
        assert!((report.ratio() - 1.0).abs() < 1e-9);
        assert!(report.relative_error() < 1e-9);
    }

    #[test]
    fn shifted_bursts_halve_the_requirement() {
        // A single burst, merged with itself shifted beyond the drain time:
        // the server never sees both bursts at once.
        let w = Workload::from_arrivals(vec![SimTime::ZERO; 10]);
        let study = ConsolidationStudy::new(QosTarget::new(1.0, dms(10)));
        let report = study.compare_shifted(&w, SimDuration::from_secs(1));
        assert_eq!(report.estimate.get(), 2000.0);
        assert_eq!(report.actual.get(), 1000.0);
        assert_eq!(report.ratio(), 0.5);
    }

    #[test]
    fn decomposed_estimate_tracks_actual_for_shifted_bursty_clients() {
        // The paper's core claim: at f < 1 the additive estimate is close to
        // the true merged requirement even when bursts do not align.
        let mut arrivals: Vec<SimTime> = (0..400).map(|i| ms(i * 5)).collect();
        arrivals.extend(vec![ms(700); 40]); // burst
        let w = Workload::from_arrivals(arrivals);
        let study = ConsolidationStudy::new(QosTarget::new(0.90, dms(10)));
        let report = study.compare_shifted(&w, SimDuration::from_secs(1));
        assert!(
            report.relative_error() < 0.15,
            "decomposed estimate off by {:.1}%: {report}",
            report.relative_error() * 100.0
        );
    }

    #[test]
    fn full_guarantee_estimate_overshoots_for_disjoint_bursts() {
        // Same clients at f = 100%: the estimate over-provisions heavily.
        let mut arrivals: Vec<SimTime> = (0..400).map(|i| ms(i * 5)).collect();
        arrivals.extend(vec![ms(700); 40]);
        let w = Workload::from_arrivals(arrivals);
        let study = ConsolidationStudy::new(QosTarget::new(1.0, dms(10)));
        let report = study.compare_shifted(&w, SimDuration::from_secs(1));
        assert!(
            report.ratio() < 0.75,
            "expected multiplexing gain at f=100%: {report}"
        );
    }

    #[test]
    fn merge_all_handles_many_clients() {
        let a = Workload::from_arrivals([ms(0)]);
        let b = Workload::from_arrivals([ms(1)]);
        let c = Workload::from_arrivals([ms(2)]);
        let merged = merge_all(&[&a, &b, &c]);
        assert_eq!(merged.len(), 3);
        assert_eq!(merge_all(&[]).len(), 0);
        assert_eq!(merge_all(&[&a]).len(), 1);
    }

    #[test]
    fn three_client_comparison() {
        let w = Workload::from_arrivals(vec![SimTime::ZERO; 6]);
        let study = ConsolidationStudy::new(QosTarget::new(1.0, dms(10)));
        let s1 = w.shifted(SimDuration::from_secs(1));
        let s2 = w.shifted(SimDuration::from_secs(2));
        let report = study.compare(&[&w, &s1, &s2]);
        assert_eq!(report.estimate.get(), 1800.0);
        assert_eq!(report.actual.get(), 600.0);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn estimate_requires_clients() {
        let study = ConsolidationStudy::new(QosTarget::new(1.0, dms(10)));
        let _ = study.estimate(&[]);
    }

    #[test]
    fn empty_client_list_is_a_typed_error() {
        let study = ConsolidationStudy::new(QosTarget::new(1.0, dms(10)));
        assert_eq!(study.try_estimate(&[]), Err(ConsolidationError::NoClients));
        assert_eq!(study.try_actual(&[]), Err(ConsolidationError::NoClients));
        assert_eq!(study.try_compare(&[]), Err(ConsolidationError::NoClients));
        let err = study.try_compare(&[]).unwrap_err();
        assert!(err.to_string().contains("at least one client"));
    }

    #[test]
    fn empty_client_workloads_compare_without_dividing_by_zero() {
        // Clients with zero arrivals are priced at the floor capacity, not
        // zero, so the report's divisions stay finite.
        let empty = Workload::new();
        let study = ConsolidationStudy::new(QosTarget::new(0.9, dms(10)));
        let report = study
            .try_compare(&[&empty, &empty])
            .expect("empty workloads are still one-client-each");
        assert!(report.ratio().is_finite());
        assert!(report.ratio() > 0.0);
        assert!(report.relative_error().is_finite());
        assert!(report.relative_error() >= 0.0);
    }

    #[test]
    fn ratio_and_relative_error_are_never_nan_at_extreme_rates() {
        // The Iops invariant (finite, strictly positive) rules out NaN and
        // zero for any report; plannable magnitudes stay finite.
        for (estimate, actual) in [(1e-9, 1e-9), (1.0, 1e18), (1e18, 1.0)] {
            let report = ConsolidationReport {
                estimate: Iops::new(estimate),
                actual: Iops::new(actual),
            };
            assert!(report.ratio().is_finite(), "ratio({estimate}, {actual})");
            assert!(report.ratio() > 0.0);
            assert!(
                report.relative_error().is_finite(),
                "relative_error({estimate}, {actual})"
            );
        }
        // The documented sentinel: a mismatch beyond f64's dynamic range
        // overflows to +∞ — never NaN, never a negative, never a panic.
        let sentinel = ConsolidationReport {
            estimate: Iops::new(f64::MIN_POSITIVE),
            actual: Iops::new(1e18),
        };
        assert_eq!(sentinel.ratio(), f64::INFINITY);
        assert!(!sentinel.ratio().is_nan());
        assert!(!sentinel.relative_error().is_nan());
        assert!(sentinel.relative_error() >= 0.0);
    }

    #[test]
    fn lazy_ratio_is_finite_for_single_client_fleets() {
        // Regression: a one-client "fleet" must produce a finite ratio of
        // exactly 1.0 without re-planning the merged side.
        let mut arrivals: Vec<SimTime> = (0..100).map(|i| ms(i * 7)).collect();
        arrivals.extend(vec![ms(350); 15]);
        let w = Workload::from_arrivals(arrivals);
        let study = ConsolidationStudy::new(QosTarget::new(0.95, dms(10)));
        let lazy = study.try_lazy(&[&w]).expect("one client");
        assert!(lazy.ratio().is_finite());
        assert_eq!(lazy.ratio(), 1.0);
        assert_eq!(
            lazy.estimate().get().to_bits(),
            lazy.actual().get().to_bits()
        );
        // The empty single client is the degenerate extreme: still finite.
        let empty = Workload::new();
        let lazy_empty = study.try_lazy(&[&empty]).expect("one client");
        assert!(lazy_empty.ratio().is_finite());
        assert_eq!(lazy_empty.ratio(), 1.0);
    }

    #[test]
    fn lazy_and_eager_comparisons_agree() {
        let w = Workload::from_arrivals(vec![SimTime::ZERO; 10]);
        let s1 = w.shifted(SimDuration::from_secs(1));
        let study = ConsolidationStudy::new(QosTarget::new(1.0, dms(10)));
        let lazy = study.try_lazy(&[&w, &s1]).expect("two clients");
        let eager = study.compare(&[&w, &s1]);
        assert_eq!(lazy.report(), eager);
        assert_eq!(lazy.ratio(), eager.ratio());
        assert_eq!(
            study.try_lazy(&[]).unwrap_err(),
            ConsolidationError::NoClients
        );
    }

    #[test]
    fn fallible_and_panicking_paths_agree() {
        let w = Workload::from_arrivals(vec![SimTime::ZERO; 10]);
        let study = ConsolidationStudy::new(QosTarget::new(1.0, dms(10)));
        let fallible = study.try_compare(&[&w, &w]).unwrap();
        let panicking = study.compare(&[&w, &w]);
        assert_eq!(fallible, panicking);
    }

    #[test]
    fn display_and_accessors() {
        let study = ConsolidationStudy::new(QosTarget::new(0.95, dms(10)));
        assert_eq!(study.target().fraction(), 0.95);
        let r = ConsolidationReport {
            estimate: Iops::new(100.0),
            actual: Iops::new(90.0),
        };
        assert!(r.to_string().contains("ratio 0.90"));
    }
}
