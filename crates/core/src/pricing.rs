//! Graduated SLA pricing.
//!
//! The paper's introduction frames the business case: decomposition lets a
//! provider "pass on these savings by providing a variety of SLAs and
//! pricing options", with "concessional terms" for clients whose streams
//! need negligible surplus capacity. This module turns a capacity menu into
//! that price list: cost is proportional to the capacity a client's target
//! *reserves*, so the premium for covering one's burst tail — and the
//! discount for being well-behaved — fall out of the planner directly.

use std::fmt;

use gqos_trace::{SimDuration, Workload};

use crate::planner::CapacityPlanner;
use crate::target::QosTarget;

/// A linear capacity-pricing model: a fixed base fee plus a rate per
/// reserved IOPS per billing period.
///
/// # Examples
///
/// ```
/// use gqos_core::{PricingModel, QosTarget};
/// use gqos_trace::{SimDuration, SimTime, Workload};
///
/// let pricing = PricingModel::new(10.0, 0.50);
/// let w = Workload::from_arrivals((0..100).map(|i| SimTime::from_millis(i * 10)));
/// let quote = pricing.quote(&w, QosTarget::new(0.90, SimDuration::from_millis(10)));
/// assert!(quote.monthly_cost > 10.0);
/// ```
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct PricingModel {
    base_fee: f64,
    per_iops: f64,
}

impl PricingModel {
    /// Creates a model charging `base_fee` plus `per_iops` per reserved
    /// IOPS per period.
    ///
    /// # Panics
    ///
    /// Panics if either argument is negative or non-finite.
    pub fn new(base_fee: f64, per_iops: f64) -> Self {
        assert!(
            base_fee.is_finite() && base_fee >= 0.0,
            "invalid base fee: {base_fee}"
        );
        assert!(
            per_iops.is_finite() && per_iops >= 0.0,
            "invalid per-IOPS rate: {per_iops}"
        );
        PricingModel { base_fee, per_iops }
    }

    /// The fixed fee per period.
    pub fn base_fee(&self) -> f64 {
        self.base_fee
    }

    /// The rate per reserved IOPS per period.
    pub fn per_iops(&self) -> f64 {
        self.per_iops
    }

    /// Prices one client at one target: plans `Cmin + ΔC` and applies the
    /// linear model.
    pub fn quote(&self, workload: &Workload, target: QosTarget) -> Quote {
        let planner = CapacityPlanner::new(workload, target.deadline());
        let provision = planner.provision(target);
        Quote {
            target,
            reserved_iops: provision.total().get(),
            monthly_cost: self.base_fee + self.per_iops * provision.total().get(),
        }
    }

    /// Prices a menu of guaranteed fractions at a fixed deadline.
    pub fn menu(
        &self,
        workload: &Workload,
        deadline: SimDuration,
        fractions: &[f64],
    ) -> Vec<Quote> {
        fractions
            .iter()
            .map(|&f| self.quote(workload, QosTarget::new(f, deadline)))
            .collect()
    }

    /// The *burst premium*: what full coverage costs over covering only a
    /// fraction `fraction` — the money the tail wags out of the client.
    pub fn burst_premium(&self, workload: &Workload, deadline: SimDuration, fraction: f64) -> f64 {
        let full = self.quote(workload, QosTarget::full(deadline));
        let partial = self.quote(workload, QosTarget::new(fraction, deadline));
        full.monthly_cost - partial.monthly_cost
    }

    /// The well-behavedness discount in `[0, 1)`: the relative saving a
    /// client realises by accepting fraction `fraction` instead of a full
    /// guarantee. Smooth clients save almost nothing (they were cheap
    /// anyway); bursty clients save most of their bill.
    pub fn discount(&self, workload: &Workload, deadline: SimDuration, fraction: f64) -> f64 {
        let full = self.quote(workload, QosTarget::full(deadline)).monthly_cost;
        if full == 0.0 {
            return 0.0;
        }
        let partial = self
            .quote(workload, QosTarget::new(fraction, deadline))
            .monthly_cost;
        (1.0 - partial / full).max(0.0)
    }
}

impl fmt::Display for PricingModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pricing: {:.2} base + {:.3}/IOPS per period",
            self.base_fee, self.per_iops
        )
    }
}

/// A priced SLA offer.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct Quote {
    /// The guaranteed target.
    pub target: QosTarget,
    /// The capacity reserved for this client (`Cmin + ΔC`).
    pub reserved_iops: f64,
    /// The period cost under the model.
    pub monthly_cost: f64,
}

impl fmt::Display for Quote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: reserve {:.0} IOPS for {:.2}/period",
            self.target, self.reserved_iops, self.monthly_cost
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqos_trace::SimTime;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn dms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn smooth() -> Workload {
        Workload::from_arrivals((0..300).map(|i| ms(i * 10)))
    }

    fn bursty() -> Workload {
        let mut arrivals: Vec<SimTime> = (0..300).map(|i| ms(i * 10)).collect();
        arrivals.extend(vec![ms(1500); 60]);
        Workload::from_arrivals(arrivals)
    }

    #[test]
    fn quote_scales_with_reserved_capacity() {
        let pricing = PricingModel::new(5.0, 1.0);
        let q = pricing.quote(&smooth(), QosTarget::new(0.9, dms(10)));
        assert!((q.monthly_cost - (5.0 + q.reserved_iops)).abs() < 1e-9);
        assert!(q.to_string().contains("reserve"));
    }

    #[test]
    fn menu_prices_rise_with_the_fraction() {
        let pricing = PricingModel::new(0.0, 1.0);
        let menu = pricing.menu(&bursty(), dms(10), &[0.9, 0.99, 1.0]);
        assert!(menu[0].monthly_cost <= menu[1].monthly_cost);
        assert!(menu[1].monthly_cost <= menu[2].monthly_cost);
    }

    #[test]
    fn bursty_clients_pay_a_larger_premium() {
        let pricing = PricingModel::new(0.0, 1.0);
        let smooth_premium = pricing.burst_premium(&smooth(), dms(10), 0.9);
        let bursty_premium = pricing.burst_premium(&bursty(), dms(10), 0.9);
        assert!(
            bursty_premium > 5.0 * smooth_premium.max(1.0),
            "smooth {smooth_premium}, bursty {bursty_premium}"
        );
    }

    #[test]
    fn well_behaved_discount_ordering() {
        let pricing = PricingModel::new(0.0, 1.0);
        let d_smooth = pricing.discount(&smooth(), dms(10), 0.9);
        let d_bursty = pricing.discount(&bursty(), dms(10), 0.9);
        assert!(d_bursty > d_smooth, "smooth {d_smooth}, bursty {d_bursty}");
        assert!((0.0..1.0).contains(&d_smooth));
        assert!(d_bursty > 0.5, "bursty discount {d_bursty}");
    }

    #[test]
    fn base_fee_dominates_tiny_clients() {
        let pricing = PricingModel::new(100.0, 0.01);
        let q = pricing.quote(&smooth(), QosTarget::new(0.9, dms(50)));
        assert!(q.monthly_cost > 100.0 && q.monthly_cost < 110.0);
        assert_eq!(pricing.base_fee(), 100.0);
        assert_eq!(pricing.per_iops(), 0.01);
        assert!(pricing.to_string().contains("pricing"));
    }

    #[test]
    #[should_panic(expected = "invalid base fee")]
    fn negative_fee_rejected() {
        let _ = PricingModel::new(-1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid per-IOPS")]
    fn nan_rate_rejected() {
        let _ = PricingModel::new(0.0, f64::NAN);
    }
}
