//! Admission control from reshaped capacity estimates.
//!
//! The consolidation result (Section 4.4) turns into an operational
//! policy: admit a new client if the sum of everyone's *reshaped* `Cmin`
//! fits the server. Because decomposed estimates track the true merged
//! requirement closely, this admits far more clients than worst-case
//! budgeting at the same risk.

use std::error::Error;
use std::fmt;

use gqos_trace::{Iops, Workload};

use crate::planner::CapacityPlanner;
use crate::target::{Provision, QosTarget};

/// A capacity-budgeted admission controller for one shared server.
///
/// # Examples
///
/// ```
/// use gqos_core::{AdmissionController, QosTarget};
/// use gqos_trace::{Iops, SimDuration, SimTime, Workload};
///
/// let target = QosTarget::new(0.90, SimDuration::from_millis(10));
/// let mut ctrl = AdmissionController::new(Iops::new(1000.0), target);
/// let client = Workload::from_arrivals((0..100).map(|i| SimTime::from_millis(i * 10)));
/// let ticket = ctrl.try_admit("web", &client)?;
/// assert!(ticket.provision.cmin().get() <= 1000.0);
/// # Ok::<(), gqos_core::AdmissionError>(())
/// ```
#[derive(Clone, Debug)]
pub struct AdmissionController {
    capacity: Iops,
    target: QosTarget,
    admitted: Vec<Admission>,
}

/// A successfully admitted client.
#[derive(Clone, PartialEq, Debug)]
pub struct Admission {
    /// Caller-supplied client name.
    pub name: String,
    /// The client's planned provision at the controller's target.
    pub provision: Provision,
}

/// Rejection from [`AdmissionController::try_admit`].
#[derive(Clone, PartialEq, Debug)]
pub struct AdmissionError {
    /// Capacity the client would need.
    pub required: f64,
    /// Capacity left in the budget.
    pub available: f64,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "admission rejected: client needs {:.0} IOPS but only {:.0} IOPS remain",
            self.required, self.available
        )
    }
}

impl Error for AdmissionError {}

impl AdmissionController {
    /// Creates a controller budgeting `capacity` at the given per-client
    /// target.
    pub fn new(capacity: Iops, target: QosTarget) -> Self {
        AdmissionController {
            capacity,
            target,
            admitted: Vec::new(),
        }
    }

    /// The server's total budget.
    pub fn capacity(&self) -> Iops {
        self.capacity
    }

    /// The per-client QoS target.
    pub fn target(&self) -> QosTarget {
        self.target
    }

    /// Capacity committed to admitted clients (sum of `Cmin + ΔC`).
    pub fn committed(&self) -> f64 {
        self.admitted
            .iter()
            .map(|a| a.provision.total().get())
            .sum()
    }

    /// Capacity still available.
    pub fn available(&self) -> f64 {
        (self.capacity.get() - self.committed()).max(0.0)
    }

    /// The admitted clients, in admission order.
    pub fn admitted(&self) -> &[Admission] {
        &self.admitted
    }

    /// Plans the client's provision at the controller's target and admits
    /// it if the budget allows.
    ///
    /// # Errors
    ///
    /// Returns [`AdmissionError`] when the client's `Cmin + ΔC` exceeds
    /// the remaining budget; the controller state is unchanged.
    pub fn try_admit(
        &mut self,
        name: &str,
        workload: &Workload,
    ) -> Result<Admission, AdmissionError> {
        let planner = CapacityPlanner::new(workload, self.target.deadline());
        let provision = planner.provision(self.target);
        let required = provision.total().get();
        let available = self.available();
        if required > available {
            return Err(AdmissionError {
                required,
                available,
            });
        }
        let admission = Admission {
            name: name.to_string(),
            provision,
        };
        self.admitted.push(admission.clone());
        Ok(admission)
    }

    /// Releases a previously admitted client by name, freeing its budget.
    /// Returns the released admission, or `None` if the name is unknown.
    pub fn release(&mut self, name: &str) -> Option<Admission> {
        let idx = self.admitted.iter().position(|a| a.name == name)?;
        Some(self.admitted.remove(idx))
    }
}

impl fmt::Display for AdmissionController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "admission controller: {}/{} IOPS committed across {} clients ({})",
            self.committed(),
            self.capacity.get(),
            self.admitted.len(),
            self.target
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqos_trace::{SimDuration, SimTime};

    fn target() -> QosTarget {
        QosTarget::new(0.90, SimDuration::from_millis(10))
    }

    fn smooth_client(rate_per_10ms: u64, n: u64) -> Workload {
        Workload::from_arrivals((0..n).flat_map(|i| {
            (0..rate_per_10ms)
                .map(move |j| SimTime::from_millis(i * 10) + SimDuration::from_micros(j * 100))
        }))
    }

    #[test]
    fn admits_until_budget_exhausted() {
        let mut ctrl = AdmissionController::new(Iops::new(800.0), target());
        // Each smooth client needs roughly 200 + 100 (surplus) IOPS.
        let client = smooth_client(2, 200);
        assert!(ctrl.try_admit("a", &client).is_ok());
        assert!(ctrl.try_admit("b", &client).is_ok());
        let err = ctrl.try_admit("c", &client).unwrap_err();
        assert!(err.required > err.available, "{err}");
        assert_eq!(ctrl.admitted().len(), 2);
        assert!(ctrl.to_string().contains("2 clients"));
    }

    #[test]
    fn rejection_leaves_state_unchanged() {
        let mut ctrl = AdmissionController::new(Iops::new(100.0), target());
        let committed_before = ctrl.committed();
        let big = Workload::from_arrivals(vec![SimTime::ZERO; 50]);
        assert!(ctrl.try_admit("big", &big).is_err());
        assert_eq!(ctrl.committed(), committed_before);
        assert!(ctrl.admitted().is_empty());
    }

    #[test]
    fn release_frees_budget() {
        let mut ctrl = AdmissionController::new(Iops::new(400.0), target());
        let client = smooth_client(2, 100);
        ctrl.try_admit("a", &client).expect("fits");
        let used = ctrl.committed();
        assert!(used > 0.0);
        let released = ctrl.release("a").expect("admitted");
        assert_eq!(released.name, "a");
        assert_eq!(ctrl.committed(), 0.0);
        assert_eq!(ctrl.available(), 400.0);
        assert!(ctrl.release("a").is_none());
    }

    #[test]
    fn provision_reflects_the_target() {
        let mut ctrl = AdmissionController::new(Iops::new(10_000.0), target());
        let bursty = Workload::from_arrivals(vec![SimTime::ZERO; 20]);
        let adm = ctrl.try_admit("burst", &bursty).expect("budget is large");
        // 90% of 20 requests within 10 ms -> Cmin = 1800 (18 slots).
        assert_eq!(adm.provision.cmin().get(), 1800.0);
        assert_eq!(adm.provision.delta_c().get(), 100.0);
        assert_eq!(ctrl.capacity().get(), 10_000.0);
        assert_eq!(ctrl.target().fraction(), 0.90);
    }

    #[test]
    fn error_is_a_real_error_type() {
        let e = AdmissionError {
            required: 500.0,
            available: 100.0,
        };
        assert!(e.to_string().contains("rejected"));
        let _: &dyn Error = &e;
    }
}
