//! Allocation-free integer kernels behind the RTT decomposition family.
//!
//! Every offline entry point in [`rtt`](crate::rtt) — [`decompose`],
//! [`within_miss_budget`], the planner's probes — reduces to the same loop:
//! walk the arrivals in order, emulate the dedicated rate-`C` primary
//! server, and admit while fewer than `maxQ1 = ⌊C·δ⌋` primary requests are
//! pending. This module states that loop once, in pure integer arithmetic
//! over the workload's cached [`ArrivalColumn`](gqos_trace::ArrivalColumn):
//!
//! - [`RttParams`] precomputes `(maxQ1, service_ns)` for one `(C, δ)` pair;
//! - [`RttState`] is the 16-byte rolling server state with an O(1)
//!   *bulk-drain* admit step (the seed's per-completion `while` loop is
//!   replaced by one division — exactly equivalent, see the unit tests);
//! - [`overflow_curve`] and [`within_miss_budget_curve`] fuse a whole
//!   capacity grid into a single pass over the arrivals: the column streams
//!   through once, and the per-capacity state recurrences — each a serial
//!   dependency chain — run interleaved so the core overlaps them.
//!
//! [`decompose`]: crate::rtt::decompose
//! [`within_miss_budget`]: crate::rtt::within_miss_budget

use gqos_trace::{Iops, SimDuration, Workload};

/// Arrivals per tile of the fused *budget* probe: 4096 × 8 B = 32 KiB,
/// sized to sit in L1d. [`within_miss_budget_curve`] checks lane viability
/// at tile granularity so busted lanes drop out between blocks.
const TILE: usize = 4096;

/// Precomputed integer parameters of one RTT scan at a fixed `(C, δ)`.
#[derive(Copy, Clone, Debug)]
pub(crate) struct RttParams {
    /// The primary-queue bound `maxQ1 = ⌊C·δ⌋` (≥ 1).
    pub(crate) max_q1: u64,
    /// Deterministic primary service time `1/C` in nanoseconds (≥ 1).
    pub(crate) service_ns: u64,
}

impl RttParams {
    /// Parameters for a scan, with the same contract as
    /// [`RttClassifier::new`](crate::RttClassifier::new).
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero or `⌊C·δ⌋ = 0`.
    pub(crate) fn new(capacity: Iops, deadline: SimDuration) -> Self {
        assert!(!deadline.is_zero(), "deadline must be positive");
        RttParams::try_new(capacity, deadline).unwrap_or_else(|| {
            panic!(
                "C x delta = {capacity} x {deadline} admits no requests; \
                 raise capacity or deadline"
            )
        })
    }

    /// Non-panicking variant: `None` when `⌊C·δ⌋ = 0` (a degenerate
    /// capacity that can guarantee nothing — every request overflows).
    ///
    /// When `C·δ` exceeds the 64-bit counter ([`checked_max_queue`] would
    /// return [`CapacityOverflow`]), the bound **saturates** at `u64::MAX`:
    /// such a capacity admits every request, and [`RttState::admit`]'s
    /// arithmetic is itself saturating, so grid sweeps may include absurd
    /// capacities without pre-filtering or panicking.
    ///
    /// [`checked_max_queue`]: crate::rtt::checked_max_queue
    /// [`CapacityOverflow`]: crate::rtt::CapacityOverflow
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero.
    pub(crate) fn try_new(capacity: Iops, deadline: SimDuration) -> Option<Self> {
        assert!(!deadline.is_zero(), "deadline must be positive");
        let max_q1 = crate::rtt::checked_max_queue(capacity, deadline).unwrap_or(u64::MAX);
        if max_q1 == 0 {
            return None;
        }
        let service_ns = capacity
            .service_time()
            .max(SimDuration::from_nanos(1))
            .as_nanos();
        Some(RttParams { max_q1, service_ns })
    }
}

/// Rolling state of the emulated dedicated primary server: the pending
/// primary count and the completion instant of the request at the head of
/// `Q1`.
#[derive(Copy, Clone, Default, Debug)]
pub(crate) struct RttState {
    len_q1: u64,
    next_done_ns: u64,
}

impl RttState {
    /// Processes one arrival (Algorithm 1): `true` if it is admitted to the
    /// primary class.
    ///
    /// While busy the server finishes one request every `service_ns`, so
    /// all completions up to the arrival drain in one step:
    /// `min(lenQ1, (arrival − next_done)/service + 1)` — the closed form of
    /// the per-completion loop. The common case (the whole queue drains
    /// before the arrival: the last completion, at
    /// `next_done + (lenQ1−1)·service`, has passed) is decided with one
    /// multiply; the division only runs on a *partial* drain, i.e. when a
    /// burst is actively backlogging the server.
    ///
    /// All completion-instant arithmetic **saturates** at `u64::MAX` ns
    /// (the clock horizon, ≈ 584 years): with `u64::MAX`-adjacent
    /// capacities, deadlines, or arrivals, a product that overflows means
    /// "the server is busy past the horizon", and a saturated instant
    /// encodes exactly that — the full-drain test still errs toward the
    /// partial branch (the true instant exceeds any representable
    /// arrival), and `drained ≤ lenQ1 − 1` keeps holding, so the state
    /// stays coherent instead of wrapping or panicking.
    #[inline(always)]
    pub(crate) fn admit(&mut self, p: RttParams, arrival_ns: u64) -> bool {
        if self.len_q1 > 0 && self.next_done_ns <= arrival_ns {
            let last_done_ns = self
                .next_done_ns
                .saturating_add((self.len_q1 - 1).saturating_mul(p.service_ns));
            if last_done_ns <= arrival_ns {
                // Full drain: `next_done` is reset by the idle branch below.
                self.len_q1 = 0;
            } else {
                let drained = (arrival_ns - self.next_done_ns) / p.service_ns + 1;
                self.len_q1 -= drained;
                self.next_done_ns = self
                    .next_done_ns
                    .saturating_add(drained.saturating_mul(p.service_ns));
            }
        }
        if self.len_q1 == 0 {
            // Server idle: the next admitted request starts on arrival.
            self.next_done_ns = arrival_ns.saturating_add(p.service_ns);
        }
        if self.len_q1 < p.max_q1 {
            self.len_q1 += 1;
            true
        } else {
            false
        }
    }
}

/// Counts RTT overflow at one capacity — a single allocation-free pass.
pub(crate) fn scan_overflow(workload: &Workload, p: RttParams) -> u64 {
    let mut state = RttState::default();
    let mut overflow = 0u64;
    for &arrival in workload.arrival_column().nanos() {
        overflow += u64::from(!state.admit(p, arrival));
    }
    overflow
}

/// Counting budget probe at one capacity: `true` iff RTT diverts at most
/// `budget` requests. Aborts the scan as soon as the budget is exceeded.
pub(crate) fn scan_within_budget(workload: &Workload, p: RttParams, budget: u64) -> bool {
    let mut state = RttState::default();
    let mut overflow = 0u64;
    for &arrival in workload.arrival_column().nanos() {
        if !state.admit(p, arrival) {
            overflow += 1;
            if overflow > budget {
                return false;
            }
        }
    }
    true
}

/// Lanes the fused overflow pass pins in registers per sweep of the
/// column: four independent `state → state` recurrences is enough to keep
/// the out-of-order core busy without spilling the states to the stack.
const LANE_UNROLL: usize = 4;

/// Evaluates RTT overflow counts for a whole capacity grid in one fused
/// pass over the workload — the probe behind capacity sweeps and
/// [`CapacityPlanner::fraction_curve`](crate::CapacityPlanner::fraction_curve).
///
/// Result `i` equals `decompose(workload, capacities[i], deadline)
/// .overflow_count()`, except that *degenerate* capacities (`⌊C·δ⌋ = 0`,
/// which [`decompose`](crate::rtt::decompose) rejects with a panic) map to
/// `workload.len()`: a capacity that cannot finish one request within the
/// deadline guarantees nothing, so every request overflows. That convention
/// lets grid sweeps include sub-floor capacities without pre-filtering.
///
/// The grid is processed [`LANE_UNROLL`] capacities at a time: each quad
/// sweeps the column once with its four states held in registers. One
/// per-capacity scan is latency-bound on a single serial `state → state`
/// recurrence; inside a quad the four recurrences are independent, so the
/// core overlaps them and the sweep runs near throughput instead of
/// latency. The column is streamed `⌈k/4⌉` times, but it is a flat 8 B/req
/// buffer — bandwidth is not the binding constraint, the chain is.
///
/// # Panics
///
/// Panics if `deadline` is zero.
pub fn overflow_curve(workload: &Workload, capacities: &[Iops], deadline: SimDuration) -> Vec<u64> {
    assert!(!deadline.is_zero(), "deadline must be positive");
    let n = workload.len() as u64;
    let mut lanes: Vec<(usize, RttParams, RttState, u64)> = Vec::with_capacity(capacities.len());
    let mut overflow = vec![0u64; capacities.len()];
    for (i, &c) in capacities.iter().enumerate() {
        match RttParams::try_new(c, deadline) {
            Some(p) => lanes.push((i, p, RttState::default(), 0)),
            None => overflow[i] = n,
        }
    }
    let col = workload.arrival_column().nanos();
    let mut quads = lanes.chunks_exact_mut(LANE_UNROLL);
    for quad in &mut quads {
        let [l0, l1, l2, l3] = quad else {
            unreachable!()
        };
        let (p0, p1, p2, p3) = (l0.1, l1.1, l2.1, l3.1);
        let (mut s0, mut s1, mut s2, mut s3) = (l0.2, l1.2, l2.2, l3.2);
        let (mut c0, mut c1, mut c2, mut c3) = (0u64, 0u64, 0u64, 0u64);
        for &arrival in col {
            c0 += u64::from(!s0.admit(p0, arrival));
            c1 += u64::from(!s1.admit(p1, arrival));
            c2 += u64::from(!s2.admit(p2, arrival));
            c3 += u64::from(!s3.admit(p3, arrival));
        }
        (l0.3, l1.3, l2.3, l3.3) = (c0, c1, c2, c3);
    }
    // Up to three leftover lanes: one sweep, interleaved arrival-major.
    let rest = quads.into_remainder();
    if !rest.is_empty() {
        for &arrival in col {
            for (_, p, state, count) in rest.iter_mut() {
                *count += u64::from(!state.admit(*p, arrival));
            }
        }
    }
    for (i, _, _, count) in lanes {
        overflow[i] = count;
    }
    overflow
}

/// Fused budgeted feasibility probe over a capacity grid: result `i` is
/// `within_miss_budget(workload, capacities[i], deadline, budget)`, with
/// degenerate capacities (`⌊C·δ⌋ = 0`) feasible only when the whole
/// workload fits the budget (`len ≤ budget`), matching the
/// [`overflow_curve`] convention.
///
/// Early exits are *shared across the grid*: overflow counts are
/// non-increasing in `C` (a faster server with a deeper bound admits a
/// superset — see `overflow_is_monotone_in_capacity` in the tests), so as
/// the scan advances, capacities bust their budget from the bottom of the
/// grid upward. Each busted lane drops out of the remaining tiles, and the
/// pass stops entirely once every lane has failed — an infeasible grid
/// costs one budget-bounded prefix, not `k` full scans. Each lane's own
/// exit is decided by its running count alone, so the result does not
/// *rely* on monotonicity; monotonicity is what makes the shared exit pay.
///
/// # Panics
///
/// Panics if `deadline` is zero.
pub fn within_miss_budget_curve(
    workload: &Workload,
    capacities: &[Iops],
    deadline: SimDuration,
    budget: u64,
) -> Vec<bool> {
    assert!(!deadline.is_zero(), "deadline must be positive");
    let n = workload.len() as u64;
    let mut verdicts = vec![false; capacities.len()];
    let mut lanes: Vec<(usize, RttParams, RttState, u64)> = Vec::with_capacity(capacities.len());
    for (i, &c) in capacities.iter().enumerate() {
        match RttParams::try_new(c, deadline) {
            Some(p) => lanes.push((i, p, RttState::default(), 0)),
            None => verdicts[i] = n <= budget,
        }
    }
    for block in workload.arrival_column().nanos().chunks(TILE) {
        lanes.retain_mut(|(_, p, state, overflow)| {
            for &arrival in block {
                if !state.admit(*p, arrival) {
                    *overflow += 1;
                    if *overflow > budget {
                        // Lane busted: drop it from the remaining tiles.
                        return false;
                    }
                }
            }
            true
        });
        if lanes.is_empty() {
            break;
        }
    }
    // Lanes that survived the full scan stayed within budget.
    for (i, _, _, _) in lanes {
        verdicts[i] = true;
    }
    verdicts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtt::{decompose, within_miss_budget};
    use gqos_trace::SimTime;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn dms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn bursty() -> Workload {
        let mut arrivals: Vec<SimTime> = (0..400).map(|i| ms(i * 7)).collect();
        arrivals.extend(vec![ms(500); 25]);
        arrivals.extend(vec![ms(1700); 60]);
        Workload::from_arrivals(arrivals)
    }

    #[test]
    fn bulk_drain_matches_per_completion_loop() {
        // Replay the same arrivals through the closed-form state and a
        // literal transcription of the seed's while-loop; every decision
        // and every intermediate state must coincide.
        let w = bursty();
        let p = RttParams::new(Iops::new(300.0), dms(20));
        let mut fast = RttState::default();
        let (mut len_q1, mut next_done) = (0u64, 0u64);
        for &a in w.arrival_column().nanos() {
            while len_q1 > 0 && next_done <= a {
                len_q1 -= 1;
                next_done += p.service_ns;
            }
            if len_q1 == 0 {
                next_done = a + p.service_ns;
            }
            let slow_admit = len_q1 < p.max_q1;
            if slow_admit {
                len_q1 += 1;
            }
            assert_eq!(fast.admit(p, a), slow_admit);
            assert_eq!((fast.len_q1, fast.next_done_ns), (len_q1, next_done));
        }
    }

    #[test]
    fn overflow_curve_matches_scalar_decompose() {
        let w = bursty();
        let delta = dms(10);
        let grid: Vec<Iops> = [120.0, 250.0, 400.0, 800.0, 2000.0, 9000.0]
            .map(Iops::new)
            .to_vec();
        let fused = overflow_curve(&w, &grid, delta);
        for (i, &c) in grid.iter().enumerate() {
            assert_eq!(fused[i], decompose(&w, c, delta).overflow_count(), "C={c}");
        }
    }

    #[test]
    fn overflow_curve_handles_degenerate_and_empty() {
        let w = bursty();
        // 10 IOPS × 10 ms < 1 slot: degenerate, everything overflows.
        let grid = [Iops::new(10.0), Iops::new(500.0)];
        let fused = overflow_curve(&w, &grid, dms(10));
        assert_eq!(fused[0], w.len() as u64);
        assert_eq!(fused[1], decompose(&w, grid[1], dms(10)).overflow_count());
        assert_eq!(
            overflow_curve(&Workload::new(), &grid, dms(10)),
            vec![0, 0],
            "empty workload overflows nothing at any capacity"
        );
        assert!(overflow_curve(&w, &[], dms(10)).is_empty());
    }

    #[test]
    fn overflow_is_monotone_in_capacity() {
        // The property the fused budget probe's shared exit leans on.
        let w = bursty();
        let grid: Vec<Iops> = (1..60).map(|i| Iops::new(i as f64 * 50.0)).collect();
        let curve = overflow_curve(&w, &grid, dms(10));
        assert!(
            curve.windows(2).all(|p| p[1] <= p[0]),
            "overflow must not increase with capacity: {curve:?}"
        );
    }

    #[test]
    fn budget_curve_matches_scalar_probe() {
        let w = bursty();
        let delta = dms(10);
        let grid: Vec<Iops> = [150.0, 300.0, 600.0, 1200.0, 6000.0]
            .map(Iops::new)
            .to_vec();
        for budget in [0u64, 5, 40, w.len() as u64] {
            let fused = within_miss_budget_curve(&w, &grid, delta, budget);
            for (i, &c) in grid.iter().enumerate() {
                assert_eq!(
                    fused[i],
                    within_miss_budget(&w, c, delta, budget),
                    "C={c} budget={budget}"
                );
            }
        }
    }

    #[test]
    fn budget_curve_degenerate_capacity_needs_budget_for_all() {
        let w = Workload::from_arrivals(vec![SimTime::ZERO; 4]);
        let grid = [Iops::new(10.0)]; // degenerate at 10 ms
        assert_eq!(within_miss_budget_curve(&w, &grid, dms(10), 3), vec![false]);
        assert_eq!(within_miss_budget_curve(&w, &grid, dms(10), 4), vec![true]);
    }

    #[test]
    fn curves_are_order_insensitive() {
        // Lanes carry their original index: a shuffled grid returns the
        // same values in the shuffled positions.
        let w = bursty();
        let delta = dms(10);
        let asc: Vec<Iops> = [150.0, 400.0, 900.0].map(Iops::new).to_vec();
        let desc: Vec<Iops> = [900.0, 400.0, 150.0].map(Iops::new).to_vec();
        let a = overflow_curve(&w, &asc, delta);
        let d = overflow_curve(&w, &desc, delta);
        assert_eq!(a[0], d[2]);
        assert_eq!(a[1], d[1]);
        assert_eq!(a[2], d[0]);
    }

    #[test]
    fn tiling_boundary_is_seamless() {
        // A workload longer than one tile: the state must carry across
        // tile boundaries exactly.
        let w = Workload::from_arrivals((0..(TILE as u64 * 2 + 37)).map(|i| ms(i / 3)));
        let delta = dms(10);
        let grid = [Iops::new(250.0), Iops::new(3500.0)];
        let fused = overflow_curve(&w, &grid, delta);
        for (i, &c) in grid.iter().enumerate() {
            assert_eq!(fused[i], decompose(&w, c, delta).overflow_count(), "C={c}");
        }
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn overflow_curve_rejects_zero_deadline() {
        let _ = overflow_curve(&Workload::new(), &[Iops::new(100.0)], SimDuration::ZERO);
    }

    #[test]
    fn overflowing_capacity_saturates_and_admits_everything() {
        // C·δ = 1e30 × 10 s ≫ 2^64: the bound saturates at u64::MAX and the
        // scan must neither wrap nor panic — nothing overflows Q1.
        let w = bursty();
        let p = RttParams::try_new(Iops::new(1e30), SimDuration::from_secs(10))
            .expect("saturated bound is not degenerate");
        assert_eq!(p.max_q1, u64::MAX);
        assert_eq!(scan_overflow(&w, p), 0);
        assert_eq!(
            overflow_curve(&w, &[Iops::new(1e30)], SimDuration::from_secs(10)),
            vec![0]
        );
    }

    #[test]
    fn bulk_drain_saturates_instead_of_wrapping() {
        // Deep queue × huge service time: the full-drain probe
        // `next_done + (lenQ1−1)·service` exceeds u64 and must saturate
        // into the partial branch, not wrap (a wrap would fake a full
        // drain and corrupt the state — and panics in debug builds).
        let p = RttParams {
            max_q1: u64::MAX,
            service_ns: u64::MAX / 2,
        };
        let mut state = RttState::default();
        for _ in 0..3 {
            assert!(state.admit(p, 0));
        }
        // lenQ1 = 3, next_done = MAX/2. True last completion is at
        // MAX/2 + 2·(MAX/2) ≈ 1.5·u64::MAX — past any representable
        // arrival, so exactly one service interval has elapsed: one
        // request drains and the new arrival is admitted on top.
        assert!(state.admit(p, u64::MAX - 5));
        assert_eq!(state.len_q1, 3, "one drained, one admitted");
    }

    #[test]
    fn horizon_adjacent_arrivals_do_not_overflow() {
        // `arrival + service` past the horizon saturates to u64::MAX
        // ("busy past the horizon") instead of wrapping to a tiny instant —
        // a wrap would fake an idle server and admit without bound.
        let p = RttParams::new(Iops::new(100.0), dms(20)); // maxQ1 = 2
        let mut state = RttState::default();
        let arrival = u64::MAX - 10;
        assert!(state.admit(p, arrival));
        assert_eq!(state.next_done_ns, u64::MAX);
        assert!(state.admit(p, arrival));
        assert!(!state.admit(p, arrival), "Q1 full at the horizon: shed");
    }

    #[test]
    fn saturated_scan_stays_coherent_over_a_full_workload() {
        // A whole pass mixing normal arrivals with horizon-adjacent ones:
        // must complete without panicking and never admit beyond maxQ1.
        let arrivals: Vec<SimTime> = (0..100)
            .map(|i| SimTime::from_nanos(u64::MAX - 200 + 2 * (i / 2)))
            .collect();
        let w = Workload::from_arrivals(arrivals);
        let p = RttParams::new(Iops::new(100.0), dms(20));
        let overflow = scan_overflow(&w, p);
        assert!(
            overflow >= 100 - p.max_q1,
            "Q1 is bounded even at the horizon"
        );
    }
}
