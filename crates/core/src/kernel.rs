//! Allocation-free integer kernels behind the RTT decomposition family.
//!
//! Every offline entry point in [`rtt`](crate::rtt) — [`decompose`],
//! [`within_miss_budget`], the planner's probes — reduces to the same loop:
//! walk the arrivals in order, emulate the dedicated rate-`C` primary
//! server, and admit while fewer than `maxQ1 = ⌊C·δ⌋` primary requests are
//! pending. This module states that loop once, in pure integer arithmetic
//! over the workload's cached [`ArrivalColumn`](gqos_trace::ArrivalColumn):
//!
//! - [`RttParams`] precomputes `(maxQ1, service_ns)` for one `(C, δ)` pair;
//! - [`RttState`] is the 16-byte rolling server state with an O(1)
//!   *bulk-drain* admit step (the seed's per-completion `while` loop is
//!   replaced by one division — exactly equivalent, see the unit tests);
//! - [`overflow_curve`] and [`within_miss_budget_curve`] fuse a whole
//!   capacity grid into a single pass over the arrivals.
//!
//! # The work-recurrence lane form
//!
//! The fused curves do not run [`RttState::admit`] per lane: its drain step
//! branches three ways and divides on partial drains, which defeats
//! vectorisation. Instead each non-degenerate lane is rewritten as a
//! *Lindley work recurrence* over the server's remaining work `w` (ns):
//!
//! ```text
//! w ← max(w − gap, 0)          // the server drains 1 ns of work per ns
//! admit ⇔ w ≤ (maxQ1 − 1)·s    // pending = ⌈w/s⌉ < maxQ1
//! if admit { w ← w + s }       // an admitted request adds s ns of work
//! ```
//!
//! where `gap` is the inter-arrival time (shared across lanes) and
//! `s = service_ns`. The emulated server is work-conserving with
//! deterministic service, so remaining work decreases at exactly rate 1
//! while positive, and the pending count at any instant is `⌈w/s⌉` — the
//! head request carries `w mod s` (or a full `s`), every other request a
//! full `s`. `⌈w/s⌉ < maxQ1 ⇔ w ≤ (maxQ1−1)·s` for integer `w`, so the
//! recurrence reproduces [`RttState::admit`] decision-for-decision: four
//! branch-free integer ops per lane per arrival, no division, and the
//! per-lane state is one `u64` — exactly the shape the vector units want.
//! [`LANE_BATCH`] lanes run per sweep, with `#[target_feature]`-compiled
//! bodies (AVX-512/AVX2 on x86-64) selected once at runtime; every tier
//! performs the same wrap-free `u64` arithmetic, so results are
//! bit-identical across ISAs — see `DESIGN.md` §13.
//!
//! The rewrite is exact only while no intermediate saturates: `RttState`
//! deliberately clamps completion instants at the `u64::MAX` ns horizon
//! ("busy past the horizon") while the work form would keep draining.
//! [`WorkParams::try_from_rtt`] therefore admits a lane only when
//! `maxQ1·s` and `last_arrival + maxQ1·s` are representable — then
//! `w ≤ maxQ1·s` and every `RttState` instant stays below the horizon, so
//! the two forms coincide. Lanes that fail the guard (saturated `maxQ1`,
//! horizon-adjacent arrivals) fall back to the scalar scans, whose
//! saturation semantics are the documented contract.
//!
//! [`decompose`]: crate::rtt::decompose
//! [`within_miss_budget`]: crate::rtt::within_miss_budget

use gqos_trace::{Iops, SimDuration, Workload};

/// Arrivals per tile of the fused *budget* probe: 4096 × 8 B = 32 KiB,
/// sized to sit in L1d. [`within_miss_budget_curve`] checks lane viability
/// at tile granularity so busted batches drop out between blocks.
const TILE: usize = 4096;

/// Precomputed integer parameters of one RTT scan at a fixed `(C, δ)`.
#[derive(Copy, Clone, Debug)]
pub(crate) struct RttParams {
    /// The primary-queue bound `maxQ1 = ⌊C·δ⌋` (≥ 1).
    pub(crate) max_q1: u64,
    /// Deterministic primary service time `1/C` in nanoseconds (≥ 1).
    pub(crate) service_ns: u64,
}

impl RttParams {
    /// Parameters for a scan, with the same contract as
    /// [`RttClassifier::new`](crate::RttClassifier::new).
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero or `⌊C·δ⌋ = 0`.
    pub(crate) fn new(capacity: Iops, deadline: SimDuration) -> Self {
        assert!(!deadline.is_zero(), "deadline must be positive");
        RttParams::try_new(capacity, deadline).unwrap_or_else(|| {
            panic!(
                "C x delta = {capacity} x {deadline} admits no requests; \
                 raise capacity or deadline"
            )
        })
    }

    /// Non-panicking variant: `None` when `⌊C·δ⌋ = 0` (a degenerate
    /// capacity that can guarantee nothing — every request overflows).
    ///
    /// When `C·δ` exceeds the 64-bit counter ([`checked_max_queue`] would
    /// return [`CapacityOverflow`]), the bound **saturates** at `u64::MAX`:
    /// such a capacity admits every request, and [`RttState::admit`]'s
    /// arithmetic is itself saturating, so grid sweeps may include absurd
    /// capacities without pre-filtering or panicking.
    ///
    /// [`checked_max_queue`]: crate::rtt::checked_max_queue
    /// [`CapacityOverflow`]: crate::rtt::CapacityOverflow
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero.
    pub(crate) fn try_new(capacity: Iops, deadline: SimDuration) -> Option<Self> {
        assert!(!deadline.is_zero(), "deadline must be positive");
        let max_q1 = crate::rtt::checked_max_queue(capacity, deadline).unwrap_or(u64::MAX);
        if max_q1 == 0 {
            return None;
        }
        let service_ns = capacity
            .service_time()
            .max(SimDuration::from_nanos(1))
            .as_nanos();
        Some(RttParams { max_q1, service_ns })
    }
}

/// Rolling state of the emulated dedicated primary server: the pending
/// primary count and the completion instant of the request at the head of
/// `Q1`.
#[derive(Copy, Clone, Default, Debug)]
pub(crate) struct RttState {
    len_q1: u64,
    next_done_ns: u64,
}

impl RttState {
    /// Processes one arrival (Algorithm 1): `true` if it is admitted to the
    /// primary class.
    ///
    /// While busy the server finishes one request every `service_ns`, so
    /// all completions up to the arrival drain in one step:
    /// `min(lenQ1, (arrival − next_done)/service + 1)` — the closed form of
    /// the per-completion loop. The common case (the whole queue drains
    /// before the arrival: the last completion, at
    /// `next_done + (lenQ1−1)·service`, has passed) is decided with one
    /// multiply; the division only runs on a *partial* drain, i.e. when a
    /// burst is actively backlogging the server.
    ///
    /// All completion-instant arithmetic **saturates** at `u64::MAX` ns
    /// (the clock horizon, ≈ 584 years): with `u64::MAX`-adjacent
    /// capacities, deadlines, or arrivals, a product that overflows means
    /// "the server is busy past the horizon", and a saturated instant
    /// encodes exactly that — the full-drain test still errs toward the
    /// partial branch (the true instant exceeds any representable
    /// arrival), and `drained ≤ lenQ1 − 1` keeps holding, so the state
    /// stays coherent instead of wrapping or panicking.
    #[inline(always)]
    pub(crate) fn admit(&mut self, p: RttParams, arrival_ns: u64) -> bool {
        if self.len_q1 > 0 && self.next_done_ns <= arrival_ns {
            let last_done_ns = self
                .next_done_ns
                .saturating_add((self.len_q1 - 1).saturating_mul(p.service_ns));
            if last_done_ns <= arrival_ns {
                // Full drain: `next_done` is reset by the idle branch below.
                self.len_q1 = 0;
            } else {
                let drained = (arrival_ns - self.next_done_ns) / p.service_ns + 1;
                self.len_q1 -= drained;
                self.next_done_ns = self
                    .next_done_ns
                    .saturating_add(drained.saturating_mul(p.service_ns));
            }
        }
        if self.len_q1 == 0 {
            // Server idle: the next admitted request starts on arrival.
            self.next_done_ns = arrival_ns.saturating_add(p.service_ns);
        }
        if self.len_q1 < p.max_q1 {
            self.len_q1 += 1;
            true
        } else {
            false
        }
    }
}

/// Counts RTT overflow at one capacity — a single allocation-free pass
/// over a sorted arrival column.
pub(crate) fn scan_overflow(col: &[u64], p: RttParams) -> u64 {
    let mut state = RttState::default();
    let mut overflow = 0u64;
    for &arrival in col {
        overflow += u64::from(!state.admit(p, arrival));
    }
    overflow
}

/// Counting budget probe at one capacity: `true` iff RTT diverts at most
/// `budget` requests. Aborts the scan as soon as the budget is exceeded.
pub(crate) fn scan_within_budget(col: &[u64], p: RttParams, budget: u64) -> bool {
    let mut state = RttState::default();
    let mut overflow = 0u64;
    for &arrival in col {
        if !state.admit(p, arrival) {
            overflow += 1;
            if overflow > budget {
                return false;
            }
        }
    }
    true
}

/// Budget probe over the *merge* of two sorted columns, without
/// materialising the merged column: walks `a` and `b` with two cursors,
/// always consuming the smaller head. Equal instants are interchangeable —
/// [`RttState::admit`] depends only on the arrival value, so any tie order
/// yields the same verdict as scanning the materialised merge.
///
/// This is the fleet placer's "tenant T joins server S" feasibility probe:
/// `a` is the server's resident merged column, `b` the candidate tenant's,
/// and the probe costs zero allocations and aborts as soon as `budget` is
/// exceeded. Feeds on the work-recurrence lane when the exactness guard
/// admits it (the common case), else the saturating scalar scan — both
/// bit-equal to [`within_miss_budget`](crate::rtt::within_miss_budget) on
/// the merged workload, pinned by `merged_probe_matches_materialised` and
/// the `fleet_props` differential suite.
pub(crate) fn merged_within_budget(
    a: &[u64],
    b: &[u64],
    capacity: Iops,
    deadline: SimDuration,
    budget: u64,
) -> bool {
    assert!(!deadline.is_zero(), "deadline must be positive");
    let n = (a.len() + b.len()) as u64;
    let last = a
        .last()
        .copied()
        .unwrap_or(0)
        .max(b.last().copied().unwrap_or(0));
    match lane_form(capacity, deadline, last) {
        LaneForm::Degenerate => n <= budget,
        LaneForm::Work(wp) => {
            let (mut w, mut miss, mut prev) = (0u64, 0u64, 0u64);
            let mut scan = |arrival: u64| {
                let gap = arrival - prev;
                prev = arrival;
                let drained = w.saturating_sub(gap);
                if drained <= wp.admit_cap_ns {
                    w = drained + wp.service_ns;
                    true
                } else {
                    w = drained;
                    miss += 1;
                    miss <= budget
                }
            };
            merge_scan(a, b, &mut scan)
        }
        LaneForm::Scalar(p) => {
            let mut state = RttState::default();
            let mut miss = 0u64;
            let mut scan = |arrival: u64| {
                if state.admit(p, arrival) {
                    true
                } else {
                    miss += 1;
                    miss <= budget
                }
            };
            merge_scan(a, b, &mut scan)
        }
    }
}

/// Streams the merge of two sorted columns into `visit` in ascending
/// order, stopping early (returning `false`) when `visit` does.
fn merge_scan(a: &[u64], b: &[u64], visit: &mut impl FnMut(u64) -> bool) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let next = if a[i] <= b[j] {
            let v = a[i];
            i += 1;
            v
        } else {
            let v = b[j];
            j += 1;
            v
        };
        if !visit(next) {
            return false;
        }
    }
    for &v in &a[i..] {
        if !visit(v) {
            return false;
        }
    }
    for &v in &b[j..] {
        if !visit(v) {
            return false;
        }
    }
    true
}

/// Lanes per sweep of the fused curves. Eight `u64` states fill one
/// AVX-512 register (two AVX2 registers), and eight independent
/// recurrences are enough to hide the compare/blend latency even on the
/// scalar tier. Grids are processed `⌈k/8⌉` batches at a time with a
/// scalar remainder loop for the last `k mod 8` lanes.
pub(crate) const LANE_BATCH: usize = 8;

/// Per-lane constants of the work-recurrence form (module docs): the
/// service time `s` and the admit threshold `T = (maxQ1 − 1)·s`.
#[derive(Copy, Clone, Debug)]
struct WorkParams {
    service_ns: u64,
    admit_cap_ns: u64,
}

impl WorkParams {
    /// Rewrites an [`RttParams`] lane into work-recurrence form, or `None`
    /// when the rewrite is not provably exact for this column — i.e. when
    /// `maxQ1·s` or `last_arrival + maxQ1·s` overflows `u64`, the regime
    /// where [`RttState`]'s saturating "busy past the horizon" semantics
    /// (which the work form does not model) can engage. Callers must route
    /// `None` lanes to the scalar scans.
    fn try_from_rtt(p: RttParams, last_arrival_ns: u64) -> Option<Self> {
        let worst_backlog = p.max_q1.checked_mul(p.service_ns)?;
        last_arrival_ns.checked_add(worst_backlog)?;
        Some(WorkParams {
            service_ns: p.service_ns,
            admit_cap_ns: (p.max_q1 - 1) * p.service_ns,
        })
    }
}

/// One tile of the work recurrence over `K` lanes: streams `block`,
/// updating per-lane backlog `w` and miss counters in place. `prev` is the
/// previous arrival instant (0 before the first tile) and carries the gap
/// chain across tiles. The inner `K`-lane loop is branch-free (compare →
/// mask → blend), which is what lets the `#[target_feature]` wrappers
/// vectorise it.
#[inline(always)]
fn work_tile<const K: usize>(
    block: &[u64],
    service: &[u64; K],
    cap: &[u64; K],
    w: &mut [u64; K],
    miss: &mut [u64; K],
    prev: &mut u64,
) {
    let mut last = *prev;
    for &arrival in block {
        // The column is sorted ascending (ArrivalColumn invariant), so the
        // gap never underflows.
        let gap = arrival - last;
        last = arrival;
        for l in 0..K {
            let drained = w[l].saturating_sub(gap);
            let admit = drained <= cap[l];
            miss[l] += u64::from(!admit);
            w[l] = drained + u64::from(admit) * service[l];
        }
    }
    *prev = last;
}

/// `work_tile` hand-vectorised for AVX-512F: all eight `u64` lanes of the
/// batch live in one zmm register per state array. `max(w, gap) − gap` is
/// the branch-free saturating subtraction; admits are a `cmple` mask
/// driving two masked adds. Identical u64 arithmetic to [`work_tile`],
/// instruction for instruction in value terms — only the lane width
/// differs.
///
/// # Safety
///
/// The caller must have verified `avx512f` support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn work_tile_avx512(
    block: &[u64],
    service: &[u64; LANE_BATCH],
    cap: &[u64; LANE_BATCH],
    w: &mut [u64; LANE_BATCH],
    miss: &mut [u64; LANE_BATCH],
    prev: &mut u64,
) {
    use std::arch::x86_64::*;
    // SAFETY: loadu/storeu have no alignment requirement and the arrays
    // are exactly LANE_BATCH = 8 u64s = 64 bytes, one zmm register.
    unsafe {
        let one = _mm512_set1_epi64(1);
        let vs = _mm512_loadu_si512(service.as_ptr().cast());
        let vc = _mm512_loadu_si512(cap.as_ptr().cast());
        let mut vw = _mm512_loadu_si512(w.as_ptr().cast());
        let mut vm = _mm512_loadu_si512(miss.as_ptr().cast());
        let mut last = *prev;
        for &arrival in block {
            let gap = arrival - last;
            last = arrival;
            let vg = _mm512_set1_epi64(gap as i64);
            let drained = _mm512_sub_epi64(_mm512_max_epu64(vw, vg), vg);
            let admit = _mm512_cmple_epu64_mask(drained, vc);
            vm = _mm512_mask_add_epi64(vm, !admit, vm, one);
            vw = _mm512_mask_add_epi64(drained, admit, drained, vs);
        }
        _mm512_storeu_si512(w.as_mut_ptr().cast(), vw);
        _mm512_storeu_si512(miss.as_mut_ptr().cast(), vm);
        *prev = last;
    }
}

/// `work_tile` hand-vectorised for AVX2: the eight lanes split across two
/// ymm halves. AVX2 has no unsigned 64-bit compare, so operands are
/// sign-flipped (`x ^ 2⁶³`) before the signed `cmpgt`; the saturating
/// subtraction is `(w − gap) & (w > gap)` and misses accumulate by
/// subtracting the all-ones `!admit` mask. Same u64 values as the scalar
/// tier throughout.
///
/// # Safety
///
/// The caller must have verified `avx2` support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn work_tile_avx2(
    block: &[u64],
    service: &[u64; LANE_BATCH],
    cap: &[u64; LANE_BATCH],
    w: &mut [u64; LANE_BATCH],
    miss: &mut [u64; LANE_BATCH],
    prev: &mut u64,
) {
    use std::arch::x86_64::*;
    // SAFETY: loadu/storeu have no alignment requirement; each half is
    // four u64s = 32 bytes, one ymm register.
    unsafe {
        let sign = _mm256_set1_epi64x(i64::MIN);
        let load =
            |a: &[u64; LANE_BATCH], h: usize| _mm256_loadu_si256(a.as_ptr().add(4 * h).cast());
        let vs = [load(service, 0), load(service, 1)];
        // The admit threshold, pre-flipped for the signed compare.
        let vcf = [
            _mm256_xor_si256(load(cap, 0), sign),
            _mm256_xor_si256(load(cap, 1), sign),
        ];
        let mut vw = [load(w, 0), load(w, 1)];
        let mut vm = [load(miss, 0), load(miss, 1)];
        let mut last = *prev;
        for &arrival in block {
            let gap = arrival - last;
            last = arrival;
            let vg = _mm256_set1_epi64x(gap as i64);
            let vgf = _mm256_xor_si256(vg, sign);
            for h in 0..2 {
                let wf = _mm256_xor_si256(vw[h], sign);
                let pos = _mm256_cmpgt_epi64(wf, vgf); // w > gap, unsigned
                let diff = _mm256_sub_epi64(vw[h], vg);
                let drained = _mm256_and_si256(diff, pos); // max(w − gap, 0)
                let df = _mm256_xor_si256(drained, sign);
                let no_admit = _mm256_cmpgt_epi64(df, vcf[h]); // drained > cap
                vm[h] = _mm256_sub_epi64(vm[h], no_admit); // −(−1) per miss
                let add = _mm256_andnot_si256(no_admit, vs[h]);
                vw[h] = _mm256_add_epi64(drained, add);
            }
        }
        for h in 0..2 {
            _mm256_storeu_si256(w.as_mut_ptr().add(4 * h).cast(), vw[h]);
            _mm256_storeu_si256(miss.as_mut_ptr().add(4 * h).cast(), vm[h]);
        }
        *prev = last;
    }
}

/// Runtime-dispatched `work_tile`: picks the widest ISA tier the host
/// supports. Every tier runs the identical wrap-free `u64` recurrence, so
/// the choice affects speed only, never results — pinned by
/// `batched_tiers_match_the_scalar_lane_bit_for_bit` and the
/// `simd_props` differential suite.
#[inline]
fn work_tile_dispatch(
    block: &[u64],
    service: &[u64; LANE_BATCH],
    cap: &[u64; LANE_BATCH],
    w: &mut [u64; LANE_BATCH],
    miss: &mut [u64; LANE_BATCH],
    prev: &mut u64,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: avx512f support was just verified.
            return unsafe { work_tile_avx512(block, service, cap, w, miss, prev) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: avx2 support was just verified.
            return unsafe { work_tile_avx2(block, service, cap, w, miss, prev) };
        }
    }
    work_tile(block, service, cap, w, miss, prev);
}

/// Scalar (single-lane) work recurrence: the remainder loop of the fused
/// curves, and the reference the batched tiers are pinned against in the
/// differential tests.
fn work_overflow_lane(col: &[u64], p: WorkParams) -> u64 {
    let (mut w, mut miss, mut prev) = (0u64, 0u64, 0u64);
    for &arrival in col {
        let gap = arrival - prev;
        prev = arrival;
        let drained = w.saturating_sub(gap);
        if drained <= p.admit_cap_ns {
            w = drained + p.service_ns;
        } else {
            w = drained;
            miss += 1;
        }
    }
    miss
}

/// Scalar budgeted work recurrence: aborts as soon as `budget` is
/// exceeded, mirroring [`scan_within_budget`].
fn work_budget_lane(col: &[u64], p: WorkParams, budget: u64) -> bool {
    let (mut w, mut miss, mut prev) = (0u64, 0u64, 0u64);
    for &arrival in col {
        let gap = arrival - prev;
        prev = arrival;
        let drained = w.saturating_sub(gap);
        if drained <= p.admit_cap_ns {
            w = drained + p.service_ns;
        } else {
            w = drained;
            miss += 1;
            if miss > budget {
                return false;
            }
        }
    }
    true
}

/// How a grid lane is evaluated: the vectorisable work form, the scalar
/// saturating scan (horizon-adjacent regimes), or degenerate (`⌊C·δ⌋ = 0`).
enum LaneForm {
    Work(WorkParams),
    Scalar(RttParams),
    Degenerate,
}

fn lane_form(capacity: Iops, deadline: SimDuration, last_arrival_ns: u64) -> LaneForm {
    match RttParams::try_new(capacity, deadline) {
        None => LaneForm::Degenerate,
        Some(p) => match WorkParams::try_from_rtt(p, last_arrival_ns) {
            Some(wp) => LaneForm::Work(wp),
            None => LaneForm::Scalar(p),
        },
    }
}

/// Evaluates RTT overflow counts for a whole capacity grid in one fused
/// pass over the workload — the probe behind capacity sweeps and
/// [`CapacityPlanner::fraction_curve`](crate::CapacityPlanner::fraction_curve).
///
/// Result `i` equals `decompose(workload, capacities[i], deadline)
/// .overflow_count()`, except that *degenerate* capacities (`⌊C·δ⌋ = 0`,
/// which [`decompose`](crate::rtt::decompose) rejects with a panic) map to
/// `workload.len()`: a capacity that cannot finish one request within the
/// deadline guarantees nothing, so every request overflows. That convention
/// lets grid sweeps include sub-floor capacities without pre-filtering.
///
/// The grid is processed [`LANE_BATCH`] capacities at a time in the
/// work-recurrence form (module docs): each batch sweeps the column once
/// with its eight 8-byte states in registers, four branch-free ops per
/// lane per arrival, vectorised on the widest ISA tier the host supports.
/// Results are bit-identical to the scalar scan on every tier. The column
/// is streamed `⌈k/8⌉` times, but it is a flat 8 B/req buffer — bandwidth
/// is not the binding constraint.
///
/// # Panics
///
/// Panics if `deadline` is zero.
pub fn overflow_curve(workload: &Workload, capacities: &[Iops], deadline: SimDuration) -> Vec<u64> {
    overflow_curve_ns(workload.arrival_column().nanos(), capacities, deadline)
}

/// [`overflow_curve`] over a raw sorted arrival column (nanoseconds). The
/// fleet placer's incremental consolidation kernel maintains per-server
/// merged columns directly and probes them here without materialising a
/// [`Workload`] per probe.
///
/// The column must be sorted ascending (an [`ArrivalColumn`] invariant;
/// merged server columns preserve it by construction).
///
/// [`ArrivalColumn`]: gqos_trace::ArrivalColumn
///
/// # Panics
///
/// Panics if `deadline` is zero.
pub fn overflow_curve_ns(col: &[u64], capacities: &[Iops], deadline: SimDuration) -> Vec<u64> {
    assert!(!deadline.is_zero(), "deadline must be positive");
    let n = col.len() as u64;
    let last_arrival = col.last().copied().unwrap_or(0);
    let mut overflow = vec![0u64; capacities.len()];
    let mut fast: Vec<(usize, WorkParams)> = Vec::with_capacity(capacities.len());
    for (i, &c) in capacities.iter().enumerate() {
        match lane_form(c, deadline, last_arrival) {
            LaneForm::Work(wp) => fast.push((i, wp)),
            LaneForm::Scalar(p) => overflow[i] = scan_overflow(col, p),
            LaneForm::Degenerate => overflow[i] = n,
        }
    }
    let mut batches = fast.chunks_exact(LANE_BATCH);
    for batch in &mut batches {
        let mut service = [0u64; LANE_BATCH];
        let mut cap = [0u64; LANE_BATCH];
        for (l, &(_, wp)) in batch.iter().enumerate() {
            service[l] = wp.service_ns;
            cap[l] = wp.admit_cap_ns;
        }
        let mut w = [0u64; LANE_BATCH];
        let mut miss = [0u64; LANE_BATCH];
        let mut prev = 0u64;
        work_tile_dispatch(col, &service, &cap, &mut w, &mut miss, &mut prev);
        for (l, &(i, _)) in batch.iter().enumerate() {
            overflow[i] = miss[l];
        }
    }
    // Scalar remainder: the last `k mod LANE_BATCH` lanes sweep one by one.
    for &(i, wp) in batches.remainder() {
        overflow[i] = work_overflow_lane(col, wp);
    }
    overflow
}

/// Fused budgeted feasibility probes over a set of `(capacity, budget)`
/// pairs: result `i` is `within_miss_budget(workload, probes[i].0,
/// deadline, probes[i].1)`, with degenerate capacities (`⌊C·δ⌋ = 0`)
/// feasible only when the whole workload fits the budget, matching the
/// [`overflow_curve`] convention. Per-lane budgets are what the planner's
/// wide bisection needs: one pass answers eight *different* fractions'
/// probes at once.
///
/// Early exit is at batch granularity: the column is streamed in
/// [`TILE`]-sized blocks and a batch stops as soon as *every* lane in it
/// has exceeded its budget (each lane's verdict depends only on its own
/// running count, so letting a busted lane ride along is harmless).
/// Overflow counts are non-increasing in `C` (see
/// `overflow_is_monotone_in_capacity` in the tests), so sorted grids bust
/// from the bottom up and an infeasible batch costs one budget-bounded
/// prefix, not eight full scans.
pub(crate) fn within_miss_budget_multi(
    workload: &Workload,
    probes: &[(Iops, u64)],
    deadline: SimDuration,
) -> Vec<bool> {
    within_miss_budget_multi_ns(workload.arrival_column().nanos(), probes, deadline)
}

/// [`within_miss_budget_multi`] over a raw sorted arrival column — the
/// form the planner's wide bisection and the fleet placer's consolidated
/// quote resolution share.
pub(crate) fn within_miss_budget_multi_ns(
    col: &[u64],
    probes: &[(Iops, u64)],
    deadline: SimDuration,
) -> Vec<bool> {
    assert!(!deadline.is_zero(), "deadline must be positive");
    let n = col.len() as u64;
    let last_arrival = col.last().copied().unwrap_or(0);
    let mut verdicts = vec![false; probes.len()];
    let mut fast: Vec<(usize, WorkParams, u64)> = Vec::with_capacity(probes.len());
    for (i, &(c, budget)) in probes.iter().enumerate() {
        match lane_form(c, deadline, last_arrival) {
            LaneForm::Work(wp) => fast.push((i, wp, budget)),
            LaneForm::Scalar(p) => verdicts[i] = scan_within_budget(col, p, budget),
            LaneForm::Degenerate => verdicts[i] = n <= budget,
        }
    }
    let mut batches = fast.chunks_exact(LANE_BATCH);
    for batch in &mut batches {
        let mut service = [0u64; LANE_BATCH];
        let mut cap = [0u64; LANE_BATCH];
        let mut budget = [0u64; LANE_BATCH];
        for (l, &(_, wp, b)) in batch.iter().enumerate() {
            service[l] = wp.service_ns;
            cap[l] = wp.admit_cap_ns;
            budget[l] = b;
        }
        let mut w = [0u64; LANE_BATCH];
        let mut miss = [0u64; LANE_BATCH];
        let mut prev = 0u64;
        for block in col.chunks(TILE) {
            work_tile_dispatch(block, &service, &cap, &mut w, &mut miss, &mut prev);
            if (0..LANE_BATCH).all(|l| miss[l] > budget[l]) {
                // Whole batch busted: drop the remaining tiles.
                break;
            }
        }
        for (l, &(i, _, b)) in batch.iter().enumerate() {
            verdicts[i] = miss[l] <= b;
        }
    }
    for &(i, wp, b) in batches.remainder() {
        verdicts[i] = work_budget_lane(col, wp, b);
    }
    verdicts
}

/// Single budgeted feasibility probe over a raw sorted arrival column:
/// `within_miss_budget` for callers that hold a column, not a
/// [`Workload`]. Degenerate capacities (`⌊C·δ⌋ = 0`) are feasible only
/// when the whole column fits the budget, matching [`overflow_curve_ns`].
///
/// # Panics
///
/// Panics if `deadline` is zero.
pub(crate) fn within_miss_budget_ns(
    col: &[u64],
    capacity: Iops,
    deadline: SimDuration,
    budget: u64,
) -> bool {
    assert!(!deadline.is_zero(), "deadline must be positive");
    let last = col.last().copied().unwrap_or(0);
    match lane_form(capacity, deadline, last) {
        LaneForm::Degenerate => col.len() as u64 <= budget,
        LaneForm::Work(wp) => work_budget_lane(col, wp, budget),
        LaneForm::Scalar(p) => scan_within_budget(col, p, budget),
    }
}

/// Fused budgeted feasibility probe over a capacity grid at one shared
/// budget: result `i` is `within_miss_budget(workload, capacities[i],
/// deadline, budget)`. Thin wrapper over [`within_miss_budget_multi`].
///
/// # Panics
///
/// Panics if `deadline` is zero.
pub fn within_miss_budget_curve(
    workload: &Workload,
    capacities: &[Iops],
    deadline: SimDuration,
    budget: u64,
) -> Vec<bool> {
    let probes: Vec<(Iops, u64)> = capacities.iter().map(|&c| (c, budget)).collect();
    within_miss_budget_multi(workload, &probes, deadline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtt::{decompose, within_miss_budget};
    use gqos_trace::SimTime;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn dms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn bursty() -> Workload {
        let mut arrivals: Vec<SimTime> = (0..400).map(|i| ms(i * 7)).collect();
        arrivals.extend(vec![ms(500); 25]);
        arrivals.extend(vec![ms(1700); 60]);
        Workload::from_arrivals(arrivals)
    }

    #[test]
    fn bulk_drain_matches_per_completion_loop() {
        // Replay the same arrivals through the closed-form state and a
        // literal transcription of the seed's while-loop; every decision
        // and every intermediate state must coincide.
        let w = bursty();
        let p = RttParams::new(Iops::new(300.0), dms(20));
        let mut fast = RttState::default();
        let (mut len_q1, mut next_done) = (0u64, 0u64);
        for &a in w.arrival_column().nanos() {
            while len_q1 > 0 && next_done <= a {
                len_q1 -= 1;
                next_done += p.service_ns;
            }
            if len_q1 == 0 {
                next_done = a + p.service_ns;
            }
            let slow_admit = len_q1 < p.max_q1;
            if slow_admit {
                len_q1 += 1;
            }
            assert_eq!(fast.admit(p, a), slow_admit);
            assert_eq!((fast.len_q1, fast.next_done_ns), (len_q1, next_done));
        }
    }

    #[test]
    fn work_recurrence_matches_rtt_state_decision_for_decision() {
        // The module-docs equivalence, checked per arrival: backlog work
        // w relates to the queue state by lenQ1 = ⌈w/s⌉, and the admit
        // decisions coincide.
        let w = bursty();
        for c in [120.0, 300.0, 457.0, 2000.0] {
            let p = RttParams::new(Iops::new(c), dms(20));
            let wp = WorkParams::try_from_rtt(p, u64::MAX / 4).expect("guard passes");
            let mut state = RttState::default();
            let (mut work, mut prev) = (0u64, 0u64);
            for &a in w.arrival_column().nanos() {
                let gap = a - prev;
                prev = a;
                work = work.saturating_sub(gap);
                let work_admit = work <= wp.admit_cap_ns;
                if work_admit {
                    work += wp.service_ns;
                }
                assert_eq!(state.admit(p, a), work_admit, "C={c} arrival={a}");
                assert_eq!(state.len_q1, work.div_ceil(wp.service_ns), "C={c}");
            }
        }
    }

    #[test]
    fn work_form_guard_rejects_horizon_and_saturated_lanes() {
        // Saturated maxQ1: maxQ1·s overflows, no work form.
        let sat = RttParams {
            max_q1: u64::MAX,
            service_ns: 2,
        };
        assert!(WorkParams::try_from_rtt(sat, 0).is_none());
        // Horizon-adjacent column: last + maxQ1·s overflows, no work form.
        let p = RttParams::new(Iops::new(100.0), dms(20));
        assert!(WorkParams::try_from_rtt(p, u64::MAX - 10).is_none());
        assert!(WorkParams::try_from_rtt(p, u64::MAX / 2).is_some());
    }

    #[test]
    fn batched_tiers_match_the_scalar_lane_bit_for_bit() {
        // The same eight lanes through the dispatched batch and the scalar
        // remainder loop: counts must be bit-identical (the SIMD
        // determinism guarantee, DESIGN.md §13).
        let w = bursty();
        let col = w.arrival_column().nanos();
        let caps: [f64; LANE_BATCH] = [110.0, 150.0, 250.0, 333.0, 410.0, 800.0, 1500.0, 6000.0];
        let mut service = [0u64; LANE_BATCH];
        let mut cap = [0u64; LANE_BATCH];
        let mut scalar = [0u64; LANE_BATCH];
        for (l, &c) in caps.iter().enumerate() {
            let p = RttParams::new(Iops::new(c), dms(10));
            let wp = WorkParams::try_from_rtt(p, *col.last().unwrap()).unwrap();
            service[l] = wp.service_ns;
            cap[l] = wp.admit_cap_ns;
            scalar[l] = work_overflow_lane(col, wp);
        }
        let mut wstate = [0u64; LANE_BATCH];
        let mut miss = [0u64; LANE_BATCH];
        let mut prev = 0u64;
        work_tile_dispatch(col, &service, &cap, &mut wstate, &mut miss, &mut prev);
        assert_eq!(miss, scalar);
    }

    #[test]
    fn overflow_curve_matches_scalar_decompose() {
        let w = bursty();
        let delta = dms(10);
        let grid: Vec<Iops> = [120.0, 250.0, 400.0, 800.0, 2000.0, 9000.0]
            .map(Iops::new)
            .to_vec();
        let fused = overflow_curve(&w, &grid, delta);
        for (i, &c) in grid.iter().enumerate() {
            assert_eq!(fused[i], decompose(&w, c, delta).overflow_count(), "C={c}");
        }
    }

    #[test]
    fn overflow_curve_matches_across_batch_remainders() {
        // Grid sizes 0..=2×LANE_BATCH exercise every remainder length on
        // both sides of the batch boundary.
        let w = bursty();
        let delta = dms(10);
        for k in 0..=(2 * LANE_BATCH) {
            let grid: Vec<Iops> = (0..k)
                .map(|i| Iops::new(105.0 + 137.0 * i as f64))
                .collect();
            let fused = overflow_curve(&w, &grid, delta);
            for (i, &c) in grid.iter().enumerate() {
                assert_eq!(
                    fused[i],
                    decompose(&w, c, delta).overflow_count(),
                    "k={k} C={c}"
                );
            }
        }
    }

    #[test]
    fn overflow_curve_handles_degenerate_and_empty() {
        let w = bursty();
        // 10 IOPS × 10 ms < 1 slot: degenerate, everything overflows.
        let grid = [Iops::new(10.0), Iops::new(500.0)];
        let fused = overflow_curve(&w, &grid, dms(10));
        assert_eq!(fused[0], w.len() as u64);
        assert_eq!(fused[1], decompose(&w, grid[1], dms(10)).overflow_count());
        assert_eq!(
            overflow_curve(&Workload::new(), &grid, dms(10)),
            vec![0, 0],
            "empty workload overflows nothing at any capacity"
        );
        assert!(overflow_curve(&w, &[], dms(10)).is_empty());
    }

    #[test]
    fn overflow_is_monotone_in_capacity() {
        // The property the fused budget probe's shared exit leans on.
        let w = bursty();
        let grid: Vec<Iops> = (1..60).map(|i| Iops::new(i as f64 * 50.0)).collect();
        let curve = overflow_curve(&w, &grid, dms(10));
        assert!(
            curve.windows(2).all(|p| p[1] <= p[0]),
            "overflow must not increase with capacity: {curve:?}"
        );
    }

    #[test]
    fn budget_curve_matches_scalar_probe() {
        let w = bursty();
        let delta = dms(10);
        let grid: Vec<Iops> = [150.0, 300.0, 600.0, 1200.0, 6000.0]
            .map(Iops::new)
            .to_vec();
        for budget in [0u64, 5, 40, w.len() as u64] {
            let fused = within_miss_budget_curve(&w, &grid, delta, budget);
            for (i, &c) in grid.iter().enumerate() {
                assert_eq!(
                    fused[i],
                    within_miss_budget(&w, c, delta, budget),
                    "C={c} budget={budget}"
                );
            }
        }
    }

    #[test]
    fn budget_multi_honours_per_lane_budgets() {
        // A full batch plus remainder where every lane carries a different
        // budget; each verdict must match the scalar probe at that lane's
        // own budget.
        let w = bursty();
        let delta = dms(10);
        let probes: Vec<(Iops, u64)> = (0..11)
            .map(|i| (Iops::new(120.0 + 90.0 * i as f64), (i * i) as u64))
            .collect();
        let fused = within_miss_budget_multi(&w, &probes, delta);
        for (i, &(c, b)) in probes.iter().enumerate() {
            assert_eq!(fused[i], within_miss_budget(&w, c, delta, b), "C={c} b={b}");
        }
    }

    #[test]
    fn budget_curve_degenerate_capacity_needs_budget_for_all() {
        let w = Workload::from_arrivals(vec![SimTime::ZERO; 4]);
        let grid = [Iops::new(10.0)]; // degenerate at 10 ms
        assert_eq!(within_miss_budget_curve(&w, &grid, dms(10), 3), vec![false]);
        assert_eq!(within_miss_budget_curve(&w, &grid, dms(10), 4), vec![true]);
    }

    #[test]
    fn curves_are_order_insensitive() {
        // Lanes carry their original index: a shuffled grid returns the
        // same values in the shuffled positions.
        let w = bursty();
        let delta = dms(10);
        let asc: Vec<Iops> = [150.0, 400.0, 900.0].map(Iops::new).to_vec();
        let desc: Vec<Iops> = [900.0, 400.0, 150.0].map(Iops::new).to_vec();
        let a = overflow_curve(&w, &asc, delta);
        let d = overflow_curve(&w, &desc, delta);
        assert_eq!(a[0], d[2]);
        assert_eq!(a[1], d[1]);
        assert_eq!(a[2], d[0]);
    }

    #[test]
    fn tiling_boundary_is_seamless() {
        // A workload longer than one tile: the gap chain and per-lane
        // backlog must carry across tile boundaries exactly.
        let w = Workload::from_arrivals((0..(TILE as u64 * 2 + 37)).map(|i| ms(i / 3)));
        let delta = dms(10);
        let grid = [Iops::new(250.0), Iops::new(3500.0)];
        let fused = overflow_curve(&w, &grid, delta);
        for (i, &c) in grid.iter().enumerate() {
            assert_eq!(fused[i], decompose(&w, c, delta).overflow_count(), "C={c}");
        }
        for budget in [0u64, 100, 5000] {
            let fused = within_miss_budget_curve(&w, &grid, delta, budget);
            for (i, &c) in grid.iter().enumerate() {
                assert_eq!(fused[i], within_miss_budget(&w, c, delta, budget), "C={c}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn overflow_curve_rejects_zero_deadline() {
        let _ = overflow_curve(&Workload::new(), &[Iops::new(100.0)], SimDuration::ZERO);
    }

    #[test]
    fn overflowing_capacity_saturates_and_admits_everything() {
        // C·δ = 1e30 × 10 s ≫ 2^64: the bound saturates at u64::MAX, the
        // work-form guard rejects the lane, and the scalar fallback must
        // neither wrap nor panic — nothing overflows Q1.
        let w = bursty();
        let p = RttParams::try_new(Iops::new(1e30), SimDuration::from_secs(10))
            .expect("saturated bound is not degenerate");
        assert_eq!(p.max_q1, u64::MAX);
        assert_eq!(scan_overflow(w.arrival_column().nanos(), p), 0);
        assert_eq!(
            overflow_curve(&w, &[Iops::new(1e30)], SimDuration::from_secs(10)),
            vec![0]
        );
    }

    #[test]
    fn horizon_adjacent_columns_use_the_saturating_scalar_path() {
        // Arrivals at the clock horizon: the work form is not exact there
        // (RttState deliberately saturates), so the curve must agree with
        // the scalar scan — the guard routes these lanes to it.
        let arrivals: Vec<SimTime> = (0..50)
            .map(|i| SimTime::from_nanos(u64::MAX - 500 + 10 * (i / 5)))
            .collect();
        let w = Workload::from_arrivals(arrivals);
        let grid = [Iops::new(100.0), Iops::new(1e6)];
        let fused = overflow_curve(&w, &grid, dms(20));
        for (i, &c) in grid.iter().enumerate() {
            let p = RttParams::new(c, dms(20));
            assert_eq!(
                fused[i],
                scan_overflow(w.arrival_column().nanos(), p),
                "C={c}"
            );
        }
    }

    #[test]
    fn bulk_drain_saturates_instead_of_wrapping() {
        // Deep queue × huge service time: the full-drain probe
        // `next_done + (lenQ1−1)·service` exceeds u64 and must saturate
        // into the partial branch, not wrap (a wrap would fake a full
        // drain and corrupt the state — and panics in debug builds).
        let p = RttParams {
            max_q1: u64::MAX,
            service_ns: u64::MAX / 2,
        };
        let mut state = RttState::default();
        for _ in 0..3 {
            assert!(state.admit(p, 0));
        }
        // lenQ1 = 3, next_done = MAX/2. True last completion is at
        // MAX/2 + 2·(MAX/2) ≈ 1.5·u64::MAX — past any representable
        // arrival, so exactly one service interval has elapsed: one
        // request drains and the new arrival is admitted on top.
        assert!(state.admit(p, u64::MAX - 5));
        assert_eq!(state.len_q1, 3, "one drained, one admitted");
    }

    #[test]
    fn horizon_adjacent_arrivals_do_not_overflow() {
        // `arrival + service` past the horizon saturates to u64::MAX
        // ("busy past the horizon") instead of wrapping to a tiny instant —
        // a wrap would fake an idle server and admit without bound.
        let p = RttParams::new(Iops::new(100.0), dms(20)); // maxQ1 = 2
        let mut state = RttState::default();
        let arrival = u64::MAX - 10;
        assert!(state.admit(p, arrival));
        assert_eq!(state.next_done_ns, u64::MAX);
        assert!(state.admit(p, arrival));
        assert!(!state.admit(p, arrival), "Q1 full at the horizon: shed");
    }

    #[test]
    fn merged_probe_matches_materialised() {
        // The streamed two-cursor probe must agree with the scalar budget
        // probe on the materialised merge — including tie-heavy columns
        // (equal instants split across the two inputs), empty sides, the
        // degenerate form, and a capacity saturating the work-form guard.
        let a = bursty();
        let b = Workload::from_arrivals(
            (0..80)
                .map(|i| ms(i * 7))
                .chain(vec![ms(333); 20])
                .collect::<Vec<_>>(),
        );
        let merged = a.merged(&b);
        let (an, bn) = (a.arrival_column().nanos(), b.arrival_column().nanos());
        let grid = [150.0, 400.0, 1200.0, 1e30].map(Iops::new);
        for c in grid {
            for budget in [0u64, 3, 25, merged.len() as u64] {
                assert_eq!(
                    merged_within_budget(an, bn, c, dms(10), budget),
                    within_miss_budget(&merged, c, dms(10), budget),
                    "C={c} budget={budget}"
                );
            }
        }
        // Degenerate capacity (⌊C·δ⌋ = 0): everything overflows, so the
        // verdict is just `n ≤ budget` — the scalar probe panics here, the
        // merged form reports gracefully.
        let n = merged.len() as u64;
        assert!(!merged_within_budget(
            an,
            bn,
            Iops::new(10.0),
            dms(10),
            n - 1
        ));
        assert!(merged_within_budget(an, bn, Iops::new(10.0), dms(10), n));
        // Empty sides reduce to the single-column probe.
        assert_eq!(
            merged_within_budget(an, &[], Iops::new(150.0), dms(10), 10),
            within_miss_budget(&a, Iops::new(150.0), dms(10), 10)
        );
        assert_eq!(
            merged_within_budget(&[], bn, Iops::new(150.0), dms(10), 0),
            within_miss_budget(&b, Iops::new(150.0), dms(10), 0)
        );
        assert!(merged_within_budget(&[], &[], Iops::new(150.0), dms(10), 0));
    }

    #[test]
    fn saturated_scan_stays_coherent_over_a_full_workload() {
        // A whole pass mixing normal arrivals with horizon-adjacent ones:
        // must complete without panicking and never admit beyond maxQ1.
        let arrivals: Vec<SimTime> = (0..100)
            .map(|i| SimTime::from_nanos(u64::MAX - 200 + 2 * (i / 2)))
            .collect();
        let w = Workload::from_arrivals(arrivals);
        let p = RttParams::new(Iops::new(100.0), dms(20));
        let overflow = scan_overflow(w.arrival_column().nanos(), p);
        assert!(
            overflow >= 100 - p.max_q1,
            "Q1 is bounded even at the horizon"
        );
    }
}
