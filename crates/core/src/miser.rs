//! Miser — the paper's slack-stealing recombination scheduler (Algorithm 2).
//!
//! Miser serves both classes on one server of capacity `Cmin + ΔC`. Each
//! admitted primary request carries a *slack*: the number of spare service
//! slots (`maxQ1 − lenQ1` at admission) that can be inserted ahead of it
//! without endangering its deadline. Whenever the minimum slack across the
//! primary queue is at least one, Miser opportunistically serves an overflow
//! request — getting the tail served *early*, inside the bursts' shadow —
//! and debits every queued primary request's slack by one.
//!
//! Because admission is online, a later primary burst can arrive after slack
//! has been spent; the paper shows `ΔC = Cmin` suffices to make primary
//! misses impossible, and that in practice the default `ΔC = 1/δ` yields few
//! to none (see this module's tests and the `ablation_delta_c` benchmark).

use std::collections::VecDeque;
use std::fmt;

use gqos_sim::{Dispatch, PolicyTag, Scheduler, ServerId, ServiceClass, TraceEvent, TraceHandle};
use gqos_trace::{Request, SimDuration, SimTime};

use crate::degrade::CapacityAdaptive;
use crate::rtt::RttClassifier;
use crate::target::Provision;

/// The Miser scheduler: RTT decomposition plus slack-driven recombination
/// on a single shared server.
///
/// Use with a server of capacity [`Provision::total`].
///
/// # Examples
///
/// ```
/// use gqos_core::{MiserScheduler, Provision};
/// use gqos_sim::{simulate, FixedRateServer};
/// use gqos_trace::{Iops, SimDuration, SimTime, Workload};
///
/// let provision = Provision::new(Iops::new(200.0), Iops::new(100.0));
/// let deadline = SimDuration::from_millis(20);
/// let workload = Workload::from_arrivals(vec![SimTime::ZERO; 8]);
/// let report = simulate(
///     &workload,
///     MiserScheduler::new(provision, deadline),
///     FixedRateServer::new(provision.total()),
/// );
/// assert_eq!(report.completed(), 8);
/// ```
#[derive(Clone, Debug)]
pub struct MiserScheduler {
    rtt: RttClassifier,
    q1: VecDeque<(Request, u64)>, // (request, remaining slack)
    q2: VecDeque<Request>,
    /// Cached minimum slack over `q1`; `None` when `q1` is empty.
    min_slack: Option<u64>,
    trace: TraceHandle,
}

impl MiserScheduler {
    /// Creates a Miser scheduler for the given provision and deadline.
    /// RTT admission uses `provision.cmin()`; pair it with a server of
    /// capacity `provision.total()`.
    ///
    /// # Panics
    ///
    /// Panics if the RTT bound `⌊Cmin·δ⌋` is zero (see
    /// [`RttClassifier::new`]).
    pub fn new(provision: Provision, deadline: SimDuration) -> Self {
        MiserScheduler::with_trace(provision, deadline, TraceHandle::disabled())
    }

    /// Like [`new`](MiserScheduler::new), emitting `Admitted`/`Diverted`
    /// (with Q1 depth) and `Dispatched` (policy tag `miser`, with the slack
    /// in force at the dispatch decision) events into `trace`.
    pub fn with_trace(provision: Provision, deadline: SimDuration, trace: TraceHandle) -> Self {
        MiserScheduler {
            rtt: RttClassifier::new(provision.cmin(), deadline),
            q1: VecDeque::new(),
            q2: VecDeque::new(),
            min_slack: None,
            trace,
        }
    }

    /// The current minimum primary slack, or `None` when no primary request
    /// is queued.
    pub fn min_slack(&self) -> Option<u64> {
        self.min_slack
    }

    /// Number of queued primary requests.
    pub fn primary_pending(&self) -> usize {
        self.q1.len()
    }

    /// Number of queued overflow requests.
    pub fn overflow_pending(&self) -> usize {
        self.q2.len()
    }

    fn recompute_min_slack(&mut self) {
        self.min_slack = self.q1.iter().map(|&(_, s)| s).min();
    }

    fn serve_overflow_now(&self) -> bool {
        if self.q2.is_empty() {
            return false;
        }
        // An empty primary queue imposes no slack constraint.
        match self.min_slack {
            None => true,
            Some(s) => s >= 1,
        }
    }
}

impl Scheduler for MiserScheduler {
    fn on_arrival(&mut self, request: Request, now: SimTime) {
        match self.rtt.classify() {
            ServiceClass::PRIMARY => {
                // Slack after admission: spare primary slots remaining.
                let slack = self.rtt.slack();
                self.min_slack = Some(match self.min_slack {
                    None => slack,
                    Some(m) => m.min(slack),
                });
                self.q1.push_back((request, slack));
                self.trace.emit_with(|| TraceEvent::Admitted {
                    at: now,
                    id: request.id.index(),
                    queue_depth: self.rtt.len_q1(),
                });
            }
            _ => {
                self.trace.emit_with(|| TraceEvent::Diverted {
                    at: now,
                    id: request.id.index(),
                    queue_depth: self.rtt.len_q1(),
                });
                self.q2.push_back(request);
            }
        }
    }

    fn next_for(&mut self, server: ServerId, now: SimTime) -> Dispatch {
        if self.serve_overflow_now() {
            // The slack that authorised stealing this slot.
            let stolen_from = self.min_slack;
            let request = self.q2.pop_front().expect("q2 checked non-empty");
            // Serving an overflow request consumes one service slot every
            // queued primary request was counting on.
            for (_, slack) in &mut self.q1 {
                debug_assert!(*slack >= 1, "slack invariant violated");
                *slack -= 1;
            }
            if let Some(m) = &mut self.min_slack {
                *m -= 1;
            }
            self.trace.emit_with(|| TraceEvent::Dispatched {
                at: now,
                id: request.id.index(),
                class: ServiceClass::OVERFLOW.index(),
                server: server.index(),
                policy: PolicyTag::Miser,
                slack: stolen_from,
            });
            return Dispatch::Serve(request, ServiceClass::OVERFLOW);
        }
        match self.q1.pop_front() {
            Some((request, slack)) => {
                if Some(slack) == self.min_slack {
                    self.recompute_min_slack();
                }
                self.trace.emit_with(|| TraceEvent::Dispatched {
                    at: now,
                    id: request.id.index(),
                    class: ServiceClass::PRIMARY.index(),
                    server: server.index(),
                    policy: PolicyTag::Miser,
                    slack: Some(slack),
                });
                Dispatch::Serve(request, ServiceClass::PRIMARY)
            }
            None => match self.q2.pop_front() {
                // min_slack == Some(0) with an empty q1 cannot happen, but a
                // non-empty q2 with q1 empty is served work-conservingly.
                Some(request) => {
                    self.trace.emit_with(|| TraceEvent::Dispatched {
                        at: now,
                        id: request.id.index(),
                        class: ServiceClass::OVERFLOW.index(),
                        server: server.index(),
                        policy: PolicyTag::Miser,
                        slack: None,
                    });
                    Dispatch::Serve(request, ServiceClass::OVERFLOW)
                }
                None => Dispatch::Idle,
            },
        }
    }

    fn on_completion(&mut self, _request: &Request, class: ServiceClass, _now: SimTime) {
        if class == ServiceClass::PRIMARY {
            self.rtt.primary_departed();
        }
    }

    fn pending(&self) -> usize {
        self.q1.len() + self.q2.len()
    }
}

impl CapacityAdaptive for MiserScheduler {
    /// Shrinks the admission bound to `⌊C_eff·δ⌋` and clamps every queued
    /// slack to the spare slots the *degraded* bound still offers — slack
    /// granted against capacity that no longer exists must not let an
    /// overflow request cut ahead of a primary deadline.
    fn renegotiate(&mut self, factor: f64) {
        self.rtt.set_degradation(factor);
        let available = self.rtt.slack();
        for (_, slack) in &mut self.q1 {
            *slack = (*slack).min(available);
        }
        self.recompute_min_slack();
    }

    fn degradation_factor(&self) -> f64 {
        self.rtt.degradation()
    }

    fn primary_backlog(&self) -> u64 {
        self.q1.len() as u64
    }
}

impl fmt::Display for MiserScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Miser({}, q1={}, q2={}, minSlack={:?})",
            self.rtt,
            self.q1.len(),
            self.q2.len(),
            self.min_slack
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqos_sim::{simulate, FixedRateServer};
    use gqos_trace::{Iops, Workload};

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn dms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn run(
        workload: &Workload,
        cmin: f64,
        delta_c: f64,
        deadline: SimDuration,
    ) -> gqos_sim::RunReport {
        let p = Provision::new(Iops::new(cmin), Iops::new(delta_c));
        simulate(
            workload,
            MiserScheduler::new(p, deadline),
            FixedRateServer::new(p.total()),
        )
    }

    #[test]
    fn everything_completes() {
        let w = Workload::from_arrivals((0..100).map(|i| ms(i * 3)));
        let report = run(&w, 200.0, 20.0, dms(20));
        assert_eq!(report.completed(), 100);
        assert_eq!(report.unfinished(), 0);
    }

    #[test]
    fn smooth_load_stays_primary_and_meets_deadline() {
        // 100 IOPS arrivals against Cmin = 200: never overflows.
        let w = Workload::from_arrivals((0..200).map(|i| ms(i * 10)));
        let report = run(&w, 200.0, 20.0, dms(20));
        assert_eq!(report.completed_in(ServiceClass::OVERFLOW), 0);
        let stats = report.stats_for(ServiceClass::PRIMARY);
        assert!(stats.max().unwrap() <= dms(20));
    }

    #[test]
    fn burst_overflows_and_is_served_in_slack() {
        // Burst of 10 at t=0 with room for 4 primaries (200 IOPS x 20 ms),
        // then silence: overflow requests get served from the slack.
        let w = Workload::from_arrivals(vec![ms(0); 10]);
        let report = run(&w, 200.0, 40.0, dms(20));
        assert_eq!(report.completed(), 10);
        assert_eq!(report.completed_in(ServiceClass::PRIMARY), 4);
        assert_eq!(report.completed_in(ServiceClass::OVERFLOW), 6);
    }

    #[test]
    fn primary_deadlines_hold_with_generous_surplus() {
        // Theorem: ΔC = Cmin makes primary misses impossible. Exercise with
        // an adversarial on/off burst pattern.
        let mut arrivals = Vec::new();
        for cycle in 0..30u64 {
            let base = cycle * 100;
            for i in 0..12 {
                arrivals.push(ms(base + (i % 3))); // 12-deep burst
            }
        }
        let w = Workload::from_arrivals(arrivals);
        let cmin = 250.0;
        let deadline = dms(20); // maxQ1 = 5
        let report = run(&w, cmin, cmin, deadline);
        let primary = report.stats_for(ServiceClass::PRIMARY);
        assert!(
            primary.max().unwrap() <= deadline,
            "primary miss with delta_c = cmin: max {}",
            primary.max().unwrap()
        );
    }

    #[test]
    fn overflow_served_earlier_than_strict_priority_would() {
        // One overflow request stuck behind a half-full primary queue: Miser
        // serves it immediately because slack >= 1.
        let p = Provision::new(Iops::new(100.0), Iops::new(100.0));
        let mut s = MiserScheduler::new(p, dms(50)); // maxQ1 = 5
                                                     // Two primaries (slack 4 and 3), then force an overflow by filling.
        for _ in 0..2 {
            s.on_arrival(Request::at(ms(0)), ms(0));
        }
        assert_eq!(s.min_slack(), Some(3));
        // Fill the remaining 3 slots and one extra -> overflow.
        for _ in 0..4 {
            s.on_arrival(Request::at(ms(0)), ms(0));
        }
        assert_eq!(s.primary_pending(), 5);
        assert_eq!(s.overflow_pending(), 1);
        assert_eq!(s.min_slack(), Some(0));
        // minSlack = 0: primary must go first.
        match s.next_for(ServerId::new(0), ms(0)) {
            Dispatch::Serve(_, class) => assert_eq!(class, ServiceClass::PRIMARY),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn q2_first_when_slack_allows() {
        let p = Provision::new(Iops::new(100.0), Iops::new(100.0));
        let mut s = MiserScheduler::new(p, dms(50)); // maxQ1 = 5
        s.on_arrival(Request::at(ms(0)), ms(0)); // primary, slack 4
                                                 // Saturate then drain to create a queued overflow with slack left:
                                                 // easiest is to inject directly into q2 via classification overflow.
        for _ in 0..4 {
            s.on_arrival(Request::at(ms(0)), ms(0));
        }
        s.on_arrival(Request::at(ms(0)), ms(0)); // 6th -> overflow
                                                 // Complete three primaries to restore slack... but queued slacks are
                                                 // fixed at admission; serve three primaries first.
        for _ in 0..3 {
            match s.next_for(ServerId::new(0), ms(1)) {
                Dispatch::Serve(r, ServiceClass::PRIMARY) => {
                    s.on_completion(&r, ServiceClass::PRIMARY, ms(1));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // Remaining q1 heads had slacks 1 and 0 -> still primary next.
        assert_eq!(s.min_slack(), Some(0));
        // New arrival now gets slack = maxQ1 - lenQ1 = 5 - 3 = 2; min stays 0.
        s.on_arrival(Request::at(ms(2)), ms(2));
        assert_eq!(s.min_slack(), Some(0));
        assert_eq!(s.pending(), 4);
    }

    #[test]
    fn min_slack_recomputed_after_min_leaves() {
        let p = Provision::new(Iops::new(100.0), Iops::new(100.0));
        let mut s = MiserScheduler::new(p, dms(50)); // maxQ1 = 5
        s.on_arrival(Request::at(ms(0)), ms(0)); // slack 4
        s.on_arrival(Request::at(ms(0)), ms(0)); // slack 3
        s.on_arrival(Request::at(ms(0)), ms(0)); // slack 2
        assert_eq!(s.min_slack(), Some(2));
        // Serving an overflow is impossible (q2 empty) -> serves q1 head
        // (slack 4); min stays 2... head slack was 4 != min, no recompute.
        match s.next_for(ServerId::new(0), ms(0)) {
            Dispatch::Serve(_, ServiceClass::PRIMARY) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.min_slack(), Some(2));
        // Pop two more; after the slack-2 head leaves, min recomputes to 3.
        s.next_for(ServerId::new(0), ms(0));
        assert_eq!(s.min_slack(), Some(2));
        s.next_for(ServerId::new(0), ms(0));
        assert_eq!(s.min_slack(), None); // queue empty
    }

    #[test]
    fn idle_when_empty() {
        let p = Provision::new(Iops::new(100.0), Iops::new(10.0));
        let mut s = MiserScheduler::new(p, dms(50));
        assert_eq!(s.next_for(ServerId::new(0), ms(0)), Dispatch::Idle);
        assert_eq!(s.pending(), 0);
        assert!(s.to_string().contains("Miser("));
    }

    #[test]
    fn work_conserving_overflow_without_primaries() {
        // Only overflow requests pending (primaries all served): q2 drains.
        let w = Workload::from_arrivals(vec![ms(0); 6]);
        let report = run(&w, 100.0, 50.0, dms(20)); // maxQ1 = 2
        assert_eq!(report.completed(), 6);
        assert_eq!(report.completed_in(ServiceClass::OVERFLOW), 4);
    }

    mod slack_audit {
        use super::*;
        use proptest::prelude::*;

        /// One step of an adversarial driving sequence.
        #[derive(Clone, Copy, Debug)]
        enum Op {
            /// A new request arrives `gap_ms` after the previous one.
            Arrive { gap_ms: u64 },
            /// The server asks for the next request to dispatch.
            Serve,
            /// The oldest in-flight request completes.
            Complete,
        }

        fn op() -> impl Strategy<Value = Op> {
            prop_oneof![
                (0u64..40).prop_map(|gap_ms| Op::Arrive { gap_ms }),
                Just(Op::Serve),
                Just(Op::Complete),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// The cached `min_slack` equals the minimum over the queued
            /// primary slacks after *any* sequence of arrivals, dispatches
            /// and completions — the bookkeeping never drifts from the
            /// ground truth it summarises.
            #[test]
            fn cached_min_slack_matches_recomputation(
                ops in prop::collection::vec(op(), 1..200),
                cmin in 60u64..400,
                delta_ms in 10u64..60,
            ) {
                let c = Iops::new(cmin as f64);
                let delta = dms(delta_ms);
                if c.requests_within(delta) == 0 {
                    return Ok(());
                }
                let p = Provision::new(c, c);
                let mut s = MiserScheduler::new(p, delta);
                let mut now = SimTime::ZERO;
                let mut in_flight: std::collections::VecDeque<(Request, ServiceClass)> =
                    std::collections::VecDeque::new();
                for op in ops {
                    match op {
                        Op::Arrive { gap_ms } => {
                            now += SimDuration::from_millis(gap_ms);
                            s.on_arrival(Request::at(now), now);
                        }
                        Op::Serve => {
                            if let Dispatch::Serve(r, class) =
                                s.next_for(ServerId::new(0), now)
                            {
                                in_flight.push_back((r, class));
                            }
                        }
                        Op::Complete => {
                            if let Some((r, class)) = in_flight.pop_front() {
                                s.on_completion(&r, class, now);
                            }
                        }
                    }
                    let truth = s.q1.iter().map(|&(_, slack)| slack).min();
                    prop_assert_eq!(
                        s.min_slack(), truth,
                        "cached min_slack diverged after {:?}: cached {:?}, actual {:?}",
                        op, s.min_slack(), truth
                    );
                }
            }
        }
    }

    #[test]
    fn default_surplus_rarely_misses_in_practice() {
        // The paper's observation: with ΔC = 1/δ, very few (if any) primary
        // requests miss. Use a bursty pattern and allow a small miss rate.
        let mut arrivals = Vec::new();
        for cycle in 0..50u64 {
            let base = cycle * 200;
            let depth = if cycle % 7 == 0 { 15 } else { 3 };
            for i in 0..depth {
                arrivals.push(ms(base + i / 4));
            }
        }
        let w = Workload::from_arrivals(arrivals);
        let deadline = dms(20);
        let report = run(&w, 250.0, 50.0, deadline);
        let primary = report.stats_for(ServiceClass::PRIMARY);
        let frac = primary.fraction_within(deadline);
        assert!(frac > 0.98, "primary within-deadline fraction {frac}");
    }
}
