//! Offline optimality verification at scale.
//!
//! The paper proves (Lemmas 1–3) that RTT drops exactly the minimum number
//! of requests any algorithm — online or offline — must drop. The tests in
//! [`crate::rtt`] verify this against an exponential brute force on tiny
//! inputs; this module provides the polynomial-time oracle for *large*
//! workloads: Lemma 1's bound computed on the exact slotted service model
//! the schedulers use, summed over busy periods.
//!
//! `RTT drops ≥ bound` always holds (it is a true lower bound for any
//! scheduler); equality certifies optimality for the given input.

use std::fmt;

use gqos_trace::{Iops, SimDuration, SimTime, Workload};

use crate::rtt::decompose;

/// Lemma 1 on the slotted service model: the minimum number of requests
/// any scheduler must fail at capacity `capacity` and deadline `deadline`,
/// summed over the busy periods of a never-dropping slotted server.
///
/// # Panics
///
/// Panics if `deadline` is zero.
pub fn slotted_lower_bound(workload: &Workload, capacity: Iops, deadline: SimDuration) -> u64 {
    assert!(!deadline.is_zero(), "deadline must be positive");
    let service = capacity.service_time().max(SimDuration::from_nanos(1));

    let mut total_bound = 0u64;
    let mut period_max = 0u64;
    let mut period_start = SimTime::ZERO;
    let mut period_arrivals = 0u64;
    let mut pending = 0u64;
    let mut next_done = SimTime::ZERO;
    let mut in_period = false;

    for (t, n) in workload.arrival_counts() {
        if in_period {
            while pending > 0 && next_done <= t {
                pending -= 1;
                next_done += service;
            }
            if pending == 0 {
                total_bound += period_max;
                in_period = false;
            }
        }
        if !in_period {
            in_period = true;
            period_start = t;
            period_arrivals = 0;
            period_max = 0;
            next_done = t + service;
        }
        pending += n;
        period_arrivals += n;

        // Requests of this busy period due by t + δ, minus the service
        // slots any scheduler can complete on them by then.
        let window = (t + deadline) - period_start;
        let servable = window / service; // whole slots
        let deficit = period_arrivals.saturating_sub(servable);
        period_max = period_max.max(deficit);
    }
    if in_period {
        total_bound += period_max;
    }
    total_bound
}

/// Lemma 2's deficit arithmetic evaluated over *RTT's* busy periods: the
/// number of requests that must be dropped, computed purely from arrival
/// counts and service slots, with no reference to the queue-bound rule.
///
/// By Lemmas 2–3 this equals RTT's drop count exactly whenever `C·δ` is a
/// whole number of service slots (the paper's implicit setting); with a
/// fractional `C·δ` the floor interactions make it a lower bound instead.
/// Computing it through an independent code path (deficit arithmetic
/// instead of queue-length bookkeeping) makes it a strong consistency
/// oracle for large inputs.
///
/// # Panics
///
/// Panics if `deadline` is zero or `⌊C·δ⌋` is zero.
pub fn rtt_period_bound(workload: &Workload, capacity: Iops, deadline: SimDuration) -> u64 {
    assert!(!deadline.is_zero(), "deadline must be positive");
    let service = capacity.service_time().max(SimDuration::from_nanos(1));
    let max_q1 = capacity.requests_within(deadline);
    assert!(max_q1 >= 1, "C x delta admits no requests");

    let mut total = 0u64;
    let mut pending = 0u64; // accepted, not yet completed
    let mut next_done = SimTime::ZERO;
    let mut in_period = false;
    let mut period_start = SimTime::ZERO;
    let mut period_arrivals = 0u64; // accepted AND dropped
    let mut period_max = 0u64;

    for (t, n) in workload.arrival_counts() {
        if in_period {
            while pending > 0 && next_done <= t {
                pending -= 1;
                next_done += service;
            }
            if pending == 0 {
                total += period_max;
                in_period = false;
            }
        }
        if !in_period {
            in_period = true;
            period_start = t;
            period_arrivals = 0;
            period_max = 0;
            next_done = t + service;
        }
        // RTT accepts up to the queue bound; the rest are dropped but still
        // count as arrivals of this busy period.
        let space = max_q1 - pending;
        pending += n.min(space);
        period_arrivals += n;

        let window = (t + deadline) - period_start;
        let servable = window / service;
        let deficit = period_arrivals.saturating_sub(servable);
        period_max = period_max.max(deficit);
    }
    if in_period {
        total += period_max;
    }
    total
}

/// The outcome of checking RTT against the offline bound.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct OptimalityCheck {
    /// Requests RTT diverted to the overflow class.
    pub rtt_dropped: u64,
    /// Lemma 1's lower bound on drops for any scheduler.
    pub lower_bound: u64,
}

impl OptimalityCheck {
    /// Runs RTT and the oracle on `workload`.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero or `⌊C·δ⌋` is zero.
    pub fn run(workload: &Workload, capacity: Iops, deadline: SimDuration) -> Self {
        OptimalityCheck {
            rtt_dropped: decompose(workload, capacity, deadline).overflow_count(),
            lower_bound: slotted_lower_bound(workload, capacity, deadline),
        }
    }

    /// `true` when RTT provably achieved the offline optimum on this input.
    pub fn is_tight(&self) -> bool {
        self.rtt_dropped == self.lower_bound
    }

    /// The gap `rtt_dropped − lower_bound` (zero when tight; the bound can
    /// be loose when drops split a busy period the no-drop server keeps
    /// whole).
    pub fn gap(&self) -> u64 {
        self.rtt_dropped - self.lower_bound
    }
}

impl fmt::Display for OptimalityCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RTT dropped {} vs lower bound {} ({})",
            self.rtt_dropped,
            self.lower_bound,
            if self.is_tight() {
                "tight"
            } else {
                "loose bound"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn dms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn feasible_workload_has_zero_bound() {
        let w = Workload::from_arrivals((0..50).map(|i| ms(i * 20)));
        let check = OptimalityCheck::run(&w, Iops::new(100.0), dms(20));
        assert_eq!(check.lower_bound, 0);
        assert_eq!(check.rtt_dropped, 0);
        assert!(check.is_tight());
        assert_eq!(check.gap(), 0);
    }

    #[test]
    fn single_burst_bound_is_exact() {
        // 10 at once, room for 3 (300 IOPS x 10 ms): 7 must drop.
        let w = Workload::from_arrivals(vec![SimTime::ZERO; 10]);
        let check = OptimalityCheck::run(&w, Iops::new(300.0), dms(10));
        assert_eq!(check.lower_bound, 7);
        assert!(check.is_tight(), "{check}");
    }

    #[test]
    fn separated_bursts_sum() {
        let mut arrivals = vec![SimTime::ZERO; 5];
        arrivals.extend(vec![SimTime::from_secs(10); 6]);
        let w = Workload::from_arrivals(arrivals);
        // 200 IOPS x 10 ms = 2 slots: drops 3 + 4.
        let check = OptimalityCheck::run(&w, Iops::new(200.0), dms(10));
        assert_eq!(check.lower_bound, 7);
        assert!(check.is_tight());
    }

    #[test]
    fn sustained_overload_is_tight() {
        // 200 offered vs 100 capacity for 2 s: about half must drop, and
        // RTT matches the bound exactly.
        let w = Workload::from_arrivals((0..400).map(|i| ms(i * 5)));
        let check = OptimalityCheck::run(&w, Iops::new(100.0), dms(20));
        assert!(check.lower_bound > 150);
        assert!(check.is_tight(), "{check}");
    }

    #[test]
    fn no_drop_bound_holds_on_profile_scale_input() {
        use gqos_trace::gen::profiles::TraceProfile;
        let w = TraceProfile::FinTrans.generate(SimDuration::from_secs(60), 3);
        let check = OptimalityCheck::run(&w, Iops::new(150.0), dms(10));
        assert!(
            check.rtt_dropped >= check.lower_bound,
            "bound violated: {check}"
        );
    }

    #[test]
    fn deficit_arithmetic_reproduces_rtt_exactly() {
        // Lemma 2 computed through deficit arithmetic must equal the
        // queue-bound rule's drop count on every input — including full
        // profile-scale traces.
        use gqos_trace::gen::profiles::TraceProfile;
        // Capacities with integer C x delta (whole service slots), where
        // the deficit arithmetic is exact.
        for (profile, cap) in [
            (TraceProfile::FinTrans, 200.0),
            (TraceProfile::WebSearch, 400.0),
        ] {
            let w = profile.generate(SimDuration::from_secs(60), 3);
            let dropped = decompose(&w, Iops::new(cap), dms(10)).overflow_count();
            let bound = rtt_period_bound(&w, Iops::new(cap), dms(10));
            assert_eq!(dropped, bound, "{profile} at {cap} IOPS");
        }
    }

    #[test]
    fn deficit_arithmetic_matches_on_crafted_patterns() {
        let patterns: Vec<Vec<SimTime>> = vec![
            vec![SimTime::ZERO; 10],
            (0..100).map(|i| ms(i * 3)).collect(),
            {
                let mut v: Vec<SimTime> = (0..50).map(|i| ms(i * 11)).collect();
                v.extend(vec![ms(200); 20]);
                v.extend(vec![ms(900); 7]);
                v
            },
        ];
        for arrivals in patterns {
            let w = Workload::from_arrivals(arrivals.clone());
            let c = Iops::new(250.0);
            let dropped = decompose(&w, c, dms(20)).overflow_count();
            let bound = rtt_period_bound(&w, c, dms(20));
            assert_eq!(dropped, bound, "pattern of {} arrivals", w.len());
        }
    }

    #[test]
    fn display_reports_tightness() {
        let w = Workload::from_arrivals(vec![SimTime::ZERO; 4]);
        let check = OptimalityCheck::run(&w, Iops::new(200.0), dms(10));
        assert!(check.to_string().contains("tight"));
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn zero_deadline_rejected() {
        let _ = slotted_lower_bound(&Workload::new(), Iops::new(1.0), SimDuration::ZERO);
    }
}
