//! Earliest-deadline-first serving — the deadline-aware *non-shaping*
//! baseline.
//!
//! A natural question about the paper's design: does FCFS merely lose to
//! decomposition because it ignores deadlines? EDF answers it. With one
//! uniform relative deadline `δ`, EDF ordering coincides with FCFS — the
//! queue *order* is identical — so everything FCFS loses to bursts, EDF
//! loses too. The value EDF adds is the *shedding* variant: a request whose
//! deadline has already passed is expelled instead of served, which stops a
//! burst's stale backlog from dragging down the still-saveable requests —
//! an alternative tail-isolation mechanism, but one that (like the token
//! bucket) abandons requests rather than serving them best-effort.

use std::collections::VecDeque;
use std::fmt;

use gqos_sim::{Dispatch, Scheduler, ServerId, ServiceClass};
use gqos_trace::{Request, SimDuration, SimTime};

/// What EDF does with a request whose deadline already passed.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum LatePolicy {
    /// Serve it anyway (work-conserving; order equals FCFS under a uniform
    /// deadline).
    Serve,
    /// Expel it unserved once its deadline has been reached by dispatch
    /// time; it never completes and counts as unfinished.
    Shed,
}

/// EDF over one uniform relative deadline.
///
/// Completions are tagged [`ServiceClass::PRIMARY`]; shed requests never
/// complete (they appear as `unfinished` in the report).
///
/// # Examples
///
/// ```
/// use gqos_core::{EdfScheduler, LatePolicy};
/// use gqos_sim::{simulate, FixedRateServer};
/// use gqos_trace::{Iops, SimDuration, SimTime, Workload};
///
/// let burst = Workload::from_arrivals(vec![SimTime::ZERO; 10]);
/// let report = simulate(
///     &burst,
///     EdfScheduler::new(SimDuration::from_millis(20), LatePolicy::Shed),
///     FixedRateServer::new(Iops::new(100.0)),
/// );
/// // 100 IOPS x 20 ms = 2 requests can make their deadlines; the stale
/// // backlog is shed instead of served late.
/// assert_eq!(report.completed(), 2);
/// assert_eq!(report.unfinished(), 8);
/// ```
#[derive(Clone, Debug)]
pub struct EdfScheduler {
    deadline: SimDuration,
    policy: LatePolicy,
    /// FIFO == EDF for a uniform relative deadline.
    queue: VecDeque<Request>,
    shed: u64,
}

impl EdfScheduler {
    /// Creates an EDF scheduler with relative deadline `deadline`.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero.
    pub fn new(deadline: SimDuration, policy: LatePolicy) -> Self {
        assert!(!deadline.is_zero(), "deadline must be positive");
        EdfScheduler {
            deadline,
            policy,
            queue: VecDeque::new(),
            shed: 0,
        }
    }

    /// Requests expelled so far under [`LatePolicy::Shed`].
    pub fn shed_count(&self) -> u64 {
        self.shed
    }

    /// The relative deadline.
    pub fn deadline(&self) -> SimDuration {
        self.deadline
    }
}

impl Scheduler for EdfScheduler {
    fn on_arrival(&mut self, request: Request, _now: SimTime) {
        self.queue.push_back(request);
    }

    fn next_for(&mut self, _server: ServerId, now: SimTime) -> Dispatch {
        loop {
            match self.queue.pop_front() {
                Some(r) => {
                    if self.policy == LatePolicy::Shed && r.arrival + self.deadline <= now {
                        self.shed += 1;
                        continue;
                    }
                    return Dispatch::Serve(r, ServiceClass::PRIMARY);
                }
                None => return Dispatch::Idle,
            }
        }
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }
}

impl fmt::Display for EdfScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EDF(delta {}, {:?}, {} queued, {} shed)",
            self.deadline,
            self.policy,
            self.queue.len(),
            self.shed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqos_sim::{simulate, FixedRateServer};
    use gqos_trace::{Iops, Workload};

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn dms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn serve_policy_equals_fcfs() {
        let mut arrivals: Vec<SimTime> = (0..50).map(|i| ms(i * 7)).collect();
        arrivals.extend(vec![ms(111); 20]);
        let w = Workload::from_arrivals(arrivals);
        let c = FixedRateServer::new(Iops::new(150.0));
        let edf = simulate(&w, EdfScheduler::new(dms(20), LatePolicy::Serve), c);
        let fcfs = simulate(&w, gqos_sim::FcfsScheduler::new(), c);
        assert_eq!(edf.records().len(), fcfs.records().len());
        for (a, b) in edf.records().iter().zip(fcfs.records()) {
            assert_eq!(a.completion, b.completion);
        }
    }

    #[test]
    fn shedding_saves_the_saveable() {
        // A deep burst then a steady tail: FCFS drags the stale backlog
        // along and the tail misses too; shedding EDF expels the stale
        // burst and the tail meets its deadlines.
        let mut arrivals = vec![ms(0); 40];
        arrivals.extend((1..100).map(|i| ms(i * 10)));
        let w = Workload::from_arrivals(arrivals);
        let c = FixedRateServer::new(Iops::new(150.0));
        let delta = dms(20);

        let fcfs = simulate(&w, gqos_sim::FcfsScheduler::new(), c);
        let shed = simulate(&w, EdfScheduler::new(delta, LatePolicy::Shed), c);

        let fcfs_within = fcfs.stats().fraction_within(delta);
        let shed_within = shed.stats().fraction_within(delta);
        assert!(
            shed_within > fcfs_within + 0.3,
            "shedding {shed_within:.2} vs FCFS {fcfs_within:.2}"
        );
        assert!(shed.unfinished() > 0, "nothing was shed");
    }

    #[test]
    fn shedding_loses_requests_that_decomposition_serves() {
        // The contrast motivating the paper: shedding EDF and RTT both
        // protect the saveable fraction, but EDF abandons the tail.
        use crate::{MiserScheduler, Provision};
        let mut arrivals = vec![ms(0); 40];
        arrivals.extend((1..100).map(|i| ms(i * 10)));
        let w = Workload::from_arrivals(arrivals);
        let delta = dms(20);

        let shed = simulate(
            &w,
            EdfScheduler::new(delta, LatePolicy::Shed),
            FixedRateServer::new(Iops::new(150.0)),
        );
        let miser = simulate(
            &w,
            MiserScheduler::new(Provision::new(Iops::new(150.0), Iops::new(50.0)), delta),
            FixedRateServer::new(Iops::new(200.0)),
        );
        assert!(shed.unfinished() > 0);
        assert_eq!(miser.unfinished(), 0, "decomposition abandons nothing");
    }

    #[test]
    fn never_sheds_fresh_requests() {
        let w = Workload::from_arrivals((0..20).map(|i| ms(i * 100)));
        let report = simulate(
            &w,
            EdfScheduler::new(dms(50), LatePolicy::Shed),
            FixedRateServer::new(Iops::new(100.0)),
        );
        assert_eq!(report.completed(), 20);
        assert_eq!(report.unfinished(), 0);
    }

    #[test]
    fn accessors_and_display() {
        let s = EdfScheduler::new(dms(10), LatePolicy::Shed);
        assert_eq!(s.deadline(), dms(10));
        assert_eq!(s.shed_count(), 0);
        assert_eq!(s.pending(), 0);
        assert!(s.to_string().contains("EDF"));
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn zero_deadline_rejected() {
        let _ = EdfScheduler::new(SimDuration::ZERO, LatePolicy::Serve);
    }
}
