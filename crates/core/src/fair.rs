//! FairQueue — recombination by proportional sharing on one server.
//!
//! Both classes share a single server of capacity `Cmin + ΔC` through a fair
//! queueing scheduler weighted `Cmin : ΔC`. Unlike Split, spare capacity
//! moves freely between the classes (statistical multiplexing): the
//! overflow class inherits the whole server during calm stretches, and the
//! primary class is still guaranteed its `Cmin` share during bursts.

use std::fmt;

use gqos_fairqueue::{FlowId, FlowScheduler, Sfq};
use gqos_sim::{Dispatch, PolicyTag, Scheduler, ServerId, ServiceClass, TraceEvent, TraceHandle};
use gqos_trace::{Request, SimDuration, SimTime};

use crate::degrade::CapacityAdaptive;
use crate::rtt::RttClassifier;
use crate::target::Provision;

const PRIMARY_FLOW: FlowId = FlowId::new(0);
const OVERFLOW_FLOW: FlowId = FlowId::new(1);

/// The FairQueue recombination scheduler: RTT decomposition feeding a
/// two-flow proportional-share scheduler (start-time fair queueing by
/// default).
///
/// Use with a single server of capacity [`Provision::total`].
///
/// # Examples
///
/// ```
/// use gqos_core::{FairQueueScheduler, Provision};
/// use gqos_sim::{simulate, FixedRateServer};
/// use gqos_trace::{Iops, SimDuration, SimTime, Workload};
///
/// let p = Provision::new(Iops::new(200.0), Iops::new(100.0));
/// let w = Workload::from_arrivals(vec![SimTime::ZERO; 8]);
/// let report = simulate(
///     &w,
///     FairQueueScheduler::new(p, SimDuration::from_millis(20)),
///     FixedRateServer::new(p.total()),
/// );
/// assert_eq!(report.completed(), 8);
/// ```
#[derive(Clone, Debug)]
pub struct FairQueueScheduler<F = Sfq> {
    rtt: RttClassifier,
    flows: F,
    /// The healthy `[Cmin, ΔC]` weights renegotiation scales from.
    nominal_weights: [f64; 2],
    trace: TraceHandle,
}

impl FairQueueScheduler<Sfq> {
    /// Creates a FairQueue scheduler with SFQ weights `Cmin : ΔC`.
    ///
    /// # Panics
    ///
    /// Panics if the RTT bound `⌊Cmin·δ⌋` is zero.
    pub fn new(provision: Provision, deadline: SimDuration) -> Self {
        FairQueueScheduler::with_trace(provision, deadline, TraceHandle::disabled())
    }

    /// Like [`new`](FairQueueScheduler::new), emitting `Admitted`/`Diverted`
    /// (with Q1 depth) and `Dispatched` (policy tag `fairqueue`) events into
    /// `trace`.
    pub fn with_trace(provision: Provision, deadline: SimDuration, trace: TraceHandle) -> Self {
        FairQueueScheduler {
            rtt: RttClassifier::new(provision.cmin(), deadline),
            flows: Sfq::new(&provision.weights()),
            nominal_weights: provision.weights(),
            trace,
        }
    }
}

impl<F: FlowScheduler> FairQueueScheduler<F> {
    /// Creates a FairQueue scheduler over a custom two-flow proportional
    /// scheduler (flow 0 = primary, flow 1 = overflow).
    ///
    /// # Panics
    ///
    /// Panics if `flows` does not have exactly two flows, or the RTT bound
    /// `⌊Cmin·δ⌋` is zero.
    pub fn with_flow_scheduler(provision: Provision, deadline: SimDuration, flows: F) -> Self {
        assert_eq!(flows.flows(), 2, "FairQueue recombination needs two flows");
        FairQueueScheduler {
            rtt: RttClassifier::new(provision.cmin(), deadline),
            flows,
            nominal_weights: provision.weights(),
            trace: TraceHandle::disabled(),
        }
    }

    /// Queued primary requests.
    pub fn primary_pending(&self) -> usize {
        self.flows.flow_len(PRIMARY_FLOW)
    }

    /// Queued overflow requests.
    pub fn overflow_pending(&self) -> usize {
        self.flows.flow_len(OVERFLOW_FLOW)
    }
}

impl<F: FlowScheduler> Scheduler for FairQueueScheduler<F> {
    fn on_arrival(&mut self, request: Request, now: SimTime) {
        match self.rtt.classify() {
            ServiceClass::PRIMARY => {
                self.trace.emit_with(|| TraceEvent::Admitted {
                    at: now,
                    id: request.id.index(),
                    queue_depth: self.rtt.len_q1(),
                });
                self.flows.enqueue(PRIMARY_FLOW, request);
            }
            _ => {
                self.trace.emit_with(|| TraceEvent::Diverted {
                    at: now,
                    id: request.id.index(),
                    queue_depth: self.rtt.len_q1(),
                });
                self.flows.enqueue(OVERFLOW_FLOW, request);
            }
        }
    }

    fn next_for(&mut self, server: ServerId, now: SimTime) -> Dispatch {
        match self.flows.dequeue() {
            Some((flow, request)) => {
                let class = if flow == PRIMARY_FLOW {
                    ServiceClass::PRIMARY
                } else {
                    ServiceClass::OVERFLOW
                };
                self.trace.emit_with(|| TraceEvent::Dispatched {
                    at: now,
                    id: request.id.index(),
                    class: class.index(),
                    server: server.index(),
                    policy: PolicyTag::FairQueue,
                    slack: None,
                });
                Dispatch::Serve(request, class)
            }
            None => Dispatch::Idle,
        }
    }

    fn on_completion(&mut self, _request: &Request, class: ServiceClass, _now: SimTime) {
        if class == ServiceClass::PRIMARY {
            self.rtt.primary_departed();
        }
    }

    fn pending(&self) -> usize {
        self.flows.len()
    }
}

impl<F: FlowScheduler> CapacityAdaptive for FairQueueScheduler<F> {
    /// Shrinks the admission bound to `⌊C_eff·δ⌋` and recomputes the flow
    /// weights against `C_eff`: the primary class keeps its nominal `Cmin`
    /// weight while the overflow share scales with the factor, so the (now
    /// fewer) admitted primaries get first claim on whatever capacity the
    /// degraded server still delivers.
    fn renegotiate(&mut self, factor: f64) {
        self.rtt.set_degradation(factor);
        let [w_primary, w_overflow] = self.nominal_weights;
        // Weights must stay strictly positive; floor the overflow share so
        // an outage (factor 0) demotes rather than erases the flow.
        let scaled = (w_overflow * factor).max(w_overflow * 1e-6);
        self.flows.set_weights(&[w_primary, scaled]);
    }

    fn degradation_factor(&self) -> f64 {
        self.rtt.degradation()
    }

    fn primary_backlog(&self) -> u64 {
        self.primary_pending() as u64
    }
}

impl<F: FlowScheduler> fmt::Display for FairQueueScheduler<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FairQueue({}, q1={}, q2={})",
            self.rtt,
            self.primary_pending(),
            self.overflow_pending()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqos_fairqueue::Wf2q;
    use gqos_sim::{simulate, FixedRateServer, RunReport};
    use gqos_trace::{Iops, Workload};

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn dms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn run(workload: &Workload, cmin: f64, delta_c: f64, deadline: SimDuration) -> RunReport {
        let p = Provision::new(Iops::new(cmin), Iops::new(delta_c));
        simulate(
            workload,
            FairQueueScheduler::new(p, deadline),
            FixedRateServer::new(p.total()),
        )
    }

    #[test]
    fn everything_completes() {
        let w = Workload::from_arrivals((0..60).map(|i| ms(i * 5)));
        let report = run(&w, 300.0, 30.0, dms(20));
        assert_eq!(report.completed(), 60);
    }

    #[test]
    fn overflow_uses_idle_capacity() {
        // Burst then silence: the overflow class drains at the full server
        // rate once the primary queue empties — much faster than Split's
        // dedicated delta_c server would.
        let w = Workload::from_arrivals(vec![ms(0); 10]);
        // maxQ1 = 2; 8 overflow requests.
        let report = run(&w, 100.0, 10.0, dms(20));
        let o = report.stats_for(ServiceClass::OVERFLOW);
        // Shared 110 IOPS server: all 10 served within ~91 ms total, far
        // below the 800 ms a dedicated 10-IOPS overflow server needs.
        assert!(
            o.max().unwrap() < SimDuration::from_millis(200),
            "overflow max {}",
            o.max().unwrap()
        );
    }

    #[test]
    fn primary_keeps_its_share_under_overflow_pressure() {
        // Sustained overload: the overflow backlog grows without bound, yet
        // the primary class keeps most of its deadlines thanks to its Cmin
        // share — while FCFS at the same total capacity collapses entirely.
        let mut arrivals = Vec::new();
        for c in 0..50u64 {
            for i in 0..8 {
                arrivals.push(ms(c * 40 + i)); // ~200 IOPS offered
            }
        }
        let w = Workload::from_arrivals(arrivals);
        let deadline = dms(20);
        let report = run(&w, 150.0, 15.0, deadline);
        let primary = report.stats_for(ServiceClass::PRIMARY);
        let frac = primary.fraction_within(deadline);
        assert!(frac > 0.8, "primary within deadline: {frac}");

        let fcfs = simulate(
            &w,
            gqos_sim::FcfsScheduler::new(),
            FixedRateServer::new(Iops::new(165.0)),
        );
        let fcfs_frac = fcfs.stats().fraction_within(deadline);
        assert!(
            frac > fcfs_frac + 0.3,
            "isolation gain too small: FQ {frac:.3} vs FCFS {fcfs_frac:.3}"
        );
    }

    #[test]
    fn custom_flow_scheduler_is_supported() {
        let p = Provision::new(Iops::new(100.0), Iops::new(20.0));
        let s = FairQueueScheduler::with_flow_scheduler(p, dms(20), Wf2q::new(&p.weights()));
        let w = Workload::from_arrivals(vec![ms(0); 5]);
        let report = simulate(&w, s, FixedRateServer::new(p.total()));
        assert_eq!(report.completed(), 5);
    }

    #[test]
    #[should_panic(expected = "needs two flows")]
    fn rejects_wrong_flow_count() {
        let p = Provision::new(Iops::new(100.0), Iops::new(20.0));
        let _ = FairQueueScheduler::with_flow_scheduler(p, dms(20), Sfq::new(&[1.0, 2.0, 3.0]));
    }

    #[test]
    fn pending_and_display() {
        let p = Provision::new(Iops::new(100.0), Iops::new(10.0));
        let mut s = FairQueueScheduler::new(p, dms(20)); // maxQ1 = 2
        for _ in 0..4 {
            s.on_arrival(Request::at(ms(0)), ms(0));
        }
        assert_eq!(s.primary_pending(), 2);
        assert_eq!(s.overflow_pending(), 2);
        assert_eq!(s.pending(), 4);
        assert!(s.to_string().contains("FairQueue("));
    }
}
