//! A small scoped worker pool with deterministic result assembly.
//!
//! The experiment harness and the capacity planner both fan out over
//! *independent* cells — (workload, deadline) grid points, figure sections,
//! planner probes. This crate provides the one primitive they need:
//! [`WorkerPool::map`], which runs a function over a batch of items on a
//! fixed number of scoped threads and returns the results **in item
//! order**, regardless of which thread finished when. Determinism is
//! positional: result `i` always comes from item `i`, so a parallel run
//! assembles bit-for-bit the same output as a serial one as long as the
//! per-item function is itself deterministic.
//!
//! The pool is dependency-free (`std::thread::scope` + an atomic work
//! index) because the build environment has no access to crates.io.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A fixed-width pool of scoped worker threads.
///
/// # Examples
///
/// ```
/// use gqos_parallel::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let squares = pool.map((0..8u64).collect(), |x| x * x);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool that runs `threads` workers; `0` and `1` both mean
    /// serial execution on the calling thread.
    pub fn new(threads: usize) -> Self {
        WorkerPool { threads }
    }

    /// A serial pool (all work on the calling thread).
    pub fn serial() -> Self {
        WorkerPool::new(1)
    }

    /// A pool sized to the machine's available parallelism.
    pub fn from_env() -> Self {
        WorkerPool::new(
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` if this pool runs everything on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.threads <= 1
    }

    /// Applies `f` to every item, returning results in item order.
    ///
    /// Items are claimed by workers through a shared atomic index, so the
    /// *execution* order is nondeterministic, but each result lands in the
    /// slot of the item that produced it — the assembled `Vec` does not
    /// depend on scheduling. With a serial pool (or a single item) this is
    /// exactly `items.into_iter().map(f).collect()` on the calling thread.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any worker once all threads have stopped.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        if self.is_serial() || n <= 1 {
            return items.into_iter().map(f).collect();
        }

        // Hand-rolled work queue: each slot is taken exactly once, each
        // result written exactly once; the mutexes are uncontended (a
        // worker only touches the slot whose index it claimed).
        let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let f = &f;
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = work[i]
                        .lock()
                        .expect("work slot poisoned")
                        .take()
                        .expect("work item claimed twice");
                    let result = f(item);
                    *results[i].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker left a result slot empty")
            })
            .collect()
    }

    /// Runs a batch of independent closures, returning their results in
    /// batch order — [`map`](WorkerPool::map) for heterogeneous tasks.
    pub fn run<R, F>(&self, tasks: Vec<F>) -> Vec<R>
    where
        R: Send,
        F: FnOnce() -> R + Send,
    {
        self.map(tasks, |task| task())
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..100).collect();
        let serial = WorkerPool::serial().map(items.clone(), |x| x.wrapping_mul(x) ^ 0xabcd);
        for threads in [2, 3, 8, 64] {
            let parallel =
                WorkerPool::new(threads).map(items.clone(), |x| x.wrapping_mul(x) ^ 0xabcd);
            assert_eq!(serial, parallel, "{threads} threads");
        }
    }

    #[test]
    fn results_are_in_item_order_not_completion_order() {
        // Later items finish first (earlier ones spin longer); order must
        // still be positional.
        let out = WorkerPool::new(4).map((0..16u64).collect(), |i| {
            let mut acc = 0u64;
            for _ in 0..(16 - i) * 10_000 {
                acc = acc.wrapping_add(i).rotate_left(1);
            }
            (i, std::hint::black_box(acc))
        });
        let indices: Vec<u64> = out.iter().map(|(i, _)| *i).collect();
        assert_eq!(indices, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let count = AtomicU64::new(0);
        let out = WorkerPool::new(8).map((0..1000u64).collect(), |x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 1000);
        assert_eq!(count.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn empty_and_singleton_batches() {
        let empty: Vec<u64> = WorkerPool::new(4).map(Vec::new(), |x: u64| x);
        assert!(empty.is_empty());
        assert_eq!(WorkerPool::new(4).map(vec![7u64], |x| x + 1), vec![8]);
    }

    #[test]
    fn run_executes_heterogeneous_closures_in_order() {
        let tasks: Vec<Box<dyn FnOnce() -> String + Send>> = vec![
            Box::new(|| "first".to_string()),
            Box::new(|| format!("{}", 2 * 21)),
            Box::new(|| "third".to_string()),
        ];
        let out = WorkerPool::new(2).run(tasks);
        assert_eq!(out, vec!["first", "42", "third"]);
    }

    #[test]
    fn from_env_is_at_least_one() {
        assert!(WorkerPool::from_env().threads() >= 1);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let _ = WorkerPool::new(2).map(vec![0u64, 1, 2, 3], |x| {
            assert!(x != 2, "boom");
            x
        });
    }
}
