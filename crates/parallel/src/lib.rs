//! A small scoped worker pool with deterministic result assembly.
//!
//! The experiment harness and the capacity planner both fan out over
//! *independent* cells — (workload, deadline) grid points, figure sections,
//! planner probes. This crate provides the one primitive they need:
//! [`WorkerPool::map`], which runs a function over a batch of items on a
//! fixed number of scoped threads and returns the results **in item
//! order**, regardless of which thread finished when. Determinism is
//! positional: result `i` always comes from item `i`, so a parallel run
//! assembles bit-for-bit the same output as a serial one as long as the
//! per-item function is itself deterministic.
//!
//! The pool is dependency-free (`std::thread::scope` + an atomic work
//! index) because the build environment has no access to crates.io.

use std::any::Any;
use std::error::Error;
use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A worker task panicked during [`WorkerPool::execute`].
///
/// Carries the index of the first offending item (in item order, which is
/// deterministic regardless of thread scheduling) and the rendered panic
/// message. The remaining items still ran to completion — a panicking task
/// can neither hang the positional assembly nor poison other slots.
#[derive(Debug)]
pub struct WorkerPanic {
    /// Index of the first item (in item order) whose task panicked.
    pub index: usize,
    /// The panic payload rendered to text, when it was a string.
    pub message: String,
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "worker task for item {} panicked: {}",
            self.index, self.message
        )
    }
}

impl Error for WorkerPanic {}

fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A fixed-width pool of scoped worker threads.
///
/// # Examples
///
/// ```
/// use gqos_parallel::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let squares = pool.map((0..8u64).collect(), |x| x * x);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool that runs `threads` workers; `0` and `1` both mean
    /// serial execution on the calling thread.
    pub fn new(threads: usize) -> Self {
        WorkerPool { threads }
    }

    /// A serial pool (all work on the calling thread).
    pub fn serial() -> Self {
        WorkerPool::new(1)
    }

    /// A pool sized to the machine's available parallelism.
    pub fn from_env() -> Self {
        WorkerPool::new(
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` if this pool runs everything on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.threads <= 1
    }

    /// Applies `f` to every item, returning results in item order.
    ///
    /// Items are claimed by workers through a shared atomic index, so the
    /// *execution* order is nondeterministic, but each result lands in the
    /// slot of the item that produced it — the assembled `Vec` does not
    /// depend on scheduling. With a serial pool (or a single item) this is
    /// exactly `items.into_iter().map(f).collect()` on the calling thread.
    ///
    /// # Panics
    ///
    /// Propagates the first panic (in item order) once every item has run.
    /// A panicking task cannot hang the pool or corrupt other results; use
    /// [`execute`](WorkerPool::execute) to receive a typed error instead.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let mut out = Vec::with_capacity(items.len());
        for caught in self.run_caught(items, f) {
            match caught {
                Ok(r) => out.push(r),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    }

    /// Applies `f` to every item like [`map`](WorkerPool::map), but catches
    /// worker panics and surfaces the first one (in item order) as a typed
    /// [`WorkerPanic`] instead of unwinding into the caller. Every item
    /// still runs: one bad task cannot hang the positional assembly or
    /// poison its neighbours' result slots.
    ///
    /// # Errors
    ///
    /// Returns [`WorkerPanic`] if any task panicked.
    pub fn execute<T, R, F>(&self, items: Vec<T>, f: F) -> Result<Vec<R>, WorkerPanic>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let mut out = Vec::with_capacity(items.len());
        for (index, caught) in self.run_caught(items, f).into_iter().enumerate() {
            match caught {
                Ok(r) => out.push(r),
                Err(payload) => {
                    return Err(WorkerPanic {
                        index,
                        message: payload_message(payload.as_ref()),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Shared engine for `map`/`execute`: every task runs under
    /// `catch_unwind`, so a panic is just another per-slot result and the
    /// scoped threads always join cleanly.
    fn run_caught<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<Result<R, Box<dyn Any + Send>>>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        if self.is_serial() || n <= 1 {
            return items
                .into_iter()
                .map(|item| catch_unwind(AssertUnwindSafe(|| f(item))))
                .collect();
        }

        // Hand-rolled work queue: each slot is taken exactly once, each
        // result written exactly once; the mutexes are uncontended (a
        // worker only touches the slot whose index it claimed).
        type Slot<R> = Mutex<Option<Result<R, Box<dyn Any + Send>>>>;
        let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Slot<R>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let f = &f;
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = work[i]
                        .lock()
                        .expect("work slot poisoned")
                        .take()
                        .expect("work item claimed twice");
                    let result = catch_unwind(AssertUnwindSafe(|| f(item)));
                    *results[i].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker left a result slot empty")
            })
            .collect()
    }

    /// Runs a batch of independent closures, returning their results in
    /// batch order — [`map`](WorkerPool::map) for heterogeneous tasks.
    pub fn run<R, F>(&self, tasks: Vec<F>) -> Vec<R>
    where
        R: Send,
        F: FnOnce() -> R + Send,
    {
        self.map(tasks, |task| task())
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..100).collect();
        let serial = WorkerPool::serial().map(items.clone(), |x| x.wrapping_mul(x) ^ 0xabcd);
        for threads in [2, 3, 8, 64] {
            let parallel =
                WorkerPool::new(threads).map(items.clone(), |x| x.wrapping_mul(x) ^ 0xabcd);
            assert_eq!(serial, parallel, "{threads} threads");
        }
    }

    #[test]
    fn results_are_in_item_order_not_completion_order() {
        // Later items finish first (earlier ones spin longer); order must
        // still be positional.
        let out = WorkerPool::new(4).map((0..16u64).collect(), |i| {
            let mut acc = 0u64;
            for _ in 0..(16 - i) * 10_000 {
                acc = acc.wrapping_add(i).rotate_left(1);
            }
            (i, std::hint::black_box(acc))
        });
        let indices: Vec<u64> = out.iter().map(|(i, _)| *i).collect();
        assert_eq!(indices, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let count = AtomicU64::new(0);
        let out = WorkerPool::new(8).map((0..1000u64).collect(), |x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 1000);
        assert_eq!(count.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn empty_and_singleton_batches() {
        let empty: Vec<u64> = WorkerPool::new(4).map(Vec::new(), |x: u64| x);
        assert!(empty.is_empty());
        assert_eq!(WorkerPool::new(4).map(vec![7u64], |x| x + 1), vec![8]);
    }

    #[test]
    fn run_executes_heterogeneous_closures_in_order() {
        let tasks: Vec<Box<dyn FnOnce() -> String + Send>> = vec![
            Box::new(|| "first".to_string()),
            Box::new(|| format!("{}", 2 * 21)),
            Box::new(|| "third".to_string()),
        ];
        let out = WorkerPool::new(2).run(tasks);
        assert_eq!(out, vec!["first", "42", "third"]);
    }

    #[test]
    fn from_env_is_at_least_one() {
        assert!(WorkerPool::from_env().threads() >= 1);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let _ = WorkerPool::new(2).map(vec![0u64, 1, 2, 3], |x| {
            assert!(x != 2, "boom");
            x
        });
    }

    #[test]
    fn execute_surfaces_panic_as_typed_error() {
        for threads in [1, 2, 8] {
            let err = WorkerPool::new(threads)
                .execute((0..16u64).collect(), |x| {
                    assert!(x != 5, "boom at {x}");
                    x * 2
                })
                .unwrap_err();
            assert_eq!(err.index, 5, "{threads} threads");
            assert!(err.message.contains("boom at 5"), "{}", err.message);
            assert!(err.to_string().contains("item 5"), "{err}");
        }
    }

    #[test]
    fn execute_reports_first_panic_in_item_order() {
        // Items 9 and 2 both panic; regardless of which thread hits which
        // first, the surfaced error is deterministic: item order wins.
        let err = WorkerPool::new(4)
            .execute((0..12u64).collect(), |x| {
                assert!(x != 2 && x != 9, "bad item {x}");
                x
            })
            .unwrap_err();
        assert_eq!(err.index, 2);
        assert!(err.message.contains("bad item 2"), "{}", err.message);
    }

    #[test]
    fn panicking_task_does_not_hang_or_poison_the_pool() {
        // A panic in one slot must not leave the pool wedged: every other
        // item still runs, and the same pool keeps working afterwards.
        let pool = WorkerPool::new(4);
        let ran = AtomicU64::new(0);
        let err = pool
            .execute((0..64u64).collect(), |x| {
                ran.fetch_add(1, Ordering::Relaxed);
                assert!(x != 31, "boom");
                x
            })
            .unwrap_err();
        assert_eq!(err.index, 31);
        assert_eq!(ran.load(Ordering::Relaxed), 64, "all items should run");
        let healthy = pool
            .execute((0..64u64).collect(), |x| x + 1)
            .expect("healthy batch");
        assert_eq!(healthy.len(), 64);
    }

    #[test]
    fn execute_matches_map_on_healthy_batches() {
        let items: Vec<u64> = (0..50).collect();
        let mapped = WorkerPool::new(4).map(items.clone(), |x| x ^ 0x5555);
        let executed = WorkerPool::new(4)
            .execute(items, |x| x ^ 0x5555)
            .expect("no panics");
        assert_eq!(mapped, executed);
    }

    #[test]
    fn non_string_panic_payload_is_still_reported() {
        let err = WorkerPool::serial()
            .execute(vec![0u32], |_| -> u32 { std::panic::panic_any(42i32) })
            .unwrap_err();
        assert_eq!(err.index, 0);
        assert!(err.message.contains("non-string"), "{}", err.message);
    }
}
