//! Self-clocked weighted fair queueing (finish-tag based).

use std::collections::VecDeque;

use gqos_trace::Request;

use crate::flow::{validate_weights, FlowId};
use crate::scheduler::FlowScheduler;

/// Weighted fair queueing in its self-clocked form (SCFQ): each request gets
/// a virtual *finish* tag `F = max(v, F_prev) + 1/w` at arrival, where `v`
/// is the finish tag of the request most recently dispatched; dispatch picks
/// the smallest finish tag.
///
/// This is the practical approximation of PGPS/WFQ that storage QoS
/// schedulers build on; it provides proportional sharing with an `O(1)`
/// virtual clock instead of a fluid-system emulation.
///
/// # Examples
///
/// ```
/// use gqos_fairqueue::{FlowId, FlowScheduler, Wfq};
/// use gqos_trace::{Request, SimTime};
///
/// let mut wfq = Wfq::new(&[2.0, 1.0]); // flow 0 gets 2/3 of the service
/// wfq.enqueue(FlowId::new(0), Request::at(SimTime::ZERO));
/// wfq.enqueue(FlowId::new(1), Request::at(SimTime::ZERO));
/// let (first, _) = wfq.dequeue().unwrap();
/// assert_eq!(first, FlowId::new(0)); // smaller finish tag: 1/2 < 1/1
/// ```
#[derive(Clone, Debug)]
pub struct Wfq {
    weights: Vec<f64>,
    queues: Vec<VecDeque<(Request, f64)>>, // (request, finish tag)
    last_finish: Vec<f64>,
    virtual_time: f64,
    len: usize,
}

impl Wfq {
    /// Creates a scheduler with one flow per weight.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or any weight is not finite and
    /// positive.
    pub fn new(weights: &[f64]) -> Self {
        validate_weights(weights);
        Wfq {
            weights: weights.to_vec(),
            queues: weights.iter().map(|_| VecDeque::new()).collect(),
            last_finish: vec![0.0; weights.len()],
            virtual_time: 0.0,
            len: 0,
        }
    }

    /// The current virtual time (finish tag of the last dispatch).
    pub fn virtual_time(&self) -> f64 {
        self.virtual_time
    }
}

impl FlowScheduler for Wfq {
    fn flows(&self) -> usize {
        self.weights.len()
    }

    fn enqueue(&mut self, flow: FlowId, request: Request) {
        let i = flow.index();
        assert!(i < self.queues.len(), "unknown flow {flow}");
        let start = if self.queues[i].is_empty() {
            self.virtual_time.max(self.last_finish[i])
        } else {
            self.last_finish[i]
        };
        let finish = start + 1.0 / self.weights[i];
        self.last_finish[i] = finish;
        self.queues[i].push_back((request, finish));
        self.len += 1;
    }

    fn dequeue(&mut self) -> Option<(FlowId, Request)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, q) in self.queues.iter().enumerate() {
            if let Some(&(_, finish)) = q.front() {
                let better = match best {
                    None => true,
                    Some((_, best_f)) => finish < best_f,
                };
                if better {
                    best = Some((i, finish));
                }
            }
        }
        let (i, finish) = best?;
        let (request, _) = self.queues[i].pop_front().expect("non-empty head");
        self.virtual_time = finish;
        self.len -= 1;
        Some((FlowId::new(i), request))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn flow_len(&self, flow: FlowId) -> usize {
        self.queues[flow.index()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::test_support::*;
    use gqos_trace::SimTime;

    #[test]
    fn weighted_share_2_to_1() {
        check_weighted_share(Wfq::new(&[2.0, 1.0]), 2.0, 1.0);
    }

    #[test]
    fn weighted_share_9_to_1() {
        check_weighted_share(Wfq::new(&[9.0, 1.0]), 9.0, 1.0);
    }

    #[test]
    fn work_conserving() {
        check_work_conserving(Wfq::new(&[1.0, 1.0]));
    }

    #[test]
    fn no_idle_credit() {
        check_no_idle_credit(Wfq::new(&[1.0, 1.0]));
    }

    #[test]
    fn fifo_within_flow() {
        check_fifo_within_flow(Wfq::new(&[1.0, 1.0]));
    }

    #[test]
    fn virtual_time_is_monotonic() {
        let mut w = Wfq::new(&[1.0, 3.0]);
        for i in 0..20 {
            w.enqueue(FlowId::new(i % 2), request(i as u64));
        }
        let mut last_v = w.virtual_time();
        while w.dequeue().is_some() {
            assert!(w.virtual_time() >= last_v);
            last_v = w.virtual_time();
        }
    }

    #[test]
    fn empty_dequeue_is_none() {
        let mut w = Wfq::new(&[1.0]);
        assert!(w.dequeue().is_none());
        assert!(w.is_empty());
        assert_eq!(w.flows(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown flow")]
    fn enqueue_validates_flow() {
        let mut w = Wfq::new(&[1.0]);
        w.enqueue(FlowId::new(5), Request::at(SimTime::ZERO));
    }

    #[test]
    fn len_tracks_both_flows() {
        let mut w = Wfq::new(&[1.0, 1.0]);
        w.enqueue(FlowId::new(0), request(0));
        w.enqueue(FlowId::new(1), request(1));
        w.enqueue(FlowId::new(1), request(2));
        assert_eq!(w.len(), 3);
        assert_eq!(w.flow_len(FlowId::new(1)), 2);
        w.dequeue();
        assert_eq!(w.len(), 2);
    }
}
