//! Worst-case fair weighted fair queueing plus (WF²Q+).

use std::collections::VecDeque;

use gqos_trace::Request;

use crate::flow::{validate_weights, FlowId};
use crate::scheduler::FlowScheduler;

const EPS: f64 = 1e-9;

/// WF²Q+ (Bennett & Zhang): dispatch the smallest-finish-tag request among
/// *eligible* flows — those whose head start tag does not exceed the system
/// virtual time. Eligibility prevents a high-weight flow from running ahead
/// of its fluid (GPS) service, giving the worst-case fairness bound that
/// plain WFQ lacks.
///
/// The system virtual time advances by `1/Σw` per unit of work and never
/// falls below the smallest backlogged start tag, so at least one flow is
/// always eligible and the scheduler stays work-conserving.
///
/// # Examples
///
/// ```
/// use gqos_fairqueue::{FlowId, FlowScheduler, Wf2q};
/// use gqos_trace::{Request, SimTime};
///
/// let mut q = Wf2q::new(&[3.0, 1.0]);
/// q.enqueue(FlowId::new(0), Request::at(SimTime::ZERO));
/// q.enqueue(FlowId::new(1), Request::at(SimTime::ZERO));
/// assert_eq!(q.dequeue().unwrap().0, FlowId::new(0));
/// ```
#[derive(Clone, Debug)]
pub struct Wf2q {
    weights: Vec<f64>,
    total_weight: f64,
    queues: Vec<VecDeque<Request>>,
    /// Virtual start tag of each flow's head request (valid while
    /// backlogged).
    head_start: Vec<f64>,
    /// Virtual finish tag of the last request enqueued per flow.
    last_finish: Vec<f64>,
    virtual_time: f64,
    len: usize,
}

impl Wf2q {
    /// Creates a scheduler with one flow per weight.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or any weight is not finite and
    /// positive.
    pub fn new(weights: &[f64]) -> Self {
        validate_weights(weights);
        Wf2q {
            weights: weights.to_vec(),
            total_weight: weights.iter().sum(),
            queues: weights.iter().map(|_| VecDeque::new()).collect(),
            head_start: vec![0.0; weights.len()],
            last_finish: vec![0.0; weights.len()],
            virtual_time: 0.0,
            len: 0,
        }
    }

    /// The system virtual time.
    pub fn virtual_time(&self) -> f64 {
        self.virtual_time
    }

    fn min_backlogged_start(&self) -> Option<f64> {
        let mut min = None;
        for (i, q) in self.queues.iter().enumerate() {
            if !q.is_empty() {
                let s = self.head_start[i];
                min = Some(match min {
                    None => s,
                    Some(m) if s < m => s,
                    Some(m) => m,
                });
            }
        }
        min
    }
}

impl FlowScheduler for Wf2q {
    fn flows(&self) -> usize {
        self.weights.len()
    }

    fn enqueue(&mut self, flow: FlowId, request: Request) {
        let i = flow.index();
        assert!(i < self.queues.len(), "unknown flow {flow}");
        if self.queues[i].is_empty() {
            // A newly backlogged flow starts no earlier than the system
            // virtual time (no credit for idle periods).
            let start = self.virtual_time.max(self.last_finish[i]);
            self.head_start[i] = start;
            self.last_finish[i] = start + 1.0 / self.weights[i];
        } else {
            self.last_finish[i] += 1.0 / self.weights[i];
        }
        self.queues[i].push_back(request);
        self.len += 1;
    }

    fn dequeue(&mut self) -> Option<(FlowId, Request)> {
        // Keep V no smaller than the smallest backlogged start tag so that
        // at least one flow is eligible.
        let min_start = self.min_backlogged_start()?;
        self.virtual_time = self.virtual_time.max(min_start);

        // Among eligible flows (S ≤ V), pick the smallest finish tag
        // F = S + 1/w of the head request.
        let mut best: Option<(usize, f64)> = None;
        for (i, q) in self.queues.iter().enumerate() {
            if q.is_empty() || self.head_start[i] > self.virtual_time + EPS {
                continue;
            }
            let finish = self.head_start[i] + 1.0 / self.weights[i];
            let better = match best {
                None => true,
                Some((_, bf)) => finish < bf,
            };
            if better {
                best = Some((i, finish));
            }
        }
        let (i, finish) = best.expect("V >= min start tag implies an eligible flow");
        let request = self.queues[i]
            .pop_front()
            .expect("eligible flow backlogged");
        // The flow's next head starts where the served request finished.
        self.head_start[i] = finish;
        self.len -= 1;
        // One unit of work advances the system clock by 1/Σw.
        self.virtual_time += 1.0 / self.total_weight;
        Some((FlowId::new(i), request))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn set_weights(&mut self, weights: &[f64]) {
        validate_weights(weights);
        assert_eq!(
            weights.len(),
            self.weights.len(),
            "weight count must match flow count"
        );
        self.weights = weights.to_vec();
        self.total_weight = weights.iter().sum();
    }

    fn flow_len(&self, flow: FlowId) -> usize {
        self.queues[flow.index()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::test_support::*;
    use gqos_trace::SimTime;

    #[test]
    fn weighted_share_2_to_1() {
        check_weighted_share(Wf2q::new(&[2.0, 1.0]), 2.0, 1.0);
    }

    #[test]
    fn weighted_share_10_to_1() {
        check_weighted_share(Wf2q::new(&[10.0, 1.0]), 10.0, 1.0);
    }

    #[test]
    fn renegotiated_weights_shift_future_shares() {
        let mut q = Wf2q::new(&[1.0, 1.0]);
        q.set_weights(&[2.0, 1.0]);
        check_weighted_share(q, 2.0, 1.0);
    }

    #[test]
    fn work_conserving() {
        check_work_conserving(Wf2q::new(&[1.0, 1.0]));
    }

    #[test]
    fn no_idle_credit() {
        check_no_idle_credit(Wf2q::new(&[1.0, 1.0]));
    }

    #[test]
    fn fifo_within_flow() {
        check_fifo_within_flow(Wf2q::new(&[1.0, 1.0]));
    }

    #[test]
    fn eligibility_interleaves_heavy_flow() {
        // Weight 3:1 — WF2Q+ must not serve four flow-0 requests in a row
        // from the start (worst-case fairness); the pattern interleaves.
        let mut q = Wf2q::new(&[3.0, 1.0]);
        for i in 0..8 {
            q.enqueue(FlowId::new(0), request(i));
            q.enqueue(FlowId::new(1), request(i));
        }
        let mut order = Vec::new();
        for _ in 0..8 {
            order.push(q.dequeue().expect("backlogged").0.index());
        }
        // In any window of 4 dispatches, flow 1 appears at least once.
        for w in order.windows(4) {
            assert!(w.contains(&1), "flow 1 shut out in {order:?}");
        }
    }

    #[test]
    fn virtual_time_monotonic() {
        let mut q = Wf2q::new(&[1.0, 2.0]);
        for i in 0..30 {
            q.enqueue(FlowId::new((i % 2) as usize), request(i));
        }
        let mut v = q.virtual_time();
        while q.dequeue().is_some() {
            assert!(q.virtual_time() >= v);
            v = q.virtual_time();
        }
    }

    #[test]
    fn empty_dequeue_is_none() {
        let mut q = Wf2q::new(&[1.0]);
        assert!(q.dequeue().is_none());
        assert_eq!(q.flows(), 1);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown flow")]
    fn enqueue_validates_flow() {
        let mut q = Wf2q::new(&[1.0]);
        q.enqueue(FlowId::new(9), Request::at(SimTime::ZERO));
    }
}
