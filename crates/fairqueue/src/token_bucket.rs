//! A `(σ, ρ)` token bucket — the network-style traffic shaper the paper's
//! related-work section contrasts with decomposition.

use std::fmt;

use gqos_trace::{SimDuration, SimTime};

/// A token bucket of depth `σ` (burst) refilled at `ρ` tokens per second.
///
/// Network QoS shapes traffic by *policing*: requests that find no token are
/// dropped (or marked). The paper argues this is unsuitable for storage —
/// protocols cannot retry dropped block I/O — which the
/// `ablation_token_bucket` benchmark quantifies against RTT decomposition.
///
/// # Examples
///
/// ```
/// use gqos_fairqueue::TokenBucket;
/// use gqos_trace::SimTime;
///
/// let mut tb = TokenBucket::new(100.0, 2.0); // 100 tokens/s, burst of 2
/// assert!(tb.try_consume(SimTime::ZERO));
/// assert!(tb.try_consume(SimTime::ZERO));
/// assert!(!tb.try_consume(SimTime::ZERO)); // bucket exhausted
/// assert!(tb.try_consume(SimTime::from_millis(10))); // one token refilled
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last_refill: SimTime,
}

impl TokenBucket {
    /// Creates a bucket that starts full.
    ///
    /// # Panics
    ///
    /// Panics if `rate` or `burst` is not finite and strictly positive.
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "invalid token rate: {rate}");
        assert!(
            burst.is_finite() && burst > 0.0,
            "invalid bucket depth: {burst}"
        );
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last_refill: SimTime::ZERO,
        }
    }

    /// The refill rate in tokens per second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The bucket depth.
    pub fn burst(&self) -> f64 {
        self.burst
    }

    fn refill(&mut self, now: SimTime) {
        if now > self.last_refill {
            let elapsed = (now - self.last_refill).as_secs_f64();
            self.tokens = (self.tokens + elapsed * self.rate).min(self.burst);
            self.last_refill = now;
        }
    }

    /// Current token count after refilling to `now`.
    ///
    /// Time must not move backwards across calls; a stale `now` is ignored
    /// for refill but still answered consistently.
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// Consumes one token if available. Returns whether the request
    /// conforms.
    pub fn try_consume(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// The earliest instant at which one token will be available, given no
    /// further consumption. Returns `now` if one is already available.
    pub fn next_conforming(&mut self, now: SimTime) -> SimTime {
        self.refill(now);
        if self.tokens >= 1.0 {
            now
        } else {
            let deficit = 1.0 - self.tokens;
            now + SimDuration::from_secs_f64(deficit / self.rate)
        }
    }
}

impl fmt::Display for TokenBucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "token bucket ({:.1}/s, depth {:.1}, {:.2} available)",
            self.rate, self.burst, self.tokens
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_and_drains() {
        let mut tb = TokenBucket::new(10.0, 3.0);
        assert_eq!(tb.available(SimTime::ZERO), 3.0);
        assert!(tb.try_consume(SimTime::ZERO));
        assert!(tb.try_consume(SimTime::ZERO));
        assert!(tb.try_consume(SimTime::ZERO));
        assert!(!tb.try_consume(SimTime::ZERO));
    }

    #[test]
    fn refills_at_rate_and_caps_at_burst() {
        let mut tb = TokenBucket::new(10.0, 5.0);
        for _ in 0..5 {
            assert!(tb.try_consume(SimTime::ZERO));
        }
        // 100 ms at 10/s -> 1 token.
        assert!((tb.available(SimTime::from_millis(100)) - 1.0).abs() < 1e-9);
        // A long idle period cannot exceed the depth.
        assert_eq!(tb.available(SimTime::from_secs(1000)), 5.0);
    }

    #[test]
    fn next_conforming_accounts_for_deficit() {
        let mut tb = TokenBucket::new(100.0, 1.0);
        assert!(tb.try_consume(SimTime::ZERO));
        let next = tb.next_conforming(SimTime::ZERO);
        assert_eq!(next, SimTime::from_millis(10));
        // Already conforming once a token exists.
        assert_eq!(tb.next_conforming(next), next);
    }

    #[test]
    fn sustained_rate_is_enforced() {
        // Offer 2x the rate for 1 s; about rate + burst conform.
        let mut tb = TokenBucket::new(100.0, 10.0);
        let mut conforming = 0;
        for i in 0..200 {
            let t = SimTime::from_millis(i * 5); // 200 requests over 1 s
            if tb.try_consume(t) {
                conforming += 1;
            }
        }
        assert!((100..=115).contains(&conforming), "conforming {conforming}");
    }

    #[test]
    fn stale_now_does_not_rewind() {
        let mut tb = TokenBucket::new(10.0, 2.0);
        assert!(tb.try_consume(SimTime::from_secs(10)));
        // Earlier timestamp: no refill, but no panic either.
        let avail = tb.available(SimTime::from_secs(5));
        assert!(avail >= 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid token rate")]
    fn zero_rate_rejected() {
        let _ = TokenBucket::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid bucket depth")]
    fn zero_depth_rejected() {
        let _ = TokenBucket::new(1.0, 0.0);
    }

    #[test]
    fn accessors_and_display() {
        let tb = TokenBucket::new(50.0, 4.0);
        assert_eq!(tb.rate(), 50.0);
        assert_eq!(tb.burst(), 4.0);
        assert!(tb.to_string().contains("token bucket"));
    }
}
