//! pClock — arrival-curve based latency scheduling (Gulati, Merchant,
//! Varman; SIGMETRICS 2007).
//!
//! The QoS scheduler the paper's related work builds on (and shares an
//! author with). Each flow declares a `(σ, ρ, δ)` service-level objective:
//! as long as its arrivals conform to a token bucket of burst `σ` and rate
//! `ρ`, every request must finish within `δ`. Requests are tagged with
//! deadlines — conforming requests get `arrival + δ`, non-conforming ones
//! are pushed out by their token deficit — and the server runs earliest
//! deadline first. Spare capacity flows to whoever is backlogged, and a
//! misbehaving flow only ever delays itself.

use std::collections::VecDeque;
use std::fmt;

use gqos_trace::{Request, SimDuration, SimTime};

use crate::flow::FlowId;
use crate::scheduler::FlowScheduler;

/// A flow's `(σ, ρ, δ)` service-level objective.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct FlowSpec {
    /// Token-bucket depth σ: the burst size honoured at full priority.
    pub burst: f64,
    /// Token rate ρ in requests per second: the guaranteed throughput.
    pub rate: f64,
    /// Latency bound δ for conforming requests.
    pub latency: SimDuration,
}

impl FlowSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `burst` or `rate` is not finite and strictly positive, or
    /// `latency` is zero.
    pub fn new(burst: f64, rate: f64, latency: SimDuration) -> Self {
        assert!(burst.is_finite() && burst > 0.0, "invalid burst: {burst}");
        assert!(rate.is_finite() && rate > 0.0, "invalid rate: {rate}");
        assert!(!latency.is_zero(), "latency bound must be positive");
        FlowSpec {
            burst,
            rate,
            latency,
        }
    }
}

impl fmt::Display for FlowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(sigma {:.1}, rho {:.1}/s, delta {})",
            self.burst, self.rate, self.latency
        )
    }
}

#[derive(Clone, Debug)]
struct FlowState {
    spec: FlowSpec,
    /// Tokens available; negative values are accumulated debt from
    /// non-conforming arrivals.
    tokens: f64,
    last_refill: SimTime,
    /// Queued requests with their deadline tags (FIFO per flow, so heads
    /// carry the earliest tag of their flow).
    queue: VecDeque<(Request, SimTime)>,
}

impl FlowState {
    fn refill(&mut self, now: SimTime) {
        if now > self.last_refill {
            let dt = (now - self.last_refill).as_secs_f64();
            self.tokens = (self.tokens + dt * self.spec.rate).min(self.spec.burst);
            self.last_refill = now;
        }
    }
}

/// The pClock scheduler over a fixed set of flows.
///
/// Requests are tagged at arrival (using `request.arrival` as the clock)
/// and dispatched earliest-deadline-first across flows. Within a flow,
/// order is FIFO — deadline tags are non-decreasing per flow by
/// construction.
///
/// # Examples
///
/// ```
/// use gqos_fairqueue::{FlowId, FlowScheduler, FlowSpec, PClock};
/// use gqos_trace::{Request, SimDuration, SimTime};
///
/// let mut p = PClock::new(vec![
///     FlowSpec::new(4.0, 100.0, SimDuration::from_millis(10)),
///     FlowSpec::new(4.0, 100.0, SimDuration::from_millis(100)),
/// ]);
/// p.enqueue(FlowId::new(1), Request::at(SimTime::ZERO));
/// p.enqueue(FlowId::new(0), Request::at(SimTime::ZERO));
/// // Flow 0's 10 ms bound beats flow 1's 100 ms bound.
/// assert_eq!(p.dequeue().unwrap().0, FlowId::new(0));
/// ```
#[derive(Clone, Debug)]
pub struct PClock {
    flows: Vec<FlowState>,
    len: usize,
}

impl PClock {
    /// Creates a scheduler with one flow per spec.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty.
    pub fn new(specs: Vec<FlowSpec>) -> Self {
        assert!(!specs.is_empty(), "pClock needs at least one flow");
        PClock {
            flows: specs
                .into_iter()
                .map(|spec| FlowState {
                    spec,
                    tokens: spec.burst,
                    last_refill: SimTime::ZERO,
                    queue: VecDeque::new(),
                })
                .collect(),
            len: 0,
        }
    }

    /// The deadline tag of a flow's queue head, if any.
    pub fn head_deadline(&self, flow: FlowId) -> Option<SimTime> {
        self.flows[flow.index()].queue.front().map(|&(_, d)| d)
    }

    /// The current token balance of a flow (negative = debt).
    pub fn tokens(&self, flow: FlowId) -> f64 {
        self.flows[flow.index()].tokens
    }
}

impl FlowScheduler for PClock {
    fn flows(&self) -> usize {
        self.flows.len()
    }

    fn enqueue(&mut self, flow: FlowId, request: Request) {
        let i = flow.index();
        assert!(i < self.flows.len(), "unknown flow {flow}");
        let state = &mut self.flows[i];
        let now = request.arrival;
        state.refill(now);
        // Conforming requests are due δ after arrival; each token of debt
        // pushes the deadline out by 1/ρ.
        let deadline = if state.tokens >= 1.0 {
            now + state.spec.latency
        } else {
            let deficit = 1.0 - state.tokens;
            now + state.spec.latency + SimDuration::from_secs_f64(deficit / state.spec.rate)
        };
        state.tokens -= 1.0;
        state.queue.push_back((request, deadline));
        self.len += 1;
    }

    fn dequeue(&mut self) -> Option<(FlowId, Request)> {
        let mut best: Option<(usize, SimTime)> = None;
        for (i, f) in self.flows.iter().enumerate() {
            if let Some(&(_, deadline)) = f.queue.front() {
                let better = match best {
                    None => true,
                    Some((_, b)) => deadline < b,
                };
                if better {
                    best = Some((i, deadline));
                }
            }
        }
        let (i, _) = best?;
        let (request, _) = self.flows[i].queue.pop_front().expect("non-empty head");
        self.len -= 1;
        Some((FlowId::new(i), request))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn flow_len(&self, flow: FlowId) -> usize {
        self.flows[flow.index()].queue.len()
    }
}

impl fmt::Display for PClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pClock({} flows, {} queued)", self.flows.len(), self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn dms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn at(t: SimTime) -> Request {
        Request::at(t)
    }

    #[test]
    fn conforming_requests_get_latency_bound_deadlines() {
        let mut p = PClock::new(vec![FlowSpec::new(4.0, 100.0, dms(20))]);
        p.enqueue(FlowId::new(0), at(ms(5)));
        assert_eq!(p.head_deadline(FlowId::new(0)), Some(ms(25)));
    }

    #[test]
    fn non_conforming_requests_are_pushed_out() {
        // Burst of 2: the 3rd simultaneous request has a 1-token deficit,
        // worth 1/ρ = 10 ms extra.
        let mut p = PClock::new(vec![FlowSpec::new(2.0, 100.0, dms(20))]);
        p.enqueue(FlowId::new(0), at(ms(0)));
        p.enqueue(FlowId::new(0), at(ms(0)));
        p.enqueue(FlowId::new(0), at(ms(0)));
        assert!(p.tokens(FlowId::new(0)) < 0.0);
        let q: Vec<SimTime> = (0..3)
            .map(|_| {
                let d = p.head_deadline(FlowId::new(0)).unwrap();
                p.dequeue();
                d
            })
            .collect();
        assert_eq!(q[0], ms(20));
        assert_eq!(q[1], ms(20));
        assert_eq!(q[2], ms(30)); // 20 + 1 token / 100 per sec
    }

    #[test]
    fn tokens_refill_at_rate_and_cap_at_burst() {
        let mut p = PClock::new(vec![FlowSpec::new(5.0, 100.0, dms(10))]);
        p.enqueue(FlowId::new(0), at(ms(0))); // 5 -> 4 tokens
        p.dequeue();
        p.enqueue(FlowId::new(0), at(ms(20))); // +2 refilled, capped? 4+2=6 -> cap 5 -> 4 after
        assert!((p.tokens(FlowId::new(0)) - 4.0).abs() < 1e-9);
        p.dequeue();
        p.enqueue(FlowId::new(0), at(ms(10_000))); // long idle: cap at burst
        assert!((p.tokens(FlowId::new(0)) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn edf_across_flows() {
        let mut p = PClock::new(vec![
            FlowSpec::new(4.0, 100.0, dms(50)),
            FlowSpec::new(4.0, 100.0, dms(10)),
        ]);
        p.enqueue(FlowId::new(0), at(ms(0)));
        p.enqueue(FlowId::new(1), at(ms(0)));
        // Flow 1's tighter bound wins.
        assert_eq!(p.dequeue().unwrap().0, FlowId::new(1));
        assert_eq!(p.dequeue().unwrap().0, FlowId::new(0));
        assert!(p.dequeue().is_none());
    }

    #[test]
    fn misbehaving_flow_only_delays_itself() {
        // Flow 0 conforms (≤ its rate); flow 1 floods far beyond its spec.
        // Flow 0's tags stay at arrival + δ, so EDF serves it ahead of the
        // flood's debt-laden tags.
        let mut p = PClock::new(vec![
            FlowSpec::new(2.0, 100.0, dms(20)),
            FlowSpec::new(2.0, 100.0, dms(20)),
        ]);
        // Flood from flow 1 at t = 0.
        for _ in 0..50 {
            p.enqueue(FlowId::new(1), at(ms(0)));
        }
        // Conforming request from flow 0 a little later.
        p.enqueue(FlowId::new(0), at(ms(5)));
        // Serve a few: flow 1's first two (deadline 20 ms) may precede, but
        // flow 0 (deadline 25 ms) must come before the flood's debt tail.
        let mut served_before_flow0 = 0;
        loop {
            let (flow, _) = p.dequeue().expect("flow 0 still queued");
            if flow == FlowId::new(0) {
                break;
            }
            served_before_flow0 += 1;
        }
        assert!(
            served_before_flow0 <= 3,
            "conforming flow delayed behind {served_before_flow0} flood requests"
        );
    }

    #[test]
    fn per_flow_order_is_fifo() {
        let mut p = PClock::new(vec![FlowSpec::new(3.0, 50.0, dms(30))]);
        for t in [0u64, 1, 2, 3] {
            p.enqueue(FlowId::new(0), at(ms(t)));
        }
        let mut last = SimTime::ZERO;
        while let Some((_, r)) = p.dequeue() {
            assert!(r.arrival >= last);
            last = r.arrival;
        }
    }

    #[test]
    fn end_to_end_latency_isolation_with_engine() {
        use gqos_sim::{simulate, FixedRateServer};
        use gqos_trace::{Iops, Workload};

        // Two tenants on a 200 IOPS server: tenant 0 paced at 50/s
        // (conforming), tenant 1 sends 100-deep bursts (non-conforming).
        // Route by request block parity through a wrapper scheduler.
        struct TwoTenant {
            p: PClock,
        }
        impl gqos_sim::Scheduler for TwoTenant {
            fn on_arrival(&mut self, request: Request, _now: SimTime) {
                let flow = FlowId::new((request.block.get() % 2) as usize);
                self.p.enqueue(flow, request);
            }
            fn next_for(
                &mut self,
                _server: gqos_sim::ServerId,
                _now: SimTime,
            ) -> gqos_sim::Dispatch {
                match self.p.dequeue() {
                    Some((flow, r)) => gqos_sim::Dispatch::Serve(
                        r,
                        gqos_sim::ServiceClass::new(flow.index() as u8),
                    ),
                    None => gqos_sim::Dispatch::Idle,
                }
            }
            fn pending(&self) -> usize {
                self.p.len()
            }
        }

        let mut requests = Vec::new();
        // Tenant 0: every 20 ms for 2 s (block 0 -> flow 0).
        for i in 0..100u64 {
            requests.push(Request::at(ms(i * 20)).with_block(gqos_trace::LogicalBlock::new(0)));
        }
        // Tenant 1: a 150-deep burst at t = 100 ms (block 1 -> flow 1).
        for _ in 0..150 {
            requests.push(Request::at(ms(100)).with_block(gqos_trace::LogicalBlock::new(1)));
        }
        let w = Workload::from_requests(requests);
        let scheduler = TwoTenant {
            p: PClock::new(vec![
                FlowSpec::new(2.0, 60.0, dms(50)),
                FlowSpec::new(2.0, 60.0, dms(50)),
            ]),
        };
        let report = simulate(&w, scheduler, FixedRateServer::new(Iops::new(200.0)));
        assert_eq!(report.completed(), w.len());
        let tenant0 = report.stats_for(gqos_sim::ServiceClass::new(0));
        // The conforming tenant keeps its 50 ms bound despite the flood.
        assert!(
            tenant0.fraction_within(dms(50)) > 0.99,
            "conforming tenant degraded: {:.3}",
            tenant0.fraction_within(dms(50))
        );
    }

    #[test]
    #[should_panic(expected = "at least one flow")]
    fn empty_specs_rejected() {
        let _ = PClock::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "invalid burst")]
    fn bad_spec_rejected() {
        let _ = FlowSpec::new(0.0, 1.0, dms(1));
    }

    #[test]
    #[should_panic(expected = "unknown flow")]
    fn enqueue_validates_flow() {
        let mut p = PClock::new(vec![FlowSpec::new(1.0, 1.0, dms(1))]);
        p.enqueue(FlowId::new(7), at(ms(0)));
    }

    #[test]
    fn display_and_len() {
        let mut p = PClock::new(vec![FlowSpec::new(1.0, 1.0, dms(1))]);
        assert!(p.to_string().contains("pClock"));
        assert!(FlowSpec::new(1.0, 2.0, dms(3))
            .to_string()
            .contains("sigma"));
        assert_eq!(p.flows(), 1);
        p.enqueue(FlowId::new(0), at(ms(0)));
        assert_eq!(p.flow_len(FlowId::new(0)), 1);
        assert!(!p.is_empty());
    }
}
