//! The common interface of the proportional-share schedulers.

use gqos_trace::Request;

use crate::flow::FlowId;

/// A proportional-share scheduler multiplexing several flows onto one
/// server.
///
/// Requests are unit jobs (the storage convention the paper adopts: the OS
/// has already split large I/Os into comparable block requests), so a flow
/// of weight `w_i` receives a `w_i / Σw` share of dispatches while
/// backlogged.
pub trait FlowScheduler {
    /// Number of flows the scheduler was built with.
    fn flows(&self) -> usize;

    /// Queues `request` on `flow`.
    ///
    /// # Panics
    ///
    /// Panics if `flow` is out of range.
    fn enqueue(&mut self, flow: FlowId, request: Request);

    /// Removes and returns the next request to serve, with its flow.
    /// Returns `None` when all flows are empty.
    fn dequeue(&mut self) -> Option<(FlowId, Request)>;

    /// Total queued requests across all flows.
    fn len(&self) -> usize;

    /// `true` when no requests are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queued requests on one flow.
    ///
    /// # Panics
    ///
    /// Panics if `flow` is out of range.
    fn flow_len(&self, flow: FlowId) -> usize;

    /// Replaces the flow weights, e.g. when an effective-capacity change
    /// renegotiates the shares. Only future tags are affected; requests
    /// already queued keep the tags they were stamped with.
    ///
    /// The default ignores the new weights — for schedulers whose dispatch
    /// order does not depend on weights.
    ///
    /// # Panics
    ///
    /// Implementations panic if `weights` is invalid (see
    /// [`Sfq::new`](crate::Sfq::new)) or its length differs from
    /// [`flows`](FlowScheduler::flows).
    fn set_weights(&mut self, weights: &[f64]) {
        let _ = weights;
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared behavioural tests run against every [`FlowScheduler`].

    use gqos_trace::{Request, SimTime};

    use super::*;

    pub fn request(n: u64) -> Request {
        Request::at(SimTime::from_millis(n))
    }

    /// While both flows stay backlogged, dispatch shares must approach the
    /// weight ratio.
    pub fn check_weighted_share<S: FlowScheduler>(mut s: S, w0: f64, w1: f64) {
        const N: usize = 600;
        for i in 0..N {
            s.enqueue(FlowId::new(0), request(i as u64));
            s.enqueue(FlowId::new(1), request(i as u64));
        }
        let mut served = [0usize; 2];
        // Serve while both are backlogged.
        for _ in 0..N {
            let (f, _) = s.dequeue().expect("backlogged");
            served[f.index()] += 1;
            if s.flow_len(FlowId::new(0)) == 0 || s.flow_len(FlowId::new(1)) == 0 {
                break;
            }
        }
        let expected = w0 / (w0 + w1);
        let got = served[0] as f64 / (served[0] + served[1]) as f64;
        assert!(
            (got - expected).abs() < 0.05,
            "weighted share: expected {expected:.3}, got {got:.3} ({served:?})"
        );
    }

    /// An idle flow must not block a backlogged one (work conservation).
    pub fn check_work_conserving<S: FlowScheduler>(mut s: S) {
        for i in 0..10 {
            s.enqueue(FlowId::new(1), request(i));
        }
        for _ in 0..10 {
            let (f, _) = s.dequeue().expect("flow 1 backlogged");
            assert_eq!(f, FlowId::new(1));
        }
        assert!(s.dequeue().is_none());
        assert!(s.is_empty());
    }

    /// A flow that goes idle must not accumulate credit: after rejoining it
    /// may not monopolise the server.
    pub fn check_no_idle_credit<S: FlowScheduler>(mut s: S) {
        // Flow 1 serves alone for a long stretch.
        for i in 0..100 {
            s.enqueue(FlowId::new(1), request(i));
        }
        for _ in 0..100 {
            s.dequeue().expect("backlogged");
        }
        // Flow 0 becomes active; both now backlogged with equal weights.
        for i in 0..100 {
            s.enqueue(FlowId::new(0), request(i));
            s.enqueue(FlowId::new(1), request(i));
        }
        let mut first_20 = [0usize; 2];
        for _ in 0..20 {
            let (f, _) = s.dequeue().expect("backlogged");
            first_20[f.index()] += 1;
        }
        // Without idle-credit protection flow 0 would win all 20.
        assert!(
            first_20[1] >= 8,
            "flow 1 starved after flow 0 rejoined: {first_20:?}"
        );
    }

    /// FIFO order within a single flow.
    pub fn check_fifo_within_flow<S: FlowScheduler>(mut s: S) {
        for i in 0..5 {
            s.enqueue(FlowId::new(0), request(i));
        }
        let mut last = None;
        while let Some((_, r)) = s.dequeue() {
            if let Some(prev) = last {
                assert!(r.arrival > prev, "within-flow order violated");
            }
            last = Some(r.arrival);
        }
    }
}
