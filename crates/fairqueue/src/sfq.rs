//! Start-time fair queueing (Goyal, Vin, Cheng).

use std::collections::VecDeque;

use gqos_trace::Request;

use crate::flow::{validate_weights, FlowId};
use crate::scheduler::FlowScheduler;

/// Start-time fair queueing: each request gets a virtual *start* tag
/// `S = max(v, F_prev)` and finish tag `F = S + 1/w` at arrival; dispatch
/// picks the smallest start tag, and the virtual clock `v` is set to the
/// start tag of the request in service.
///
/// SFQ's defining property (and why the storage QoS literature favours it)
/// is that the virtual clock needs no rate information about the server —
/// it works unchanged over servers of fluctuating capacity, such as a disk
/// whose throughput depends on locality.
///
/// # Examples
///
/// ```
/// use gqos_fairqueue::{FlowId, FlowScheduler, Sfq};
/// use gqos_trace::{Request, SimTime};
///
/// let mut sfq = Sfq::new(&[1.0, 1.0]);
/// sfq.enqueue(FlowId::new(0), Request::at(SimTime::ZERO));
/// sfq.enqueue(FlowId::new(1), Request::at(SimTime::ZERO));
/// assert_eq!(sfq.len(), 2);
/// assert!(sfq.dequeue().is_some());
/// ```
#[derive(Clone, Debug)]
pub struct Sfq {
    weights: Vec<f64>,
    queues: Vec<VecDeque<(Request, f64)>>, // (request, start tag)
    last_finish: Vec<f64>,
    virtual_time: f64,
    len: usize,
}

impl Sfq {
    /// Creates a scheduler with one flow per weight.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or any weight is not finite and
    /// positive.
    pub fn new(weights: &[f64]) -> Self {
        validate_weights(weights);
        Sfq {
            weights: weights.to_vec(),
            queues: weights.iter().map(|_| VecDeque::new()).collect(),
            last_finish: vec![0.0; weights.len()],
            virtual_time: 0.0,
            len: 0,
        }
    }

    /// The current virtual time (start tag of the last dispatch).
    pub fn virtual_time(&self) -> f64 {
        self.virtual_time
    }
}

impl FlowScheduler for Sfq {
    fn flows(&self) -> usize {
        self.weights.len()
    }

    fn enqueue(&mut self, flow: FlowId, request: Request) {
        let i = flow.index();
        assert!(i < self.queues.len(), "unknown flow {flow}");
        let start = self.virtual_time.max(self.last_finish[i]);
        self.last_finish[i] = start + 1.0 / self.weights[i];
        self.queues[i].push_back((request, start));
        self.len += 1;
    }

    fn dequeue(&mut self) -> Option<(FlowId, Request)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, q) in self.queues.iter().enumerate() {
            if let Some(&(_, start)) = q.front() {
                let better = match best {
                    None => true,
                    Some((_, best_s)) => start < best_s,
                };
                if better {
                    best = Some((i, start));
                }
            }
        }
        let (i, start) = best?;
        let (request, _) = self.queues[i].pop_front().expect("non-empty head");
        self.virtual_time = start;
        self.len -= 1;
        Some((FlowId::new(i), request))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn flow_len(&self, flow: FlowId) -> usize {
        self.queues[flow.index()].len()
    }

    fn set_weights(&mut self, weights: &[f64]) {
        validate_weights(weights);
        assert_eq!(
            weights.len(),
            self.weights.len(),
            "weight count must match flow count"
        );
        self.weights = weights.to_vec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::test_support::*;
    use gqos_trace::SimTime;

    #[test]
    fn weighted_share_2_to_1() {
        check_weighted_share(Sfq::new(&[2.0, 1.0]), 2.0, 1.0);
    }

    #[test]
    fn weighted_share_1_to_4() {
        check_weighted_share(Sfq::new(&[1.0, 4.0]), 1.0, 4.0);
    }

    #[test]
    fn work_conserving() {
        check_work_conserving(Sfq::new(&[1.0, 1.0]));
    }

    #[test]
    fn no_idle_credit() {
        check_no_idle_credit(Sfq::new(&[1.0, 1.0]));
    }

    #[test]
    fn fifo_within_flow() {
        check_fifo_within_flow(Sfq::new(&[1.0, 1.0]));
    }

    #[test]
    fn start_tags_never_precede_virtual_time() {
        let mut s = Sfq::new(&[1.0, 1.0]);
        // Serve flow 0 alone for a while; v advances.
        for i in 0..50 {
            s.enqueue(FlowId::new(0), request(i));
        }
        for _ in 0..50 {
            s.dequeue();
        }
        let v = s.virtual_time();
        assert!(v > 0.0);
        // Newly active flow 1 starts at v, not at 0.
        s.enqueue(FlowId::new(1), request(99));
        let (_, _) = s.dequeue().expect("one pending");
        assert!(s.virtual_time() >= v);
    }

    #[test]
    fn empty_dequeue_is_none() {
        let mut s = Sfq::new(&[1.0]);
        assert!(s.dequeue().is_none());
        assert_eq!(s.flows(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown flow")]
    fn enqueue_validates_flow() {
        let mut s = Sfq::new(&[1.0]);
        s.enqueue(FlowId::new(1), Request::at(SimTime::ZERO));
    }

    #[test]
    fn renegotiated_weights_shift_future_shares() {
        let mut s = Sfq::new(&[1.0, 1.0]);
        s.set_weights(&[4.0, 1.0]);
        check_weighted_share(s, 4.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "weight count")]
    fn set_weights_validates_flow_count() {
        let mut s = Sfq::new(&[1.0, 1.0]);
        s.set_weights(&[1.0]);
    }
}
