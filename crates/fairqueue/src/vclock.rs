//! Virtual Clock scheduling (Zhang, 1990).

use std::collections::VecDeque;
use std::fmt;

use gqos_trace::{Request, SimDuration, SimTime};

use crate::flow::FlowId;
use crate::scheduler::FlowScheduler;

/// Virtual Clock: each flow reserves an absolute rate `ρ_i` (requests per
/// second); request `j` of flow `i` is stamped
/// `VC_i = max(arrival, VC_i) + 1/ρ_i` and the smallest stamp is served
/// first.
///
/// Unlike the relative-weight schedulers ([`Wfq`](crate::Wfq) and
/// friends), Virtual Clock enforces *absolute* reservations against real
/// time: a flow within its reservation is insulated from any backlog, but
/// a flow that over-drives accumulates stamp debt it keeps even after
/// going idle — the classic punishment behaviour that motivated fair
/// queueing's virtual-time designs, observable in the tests.
///
/// # Examples
///
/// ```
/// use gqos_fairqueue::{FlowId, FlowScheduler, VirtualClock};
/// use gqos_trace::{Request, SimTime};
///
/// let mut vc = VirtualClock::new(&[100.0, 50.0]);
/// vc.enqueue(FlowId::new(0), Request::at(SimTime::ZERO));
/// vc.enqueue(FlowId::new(1), Request::at(SimTime::ZERO));
/// // 1/100 s stamp beats 1/50 s stamp.
/// assert_eq!(vc.dequeue().unwrap().0, FlowId::new(0));
/// ```
#[derive(Clone, Debug)]
pub struct VirtualClock {
    rates: Vec<f64>,
    stamps: Vec<f64>, // per-flow running virtual clock (seconds)
    queues: Vec<VecDeque<(Request, f64)>>,
    len: usize,
}

impl VirtualClock {
    /// Creates a scheduler with one flow per reserved rate (requests/s).
    ///
    /// # Panics
    ///
    /// Panics if `rates` is empty or any rate is not finite and positive.
    pub fn new(rates: &[f64]) -> Self {
        assert!(!rates.is_empty(), "at least one flow rate is required");
        for (i, &r) in rates.iter().enumerate() {
            assert!(
                r.is_finite() && r > 0.0,
                "flow {i} has invalid rate {r}; rates must be finite and positive"
            );
        }
        VirtualClock {
            rates: rates.to_vec(),
            stamps: vec![0.0; rates.len()],
            queues: rates.iter().map(|_| VecDeque::new()).collect(),
            len: 0,
        }
    }

    /// The virtual-clock stamp a flow's next request would extend from.
    pub fn stamp(&self, flow: FlowId) -> SimTime {
        SimTime::from_secs_f64(self.stamps[flow.index()].max(0.0))
    }

    /// Lateness of a flow's clock behind real time `now` — positive values
    /// mean the flow is under-using its reservation.
    pub fn credit(&self, flow: FlowId, now: SimTime) -> SimDuration {
        let stamp = self.stamps[flow.index()];
        SimDuration::from_secs_f64((now.as_secs_f64() - stamp).max(0.0))
    }
}

impl FlowScheduler for VirtualClock {
    fn flows(&self) -> usize {
        self.rates.len()
    }

    fn enqueue(&mut self, flow: FlowId, request: Request) {
        let i = flow.index();
        assert!(i < self.queues.len(), "unknown flow {flow}");
        let arrival = request.arrival.as_secs_f64();
        let stamp = self.stamps[i].max(arrival) + 1.0 / self.rates[i];
        self.stamps[i] = stamp;
        self.queues[i].push_back((request, stamp));
        self.len += 1;
    }

    fn dequeue(&mut self) -> Option<(FlowId, Request)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, q) in self.queues.iter().enumerate() {
            if let Some(&(_, stamp)) = q.front() {
                let better = match best {
                    None => true,
                    Some((_, b)) => stamp < b,
                };
                if better {
                    best = Some((i, stamp));
                }
            }
        }
        let (i, _) = best?;
        let (request, _) = self.queues[i].pop_front().expect("non-empty head");
        self.len -= 1;
        Some((FlowId::new(i), request))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn flow_len(&self, flow: FlowId) -> usize {
        self.queues[flow.index()].len()
    }
}

impl fmt::Display for VirtualClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "VirtualClock({} flows, {} queued)",
            self.rates.len(),
            self.len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::test_support::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn rate_proportional_share_while_backlogged() {
        // All requests arrive at once (a true backlog), so the stamps are
        // driven purely by the reservations: flow 0 gets 2/3 of dispatches.
        let mut vc = VirtualClock::new(&[200.0, 100.0]);
        for _ in 0..300 {
            vc.enqueue(FlowId::new(0), Request::at(ms(0)));
            vc.enqueue(FlowId::new(1), Request::at(ms(0)));
        }
        let mut served = [0usize; 2];
        for _ in 0..300 {
            let (f, _) = vc.dequeue().expect("backlogged");
            served[f.index()] += 1;
        }
        let share = served[0] as f64 / 300.0;
        assert!((share - 2.0 / 3.0).abs() < 0.02, "share {share}");
    }

    #[test]
    fn work_conserving() {
        check_work_conserving(VirtualClock::new(&[100.0, 100.0]));
    }

    #[test]
    fn fifo_within_flow() {
        check_fifo_within_flow(VirtualClock::new(&[100.0, 100.0]));
    }

    #[test]
    fn stamps_track_reservation() {
        let mut vc = VirtualClock::new(&[100.0]);
        vc.enqueue(FlowId::new(0), Request::at(ms(0)));
        assert_eq!(vc.stamp(FlowId::new(0)), ms(10));
        vc.enqueue(FlowId::new(0), Request::at(ms(0)));
        assert_eq!(vc.stamp(FlowId::new(0)), ms(20));
        // Arrival after the stamp resets to real time.
        vc.enqueue(FlowId::new(0), Request::at(ms(500)));
        assert_eq!(vc.stamp(FlowId::new(0)), ms(510));
    }

    #[test]
    fn overdriving_flow_accumulates_debt_and_is_punished() {
        // Flow 1 blasts 100 requests at t = 0 against a 10/s reservation:
        // its stamps run 10 s into the virtual future. A conforming flow 0
        // request arriving later is served immediately after the current
        // one, ahead of the entire backlog — the Virtual Clock hallmark.
        let mut vc = VirtualClock::new(&[10.0, 10.0]);
        for _ in 0..100 {
            vc.enqueue(FlowId::new(1), Request::at(ms(0)));
        }
        vc.dequeue(); // flow 1's first request in service
        vc.enqueue(FlowId::new(0), Request::at(ms(100)));
        let (next, _) = vc.dequeue().expect("queued");
        assert_eq!(next, FlowId::new(0));
        // Flow 1's remaining debt persists.
        assert!(vc.stamp(FlowId::new(1)) >= SimTime::from_secs(10));
        assert_eq!(vc.credit(FlowId::new(1), ms(100)), SimDuration::ZERO);
        assert!(vc.credit(FlowId::new(0), SimTime::from_secs(60)) > SimDuration::ZERO);
    }

    #[test]
    fn empty_dequeue_is_none() {
        let mut vc = VirtualClock::new(&[1.0]);
        assert!(vc.dequeue().is_none());
        assert_eq!(vc.flows(), 1);
        assert!(vc.to_string().contains("VirtualClock"));
    }

    #[test]
    #[should_panic(expected = "invalid rate")]
    fn zero_rate_rejected() {
        let _ = VirtualClock::new(&[0.0]);
    }

    #[test]
    #[should_panic(expected = "unknown flow")]
    fn enqueue_validates_flow() {
        let mut vc = VirtualClock::new(&[1.0]);
        vc.enqueue(FlowId::new(3), Request::at(ms(0)));
    }
}
