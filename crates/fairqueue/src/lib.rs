//! # gqos-fairqueue — proportional-share scheduling substrate
//!
//! Virtual-time fair queueing algorithms built from scratch for the `gqos`
//! workspace. The paper's *FairQueue* recombination policy multiplexes the
//! primary and overflow classes through one of these schedulers in the
//! ratio `Cmin : ΔC`; the crate provides the family its related work cites:
//!
//! - [`Wfq`] — self-clocked weighted fair queueing (finish-tag dispatch);
//! - [`Sfq`] — start-time fair queueing (rate-oblivious virtual clock);
//! - [`Wf2q`] — WF²Q+ (eligibility-gated, worst-case fair);
//! - [`Drr`] — deficit round robin (`O(1)`, no virtual clock);
//! - [`HierarchicalSfq`] — two-level SFQ (group shares, sibling-first
//!   spare-capacity redistribution);
//! - [`VirtualClock`] — absolute rate reservations against real time;
//! - [`PClock`] — arrival-curve `(σ, ρ, δ)` latency SLOs with EDF
//!   dispatch (the storage QoS scheduler the paper's related work cites);
//! - [`TokenBucket`] — network-style `(σ, ρ)` policing, used by the
//!   shaping ablation.
//!
//! All schedulers implement [`FlowScheduler`] over unit-cost requests.
//!
//! # Examples
//!
//! ```
//! use gqos_fairqueue::{FlowId, FlowScheduler, Sfq};
//! use gqos_trace::{Request, SimTime};
//!
//! // Give the primary class 9x the overflow class's share.
//! let mut sched = Sfq::new(&[9.0, 1.0]);
//! sched.enqueue(FlowId::new(0), Request::at(SimTime::ZERO));
//! sched.enqueue(FlowId::new(1), Request::at(SimTime::ZERO));
//! let (flow, _request) = sched.dequeue().unwrap();
//! assert_eq!(flow, FlowId::new(0));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod drr;
mod flow;
mod hsfq;
mod pclock;
mod scheduler;
mod sfq;
mod token_bucket;
mod vclock;
mod wf2q;
mod wfq;

pub use drr::Drr;
pub use flow::FlowId;
pub use hsfq::{HierarchicalSfq, LeafId};
pub use pclock::{FlowSpec, PClock};
pub use scheduler::FlowScheduler;
pub use sfq::Sfq;
pub use token_bucket::TokenBucket;
pub use vclock::VirtualClock;
pub use wf2q::Wf2q;
pub use wfq::Wfq;
