//! Hierarchical start-time fair queueing.
//!
//! Two-level proportional sharing: the server's capacity is split across
//! *groups* by group weight, and each group's share is split across its
//! *leaves* by leaf weight. A leaf's guaranteed share is therefore
//! `(w_group / Σw_groups) · (w_leaf / Σw_leaves-in-group)` — and crucially,
//! spare capacity redistributes *inside the group first*: an idle leaf's
//! share goes to its siblings, not to other groups. That locality is what
//! flat weighted queueing cannot express, and what a multi-tenant shaper
//! wants: a tenant's idle overflow budget should boost its own primary
//! class before helping anyone else.

use std::fmt;

use gqos_trace::Request;

use crate::flow::{validate_weights, FlowId};
use crate::scheduler::FlowScheduler;
use crate::sfq::Sfq;

/// A leaf address in the hierarchy: `(group, leaf within group)`.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub struct LeafId {
    /// The group index.
    pub group: usize,
    /// The leaf index within the group.
    pub leaf: usize,
}

impl fmt::Display for LeafId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "group{}/leaf{}", self.group, self.leaf)
    }
}

/// Two-level SFQ: groups scheduled by SFQ over group weights; within each
/// group, leaves scheduled by SFQ over leaf weights.
///
/// # Examples
///
/// ```
/// use gqos_fairqueue::{HierarchicalSfq, LeafId};
/// use gqos_trace::{Request, SimTime};
///
/// // Two tenants at 3:1, each with primary/overflow leaves at 9:1.
/// let mut h = HierarchicalSfq::new(&[
///     (3.0, vec![9.0, 1.0]),
///     (1.0, vec![9.0, 1.0]),
/// ]);
/// h.enqueue_leaf(LeafId { group: 0, leaf: 0 }, Request::at(SimTime::ZERO));
/// h.enqueue_leaf(LeafId { group: 1, leaf: 0 }, Request::at(SimTime::ZERO));
/// let (first, _) = h.dequeue_leaf().unwrap();
/// assert_eq!(first.group, 0); // heavier group goes first
/// ```
#[derive(Clone, Debug)]
pub struct HierarchicalSfq {
    /// Group-level scheduler; it queues *placeholder* requests, one per
    /// enqueued leaf request, to drive the group-share accounting.
    groups: Sfq,
    leaves: Vec<Sfq>,
    len: usize,
}

impl HierarchicalSfq {
    /// Creates a hierarchy from `(group weight, leaf weights)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `spec` is empty or any weight vector is empty or contains
    /// non-positive weights.
    pub fn new(spec: &[(f64, Vec<f64>)]) -> Self {
        assert!(!spec.is_empty(), "at least one group is required");
        let group_weights: Vec<f64> = spec.iter().map(|(w, _)| *w).collect();
        validate_weights(&group_weights);
        let leaves = spec.iter().map(|(_, lw)| Sfq::new(lw)).collect();
        HierarchicalSfq {
            groups: Sfq::new(&group_weights),
            leaves,
            len: 0,
        }
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.leaves.len()
    }

    /// Number of leaves in `group`.
    pub fn leaves_in(&self, group: usize) -> usize {
        self.leaves[group].flows()
    }

    /// Queues a request on a leaf.
    ///
    /// # Panics
    ///
    /// Panics if the group or leaf index is out of range.
    pub fn enqueue_leaf(&mut self, leaf: LeafId, request: Request) {
        assert!(
            leaf.group < self.leaves.len(),
            "unknown group {}",
            leaf.group
        );
        // Group-level accounting: a placeholder carries the same arrival.
        self.groups.enqueue(FlowId::new(leaf.group), request);
        self.leaves[leaf.group].enqueue(FlowId::new(leaf.leaf), request);
        self.len += 1;
    }

    /// Dequeues the next request with its full leaf address.
    pub fn dequeue_leaf(&mut self) -> Option<(LeafId, Request)> {
        // The group scheduler picks which group is served; the group's own
        // leaf scheduler picks which member request goes.
        let (group_flow, _placeholder) = self.groups.dequeue()?;
        let group = group_flow.index();
        let (leaf_flow, request) = self.leaves[group]
            .dequeue()
            .expect("leaf queues mirror the group queue");
        self.len -= 1;
        Some((
            LeafId {
                group,
                leaf: leaf_flow.index(),
            },
            request,
        ))
    }

    /// Queued requests on one leaf.
    pub fn leaf_len(&self, leaf: LeafId) -> usize {
        self.leaves[leaf.group].flow_len(FlowId::new(leaf.leaf))
    }

    /// Total queued requests.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl fmt::Display for HierarchicalSfq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "H-SFQ ({} groups, {} queued)",
            self.leaves.len(),
            self.len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqos_trace::SimTime;

    fn req(n: u64) -> Request {
        Request::at(SimTime::from_millis(n))
    }

    fn leaf(group: usize, leaf: usize) -> LeafId {
        LeafId { group, leaf }
    }

    #[test]
    fn group_shares_follow_group_weights() {
        // Groups 2:1, one leaf each, both saturated.
        let mut h = HierarchicalSfq::new(&[(2.0, vec![1.0]), (1.0, vec![1.0])]);
        for i in 0..300 {
            h.enqueue_leaf(leaf(0, 0), req(i));
            h.enqueue_leaf(leaf(1, 0), req(i));
        }
        let mut served = [0usize; 2];
        for _ in 0..300 {
            let (l, _) = h.dequeue_leaf().expect("backlogged");
            served[l.group] += 1;
        }
        let share = served[0] as f64 / 300.0;
        assert!((share - 2.0 / 3.0).abs() < 0.05, "share {share}");
    }

    #[test]
    fn leaf_shares_follow_leaf_weights_within_a_group() {
        let mut h = HierarchicalSfq::new(&[(1.0, vec![3.0, 1.0])]);
        for i in 0..200 {
            h.enqueue_leaf(leaf(0, 0), req(i));
            h.enqueue_leaf(leaf(0, 1), req(i));
        }
        let mut served = [0usize; 2];
        for _ in 0..200 {
            let (l, _) = h.dequeue_leaf().expect("backlogged");
            served[l.leaf] += 1;
        }
        let share = served[0] as f64 / 200.0;
        assert!((share - 0.75).abs() < 0.05, "share {share}");
    }

    #[test]
    fn idle_leaf_share_stays_inside_its_group() {
        // Group 0 (weight 1): only its heavy leaf is active; group 1
        // (weight 1) fully active. Group 0's idle-leaf share must flow to
        // its sibling: groups still split 50:50.
        let mut h = HierarchicalSfq::new(&[(1.0, vec![1.0, 9.0]), (1.0, vec![1.0])]);
        for i in 0..200 {
            h.enqueue_leaf(leaf(0, 0), req(i)); // the light leaf only
            h.enqueue_leaf(leaf(1, 0), req(i));
        }
        let mut group0 = 0usize;
        for _ in 0..200 {
            let (l, _) = h.dequeue_leaf().expect("backlogged");
            if l.group == 0 {
                group0 += 1;
            }
        }
        let share = group0 as f64 / 200.0;
        assert!(
            (share - 0.5).abs() < 0.05,
            "group 0 share {share}: sibling idle share leaked across groups"
        );
    }

    #[test]
    fn work_conserving_across_groups() {
        let mut h = HierarchicalSfq::new(&[(5.0, vec![1.0]), (1.0, vec![1.0, 1.0])]);
        for i in 0..10 {
            h.enqueue_leaf(leaf(1, 1), req(i));
        }
        for _ in 0..10 {
            let (l, _) = h.dequeue_leaf().expect("only group 1 backlogged");
            assert_eq!(l, leaf(1, 1));
        }
        assert!(h.dequeue_leaf().is_none());
        assert!(h.is_empty());
    }

    #[test]
    fn per_leaf_fifo() {
        let mut h = HierarchicalSfq::new(&[(1.0, vec![1.0, 1.0])]);
        for i in 0..20 {
            h.enqueue_leaf(leaf(0, i % 2), req(i as u64));
        }
        let mut last = [None::<SimTime>; 2];
        while let Some((l, r)) = h.dequeue_leaf() {
            if let Some(prev) = last[l.leaf] {
                assert!(r.arrival > prev, "leaf FIFO violated");
            }
            last[l.leaf] = Some(r.arrival);
        }
    }

    #[test]
    fn accessors_and_display() {
        let h = HierarchicalSfq::new(&[(1.0, vec![1.0, 2.0]), (3.0, vec![1.0])]);
        assert_eq!(h.groups(), 2);
        assert_eq!(h.leaves_in(0), 2);
        assert_eq!(h.leaves_in(1), 1);
        assert_eq!(h.leaf_len(leaf(0, 1)), 0);
        assert_eq!(h.len(), 0);
        assert!(h.to_string().contains("H-SFQ"));
        assert_eq!(leaf(1, 0).to_string(), "group1/leaf0");
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn empty_spec_rejected() {
        let _ = HierarchicalSfq::new(&[]);
    }

    #[test]
    #[should_panic(expected = "unknown group")]
    fn enqueue_validates_group() {
        let mut h = HierarchicalSfq::new(&[(1.0, vec![1.0])]);
        h.enqueue_leaf(leaf(5, 0), req(0));
    }
}
