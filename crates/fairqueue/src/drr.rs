//! Deficit round robin (Shreedhar & Varghese, 1995).

use std::collections::VecDeque;
use std::fmt;

use gqos_trace::Request;

use crate::flow::{validate_weights, FlowId};
use crate::scheduler::FlowScheduler;

/// Deficit round robin: flows are visited cyclically; each visit credits
/// the flow's deficit counter with a weight-proportional quantum, and the
/// flow serves requests while it can pay for them. `O(1)` per dispatch and
/// no virtual clocks — the cheapest proportional-share scheduler.
///
/// Requests are unit jobs here, so the quantum of flow `i` is
/// `weights[i] / min(weights)` units per round (the smallest flow pays for
/// exactly one request per round).
///
/// # Examples
///
/// ```
/// use gqos_fairqueue::{Drr, FlowId, FlowScheduler};
/// use gqos_trace::{Request, SimTime};
///
/// let mut drr = Drr::new(&[2.0, 1.0]);
/// for _ in 0..3 {
///     drr.enqueue(FlowId::new(0), Request::at(SimTime::ZERO));
///     drr.enqueue(FlowId::new(1), Request::at(SimTime::ZERO));
/// }
/// // Over a full round, flow 0 serves twice as much.
/// let (first, _) = drr.dequeue().unwrap();
/// assert_eq!(first, FlowId::new(0));
/// ```
#[derive(Clone, Debug)]
pub struct Drr {
    quanta: Vec<f64>,
    deficits: Vec<f64>,
    queues: Vec<VecDeque<Request>>,
    /// Index of the flow currently holding the round-robin pointer.
    cursor: usize,
    len: usize,
}

impl Drr {
    /// Creates a scheduler with one flow per weight.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or any weight is not finite and
    /// positive.
    pub fn new(weights: &[f64]) -> Self {
        validate_weights(weights);
        let min = weights.iter().cloned().fold(f64::INFINITY, f64::min);
        Drr {
            quanta: weights.iter().map(|w| w / min).collect(),
            deficits: vec![0.0; weights.len()],
            queues: weights.iter().map(|_| VecDeque::new()).collect(),
            cursor: 0,
            len: 0,
        }
    }

    /// The deficit counter of a flow.
    pub fn deficit(&self, flow: FlowId) -> f64 {
        self.deficits[flow.index()]
    }
}

impl FlowScheduler for Drr {
    fn flows(&self) -> usize {
        self.queues.len()
    }

    fn enqueue(&mut self, flow: FlowId, request: Request) {
        let i = flow.index();
        assert!(i < self.queues.len(), "unknown flow {flow}");
        self.queues[i].push_back(request);
        self.len += 1;
    }

    fn dequeue(&mut self) -> Option<(FlowId, Request)> {
        if self.len == 0 {
            return None;
        }
        let n = self.queues.len();
        // At most two full rounds are needed: one to credit quanta, one to
        // find the payable head (quanta >= 1 for every flow).
        for _ in 0..(2 * n + 1) {
            let i = self.cursor;
            if self.queues[i].is_empty() {
                // Idle flows do not bank deficit.
                self.deficits[i] = 0.0;
                self.cursor = (i + 1) % n;
                continue;
            }
            if self.deficits[i] >= 1.0 {
                self.deficits[i] -= 1.0;
                let request = self.queues[i].pop_front().expect("checked non-empty");
                self.len -= 1;
                // Keep the cursor: the flow may spend the rest of its
                // deficit before the pointer moves on.
                if self.deficits[i] < 1.0 || self.queues[i].is_empty() {
                    if self.queues[i].is_empty() {
                        self.deficits[i] = 0.0;
                    }
                    self.cursor = (i + 1) % n;
                }
                return Some((FlowId::new(i), request));
            }
            // New visit: credit the quantum.
            self.deficits[i] += self.quanta[i];
            if self.deficits[i] < 1.0 {
                self.cursor = (i + 1) % n;
            }
        }
        unreachable!("a backlogged flow must become payable within two rounds");
    }

    fn len(&self) -> usize {
        self.len
    }

    fn flow_len(&self, flow: FlowId) -> usize {
        self.queues[flow.index()].len()
    }
}

impl fmt::Display for Drr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DRR({} flows, {} queued)", self.queues.len(), self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::test_support::*;

    #[test]
    fn weighted_share_2_to_1() {
        check_weighted_share(Drr::new(&[2.0, 1.0]), 2.0, 1.0);
    }

    #[test]
    fn weighted_share_5_to_1() {
        check_weighted_share(Drr::new(&[5.0, 1.0]), 5.0, 1.0);
    }

    #[test]
    fn work_conserving() {
        check_work_conserving(Drr::new(&[1.0, 1.0]));
    }

    #[test]
    fn no_idle_credit() {
        check_no_idle_credit(Drr::new(&[1.0, 1.0]));
    }

    #[test]
    fn fifo_within_flow() {
        check_fifo_within_flow(Drr::new(&[1.0, 1.0]));
    }

    #[test]
    fn round_pattern_follows_quanta() {
        // Weights 3:1 -> each round serves 3 from flow 0, then 1 from
        // flow 1.
        let mut drr = Drr::new(&[3.0, 1.0]);
        for i in 0..8 {
            drr.enqueue(FlowId::new(0), request(i));
        }
        for i in 0..8 {
            drr.enqueue(FlowId::new(1), request(i));
        }
        let order: Vec<usize> = (0..8)
            .map(|_| drr.dequeue().expect("backlogged").0.index())
            .collect();
        assert_eq!(order, vec![0, 0, 0, 1, 0, 0, 0, 1]);
    }

    #[test]
    fn deficit_resets_when_flow_empties() {
        let mut drr = Drr::new(&[4.0, 1.0]);
        drr.enqueue(FlowId::new(0), request(0));
        drr.enqueue(FlowId::new(1), request(1));
        // Flow 0 serves its single request; its 3 leftover quanta must not
        // persist into the next backlog.
        assert_eq!(drr.dequeue().unwrap().0, FlowId::new(0));
        assert_eq!(drr.deficit(FlowId::new(0)), 0.0);
        assert_eq!(drr.dequeue().unwrap().0, FlowId::new(1));
    }

    #[test]
    fn quanta_scale_to_smallest_weight() {
        // Weights 1:2 -> quanta 1 and 2: each round serves one request of
        // flow 0 and two of flow 1.
        let mut drr = Drr::new(&[1.0, 2.0]);
        for i in 0..9 {
            drr.enqueue(FlowId::new(0), request(i));
            drr.enqueue(FlowId::new(1), request(i));
        }
        let mut served = [0usize; 2];
        for _ in 0..9 {
            served[drr.dequeue().unwrap().0.index()] += 1;
        }
        assert_eq!(served, [3, 6]);
    }

    #[test]
    fn empty_dequeue_and_display() {
        let mut drr = Drr::new(&[1.0]);
        assert!(drr.dequeue().is_none());
        assert!(drr.to_string().contains("DRR"));
        assert_eq!(drr.flows(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown flow")]
    fn enqueue_validates_flow() {
        let mut drr = Drr::new(&[1.0]);
        drr.enqueue(FlowId::new(2), request(0));
    }
}
