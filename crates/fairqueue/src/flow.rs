//! Flow identities and weight validation shared by the fair schedulers.

use std::fmt;

/// Identifier of a flow within one fair-queueing scheduler.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Default, Debug)]
pub struct FlowId(usize);

impl FlowId {
    /// Creates a flow id from its index.
    pub const fn new(index: usize) -> Self {
        FlowId(index)
    }

    /// The flow's index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow{}", self.0)
    }
}

/// Validates a weight vector: non-empty, all finite and strictly positive.
///
/// # Panics
///
/// Panics on an invalid weight vector (programmer error).
pub(crate) fn validate_weights(weights: &[f64]) {
    assert!(!weights.is_empty(), "at least one flow weight is required");
    for (i, &w) in weights.iter().enumerate() {
        assert!(
            w.is_finite() && w > 0.0,
            "flow {i} has invalid weight {w}; weights must be finite and positive"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_id_round_trips() {
        let f = FlowId::new(2);
        assert_eq!(f.index(), 2);
        assert_eq!(f.to_string(), "flow2");
    }

    #[test]
    fn valid_weights_pass() {
        validate_weights(&[1.0, 2.5, 0.001]);
    }

    #[test]
    #[should_panic(expected = "at least one flow")]
    fn empty_weights_rejected() {
        validate_weights(&[]);
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn zero_weight_rejected() {
        validate_weights(&[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn nan_weight_rejected() {
        validate_weights(&[f64::NAN]);
    }
}
