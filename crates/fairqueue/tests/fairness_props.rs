//! Property-based tests common to every proportional-share scheduler.

use proptest::prelude::*;

use gqos_fairqueue::{Drr, FlowId, FlowScheduler, FlowSpec, PClock, Sfq, VirtualClock, Wf2q, Wfq};
use gqos_trace::{Request, SimDuration, SimTime};

/// A random interleaved script: (flow, arrival-ms) pairs in time order plus
/// interspersed dequeue operations.
fn arb_script() -> impl Strategy<Value = Vec<Option<usize>>> {
    // Some(flow) = enqueue on flow; None = dequeue.
    prop::collection::vec(prop_oneof![Just(None), (0usize..2).prop_map(Some),], 1..200)
}

/// Runs the script: enqueues carry increasing timestamps. Returns
/// (enqueued, dequeued) counts and checks per-flow FIFO along the way.
fn exercise<S: FlowScheduler>(mut s: S, script: &[Option<usize>]) -> (usize, usize) {
    let mut enqueued = 0usize;
    let mut dequeued = 0usize;
    let mut clock = 0u64;
    let mut last_served: [Option<SimTime>; 2] = [None, None];
    for op in script {
        match op {
            Some(flow) => {
                clock += 1;
                s.enqueue(FlowId::new(*flow), Request::at(SimTime::from_millis(clock)));
                enqueued += 1;
            }
            None => {
                if let Some((flow, r)) = s.dequeue() {
                    dequeued += 1;
                    let slot = &mut last_served[flow.index()];
                    if let Some(prev) = *slot {
                        assert!(r.arrival > prev, "per-flow FIFO violated");
                    }
                    *slot = Some(r.arrival);
                }
            }
        }
    }
    (enqueued, dequeued)
}

/// Drains the scheduler and verifies conservation.
fn drain_and_check<S: FlowScheduler>(mut s: S, script: &[Option<usize>]) {
    let mut enqueued = 0usize;
    let mut clock = 0u64;
    for flow in script.iter().flatten() {
        clock += 1;
        s.enqueue(FlowId::new(*flow), Request::at(SimTime::from_millis(clock)));
        enqueued += 1;
    }
    assert_eq!(s.len(), enqueued);
    let mut dequeued = 0usize;
    while s.dequeue().is_some() {
        dequeued += 1;
    }
    assert_eq!(dequeued, enqueued, "requests lost or duplicated");
    assert!(s.is_empty());
    assert_eq!(s.flow_len(FlowId::new(0)) + s.flow_len(FlowId::new(1)), 0);
}

macro_rules! scheduler_properties {
    ($mod_name:ident, $make:expr) => {
        mod $mod_name {
            use super::*;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(48))]

                #[test]
                fn conserves_requests(script in arb_script()) {
                    drain_and_check($make, &script);
                }

                #[test]
                fn interleaved_ops_preserve_fifo_and_counts(script in arb_script()) {
                    let (enq, deq) = exercise($make, &script);
                    prop_assert!(deq <= enq);
                }
            }
        }
    };
}

scheduler_properties!(wfq_props, Wfq::new(&[3.0, 1.0]));
scheduler_properties!(sfq_props, Sfq::new(&[3.0, 1.0]));
scheduler_properties!(wf2q_props, Wf2q::new(&[3.0, 1.0]));
scheduler_properties!(drr_props, Drr::new(&[3.0, 1.0]));
scheduler_properties!(vclock_props, VirtualClock::new(&[300.0, 100.0]));
scheduler_properties!(
    pclock_props,
    PClock::new(vec![
        FlowSpec::new(4.0, 300.0, SimDuration::from_millis(20)),
        FlowSpec::new(4.0, 100.0, SimDuration::from_millis(50)),
    ])
);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// No scheduler starves a backlogged flow while the other flow keeps
    /// arriving: after enough dequeues both flows make progress.
    #[test]
    fn no_starvation_under_continuous_load(heavy_flow in 0usize..2) {
        let light_flow = 1 - heavy_flow;
        let mut schedulers: Vec<Box<dyn FlowScheduler>> = vec![
            Box::new(Wfq::new(&[1.0, 1.0])),
            Box::new(Sfq::new(&[1.0, 1.0])),
            Box::new(Wf2q::new(&[1.0, 1.0])),
            Box::new(Drr::new(&[1.0, 1.0])),
            Box::new(VirtualClock::new(&[100.0, 100.0])),
        ];
        for s in &mut schedulers {
            // The light flow queues 5 requests early; the heavy flow floods.
            for i in 0..5u64 {
                s.enqueue(FlowId::new(light_flow), Request::at(SimTime::from_millis(i)));
            }
            for i in 0..200u64 {
                s.enqueue(FlowId::new(heavy_flow), Request::at(SimTime::from_millis(i)));
            }
            let mut light_served = 0;
            for _ in 0..40 {
                let (flow, _) = s.dequeue().expect("backlogged");
                if flow.index() == light_flow {
                    light_served += 1;
                }
            }
            prop_assert_eq!(light_served, 5, "light flow starved");
        }
    }
}
