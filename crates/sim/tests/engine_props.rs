//! Property-based tests of the simulation engine and metric recorders.

use proptest::prelude::*;

use gqos_sim::{simulate, FcfsScheduler, FixedRateServer, LatencyHistogram, ResponseStats};
use gqos_trace::{Iops, SimDuration, SimTime, Workload};

fn arb_arrivals(max: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..20_000, 1..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The engine conserves requests, timestamps are causal, and the
    /// server is never double-booked.
    #[test]
    fn engine_invariants(ms in arb_arrivals(80), cap in 50u64..5_000) {
        let w = Workload::from_arrivals(ms.iter().map(|&m| SimTime::from_millis(m)));
        let report = simulate(
            &w,
            FcfsScheduler::new(),
            FixedRateServer::new(Iops::new(cap as f64)),
        );
        prop_assert_eq!(report.completed(), w.len());
        let mut records: Vec<_> = report.records().to_vec();
        records.sort_by_key(|r| r.dispatched);
        for r in &records {
            prop_assert!(r.dispatched >= r.arrival);
            prop_assert!(r.completion > r.dispatched);
        }
        // Single server: service intervals never overlap.
        for pair in records.windows(2) {
            prop_assert!(
                pair[1].dispatched >= pair[0].completion,
                "server double-booked"
            );
        }
        // End time is the last completion.
        let last = records.iter().map(|r| r.completion).max().expect("non-empty");
        prop_assert_eq!(report.end_time(), last);
    }

    /// FCFS on a deterministic server is invariant to bulk time shifts.
    #[test]
    fn engine_is_shift_invariant(ms in arb_arrivals(60), shift in 1u64..10_000) {
        let w = Workload::from_arrivals(ms.iter().map(|&m| SimTime::from_millis(m)));
        let s = w.shifted(SimDuration::from_millis(shift));
        let server = FixedRateServer::new(Iops::new(250.0));
        let a = simulate(&w, FcfsScheduler::new(), server);
        let b = simulate(&s, FcfsScheduler::new(), server);
        prop_assert_eq!(a.completed(), b.completed());
        for (x, y) in a.records().iter().zip(b.records()) {
            prop_assert_eq!(
                y.response_time(),
                x.response_time(),
                "shift changed a response time"
            );
        }
    }

    /// The geometric histogram agrees with exact statistics to within its
    /// documented resolution.
    #[test]
    fn histogram_tracks_exact_stats(samples in prop::collection::vec(1u64..10_000_000, 1..200)) {
        let durations: Vec<SimDuration> =
            samples.iter().map(|&us| SimDuration::from_micros(us)).collect();
        let mut hist = LatencyHistogram::new();
        for &d in &durations {
            hist.record(d);
        }
        let exact = ResponseStats::from_times(durations.clone(), durations.len());
        prop_assert_eq!(hist.len(), durations.len() as u64);
        for q in [0.5, 0.9, 0.99] {
            let approx = hist.quantile(q).expect("non-empty").as_nanos() as f64;
            let truth = exact.percentile(q).as_nanos() as f64;
            // One geometric bucket is ~19% wide; allow a generous 25%.
            prop_assert!(
                approx >= truth * 0.99 && approx <= truth * 1.25,
                "q{q}: approx {approx} vs exact {truth}"
            );
        }
    }

    /// Bucketed fractions always sum to one over the population.
    #[test]
    fn bucket_fractions_partition(samples in prop::collection::vec(0u64..5_000, 0..100), extra in 0usize..20) {
        let durations: Vec<SimDuration> =
            samples.iter().map(|&msv| SimDuration::from_millis(msv)).collect();
        let denom = durations.len() + extra;
        let stats = ResponseStats::from_times(durations, denom);
        let edges = [
            SimDuration::from_millis(50),
            SimDuration::from_millis(100),
            SimDuration::from_millis(500),
            SimDuration::from_millis(1000),
        ];
        let f = stats.bucket_fractions(&edges);
        prop_assert_eq!(f.len(), 5);
        if denom > 0 {
            let sum: f64 = f.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "fractions sum to {sum}");
        }
        // CDF is monotone.
        let cdf = stats.cdf();
        for pair in cdf.windows(2) {
            prop_assert!(pair[0].0 < pair[1].0);
            prop_assert!(pair[0].1 <= pair[1].1);
        }
    }
}
