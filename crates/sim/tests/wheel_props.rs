//! Differential property tests: the timing-wheel [`EventQueue`] must pop
//! in exactly the order of the [`BinaryHeapEventQueue`] oracle on arbitrary
//! event sequences — interleaved pushes and pops, timestamp ties on every
//! kind, magnitudes spanning all eleven wheel levels, and pushes into the
//! past. No external property-testing crate: a deterministic splitmix-style
//! generator drives thousands of randomised rounds.

use gqos_sim::{BinaryHeapEventQueue, Event, EventKind, EventQueue, IndexedEventQueue};
use gqos_trace::SimTime;

/// Deterministic 64-bit generator (splitmix64) so failures replay exactly.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    /// A timestamp whose magnitude is itself random: raw 64-bit values
    /// shifted right by 0..64 bits, hitting every wheel level from
    /// single-nanosecond slots to the top 4-bit level.
    fn time(&mut self) -> SimTime {
        let shift = self.below(64) as u32;
        SimTime::from_nanos(self.next() >> shift)
    }

    fn kind(&mut self, servers: u64) -> EventKind {
        match self.below(3) {
            0 => EventKind::Completion {
                server: self.below(servers) as usize,
            },
            1 => EventKind::Retry {
                server: self.below(servers) as usize,
            },
            _ => EventKind::Arrival {
                index: self.below(servers) as usize,
            },
        }
    }
}

/// Drain both queues fully and compare every popped event.
fn assert_drain_matches(wheel: &mut EventQueue, oracle: &mut BinaryHeapEventQueue, round: u64) {
    loop {
        let (a, b) = (oracle.pop(), wheel.pop());
        assert_eq!(a, b, "wheel diverged from heap oracle (round {round})");
        if a.is_none() {
            break;
        }
    }
}

/// Bulk load then drain: pop order over arbitrary magnitudes and kinds.
#[test]
fn wheel_matches_heap_on_bulk_loads() {
    let mut rng = Rng(0x51ab_0001);
    for round in 0..2_000 {
        let mut wheel = EventQueue::new();
        let mut oracle = BinaryHeapEventQueue::new();
        let n = rng.below(40) + 1;
        for _ in 0..n {
            let event = Event {
                at: rng.time(),
                kind: rng.kind(4),
            };
            wheel.push(event);
            oracle.push(event);
        }
        assert_eq!(wheel.len(), oracle.len());
        assert_eq!(wheel.peek_time(), oracle.peek_time());
        assert_drain_matches(&mut wheel, &mut oracle, round);
    }
}

/// Interleaved pushes and pops, including pushes *behind* the last popped
/// timestamp (the wheel fires those immediately; so does the heap, because
/// nothing earlier can still be pending — see DESIGN.md §13).
#[test]
fn wheel_matches_heap_under_interleaving_and_past_pushes() {
    let mut rng = Rng(0x51ab_0002);
    for round in 0..2_000 {
        let mut wheel = EventQueue::new();
        let mut oracle = BinaryHeapEventQueue::new();
        for _ in 0..60 {
            if rng.below(3) == 0 {
                let (a, b) = (oracle.pop(), wheel.pop());
                assert_eq!(a, b, "pop diverged mid-stream (round {round})");
            } else {
                // Half the pushes aim near (possibly before) the most
                // recently popped time to stress the clamp path; the rest
                // are arbitrary.
                let at = if rng.below(2) == 0 {
                    SimTime::from_nanos(rng.below(1 << 12))
                } else {
                    rng.time()
                };
                let event = Event {
                    at,
                    kind: rng.kind(4),
                };
                wheel.push(event);
                oracle.push(event);
            }
            assert_eq!(wheel.peek_time(), oracle.peek_time());
        }
        assert_drain_matches(&mut wheel, &mut oracle, round);
    }
}

/// Dense timestamp ties: many events in a handful of instants, so the
/// (kind, insertion-order) tie-breaks do all the work.
#[test]
fn wheel_matches_heap_on_heavy_ties() {
    let mut rng = Rng(0x51ab_0003);
    for round in 0..2_000 {
        let mut wheel = EventQueue::new();
        let mut oracle = BinaryHeapEventQueue::new();
        for _ in 0..30 {
            let event = Event {
                at: SimTime::from_nanos(rng.below(3)),
                kind: rng.kind(3),
            };
            wheel.push(event);
            oracle.push(event);
        }
        assert_drain_matches(&mut wheel, &mut oracle, round);
    }
}

/// The engine facade on top of the wheel, driven with engine-feasible
/// schedules (unique arrival, unique completion per server) at fleet
/// scale, interleaving pushes and pops as the simulation loop does.
#[test]
fn indexed_queue_matches_heap_at_fleet_scale() {
    let mut rng = Rng(0x51ab_0004);
    for &servers in &[1usize, 2, 16, 128] {
        for round in 0..200 {
            let mut indexed = IndexedEventQueue::new(servers);
            let mut oracle = BinaryHeapEventQueue::new();
            let mut arrival_pending = false;
            let mut completion_pending = vec![false; servers];
            let mut last_popped = SimTime::ZERO;
            for _ in 0..80 {
                if rng.below(3) == 0 {
                    let (a, b) = (oracle.pop(), indexed.pop());
                    assert_eq!(a, b, "indexed diverged ({servers} servers, round {round})");
                    if let Some(e) = a {
                        last_popped = last_popped.max(e.at);
                        match e.kind {
                            EventKind::Completion { server } => completion_pending[server] = false,
                            EventKind::Arrival { .. } => arrival_pending = false,
                            EventKind::Retry { .. } => {}
                        }
                    }
                    continue;
                }
                // Engine pushes never go into the past relative to the
                // event it is currently processing.
                let at =
                    SimTime::from_nanos(last_popped.as_nanos().saturating_add(rng.below(1 << 20)));
                let kind = match rng.below(3) {
                    0 if !arrival_pending => {
                        arrival_pending = true;
                        EventKind::Arrival {
                            index: rng.below(1000) as usize,
                        }
                    }
                    1 => {
                        let s = rng.below(servers as u64) as usize;
                        if completion_pending[s] {
                            continue;
                        }
                        completion_pending[s] = true;
                        EventKind::Completion { server: s }
                    }
                    _ => EventKind::Retry {
                        server: rng.below(servers as u64) as usize,
                    },
                };
                let event = Event { at, kind };
                indexed.push(event);
                oracle.push(event);
            }
            loop {
                let (a, b) = (oracle.pop(), indexed.pop());
                assert_eq!(a, b, "drain diverged ({servers} servers, round {round})");
                if a.is_none() {
                    break;
                }
            }
        }
    }
}

/// `clear` must leave the wheel indistinguishable from a fresh queue.
#[test]
fn cleared_wheel_behaves_like_new() {
    let mut rng = Rng(0x51ab_0005);
    let mut wheel = EventQueue::new();
    for round in 0..200 {
        let mut oracle = BinaryHeapEventQueue::new();
        wheel.clear();
        for _ in 0..20 {
            let event = Event {
                at: rng.time(),
                kind: rng.kind(4),
            };
            wheel.push(event);
            oracle.push(event);
        }
        assert_drain_matches(&mut wheel, &mut oracle, round);
    }
}
