//! A memory-light latency histogram backed by [`gqos_obs::LatencySketch`].
//!
//! [`ResponseStats`](crate::ResponseStats) keeps every sample; for very long
//! runs (or on-line monitoring) [`LatencyHistogram`] records into
//! log-linear buckets instead — constant memory, with a *guaranteed*
//! one-sided relative quantile error of
//! [`gqos_obs::RELATIVE_ERROR_BOUND`] (3.125%).
//!
//! Earlier versions bucketed with floating-point `log2`/`exp2`, whose
//! rounding could place a value in a bucket whose upper bound was *below*
//! the value itself (e.g. 549 755 813 888 001 ns mapped to a bucket capped
//! at 549 755 813 888 000 ns), so quantiles could under-report. The sketch
//! buckets with pure integer arithmetic, which makes that impossible; the
//! regression test below pins the exact literals that used to go wrong.

use std::fmt;

use gqos_obs::LatencySketch;
use gqos_trace::SimDuration;

/// Fixed-memory histogram of latencies with bounded relative quantile error.
///
/// # Examples
///
/// ```
/// use gqos_sim::LatencyHistogram;
/// use gqos_trace::SimDuration;
///
/// let mut h = LatencyHistogram::new();
/// for ms in 1..=100 {
///     h.record(SimDuration::from_millis(ms));
/// }
/// let median = h.quantile(0.5).unwrap();
/// // Error is bounded by 3.125%, far tighter than the old ~19% buckets.
/// assert!(median >= SimDuration::from_millis(50));
/// assert!(median <= SimDuration::from_millis(52));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LatencyHistogram {
    sketch: LatencySketch,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimDuration) {
        self.sketch.record(latency.as_nanos());
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.sketch.count()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.sketch.is_empty()
    }

    /// Fraction of samples at or below `bound` (upper-bucket-bound
    /// semantics: a sample counts as within `bound` when its whole bucket
    /// is). Returns 0.0 when empty, matching the previous behaviour.
    pub fn fraction_within(&self, bound: SimDuration) -> f64 {
        if self.sketch.is_empty() {
            return 0.0;
        }
        self.sketch.fraction_below(bound.as_nanos())
    }

    /// The `q`-quantile (nearest-rank): the containing bucket's upper bound
    /// clamped to the exact recorded maximum, so the result never
    /// under-reports and overestimates by at most
    /// [`gqos_obs::RELATIVE_ERROR_BOUND`]. Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        if self.sketch.is_empty() {
            // Validate q even on the empty path, as before.
            assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
            return None;
        }
        Some(SimDuration::from_nanos(self.sketch.quantile(q)))
    }

    /// Merges another histogram's samples into this one. Exact: merging
    /// per-shard histograms is bit-identical to one histogram over the
    /// concatenated samples.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.sketch.merge(&other.sketch);
    }

    /// The underlying mergeable sketch.
    pub fn sketch(&self) -> &LatencySketch {
        &self.sketch
    }

    /// Consumes the histogram, returning the underlying sketch.
    pub fn into_sketch(self) -> LatencySketch {
        self.sketch
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("empty latency histogram");
        }
        write!(
            f,
            "{} samples, p50 ≤ {}, p99 ≤ {}",
            self.len(),
            self.quantile(0.5).expect("non-empty"),
            self.quantile(0.99).expect("non-empty"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.fraction_within(ms(100)), 0.0);
        assert!(h.to_string().contains("empty"));
    }

    #[test]
    fn quantile_never_under_reports_regression() {
        // These literals violated the old float bucketing: each value mapped
        // (via `ratio.log2() * 4).ceil()`) into a bucket whose rounded upper
        // bound was BELOW the value, so quantile() under-reported:
        //   549_755_813_888_001 ns -> bucket capped at 549_755_813_888_000
        //   1_099_511_627_776_002 ns -> bucket capped at 1_099_511_627_776_000
        //   924_575_386_326_617 ns -> bucket capped at 924_575_386_326_615
        for nanos in [
            549_755_813_888_001u64,
            1_099_511_627_776_002,
            924_575_386_326_617,
        ] {
            let mut h = LatencyHistogram::new();
            h.record(SimDuration::from_nanos(nanos));
            let q = h.quantile(1.0).unwrap();
            assert!(
                q.as_nanos() >= nanos,
                "quantile {} under-reports recorded {}",
                q.as_nanos(),
                nanos
            );
            // With a single sample the clamp to the tracked max is exact.
            assert_eq!(q.as_nanos(), nanos);
        }
    }

    #[test]
    fn quantile_relative_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(SimDuration::from_micros(i));
        }
        let exact = SimDuration::from_micros(5_000).as_nanos() as f64;
        let q = h.quantile(0.5).unwrap().as_nanos() as f64;
        // One-sided: never below, at most 3.125% above.
        assert!(q >= exact, "q {q} under-reports {exact}");
        assert!(
            q <= exact * (1.0 + gqos_obs::RELATIVE_ERROR_BOUND),
            "q {q}, exact {exact}"
        );
    }

    #[test]
    fn fraction_within_approximates_cdf() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(SimDuration::from_millis(i));
        }
        let f = h.fraction_within(ms(500));
        assert!((f - 0.5).abs() < 0.04, "fraction {f}");
        assert_eq!(h.fraction_within(SimDuration::from_secs(3600)), 1.0);
    }

    #[test]
    fn merge_adds_counts_and_is_exact() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for v in [1u64, 7, 100, 3_000] {
            a.record(ms(v));
            whole.record(ms(v));
        }
        for v in [2u64, 100, 50_000] {
            b.record(ms(v));
            whole.record(ms(v));
        }
        a.merge(&b);
        assert_eq!(a.len(), 7);
        // Merge of shards is bit-identical to the concatenated histogram.
        assert_eq!(a, whole);
    }

    #[test]
    fn tiny_and_huge_samples_are_exact_at_the_extremes() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_nanos(1));
        h.record(SimDuration::MAX);
        assert_eq!(h.len(), 2);
        // Sub-32ns values are lossless; the top clamps to the exact max.
        assert_eq!(h.quantile(0.0).unwrap(), SimDuration::from_nanos(1));
        assert_eq!(h.quantile(1.0).unwrap(), SimDuration::MAX);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_validates() {
        let h = LatencyHistogram::new();
        let _ = h.quantile(2.0);
    }

    #[test]
    fn quantile_extremes_match_the_sketch_exactly() {
        // q=0 must report the exact minimum, not its bucket's upper bound
        // (100 ns buckets to a cap of 101 ns), and must agree with the
        // backing sketch's own min()/max() — the two views of one run can
        // never disagree about the extremes.
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_nanos(100));
        h.record(SimDuration::from_nanos(1_000));
        assert_eq!(h.quantile(0.0).unwrap().as_nanos(), h.sketch().min());
        assert_eq!(h.quantile(0.0).unwrap(), SimDuration::from_nanos(100));
        assert_eq!(h.quantile(1.0).unwrap().as_nanos(), h.sketch().max());
        // Empty contract stays split by design: the histogram says None,
        // the sketch says 0.
        let empty = LatencyHistogram::new();
        assert_eq!(empty.quantile(0.0), None);
        assert_eq!(empty.sketch().quantile(0.0), 0);
    }

    #[test]
    fn sketch_accessors_expose_the_backing_sketch() {
        let mut h = LatencyHistogram::new();
        h.record(ms(5));
        assert_eq!(h.sketch().count(), 1);
        assert_eq!(h.into_sketch().max(), ms(5).as_nanos());
    }
}
