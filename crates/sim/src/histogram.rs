//! A memory-light geometric latency histogram.
//!
//! [`ResponseStats`](crate::ResponseStats) keeps every sample; for very long
//! runs (or on-line monitoring) [`LatencyHistogram`] records into
//! geometrically-spaced buckets instead — constant memory, bounded relative
//! quantile error.

use std::fmt;

use gqos_trace::SimDuration;

/// Number of buckets per power of two (resolution ≈ 19% per bucket).
const SUB_BUCKETS: u32 = 4;
/// Smallest resolvable latency.
const MIN_NANOS: u64 = 1_000; // 1 µs
/// log2 range covered above `MIN_NANOS` (2^40 µs ≈ 12.7 days).
const LOG_RANGE: u32 = 40;
const BUCKETS: usize = (LOG_RANGE * SUB_BUCKETS) as usize + 2;

/// Fixed-memory histogram of latencies with geometric buckets.
///
/// # Examples
///
/// ```
/// use gqos_sim::LatencyHistogram;
/// use gqos_trace::SimDuration;
///
/// let mut h = LatencyHistogram::new();
/// for ms in 1..=100 {
///     h.record(SimDuration::from_millis(ms));
/// }
/// let median = h.quantile(0.5).unwrap();
/// // Bucket resolution is ~19%, so the median is near 50 ms.
/// assert!(median >= SimDuration::from_millis(40));
/// assert!(median <= SimDuration::from_millis(70));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Bucket `0` covers `(0, MIN]`; bucket `i ≥ 1` covers
    /// `(MIN·2^((i−1)/S), MIN·2^(i/S)]` where `S = SUB_BUCKETS`.
    fn bucket_index(latency: SimDuration) -> usize {
        let nanos = latency.as_nanos();
        if nanos <= MIN_NANOS {
            return 0;
        }
        let ratio = nanos as f64 / MIN_NANOS as f64;
        let idx = (ratio.log2() * SUB_BUCKETS as f64).ceil() as usize;
        idx.clamp(1, BUCKETS - 1)
    }

    /// Upper latency bound of bucket `idx`.
    fn bucket_upper(idx: usize) -> SimDuration {
        let exp = idx as f64 / SUB_BUCKETS as f64;
        let nanos = (MIN_NANOS as f64 * exp.exp2()).round();
        SimDuration::from_nanos(nanos.min(u64::MAX as f64) as u64)
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimDuration) {
        self.counts[Self::bucket_index(latency)] += 1;
        self.total += 1;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Fraction of samples at or below `bound` (upper-bucket-bound
    /// semantics: a sample counts as within `bound` when its whole bucket
    /// is).
    pub fn fraction_within(&self, bound: SimDuration) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut within = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if Self::bucket_upper(i) <= bound {
                within += c;
            }
        }
        within as f64 / self.total as f64
    }

    /// Approximate `q`-quantile: the upper bound of the bucket where the
    /// cumulative count crosses `q`. Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Self::bucket_upper(i));
            }
        }
        Some(Self::bucket_upper(BUCKETS - 1))
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("empty latency histogram");
        }
        write!(
            f,
            "{} samples, p50 ≤ {}, p99 ≤ {}",
            self.total,
            self.quantile(0.5).expect("non-empty"),
            self.quantile(0.99).expect("non-empty"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.fraction_within(ms(100)), 0.0);
        assert!(h.to_string().contains("empty"));
    }

    #[test]
    fn bucket_bounds_are_monotonic() {
        let mut prev = SimDuration::ZERO;
        for i in 0..BUCKETS {
            let upper = LatencyHistogram::bucket_upper(i);
            assert!(upper > prev, "bucket {i}: {upper} <= {prev}");
            prev = upper;
        }
    }

    #[test]
    fn recorded_sample_falls_below_its_bucket_upper() {
        for nanos in [1u64, 999, 1_000, 1_500, 10_000, 123_456_789, 5_000_000_000] {
            let d = SimDuration::from_nanos(nanos);
            let idx = LatencyHistogram::bucket_index(d);
            assert!(
                LatencyHistogram::bucket_upper(idx) >= d,
                "sample {nanos}ns above bucket upper"
            );
            if idx > 0 {
                assert!(
                    LatencyHistogram::bucket_upper(idx - 1) <= d,
                    "sample {nanos}ns below previous bucket upper"
                );
            }
        }
    }

    #[test]
    fn quantile_relative_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(SimDuration::from_micros(i));
        }
        let q = h.quantile(0.5).unwrap().as_nanos() as f64;
        let exact = SimDuration::from_micros(5_000).as_nanos() as f64;
        assert!((q / exact - 1.0).abs() < 0.3, "q {q}, exact {exact}");
    }

    #[test]
    fn fraction_within_approximates_cdf() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(SimDuration::from_millis(i));
        }
        let f = h.fraction_within(ms(500));
        assert!((f - 0.5).abs() < 0.1, "fraction {f}");
        assert_eq!(h.fraction_within(SimDuration::from_secs(3600)), 1.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(ms(1));
        b.record(ms(100));
        b.record(ms(100));
        a.merge(&b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn tiny_and_huge_samples_are_clamped() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_nanos(1));
        h.record(SimDuration::MAX);
        assert_eq!(h.len(), 2);
        assert!(h.quantile(0.0).unwrap() <= SimDuration::from_micros(1));
        assert!(h.quantile(1.0).unwrap() >= SimDuration::from_secs(1000));
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_validates() {
        let h = LatencyHistogram::new();
        let _ = h.quantile(2.0);
    }
}
