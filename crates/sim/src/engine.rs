//! The discrete-event simulation driver.

use gqos_obs::TraceHandle;
use gqos_trace::{SimDuration, Workload};

use crate::metrics::{CompletionRecord, RunReport};
use crate::scheduler::Scheduler;
use crate::server::ServiceModel;
use crate::streaming::StreamingSimulation;

/// A configured simulation: one workload, one scheduler, one or more
/// servers.
///
/// The engine feeds the workload's requests to the scheduler in arrival
/// order and polls the scheduler whenever a server is free. It runs to
/// quiescence: every request is either completed or left undispatched by the
/// scheduler (a drop).
///
/// # Examples
///
/// ```
/// use gqos_sim::{FcfsScheduler, FixedRateServer, Simulation};
/// use gqos_trace::{Iops, SimDuration, SimTime, Workload};
///
/// let workload = Workload::from_arrivals([SimTime::ZERO, SimTime::ZERO]);
/// let report = Simulation::new(&workload, FcfsScheduler::new())
///     .server(FixedRateServer::new(Iops::new(100.0)))
///     .run();
/// assert_eq!(report.completed(), 2);
/// // Second request waits for the first: 10 ms + 10 ms.
/// assert_eq!(report.stats().max(), Some(SimDuration::from_millis(20)));
/// ```
pub struct Simulation<'w, S> {
    workload: &'w Workload,
    scheduler: S,
    servers: Vec<Box<dyn ServiceModel>>,
    trace: TraceHandle,
    deadline: Option<SimDuration>,
}

impl<S> std::fmt::Debug for Simulation<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("requests", &self.workload.len())
            .field("servers", &self.servers.len())
            .finish_non_exhaustive()
    }
}

impl<'w, S: Scheduler> Simulation<'w, S> {
    /// Creates a simulation of `workload` under `scheduler` with no servers
    /// yet; add at least one with [`server`](Simulation::server).
    pub fn new(workload: &'w Workload, scheduler: S) -> Self {
        Simulation {
            workload,
            scheduler,
            servers: Vec::new(),
            trace: TraceHandle::disabled(),
            deadline: None,
        }
    }

    /// Attaches a trace handle; the engine emits `Arrival` and `Completed`
    /// events into it (schedulers emit their own admit/divert/dispatch
    /// events through their own handles). A disabled handle — the default —
    /// costs one untaken branch per event, so untraced runs are unchanged.
    pub fn trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the deadline used for the per-completion `deadline_met` verdict
    /// in trace events. Without one, completions carry no verdict.
    pub fn deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Adds a server with the given service model. Servers are identified by
    /// the order they are added ([`ServerId::new(0)`](ServerId::new) first).
    pub fn server<M: ServiceModel + 'static>(mut self, model: M) -> Self {
        self.servers.push(Box::new(model));
        self
    }

    /// Runs the simulation to quiescence and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if no server was added, or if the scheduler requests a retry
    /// at a non-future instant.
    pub fn run(self) -> RunReport {
        let total = self.workload.len();
        self.run_with_buffer(Vec::with_capacity(total))
    }

    /// Like [`run`](Simulation::run), but records completions into
    /// `records` (cleared first), so sweeps that simulate many workloads
    /// can recycle one allocation via
    /// [`RunReport::into_records`]:
    ///
    /// ```
    /// use gqos_sim::{FcfsScheduler, FixedRateServer, Simulation};
    /// use gqos_trace::{Iops, SimTime, Workload};
    ///
    /// let mut buffer = Vec::new();
    /// for arrivals in [[SimTime::ZERO; 2], [SimTime::from_secs(1); 2]] {
    ///     let w = Workload::from_arrivals(arrivals);
    ///     let report = Simulation::new(&w, FcfsScheduler::new())
    ///         .server(FixedRateServer::new(Iops::new(100.0)))
    ///         .run_with_buffer(buffer);
    ///     assert_eq!(report.completed(), 2);
    ///     buffer = report.into_records();
    /// }
    /// ```
    ///
    /// The batch run is implemented on top of
    /// [`StreamingSimulation`](crate::StreamingSimulation) — offering every
    /// request of the workload in order — so batch and streamed runs of the
    /// same workload are bit-identical by construction.
    ///
    /// # Panics
    ///
    /// Panics if no server was added, or if the scheduler requests a retry
    /// at a non-future instant.
    pub fn run_with_buffer(self, mut records: Vec<CompletionRecord>) -> RunReport {
        assert!(
            !self.servers.is_empty(),
            "simulation needs at least one server"
        );
        records.clear();
        records.reserve(self.workload.len());
        let mut streaming = StreamingSimulation::from_parts(
            self.scheduler,
            self.servers,
            self.trace,
            self.deadline,
            records,
        );
        for &request in self.workload.requests() {
            streaming.offer(request);
        }
        streaming.into_report()
    }
}

/// Convenience wrapper: simulates `workload` under `scheduler` on a single
/// server with the given service model.
///
/// # Examples
///
/// ```
/// use gqos_sim::{simulate, FcfsScheduler, FixedRateServer};
/// use gqos_trace::{Iops, SimTime, Workload};
///
/// let workload = Workload::from_arrivals([SimTime::ZERO]);
/// let report = simulate(&workload, FcfsScheduler::new(),
///     FixedRateServer::new(Iops::new(1000.0)));
/// assert_eq!(report.completed(), 1);
/// ```
pub fn simulate<S, M>(workload: &Workload, scheduler: S, model: M) -> RunReport
where
    S: Scheduler,
    M: ServiceModel + 'static,
{
    Simulation::new(workload, scheduler).server(model).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{Dispatch, FcfsScheduler, ServiceClass};
    use crate::server::{FixedRateServer, ServerId};
    use gqos_trace::{Iops, Request, SimTime};

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn dur_ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn fcfs_spaced_arrivals_have_pure_service_latency() {
        // 100 IOPS -> 10 ms service; arrivals 50 ms apart never queue.
        let w = Workload::from_arrivals([ms(0), ms(50), ms(100)]);
        let report = simulate(
            &w,
            FcfsScheduler::new(),
            FixedRateServer::new(Iops::new(100.0)),
        );
        assert_eq!(report.completed(), 3);
        for r in report.records() {
            assert_eq!(r.response_time(), dur_ms(10));
            assert_eq!(r.queueing_time(), SimDuration::ZERO);
        }
    }

    #[test]
    fn fcfs_burst_queues_linearly() {
        // Three simultaneous arrivals at 100 IOPS: completions at 10/20/30 ms.
        let w = Workload::from_arrivals([ms(0), ms(0), ms(0)]);
        let report = simulate(
            &w,
            FcfsScheduler::new(),
            FixedRateServer::new(Iops::new(100.0)),
        );
        let mut resp: Vec<_> = report.records().iter().map(|r| r.response_time()).collect();
        resp.sort();
        assert_eq!(resp, vec![dur_ms(10), dur_ms(20), dur_ms(30)]);
        assert_eq!(report.end_time(), ms(30));
    }

    #[test]
    fn arrival_at_completion_instant_sees_free_server() {
        // Service 10 ms; second arrival exactly at first completion: no wait.
        let w = Workload::from_arrivals([ms(0), ms(10)]);
        let report = simulate(
            &w,
            FcfsScheduler::new(),
            FixedRateServer::new(Iops::new(100.0)),
        );
        for r in report.records() {
            assert_eq!(r.queueing_time(), SimDuration::ZERO);
        }
    }

    #[test]
    fn empty_workload_finishes_immediately() {
        let w = Workload::new();
        let report = simulate(
            &w,
            FcfsScheduler::new(),
            FixedRateServer::new(Iops::new(1.0)),
        );
        assert_eq!(report.completed(), 0);
        assert_eq!(report.total_requests(), 0);
        assert_eq!(report.end_time(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn requires_a_server() {
        let w = Workload::new();
        let _ = Simulation::new(&w, FcfsScheduler::new()).run();
    }

    /// A scheduler that drops every second request (never dispatches it).
    #[derive(Default)]
    struct DropHalf {
        queue: std::collections::VecDeque<Request>,
        seen: usize,
    }

    impl Scheduler for DropHalf {
        fn on_arrival(&mut self, request: Request, _now: SimTime) {
            self.seen += 1;
            if self.seen % 2 == 1 {
                self.queue.push_back(request);
            }
        }
        fn next_for(&mut self, _server: ServerId, _now: SimTime) -> Dispatch {
            match self.queue.pop_front() {
                Some(r) => Dispatch::Serve(r, ServiceClass::PRIMARY),
                None => Dispatch::Idle,
            }
        }
        fn pending(&self) -> usize {
            self.queue.len()
        }
    }

    #[test]
    fn dropped_requests_are_reported_unfinished() {
        let w = Workload::from_arrivals([ms(0), ms(1), ms(2), ms(3)]);
        let report = simulate(
            &w,
            DropHalf::default(),
            FixedRateServer::new(Iops::new(1000.0)),
        );
        assert_eq!(report.completed(), 2);
        assert_eq!(report.unfinished(), 2);
    }

    /// A non-work-conserving scheduler: releases each request only at a
    /// fixed eligibility time after arrival.
    struct DelayRelease {
        queue: std::collections::VecDeque<Request>,
        hold: SimDuration,
    }

    impl Scheduler for DelayRelease {
        fn on_arrival(&mut self, request: Request, _now: SimTime) {
            self.queue.push_back(request);
        }
        fn next_for(&mut self, _server: ServerId, now: SimTime) -> Dispatch {
            match self.queue.front() {
                Some(r) => {
                    let eligible = r.arrival + self.hold;
                    if eligible <= now {
                        let r = self.queue.pop_front().expect("non-empty");
                        Dispatch::Serve(r, ServiceClass::PRIMARY)
                    } else {
                        Dispatch::After(eligible)
                    }
                }
                None => Dispatch::Idle,
            }
        }
        fn pending(&self) -> usize {
            self.queue.len()
        }
    }

    #[test]
    fn retry_events_respect_eligibility_times() {
        let w = Workload::from_arrivals([ms(0), ms(1)]);
        let report = simulate(
            &w,
            DelayRelease {
                queue: Default::default(),
                hold: dur_ms(20),
            },
            FixedRateServer::new(Iops::new(1000.0)),
        );
        assert_eq!(report.completed(), 2);
        for r in report.records() {
            assert_eq!(r.dispatched, r.arrival + dur_ms(20));
        }
    }

    #[test]
    fn two_servers_drain_in_parallel() {
        // Two servers at 100 IOPS each; two simultaneous requests finish
        // simultaneously — FCFS hands one to each idle server.
        let w = Workload::from_arrivals([ms(0), ms(0)]);
        let report = Simulation::new(&w, FcfsScheduler::new())
            .server(FixedRateServer::new(Iops::new(100.0)))
            .server(FixedRateServer::new(Iops::new(100.0)))
            .run();
        assert_eq!(report.completed(), 2);
        for r in report.records() {
            assert_eq!(r.response_time(), dur_ms(10));
        }
    }

    #[test]
    fn report_matches_mm1_queueing_growth() {
        // Deterministic arrivals faster than service: backlog grows, and the
        // k-th request's response is k * (service - gap) + service-ish.
        // 1 ms apart, 2 ms service: request k waits ~k ms.
        let w = Workload::from_arrivals((0..10).map(ms));
        let report = simulate(
            &w,
            FcfsScheduler::new(),
            FixedRateServer::new(Iops::new(500.0)),
        );
        let last = report
            .records()
            .iter()
            .max_by_key(|r| r.completion)
            .expect("non-empty");
        // Last request arrives at 9 ms; completions at 2,4,..,20 ms.
        assert_eq!(last.completion, ms(20));
        assert_eq!(last.response_time(), dur_ms(11));
    }
}
