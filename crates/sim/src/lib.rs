//! # gqos-sim — deterministic storage-server simulation
//!
//! The discrete-event substrate of the `gqos` workspace (the stand-in for
//! the DiskSim-based evaluation in the ICDCS 2009 paper). It provides:
//!
//! - [`Simulation`] / [`simulate`] — an event-driven engine feeding a
//!   [`Workload`](gqos_trace::Workload) to a [`Scheduler`] over one or more
//!   servers;
//! - [`ServiceModel`] — pluggable service-time models, with the paper's
//!   constant-capacity [`FixedRateServer`] built in (the mechanical disk
//!   model lives in `gqos-disk`);
//! - [`RunReport`] / [`ResponseStats`] — per-request latency records,
//!   response-time CDFs, percentiles, and the paper's bucketed histograms;
//! - [`LatencyHistogram`] — a constant-memory alternative recorder;
//! - [`FcfsScheduler`] — the unshaped baseline policy;
//! - [`closed_loop`] — a closed, think-time-driven population driver
//!   (the self-throttling counterpart of the open trace replay).
//!
//! Simulations are fully deterministic: ties in event time are broken by a
//! fixed event-kind order (completions before arrivals) and insertion order.
//!
//! # Examples
//!
//! A burst of ten requests against a server provisioned at the mean rate —
//! the queue builds and response times degrade linearly:
//!
//! ```
//! use gqos_sim::{simulate, FcfsScheduler, FixedRateServer};
//! use gqos_trace::{Iops, SimDuration, SimTime, Workload};
//!
//! let burst = Workload::from_arrivals(vec![SimTime::ZERO; 10]);
//! let report = simulate(&burst, FcfsScheduler::new(),
//!     FixedRateServer::new(Iops::new(100.0)));
//! let stats = report.stats();
//! assert_eq!(stats.max(), Some(SimDuration::from_millis(100)));
//! assert_eq!(stats.fraction_within(SimDuration::from_millis(50)), 0.5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod closed;
mod engine;
mod event;
mod histogram;
mod metrics;
mod scheduler;
mod server;
mod streaming;

pub use closed::{closed_loop, ClosedLoopConfig};
pub use engine::{simulate, Simulation};
pub use event::{BinaryHeapEventQueue, Event, EventKind, EventQueue, IndexedEventQueue};
pub use histogram::LatencyHistogram;
pub use metrics::{CompletionRecord, ResponseStats, RunReport};
pub use scheduler::{Dispatch, FcfsScheduler, Scheduler, ServiceClass};
pub use server::{CapacityModulation, FixedRateServer, ModulatedServer, ServerId, ServiceModel};
pub use streaming::StreamingSimulation;

// Re-export the observability vocabulary so downstream crates can attach
// traces and read sketches without naming gqos-obs directly.
pub use gqos_obs::{
    nearest_rank, EventCounts, FileSink, HeatmapRow, LatencySketch, LongTermStore, MemorySink,
    NullSink, OutOfOrderInstant, PolicyTag, ReplayedRun, RetentionConfig, SeriesPoint, TierConfig,
    TraceEvent, TraceHandle, TraceSink, WindowSnapshot, WindowedSketch,
};
