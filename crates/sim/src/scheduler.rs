//! The scheduler interface the simulation engine drives, and a reference
//! FCFS implementation.

use std::collections::VecDeque;
use std::fmt;

use gqos_obs::{PolicyTag, TraceEvent, TraceHandle};
use gqos_trace::{Request, SimTime};

use crate::server::ServerId;

/// Service class a request is served under.
///
/// The paper's two-class decomposition uses [`PRIMARY`](ServiceClass::PRIMARY)
/// (queue `Q1`, guaranteed response time) and
/// [`OVERFLOW`](ServiceClass::OVERFLOW) (queue `Q2`, best effort); cascaded
/// decompositions may use further classes.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Default, Debug)]
pub struct ServiceClass(u8);

impl ServiceClass {
    /// The guaranteed class (`Q1`).
    pub const PRIMARY: ServiceClass = ServiceClass(0);
    /// The best-effort overflow class (`Q2`).
    pub const OVERFLOW: ServiceClass = ServiceClass(1);

    /// Creates a class from its index.
    pub const fn new(index: u8) -> Self {
        ServiceClass(index)
    }

    /// The class index.
    pub const fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for ServiceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ServiceClass::PRIMARY => f.write_str("primary"),
            ServiceClass::OVERFLOW => f.write_str("overflow"),
            ServiceClass(n) => write!(f, "class{n}"),
        }
    }
}

/// What a scheduler tells an idle server to do.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum Dispatch {
    /// Serve this request under this class.
    Serve(Request, ServiceClass),
    /// Nothing is eligible before the given instant; poll again then.
    /// Used by non-work-conserving schedulers (e.g. token-bucket shaping).
    After(SimTime),
    /// Nothing is pending for this server.
    Idle,
}

/// A QoS scheduler, driven by the simulation engine.
///
/// The engine calls [`on_arrival`] for every request in timestamp order and
/// [`next_for`] whenever a server becomes free (and once at start / on each
/// arrival while servers idle). [`on_completion`] fires when a dispatched
/// request finishes.
///
/// Multi-server schedulers (the paper's *Split* policy) route different
/// queues to different [`ServerId`]s; single-server schedulers ignore the id.
///
/// [`on_arrival`]: Scheduler::on_arrival
/// [`next_for`]: Scheduler::next_for
/// [`on_completion`]: Scheduler::on_completion
pub trait Scheduler {
    /// Accepts an arriving request.
    fn on_arrival(&mut self, request: Request, now: SimTime);

    /// Chooses the next request for the given (now idle) server.
    fn next_for(&mut self, server: ServerId, now: SimTime) -> Dispatch;

    /// Observes a completion on `server`. Default: no-op.
    fn on_completion(&mut self, request: &Request, class: ServiceClass, now: SimTime) {
        let _ = (request, class, now);
    }

    /// Number of requests queued (not yet dispatched).
    fn pending(&self) -> usize;
}

// Boxed schedulers forward, so policy choices can be made at runtime (the
// streaming ingestion layer picks a recombination policy per tenant).
impl<T: Scheduler + ?Sized> Scheduler for Box<T> {
    fn on_arrival(&mut self, request: Request, now: SimTime) {
        (**self).on_arrival(request, now);
    }

    fn next_for(&mut self, server: ServerId, now: SimTime) -> Dispatch {
        (**self).next_for(server, now)
    }

    fn on_completion(&mut self, request: &Request, class: ServiceClass, now: SimTime) {
        (**self).on_completion(request, class, now);
    }

    fn pending(&self) -> usize {
        (**self).pending()
    }
}

/// Plain FCFS over a single queue — the paper's unshaped baseline: no
/// decomposition, every request in one class, served in arrival order.
///
/// # Examples
///
/// ```
/// use gqos_sim::{Dispatch, FcfsScheduler, Scheduler, ServerId};
/// use gqos_trace::{Request, SimTime};
///
/// let mut s = FcfsScheduler::new();
/// s.on_arrival(Request::at(SimTime::ZERO), SimTime::ZERO);
/// assert!(matches!(s.next_for(ServerId::new(0), SimTime::ZERO), Dispatch::Serve(..)));
/// assert!(matches!(s.next_for(ServerId::new(0), SimTime::ZERO), Dispatch::Idle));
/// ```
#[derive(Clone, Default, Debug)]
pub struct FcfsScheduler {
    queue: VecDeque<Request>,
    trace: TraceHandle,
}

impl FcfsScheduler {
    /// Creates an empty FCFS scheduler.
    pub fn new() -> Self {
        FcfsScheduler::default()
    }

    /// Creates an FCFS scheduler that emits `Dispatched` events (policy tag
    /// `fcfs`) into `trace`.
    pub fn with_trace(trace: TraceHandle) -> Self {
        FcfsScheduler {
            queue: VecDeque::new(),
            trace,
        }
    }
}

impl Scheduler for FcfsScheduler {
    fn on_arrival(&mut self, request: Request, _now: SimTime) {
        self.queue.push_back(request);
    }

    fn next_for(&mut self, server: ServerId, now: SimTime) -> Dispatch {
        match self.queue.pop_front() {
            Some(r) => {
                self.trace.emit_with(|| TraceEvent::Dispatched {
                    at: now,
                    id: r.id.index(),
                    class: ServiceClass::PRIMARY.index(),
                    server: server.index(),
                    policy: PolicyTag::Fcfs,
                    slack: None,
                });
                Dispatch::Serve(r, ServiceClass::PRIMARY)
            }
            None => Dispatch::Idle,
        }
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_constants_and_display() {
        assert_eq!(ServiceClass::PRIMARY.index(), 0);
        assert_eq!(ServiceClass::OVERFLOW.index(), 1);
        assert_eq!(ServiceClass::PRIMARY.to_string(), "primary");
        assert_eq!(ServiceClass::OVERFLOW.to_string(), "overflow");
        assert_eq!(ServiceClass::new(3).to_string(), "class3");
    }

    #[test]
    fn fcfs_serves_in_arrival_order() {
        let mut s = FcfsScheduler::new();
        let r1 = Request::at(SimTime::from_millis(1));
        let r2 = Request::at(SimTime::from_millis(2));
        s.on_arrival(r1, r1.arrival);
        s.on_arrival(r2, r2.arrival);
        assert_eq!(s.pending(), 2);
        match s.next_for(ServerId::new(0), SimTime::from_millis(2)) {
            Dispatch::Serve(r, class) => {
                assert_eq!(r.arrival, r1.arrival);
                assert_eq!(class, ServiceClass::PRIMARY);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn fcfs_idle_when_empty() {
        let mut s = FcfsScheduler::new();
        assert_eq!(s.pending(), 0);
        assert_eq!(s.next_for(ServerId::new(0), SimTime::ZERO), Dispatch::Idle);
    }

    #[test]
    fn default_on_completion_is_noop() {
        let mut s = FcfsScheduler::new();
        let r = Request::at(SimTime::ZERO);
        s.on_completion(&r, ServiceClass::PRIMARY, SimTime::from_secs(1));
        assert_eq!(s.pending(), 0);
    }
}
