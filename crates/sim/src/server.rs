//! Service models: how long a server takes to serve one request.

use std::fmt;

use gqos_trace::{Iops, Request, SimDuration, SimTime};

/// Identifier of a server within one simulation.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Default, Debug)]
pub struct ServerId(usize);

impl ServerId {
    /// Creates a server id from its index.
    pub const fn new(index: usize) -> Self {
        ServerId(index)
    }

    /// The server's index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "server{}", self.0)
    }
}

/// Computes the service time of each dispatched request.
///
/// Implementations may keep state (e.g. a disk head position), which is why
/// [`service_time`] takes `&mut self`.
///
/// [`service_time`]: ServiceModel::service_time
pub trait ServiceModel {
    /// Time to serve `request` when dispatched at `now`.
    fn service_time(&mut self, request: &Request, now: SimTime) -> SimDuration;

    /// The model's nominal throughput in IOPS, if it has one. Used for
    /// reporting only.
    fn nominal_rate(&self) -> Option<Iops> {
        None
    }
}

impl<M: ServiceModel + ?Sized> ServiceModel for Box<M> {
    fn service_time(&mut self, request: &Request, now: SimTime) -> SimDuration {
        (**self).service_time(request, now)
    }

    fn nominal_rate(&self) -> Option<Iops> {
        (**self).nominal_rate()
    }
}

/// The paper's service model: a server of constant capacity `C` IOPS, i.e.
/// a deterministic service time of `1/C` per request.
///
/// # Examples
///
/// ```
/// use gqos_sim::{FixedRateServer, ServiceModel};
/// use gqos_trace::{Iops, Request, SimDuration, SimTime};
///
/// let mut server = FixedRateServer::new(Iops::new(1000.0));
/// let r = Request::at(SimTime::ZERO);
/// assert_eq!(server.service_time(&r, SimTime::ZERO), SimDuration::from_millis(1));
/// ```
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct FixedRateServer {
    rate: Iops,
    per_request: SimDuration,
}

impl FixedRateServer {
    /// Creates a server of the given capacity.
    pub fn new(rate: Iops) -> Self {
        FixedRateServer {
            rate,
            per_request: rate.service_time(),
        }
    }

    /// The configured capacity.
    pub fn rate(&self) -> Iops {
        self.rate
    }
}

impl ServiceModel for FixedRateServer {
    fn service_time(&mut self, _request: &Request, _now: SimTime) -> SimDuration {
        self.per_request
    }

    fn nominal_rate(&self) -> Option<Iops> {
        Some(self.rate)
    }
}

/// A time-varying distortion of a server's service rate — the hook a fault
/// schedule (see the `gqos-faults` crate) uses to turn a constant-capacity
/// server into an effective-rate step function `C_eff(t)`.
///
/// Implementations map "`work` nanoseconds of full-rate service dispatched
/// at `start`" to the wall-clock instant it finishes.
pub trait CapacityModulation: fmt::Debug {
    /// When `work` full-rate service time dispatched at `start` completes.
    /// Must return an instant at or after `start`.
    fn finish_time(&self, start: SimTime, work: SimDuration) -> SimTime;

    /// `true` when the modulation never changes anything. Identity
    /// modulations are bypassed entirely, guaranteeing byte-identical
    /// outputs to an unwrapped server.
    fn is_identity(&self) -> bool {
        false
    }
}

/// A service model whose underlying server misbehaves according to a
/// [`CapacityModulation`]: each request's nominal service time is stretched
/// by the modulation's effective-rate function at the dispatch instant.
///
/// # Examples
///
/// ```
/// use gqos_sim::{CapacityModulation, FixedRateServer, ModulatedServer, ServiceModel};
/// use gqos_trace::{Iops, Request, SimDuration, SimTime};
///
/// #[derive(Debug)]
/// struct HalfSpeed;
/// impl CapacityModulation for HalfSpeed {
///     fn finish_time(&self, start: SimTime, work: SimDuration) -> SimTime {
///         start + work + work // every request takes twice as long
///     }
/// }
///
/// let mut server = ModulatedServer::new(FixedRateServer::new(Iops::new(100.0)), HalfSpeed);
/// let r = Request::at(SimTime::ZERO);
/// assert_eq!(server.service_time(&r, SimTime::ZERO), SimDuration::from_millis(20));
/// ```
#[derive(Debug)]
pub struct ModulatedServer<M> {
    inner: M,
    modulation: Box<dyn CapacityModulation>,
}

impl<M: ServiceModel> ModulatedServer<M> {
    /// Wraps `inner` under `modulation`.
    pub fn new<C: CapacityModulation + 'static>(inner: M, modulation: C) -> Self {
        ModulatedServer {
            inner,
            modulation: Box::new(modulation),
        }
    }

    /// The wrapped service model.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: ServiceModel> ServiceModel for ModulatedServer<M> {
    fn service_time(&mut self, request: &Request, now: SimTime) -> SimDuration {
        let nominal = self.inner.service_time(request, now);
        if self.modulation.is_identity() {
            // Exact pass-through: no float arithmetic may touch the
            // fault-free path.
            return nominal;
        }
        let finish = self.modulation.finish_time(now, nominal);
        debug_assert!(finish >= now, "modulation finished before dispatch");
        finish.saturating_duration_since(now)
    }

    fn nominal_rate(&self) -> Option<Iops> {
        self.inner.nominal_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_id_round_trips() {
        let id = ServerId::new(3);
        assert_eq!(id.index(), 3);
        assert_eq!(id.to_string(), "server3");
    }

    #[test]
    fn fixed_rate_is_deterministic() {
        let mut s = FixedRateServer::new(Iops::new(250.0));
        let r = Request::at(SimTime::ZERO);
        let t1 = s.service_time(&r, SimTime::ZERO);
        let t2 = s.service_time(&r, SimTime::from_secs(100));
        assert_eq!(t1, t2);
        assert_eq!(t1, SimDuration::from_millis(4));
    }

    #[test]
    fn nominal_rate_reported() {
        let s = FixedRateServer::new(Iops::new(100.0));
        assert_eq!(s.nominal_rate().unwrap().get(), 100.0);
        assert_eq!(s.rate().get(), 100.0);
    }

    #[derive(Debug)]
    struct DoubleTime;

    impl CapacityModulation for DoubleTime {
        fn finish_time(&self, start: SimTime, work: SimDuration) -> SimTime {
            start + work + work
        }
    }

    #[derive(Debug)]
    struct ExplicitIdentity;

    impl CapacityModulation for ExplicitIdentity {
        fn finish_time(&self, start: SimTime, work: SimDuration) -> SimTime {
            start + work
        }

        fn is_identity(&self) -> bool {
            true
        }
    }

    #[test]
    fn modulated_server_stretches_service() {
        let mut s = ModulatedServer::new(FixedRateServer::new(Iops::new(100.0)), DoubleTime);
        let r = Request::at(SimTime::ZERO);
        assert_eq!(
            s.service_time(&r, SimTime::from_secs(3)),
            SimDuration::from_millis(20)
        );
        assert_eq!(s.nominal_rate(), Some(Iops::new(100.0)));
        assert_eq!(s.inner().rate(), Iops::new(100.0));
    }

    #[test]
    fn identity_modulation_is_bypassed() {
        let mut plain = FixedRateServer::new(Iops::new(333.0));
        let mut wrapped = ModulatedServer::new(plain, ExplicitIdentity);
        let r = Request::at(SimTime::ZERO);
        for t in [0u64, 1, 7, 1_000_000] {
            let now = SimTime::from_nanos(t);
            assert_eq!(
                wrapped.service_time(&r, now),
                plain.service_time(&r, now),
                "identity wrapper diverged at t={t}"
            );
        }
    }

    #[test]
    fn boxed_model_delegates() {
        let mut s: Box<dyn ServiceModel> = Box::new(FixedRateServer::new(Iops::new(500.0)));
        let r = Request::at(SimTime::ZERO);
        assert_eq!(
            s.service_time(&r, SimTime::ZERO),
            SimDuration::from_millis(2)
        );
        assert!(s.nominal_rate().is_some());
    }
}
