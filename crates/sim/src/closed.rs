//! Closed-loop simulation: a fixed population of clients with think time.
//!
//! The trace-driven engine in [`Simulation`](crate::Simulation) replays an
//! *open* arrival stream — arrivals do not react to service. Real storage
//! benchmarks (and many applications) are *closed*: each of `N` clients
//! keeps one request outstanding, thinking for a while between completion
//! and the next issue. Closed loops self-throttle — response times feed
//! back into the arrival rate — which is exactly the behaviour open-loop
//! QoS analysis must not assume it has (the paper's arrival streams are
//! open; this driver exists to study the difference).

use gqos_trace::{Request, RequestId, SimDuration, SimTime};

use crate::event::{Event, EventKind, EventQueue};
use crate::metrics::{CompletionRecord, RunReport};
use crate::scheduler::{Dispatch, Scheduler, ServiceClass};
use crate::server::{ServerId, ServiceModel};

/// Configuration of a closed-loop run.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct ClosedLoopConfig {
    /// Number of clients, each with at most one request outstanding.
    pub clients: usize,
    /// Pause between a client's completion and its next issue.
    pub think_time: SimDuration,
    /// Clients stop issuing at this instant (outstanding requests finish).
    pub duration: SimDuration,
}

impl ClosedLoopConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `clients` is zero or `duration` is zero.
    pub fn new(clients: usize, think_time: SimDuration, duration: SimDuration) -> Self {
        assert!(clients > 0, "at least one client is required");
        assert!(!duration.is_zero(), "duration must be positive");
        ClosedLoopConfig {
            clients,
            think_time,
            duration,
        }
    }
}

/// Runs a closed loop: `factory(client, issue_time)` materialises each
/// request (its `id` and `arrival` are overwritten by the driver).
///
/// Horizon accounting: clients issue strictly before `config.duration`
/// (an arrival at exactly the horizon retires), outstanding requests
/// run to completion, and the report's `end_time` is the instant of the
/// last completion — so `completed / end_time` is a true throughput
/// over the span work actually occupied.
///
/// # Panics
///
/// Panics if the scheduler requests a retry at a non-future instant
/// (same contract as [`Simulation`](crate::Simulation)).
///
/// # Examples
///
/// ```
/// use gqos_sim::{closed_loop, ClosedLoopConfig, FcfsScheduler, FixedRateServer};
/// use gqos_trace::{Iops, Request, SimDuration};
///
/// // 4 clients, 10 ms service, 90 ms think: each cycle is ~100 ms, so the
/// // loop self-throttles to ~40 IOPS on a 100 IOPS server.
/// let config = ClosedLoopConfig::new(
///     4,
///     SimDuration::from_millis(90),
///     SimDuration::from_secs(10),
/// );
/// let report = closed_loop(
///     config,
///     FcfsScheduler::new(),
///     FixedRateServer::new(Iops::new(100.0)),
///     |_, t| Request::at(t),
/// );
/// let rate = report.completed() as f64 / 10.0;
/// assert!((rate - 40.0).abs() < 5.0, "rate {rate}");
/// ```
pub fn closed_loop<S, M, F>(
    config: ClosedLoopConfig,
    mut scheduler: S,
    model: M,
    mut factory: F,
) -> RunReport
where
    S: Scheduler,
    M: ServiceModel + 'static,
    F: FnMut(usize, SimTime) -> Request,
{
    let mut servers: Vec<Box<dyn ServiceModel>> = vec![Box::new(model)];
    let mut queue = EventQueue::new();
    let mut in_flight: Vec<Option<(Request, ServiceClass, SimTime)>> = vec![None];
    let mut records: Vec<CompletionRecord> = Vec::new();
    // Which client issued each request, indexed by request id.
    let mut owners: Vec<usize> = Vec::new();
    let mut issued = 0u64;
    let mut end_time = SimTime::ZERO;
    let horizon = SimTime::ZERO + config.duration;

    for client in 0..config.clients {
        queue.push(Event {
            at: SimTime::ZERO,
            kind: EventKind::Arrival { index: client },
        });
    }

    // Horizon convention (pinned by `horizon_accounting_*` tests): clients
    // issue strictly before `horizon` — an arrival at exactly `horizon`
    // retires — and `end_time` is the instant of the **last completion**.
    // Retiring arrivals (scheduled think-time after the final completion)
    // and stale retries are bookkeeping events, not work: letting them
    // stretch `end_time` would divide horizon-bounded completions by a
    // span no request ever occupied, deflating every derived throughput.
    while let Some(Event { at: now, kind }) = queue.pop() {
        match kind {
            EventKind::Arrival { index: client } => {
                if now >= horizon {
                    continue; // this client retires
                }
                let request = factory(client, now)
                    .with_id(RequestId::new(issued))
                    .with_arrival(now);
                owners.push(client);
                issued += 1;
                scheduler.on_arrival(request, now);
                for server in 0..servers.len() {
                    if in_flight[server].is_none() {
                        poll(
                            &mut scheduler,
                            &mut servers,
                            &mut in_flight,
                            &mut queue,
                            server,
                            now,
                        );
                    }
                }
            }
            EventKind::Completion { server } => {
                end_time = end_time.max(now);
                let (request, class, dispatched) = in_flight[server]
                    .take()
                    .expect("completion event for idle server");
                records.push(CompletionRecord {
                    id: request.id,
                    class,
                    arrival: request.arrival,
                    dispatched,
                    completion: now,
                });
                scheduler.on_completion(&request, class, now);
                // The owning client thinks, then issues again.
                let client = owners[request.id.as_usize()];
                queue.push(Event {
                    at: now + config.think_time,
                    kind: EventKind::Arrival { index: client },
                });
                poll(
                    &mut scheduler,
                    &mut servers,
                    &mut in_flight,
                    &mut queue,
                    server,
                    now,
                );
            }
            EventKind::Retry { server } => {
                if in_flight[server].is_none() {
                    poll(
                        &mut scheduler,
                        &mut servers,
                        &mut in_flight,
                        &mut queue,
                        server,
                        now,
                    );
                }
            }
        }
    }

    RunReport::new(records, issued as usize, end_time)
}

fn poll<S: Scheduler>(
    scheduler: &mut S,
    servers: &mut [Box<dyn ServiceModel>],
    in_flight: &mut [Option<(Request, ServiceClass, SimTime)>],
    queue: &mut EventQueue,
    server: usize,
    now: SimTime,
) {
    match scheduler.next_for(ServerId::new(server), now) {
        Dispatch::Serve(request, class) => {
            let service = servers[server]
                .service_time(&request, now)
                .max(SimDuration::from_nanos(1));
            in_flight[server] = Some((request, class, now));
            queue.push(Event {
                at: now + service,
                kind: EventKind::Completion { server },
            });
        }
        Dispatch::After(when) => {
            assert!(when > now, "retry at {when} is not after {now}");
            queue.push(Event {
                at: when,
                kind: EventKind::Retry { server },
            });
        }
        Dispatch::Idle => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::FcfsScheduler;
    use crate::server::FixedRateServer;
    use gqos_trace::Iops;

    fn dms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn single_client_alternates_service_and_think() {
        // Service 10 ms + think 40 ms = 50 ms per cycle over 1 s -> 20 ops.
        let report = closed_loop(
            ClosedLoopConfig::new(1, dms(40), SimDuration::from_secs(1)),
            FcfsScheduler::new(),
            FixedRateServer::new(Iops::new(100.0)),
            |_, t| Request::at(t),
        );
        assert_eq!(report.completed(), 20);
        for r in report.records() {
            assert_eq!(r.response_time(), dms(10));
        }
    }

    #[test]
    fn population_scales_offered_load_until_saturation() {
        // Service 10 ms, zero think, one server: the device saturates at
        // 100 IOPS no matter how many clients queue.
        let few = closed_loop(
            ClosedLoopConfig::new(1, SimDuration::ZERO, SimDuration::from_secs(2)),
            FcfsScheduler::new(),
            FixedRateServer::new(Iops::new(100.0)),
            |_, t| Request::at(t),
        );
        let many = closed_loop(
            ClosedLoopConfig::new(16, SimDuration::ZERO, SimDuration::from_secs(2)),
            FcfsScheduler::new(),
            FixedRateServer::new(Iops::new(100.0)),
            |_, t| Request::at(t),
        );
        // Measure over the actual end time: the queued backlog drains past
        // the issue horizon.
        let rate = |r: &RunReport| r.completed() as f64 / r.end_time().as_secs_f64();
        assert!((rate(&few) - 100.0).abs() < 5.0, "few {}", rate(&few));
        assert!((rate(&many) - 100.0).abs() < 5.0, "many {}", rate(&many));
        // But response times stretch with the queue depth (Little's law).
        let rt_many = many.stats().mean().unwrap();
        assert!((rt_many.as_millis_f64() - 160.0).abs() < 15.0, "{rt_many}");
    }

    #[test]
    fn closed_loop_self_throttles_where_open_loop_overloads() {
        // The defining difference: a closed population cannot overload the
        // server — throughput caps at capacity and the backlog stays at the
        // population size.
        let report = closed_loop(
            ClosedLoopConfig::new(8, SimDuration::ZERO, SimDuration::from_secs(1)),
            FcfsScheduler::new(),
            FixedRateServer::new(Iops::new(50.0)),
            |_, t| Request::at(t),
        );
        let max_rt = report.stats().max().unwrap();
        // Worst case: wait behind 7 others + own service = 160 ms.
        assert!(max_rt <= dms(161), "max {max_rt}");
    }

    #[test]
    fn issues_stop_at_the_horizon_but_outstanding_work_completes() {
        let report = closed_loop(
            ClosedLoopConfig::new(4, dms(5), SimDuration::from_millis(100)),
            FcfsScheduler::new(),
            FixedRateServer::new(Iops::new(50.0)), // 20 ms service
            |_, t| Request::at(t),
        );
        assert_eq!(report.completed(), report.total_requests());
        // No arrival at or past the horizon.
        for r in report.records() {
            assert!(r.arrival < SimTime::from_millis(100));
        }
        // The last outstanding request may finish after the horizon.
        assert!(report.end_time() >= SimTime::from_millis(100));
    }

    #[test]
    fn horizon_accounting_end_time_is_the_last_completion() {
        // Regression: `end_time` used to advance on *every* event,
        // including the retiring think-time arrival scheduled after the
        // final completion. One client, 10 ms service, 10 s think, 50 ms
        // horizon: the only request completes at 10 ms, the client's next
        // arrival at 10.01 s retires. The measured span is 10 ms — the
        // pre-fix code reported ~10.01 s, deflating throughput 1000x.
        let report = closed_loop(
            ClosedLoopConfig::new(1, SimDuration::from_secs(10), dms(50)),
            FcfsScheduler::new(),
            FixedRateServer::new(Iops::new(100.0)),
            |_, t| Request::at(t),
        );
        assert_eq!(report.completed(), 1);
        assert_eq!(report.end_time(), SimTime::from_millis(10));
    }

    #[test]
    fn horizon_accounting_arrival_exactly_at_horizon_retires() {
        // The issue side of the pinned convention: issues happen strictly
        // before `horizon`. Service 10 ms + think 40 ms puts the third
        // arrival at exactly t=100 ms — it retires, and the span ends at
        // the second completion (t=60 ms).
        let report = closed_loop(
            ClosedLoopConfig::new(1, dms(40), dms(100)),
            FcfsScheduler::new(),
            FixedRateServer::new(Iops::new(100.0)),
            |_, t| Request::at(t),
        );
        assert_eq!(report.completed(), 2);
        for r in report.records() {
            assert!(r.arrival < SimTime::from_millis(100));
        }
        assert_eq!(report.end_time(), SimTime::from_millis(60));
    }

    #[test]
    fn factory_controls_request_contents() {
        let report = closed_loop(
            ClosedLoopConfig::new(2, dms(10), SimDuration::from_millis(200)),
            FcfsScheduler::new(),
            FixedRateServer::new(Iops::new(1000.0)),
            |client, t| Request::at(t).with_block(gqos_trace::LogicalBlock::new(client as u64)),
        );
        assert!(report.completed() > 10);
    }

    #[test]
    fn deterministic() {
        let run = || {
            closed_loop(
                ClosedLoopConfig::new(3, dms(7), SimDuration::from_secs(1)),
                FcfsScheduler::new(),
                FixedRateServer::new(Iops::new(333.0)),
                |_, t| Request::at(t),
            )
        };
        assert_eq!(run().records(), run().records());
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_rejected() {
        let _ = ClosedLoopConfig::new(0, SimDuration::ZERO, SimDuration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_rejected() {
        let _ = ClosedLoopConfig::new(1, SimDuration::ZERO, SimDuration::ZERO);
    }
}
