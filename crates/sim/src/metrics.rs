//! Per-request latency records and response-time distributions.

use std::fmt;

use gqos_trace::{RequestId, SimDuration, SimTime};

use crate::scheduler::ServiceClass;

/// The lifecycle timestamps of one completed request.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct CompletionRecord {
    /// The request's id within its workload.
    pub id: RequestId,
    /// Class the request was served under.
    pub class: ServiceClass,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Instant the request was dispatched to a server.
    pub dispatched: SimTime,
    /// Instant service finished.
    pub completion: SimTime,
}

impl CompletionRecord {
    /// Total time in system: completion − arrival.
    pub fn response_time(&self) -> SimDuration {
        self.completion - self.arrival
    }

    /// Time spent queued before dispatch.
    pub fn queueing_time(&self) -> SimDuration {
        self.dispatched - self.arrival
    }

    /// Time spent in service: completion − dispatch. Under a fault-injected
    /// (modulated) server this is the *observed* service time, which a
    /// capacity estimator compares against the server's nominal one.
    pub fn service_time(&self) -> SimDuration {
        self.completion - self.dispatched
    }
}

/// The outcome of one simulation run.
///
/// Requests that were never dispatched (a shaping policy dropped or starved
/// them) appear in [`total_requests`](RunReport::total_requests) but have no
/// [`CompletionRecord`]; whole-workload fractions count them as misses.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    records: Vec<CompletionRecord>,
    total_requests: usize,
    end_time: SimTime,
}

impl RunReport {
    /// Assembles a report. `records` need not be sorted.
    pub fn new(records: Vec<CompletionRecord>, total_requests: usize, end_time: SimTime) -> Self {
        RunReport {
            records,
            total_requests,
            end_time,
        }
    }

    /// All completion records, in completion order.
    pub fn records(&self) -> &[CompletionRecord] {
        &self.records
    }

    /// Consumes the report, returning its record buffer so the next run can
    /// reuse the allocation (see `Simulation::run_with_buffer`).
    pub fn into_records(self) -> Vec<CompletionRecord> {
        self.records
    }

    /// Number of requests offered to the scheduler.
    pub fn total_requests(&self) -> usize {
        self.total_requests
    }

    /// Number of requests that completed service.
    pub fn completed(&self) -> usize {
        self.records.len()
    }

    /// Requests offered but never completed (dropped by a shaping policy).
    pub fn unfinished(&self) -> usize {
        self.total_requests - self.records.len()
    }

    /// Instant of the last processed event.
    pub fn end_time(&self) -> SimTime {
        self.end_time
    }

    /// Response-time statistics over the whole workload; never-completed
    /// requests count toward the denominator (as deadline misses).
    pub fn stats(&self) -> ResponseStats {
        ResponseStats::from_times(
            self.records.iter().map(CompletionRecord::response_time),
            self.total_requests,
        )
    }

    /// Response-time statistics restricted to one service class. The
    /// denominator is the number of completions in that class.
    pub fn stats_for(&self, class: ServiceClass) -> ResponseStats {
        let times: Vec<SimDuration> = self
            .records
            .iter()
            .filter(|r| r.class == class)
            .map(CompletionRecord::response_time)
            .collect();
        let n = times.len();
        ResponseStats::from_times(times, n)
    }

    /// Number of completions in the given class.
    pub fn completed_in(&self, class: ServiceClass) -> usize {
        self.records.iter().filter(|r| r.class == class).count()
    }

    /// A mergeable latency sketch over all response times, for combining
    /// per-worker shards from parallel sweeps
    /// (`merge` of per-run sketches is exact — see
    /// [`gqos_obs::LatencySketch::merge`]).
    pub fn response_sketch(&self) -> gqos_obs::LatencySketch {
        let mut sketch = gqos_obs::LatencySketch::new();
        for r in &self.records {
            sketch.record(r.response_time().as_nanos());
        }
        sketch
    }

    /// A mergeable latency sketch over the response times of one class.
    pub fn response_sketch_for(&self, class: ServiceClass) -> gqos_obs::LatencySketch {
        let mut sketch = gqos_obs::LatencySketch::new();
        for r in self.records.iter().filter(|r| r.class == class) {
            sketch.record(r.response_time().as_nanos());
        }
        sketch
    }

    /// Number of completed requests in `class` whose response time exceeded
    /// `deadline` — the degradation experiments' "Q1 miss" counter.
    pub fn miss_count(&self, class: ServiceClass, deadline: SimDuration) -> usize {
        self.records
            .iter()
            .filter(|r| r.class == class && r.response_time() > deadline)
            .count()
    }

    /// Fraction of `class` completions missing `deadline`, in `[0, 1]`
    /// (0.0 when the class has no completions).
    pub fn miss_fraction(&self, class: ServiceClass, deadline: SimDuration) -> f64 {
        let total = self.completed_in(class);
        if total == 0 {
            0.0
        } else {
            self.miss_count(class, deadline) as f64 / total as f64
        }
    }

    /// Writes the per-request records as CSV
    /// (`id,class,arrival_s,dispatched_s,completion_s,response_ms`), for
    /// offline analysis or plotting.
    ///
    /// A `&mut` reference may be passed for `writer`.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    ///
    /// # Examples
    ///
    /// ```
    /// use gqos_sim::{simulate, FcfsScheduler, FixedRateServer};
    /// use gqos_trace::{Iops, SimTime, Workload};
    ///
    /// let w = Workload::from_arrivals([SimTime::ZERO]);
    /// let report = simulate(&w, FcfsScheduler::new(),
    ///     FixedRateServer::new(Iops::new(100.0)));
    /// let mut out = Vec::new();
    /// report.write_csv(&mut out)?;
    /// assert!(String::from_utf8(out).unwrap().starts_with("id,class"));
    /// # Ok::<(), std::io::Error>(())
    /// ```
    pub fn write_csv<W: std::io::Write>(&self, mut writer: W) -> std::io::Result<()> {
        writeln!(
            writer,
            "id,class,arrival_s,dispatched_s,completion_s,response_ms"
        )?;
        for r in &self.records {
            writeln!(
                writer,
                "{},{},{:.9},{:.9},{:.9},{:.6}",
                r.id.index(),
                r.class.index(),
                r.arrival.as_secs_f64(),
                r.dispatched.as_secs_f64(),
                r.completion.as_secs_f64(),
                r.response_time().as_millis_f64(),
            )?;
        }
        Ok(())
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} requests completed by {}",
            self.completed(),
            self.total_requests(),
            self.end_time
        )
    }
}

/// An empirical response-time distribution.
///
/// # Examples
///
/// ```
/// use gqos_sim::ResponseStats;
/// use gqos_trace::SimDuration;
///
/// let stats = ResponseStats::from_times(
///     (1..=100).map(SimDuration::from_millis),
///     100,
/// );
/// assert_eq!(stats.fraction_within(SimDuration::from_millis(50)), 0.5);
/// assert_eq!(stats.percentile(0.99), SimDuration::from_millis(99));
/// ```
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ResponseStats {
    sorted: Vec<SimDuration>,
    denominator: usize,
}

impl ResponseStats {
    /// Builds statistics from response times. `denominator` is the
    /// population size for fractional metrics; it must be at least the
    /// number of samples (missing samples are treated as unbounded
    /// response times).
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is smaller than the sample count.
    pub fn from_times<I>(times: I, denominator: usize) -> Self
    where
        I: IntoIterator<Item = SimDuration>,
    {
        let mut sorted: Vec<SimDuration> = times.into_iter().collect();
        assert!(
            denominator >= sorted.len(),
            "denominator {} smaller than sample count {}",
            denominator,
            sorted.len()
        );
        sorted.sort_unstable();
        ResponseStats {
            sorted,
            denominator,
        }
    }

    /// Number of observed samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` if no samples were observed.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of the population with response time ≤ `bound`, in `[0, 1]`.
    /// Returns zero for an empty population.
    pub fn fraction_within(&self, bound: SimDuration) -> f64 {
        if self.denominator == 0 {
            return 0.0;
        }
        let within = self.sorted.partition_point(|&t| t <= bound);
        within as f64 / self.denominator as f64
    }

    /// The smallest observed response time.
    pub fn min(&self) -> Option<SimDuration> {
        self.sorted.first().copied()
    }

    /// The largest observed response time.
    pub fn max(&self) -> Option<SimDuration> {
        self.sorted.last().copied()
    }

    /// Mean of the observed response times.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.sorted.is_empty() {
            return None;
        }
        let total: u128 = self.sorted.iter().map(|t| t.as_nanos() as u128).sum();
        Some(SimDuration::from_nanos(
            (total / self.sorted.len() as u128) as u64,
        ))
    }

    /// The `p`-quantile of observed samples (`p` in `[0, 1]`), using the
    /// nearest-rank method.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or no samples exist.
    pub fn percentile(&self, p: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&p), "percentile out of range: {p}");
        assert!(!self.sorted.is_empty(), "no samples");
        let rank = ((p * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[rank - 1]
    }

    /// Fractions of the population falling into the buckets
    /// `(≤ edges[0]], (edges[0], edges[1]], …, (edges.last(), ∞)`.
    /// The returned vector has `edges.len() + 1` entries; never-completed
    /// requests land in the final bucket.
    ///
    /// This matches the paper's Figure 6 presentation
    /// (≤50 / ≤100 / ≤500 / ≤1000 / >1000 ms).
    ///
    /// # Panics
    ///
    /// Panics if `edges` is not strictly increasing.
    pub fn bucket_fractions(&self, edges: &[SimDuration]) -> Vec<f64> {
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "bucket edges must be strictly increasing"
        );
        let mut out = Vec::with_capacity(edges.len() + 1);
        if self.denominator == 0 {
            out.resize(edges.len() + 1, 0.0);
            return out;
        }
        let mut prev = 0usize;
        for &edge in edges {
            let upto = self.sorted.partition_point(|&t| t <= edge);
            out.push((upto - prev) as f64 / self.denominator as f64);
            prev = upto;
        }
        out.push((self.denominator - prev) as f64 / self.denominator as f64);
        out
    }

    /// `(bound, cumulative fraction)` pairs at each distinct observed
    /// response time — the empirical CDF (relative to the population
    /// denominator).
    pub fn cdf(&self) -> Vec<(SimDuration, f64)> {
        let mut out: Vec<(SimDuration, f64)> = Vec::new();
        if self.denominator == 0 {
            return out;
        }
        for (i, &t) in self.sorted.iter().enumerate() {
            let frac = (i + 1) as f64 / self.denominator as f64;
            match out.last_mut() {
                Some(last) if last.0 == t => last.1 = frac,
                _ => out.push((t, frac)),
            }
        }
        out
    }
}

impl fmt::Display for ResponseStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "no samples ({} in population)", self.denominator);
        }
        write!(
            f,
            "{} samples: mean {}, max {}",
            self.len(),
            self.mean().expect("non-empty"),
            self.max().expect("non-empty"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn record(arr_ms: u64, disp_ms: u64, comp_ms: u64, class: ServiceClass) -> CompletionRecord {
        CompletionRecord {
            id: RequestId::new(0),
            class,
            arrival: SimTime::from_millis(arr_ms),
            dispatched: SimTime::from_millis(disp_ms),
            completion: SimTime::from_millis(comp_ms),
        }
    }

    #[test]
    fn record_times() {
        let r = record(10, 15, 25, ServiceClass::PRIMARY);
        assert_eq!(r.response_time(), ms(15));
        assert_eq!(r.queueing_time(), ms(5));
        assert_eq!(r.service_time(), ms(10));
    }

    #[test]
    fn miss_counts_per_class() {
        let report = RunReport::new(
            vec![
                record(0, 0, 5, ServiceClass::PRIMARY),
                record(0, 0, 30, ServiceClass::PRIMARY),
                record(0, 0, 100, ServiceClass::OVERFLOW),
            ],
            3,
            SimTime::from_millis(100),
        );
        let d = ms(20);
        assert_eq!(report.miss_count(ServiceClass::PRIMARY, d), 1);
        assert_eq!(report.miss_count(ServiceClass::OVERFLOW, d), 1);
        assert!((report.miss_fraction(ServiceClass::PRIMARY, d) - 0.5).abs() < 1e-12);
        assert_eq!(report.miss_fraction(ServiceClass::new(7), d), 0.0);
    }

    #[test]
    fn report_counts_unfinished() {
        let report = RunReport::new(
            vec![record(0, 0, 10, ServiceClass::PRIMARY)],
            3,
            SimTime::from_millis(10),
        );
        assert_eq!(report.completed(), 1);
        assert_eq!(report.unfinished(), 2);
        assert_eq!(report.total_requests(), 3);
        // 1 of 3 within 10 ms; the unfinished two count as misses.
        assert!((report.stats().fraction_within(ms(10)) - 1.0 / 3.0).abs() < 1e-12);
        assert!(report.to_string().contains("1/3"));
    }

    #[test]
    fn per_class_stats_split() {
        let report = RunReport::new(
            vec![
                record(0, 0, 5, ServiceClass::PRIMARY),
                record(0, 0, 100, ServiceClass::OVERFLOW),
                record(0, 0, 7, ServiceClass::PRIMARY),
            ],
            3,
            SimTime::from_millis(100),
        );
        assert_eq!(report.completed_in(ServiceClass::PRIMARY), 2);
        assert_eq!(report.completed_in(ServiceClass::OVERFLOW), 1);
        let p = report.stats_for(ServiceClass::PRIMARY);
        assert_eq!(p.max(), Some(ms(7)));
        let o = report.stats_for(ServiceClass::OVERFLOW);
        assert_eq!(o.min(), Some(ms(100)));
    }

    #[test]
    fn fraction_within_is_right_continuous() {
        let s = ResponseStats::from_times([ms(10), ms(20)], 2);
        assert_eq!(s.fraction_within(ms(9)), 0.0);
        assert_eq!(s.fraction_within(ms(10)), 0.5);
        assert_eq!(s.fraction_within(ms(20)), 1.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let s = ResponseStats::from_times((1..=10).map(ms), 10);
        assert_eq!(s.percentile(0.0), ms(1));
        assert_eq!(s.percentile(0.5), ms(5));
        assert_eq!(s.percentile(0.95), ms(10));
        assert_eq!(s.percentile(1.0), ms(10));
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_validates_range() {
        let s = ResponseStats::from_times([ms(1)], 1);
        let _ = s.percentile(1.5);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn percentile_requires_samples() {
        let s = ResponseStats::from_times([], 0);
        let _ = s.percentile(0.5);
    }

    #[test]
    fn mean_min_max() {
        let s = ResponseStats::from_times([ms(10), ms(20), ms(30)], 3);
        assert_eq!(s.mean(), Some(ms(20)));
        assert_eq!(s.min(), Some(ms(10)));
        assert_eq!(s.max(), Some(ms(30)));
        let empty = ResponseStats::from_times([], 0);
        assert_eq!(empty.mean(), None);
        assert!(empty.is_empty());
        assert!(empty.to_string().contains("no samples"));
    }

    #[test]
    fn bucket_fractions_match_figure6_shape() {
        // 4 samples + 1 unfinished: 10, 60, 400, 2000 ms of 5 total.
        let s = ResponseStats::from_times([ms(10), ms(60), ms(400), ms(2000)], 5);
        let edges = [ms(50), ms(100), ms(500), ms(1000)];
        let f = s.bucket_fractions(&edges);
        assert_eq!(f.len(), 5);
        assert_eq!(f, vec![0.2, 0.2, 0.2, 0.0, 0.4]);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bucket_edges_validated() {
        let s = ResponseStats::from_times([ms(1)], 1);
        let _ = s.bucket_fractions(&[ms(10), ms(10)]);
    }

    #[test]
    fn cdf_collapses_duplicates() {
        let s = ResponseStats::from_times([ms(5), ms(5), ms(9)], 3);
        let cdf = s.cdf();
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf[0].0, ms(5));
        assert!((cdf[0].1 - 2.0 / 3.0).abs() < 1e-12);
        assert!((cdf[1].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_with_unfinished_population_stays_below_one() {
        let s = ResponseStats::from_times([ms(5)], 2);
        let cdf = s.cdf();
        assert_eq!(cdf.len(), 1);
        assert!((cdf[0].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn denominator_must_cover_samples() {
        let _ = ResponseStats::from_times([ms(1), ms(2)], 1);
    }

    #[test]
    fn csv_export_has_one_line_per_record() {
        let report = RunReport::new(
            vec![
                record(0, 0, 10, ServiceClass::PRIMARY),
                record(5, 10, 25, ServiceClass::OVERFLOW),
            ],
            2,
            SimTime::from_millis(25),
        );
        let mut out = Vec::new();
        report.write_csv(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("id,class"));
        assert!(lines[2].contains("0.005"), "{}", lines[2]);
    }

    #[test]
    fn empty_bucket_fractions() {
        let s = ResponseStats::from_times([], 0);
        assert_eq!(s.bucket_fractions(&[ms(10)]), vec![0.0, 0.0]);
        assert!(s.cdf().is_empty());
        assert_eq!(s.fraction_within(ms(1)), 0.0);
    }
}
