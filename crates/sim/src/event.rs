//! Deterministic time-ordered event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use gqos_trace::SimTime;

/// What happens when an event fires.
///
/// Ordering at equal timestamps is significant and fixed: completions are
/// processed before retries, and retries before arrivals, so that a request
/// arriving exactly when the server frees up observes the freed queue slot
/// (the convention the paper's queue-length argument assumes).
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub enum EventKind {
    /// A server finishes its in-flight request.
    Completion {
        /// Index of the completing server.
        server: usize,
    },
    /// A server should re-poll its scheduler (used by non-work-conserving
    /// schedulers that report a future eligibility time).
    Retry {
        /// Index of the server to poll.
        server: usize,
    },
    /// The workload's next request arrives.
    Arrival {
        /// Index of the arriving request within the workload.
        index: usize,
    },
}

/// A scheduled event.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct Event {
    /// When the event fires.
    pub at: SimTime,
    /// What fires.
    pub kind: EventKind,
}

/// A priority queue of events ordered by time, then by [`EventKind`], then
/// by insertion order — fully deterministic.
///
/// # Examples
///
/// ```
/// use gqos_sim::{Event, EventKind, EventQueue};
/// use gqos_trace::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(Event { at: SimTime::from_secs(2), kind: EventKind::Arrival { index: 1 } });
/// q.push(Event { at: SimTime::from_secs(1), kind: EventKind::Arrival { index: 0 } });
/// assert_eq!(q.pop().unwrap().at, SimTime::from_secs(1));
/// ```
#[derive(Clone, Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(SimTime, EventKind, u64)>>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules an event.
    pub fn push(&mut self, event: Event) {
        self.heap.push(Reverse((event.at, event.kind, self.seq)));
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap
            .pop()
            .map(|Reverse((at, kind, _))| Event { at, kind })
    }

    /// The timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// The engine's event queue, specialised to the bounded event population a
/// simulation actually produces:
///
/// - at most **one pending arrival** (the engine schedules arrival `i + 1`
///   only when it processes arrival `i`),
/// - at most **one pending completion per server** (a server holds one
///   in-flight request),
/// - a small number of **stackable retries per server** (a
///   non-work-conserving scheduler may re-announce an eligibility time).
///
/// Events therefore live in fixed per-server slots instead of a binary
/// heap: `push` is a store, `pop` is a scan over `O(servers)` slots with no
/// allocation or sift, and clearing the queue for the next run reuses every
/// buffer. Pop order is identical to [`EventQueue`] — time, then
/// [`EventKind`] (completions before retries before arrivals, lower server
/// index first), then insertion order — which the equivalence test below
/// checks against the heap implementation on randomised schedules.
///
/// # Examples
///
/// ```
/// use gqos_sim::{Event, EventKind, IndexedEventQueue};
/// use gqos_trace::SimTime;
///
/// let mut q = IndexedEventQueue::new(1);
/// q.push(Event { at: SimTime::from_secs(2), kind: EventKind::Arrival { index: 0 } });
/// q.push(Event { at: SimTime::from_secs(2), kind: EventKind::Completion { server: 0 } });
/// assert_eq!(q.pop().unwrap().kind, EventKind::Completion { server: 0 });
/// ```
#[derive(Clone, Debug, Default)]
pub struct IndexedEventQueue {
    /// Pending completion per server.
    completions: Vec<Option<SimTime>>,
    /// Pending retries per server, in insertion order.
    retries: Vec<Vec<SimTime>>,
    /// The single pending arrival, if any.
    arrival: Option<(SimTime, usize)>,
    len: usize,
}

impl IndexedEventQueue {
    /// Creates an empty queue with slots for `servers` servers.
    pub fn new(servers: usize) -> Self {
        IndexedEventQueue {
            completions: vec![None; servers],
            retries: vec![Vec::new(); servers],
            arrival: None,
            len: 0,
        }
    }

    /// Empties the queue, keeping its buffers for reuse.
    pub fn clear(&mut self) {
        self.completions.fill(None);
        for r in &mut self.retries {
            r.clear();
        }
        self.arrival = None;
        self.len = 0;
    }

    /// Schedules an event.
    ///
    /// # Panics
    ///
    /// Panics if the event's server index is out of range, or if a slot
    /// that must be unique (a server's completion, the arrival) is already
    /// occupied — both are engine bookkeeping bugs.
    pub fn push(&mut self, event: Event) {
        match event.kind {
            EventKind::Completion { server } => {
                let slot = &mut self.completions[server];
                assert!(slot.is_none(), "server {server} already has a completion");
                *slot = Some(event.at);
            }
            EventKind::Retry { server } => self.retries[server].push(event.at),
            EventKind::Arrival { index } => {
                assert!(self.arrival.is_none(), "an arrival is already pending");
                self.arrival = Some((event.at, index));
            }
        }
        self.len += 1;
    }

    /// Removes and returns the earliest event (see the type docs for the
    /// tie-break order).
    pub fn pop(&mut self) -> Option<Event> {
        // Earliest completion, lowest server index first.
        let comp = self
            .completions
            .iter()
            .enumerate()
            .filter_map(|(s, t)| t.map(|t| (t, s)))
            .min();
        // Earliest retry: lowest server index breaks time ties (matching
        // `EventKind`'s derived order), first-inserted breaks ties within
        // one server.
        let mut retry: Option<(SimTime, usize, usize)> = None;
        for (s, times) in self.retries.iter().enumerate() {
            for (i, &t) in times.iter().enumerate() {
                if retry.is_none_or(|(bt, _, _)| t < bt) {
                    retry = Some((t, s, i));
                }
            }
        }

        // Completions beat retries beat arrivals at equal times.
        let mut best_time = None;
        if let Some((t, _)) = comp {
            best_time = Some(t);
        }
        if let Some((t, _, _)) = retry {
            if best_time.is_none_or(|bt| t < bt) {
                best_time = Some(t);
            }
        }
        if let Some((t, _)) = self.arrival {
            if best_time.is_none_or(|bt| t < bt) {
                best_time = Some(t);
            }
        }
        let at = best_time?;
        self.len -= 1;

        if let Some((t, server)) = comp {
            if t == at {
                self.completions[server] = None;
                return Some(Event {
                    at,
                    kind: EventKind::Completion { server },
                });
            }
        }
        if let Some((t, server, i)) = retry {
            if t == at {
                self.retries[server].remove(i);
                return Some(Event {
                    at,
                    kind: EventKind::Retry { server },
                });
            }
        }
        let (_, index) = self.arrival.take().expect("arrival must be the minimum");
        Some(Event {
            at,
            kind: EventKind::Arrival { index },
        })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(secs: u64, kind: EventKind) -> Event {
        Event {
            at: SimTime::from_secs(secs),
            kind,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(at(3, EventKind::Arrival { index: 2 }));
        q.push(at(1, EventKind::Arrival { index: 0 }));
        q.push(at(2, EventKind::Arrival { index: 1 }));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.at).collect();
        assert_eq!(
            order,
            vec![
                SimTime::from_secs(1),
                SimTime::from_secs(2),
                SimTime::from_secs(3)
            ]
        );
    }

    #[test]
    fn completion_precedes_arrival_at_same_instant() {
        let mut q = EventQueue::new();
        q.push(at(5, EventKind::Arrival { index: 0 }));
        q.push(at(5, EventKind::Completion { server: 0 }));
        q.push(at(5, EventKind::Retry { server: 0 }));
        assert_eq!(q.pop().unwrap().kind, EventKind::Completion { server: 0 });
        assert_eq!(q.pop().unwrap().kind, EventKind::Retry { server: 0 });
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrival { index: 0 });
    }

    #[test]
    fn equal_events_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        q.push(at(1, EventKind::Arrival { index: 7 }));
        q.push(at(1, EventKind::Arrival { index: 7 }));
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(at(9, EventKind::Retry { server: 1 }));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(9)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn arrivals_at_same_instant_pop_by_index() {
        let mut q = EventQueue::new();
        q.push(at(1, EventKind::Arrival { index: 5 }));
        q.push(at(1, EventKind::Arrival { index: 3 }));
        match q.pop().unwrap().kind {
            EventKind::Arrival { index } => assert_eq!(index, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn indexed_queue_orders_kinds_at_equal_time() {
        let mut q = IndexedEventQueue::new(2);
        q.push(at(5, EventKind::Arrival { index: 0 }));
        q.push(at(5, EventKind::Retry { server: 1 }));
        q.push(at(5, EventKind::Retry { server: 0 }));
        q.push(at(5, EventKind::Completion { server: 1 }));
        q.push(at(5, EventKind::Completion { server: 0 }));
        assert_eq!(q.len(), 5);
        let kinds: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Completion { server: 0 },
                EventKind::Completion { server: 1 },
                EventKind::Retry { server: 0 },
                EventKind::Retry { server: 1 },
                EventKind::Arrival { index: 0 },
            ]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn indexed_queue_clear_reuses_buffers() {
        let mut q = IndexedEventQueue::new(1);
        q.push(at(1, EventKind::Completion { server: 0 }));
        q.push(at(2, EventKind::Retry { server: 0 }));
        q.clear();
        assert!(q.is_empty());
        // Slots are free again after clear.
        q.push(at(3, EventKind::Completion { server: 0 }));
        q.push(at(3, EventKind::Arrival { index: 9 }));
        assert_eq!(q.pop().unwrap().kind, EventKind::Completion { server: 0 });
    }

    #[test]
    #[should_panic(expected = "already has a completion")]
    fn indexed_queue_rejects_double_completion() {
        let mut q = IndexedEventQueue::new(1);
        q.push(at(1, EventKind::Completion { server: 0 }));
        q.push(at(2, EventKind::Completion { server: 0 }));
    }

    /// On any engine-feasible schedule (one arrival slot, one completion
    /// slot per server, stackable retries) the indexed queue must pop in
    /// exactly the heap queue's order.
    #[test]
    fn indexed_queue_matches_heap_on_random_schedules() {
        // Small deterministic LCG so this test needs no external RNG.
        let mut state = 0x3c6e_f372_fe94_f82au64;
        let mut next = move |bound: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % bound
        };
        for servers in 1..4usize {
            for _round in 0..200 {
                let mut heap = EventQueue::new();
                let mut indexed = IndexedEventQueue::new(servers);
                let mut arrival_used = false;
                let mut completion_used = vec![false; servers];
                for _ in 0..12 {
                    let t = SimTime::from_millis(next(6));
                    let kind = match next(3) {
                        0 if !arrival_used => {
                            arrival_used = true;
                            EventKind::Arrival {
                                index: next(10) as usize,
                            }
                        }
                        1 => {
                            let s = next(servers as u64) as usize;
                            if completion_used[s] {
                                continue;
                            }
                            completion_used[s] = true;
                            EventKind::Completion { server: s }
                        }
                        _ => EventKind::Retry {
                            server: next(servers as u64) as usize,
                        },
                    };
                    let e = Event { at: t, kind };
                    heap.push(e);
                    indexed.push(e);
                }
                loop {
                    let (a, b) = (heap.pop(), indexed.pop());
                    assert_eq!(a, b, "queues diverged ({servers} servers)");
                    if a.is_none() {
                        break;
                    }
                }
            }
        }
    }
}
