//! Deterministic time-ordered event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use gqos_trace::SimTime;

/// What happens when an event fires.
///
/// Ordering at equal timestamps is significant and fixed: completions are
/// processed before retries, and retries before arrivals, so that a request
/// arriving exactly when the server frees up observes the freed queue slot
/// (the convention the paper's queue-length argument assumes).
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub enum EventKind {
    /// A server finishes its in-flight request.
    Completion {
        /// Index of the completing server.
        server: usize,
    },
    /// A server should re-poll its scheduler (used by non-work-conserving
    /// schedulers that report a future eligibility time).
    Retry {
        /// Index of the server to poll.
        server: usize,
    },
    /// The workload's next request arrives.
    Arrival {
        /// Index of the arriving request within the workload.
        index: usize,
    },
}

/// A scheduled event.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct Event {
    /// When the event fires.
    pub at: SimTime,
    /// What fires.
    pub kind: EventKind,
}

/// A priority queue of events ordered by time, then by [`EventKind`], then
/// by insertion order — fully deterministic.
///
/// # Examples
///
/// ```
/// use gqos_sim::{Event, EventKind, EventQueue};
/// use gqos_trace::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(Event { at: SimTime::from_secs(2), kind: EventKind::Arrival { index: 1 } });
/// q.push(Event { at: SimTime::from_secs(1), kind: EventKind::Arrival { index: 0 } });
/// assert_eq!(q.pop().unwrap().at, SimTime::from_secs(1));
/// ```
#[derive(Clone, Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(SimTime, EventKind, u64)>>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules an event.
    pub fn push(&mut self, event: Event) {
        self.heap.push(Reverse((event.at, event.kind, self.seq)));
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap
            .pop()
            .map(|Reverse((at, kind, _))| Event { at, kind })
    }

    /// The timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(secs: u64, kind: EventKind) -> Event {
        Event {
            at: SimTime::from_secs(secs),
            kind,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(at(3, EventKind::Arrival { index: 2 }));
        q.push(at(1, EventKind::Arrival { index: 0 }));
        q.push(at(2, EventKind::Arrival { index: 1 }));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.at).collect();
        assert_eq!(
            order,
            vec![
                SimTime::from_secs(1),
                SimTime::from_secs(2),
                SimTime::from_secs(3)
            ]
        );
    }

    #[test]
    fn completion_precedes_arrival_at_same_instant() {
        let mut q = EventQueue::new();
        q.push(at(5, EventKind::Arrival { index: 0 }));
        q.push(at(5, EventKind::Completion { server: 0 }));
        q.push(at(5, EventKind::Retry { server: 0 }));
        assert_eq!(q.pop().unwrap().kind, EventKind::Completion { server: 0 });
        assert_eq!(q.pop().unwrap().kind, EventKind::Retry { server: 0 });
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrival { index: 0 });
    }

    #[test]
    fn equal_events_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        q.push(at(1, EventKind::Arrival { index: 7 }));
        q.push(at(1, EventKind::Arrival { index: 7 }));
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(at(9, EventKind::Retry { server: 1 }));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(9)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn arrivals_at_same_instant_pop_by_index() {
        let mut q = EventQueue::new();
        q.push(at(1, EventKind::Arrival { index: 5 }));
        q.push(at(1, EventKind::Arrival { index: 3 }));
        match q.pop().unwrap().kind {
            EventKind::Arrival { index } => assert_eq!(index, 3),
            other => panic!("unexpected {other:?}"),
        }
    }
}
