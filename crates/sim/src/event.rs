//! Deterministic time-ordered event queues.
//!
//! Three implementations share one ordering contract (documented on
//! [`EventKind`] and in DESIGN.md §13):
//!
//! - [`EventQueue`] — a hierarchical **timing wheel** (64-slot levels,
//!   nanosecond resolution) with O(1) amortized push/pop. This is the
//!   engine's workhorse.
//! - [`BinaryHeapEventQueue`] — the original binary-heap queue, kept as the
//!   reference implementation ("oracle") that the wheel is differentially
//!   tested against.
//! - [`IndexedEventQueue`] — the engine-facing facade: the wheel plus the
//!   engine's uniqueness bookkeeping (one pending arrival, one pending
//!   completion per server). Unlike its previous incarnation, `pop` no
//!   longer scans `O(servers)` slots — cost is independent of fleet size.
//!
//! # The wheel
//!
//! Keys are nanosecond timestamps. The wheel has 11 levels of 64 slots;
//! level `l` buckets keys by bits `[6l, 6l+6)`, so 11 levels cover the full
//! 64-bit key space. An event with key `k` is stored at the *highest* level
//! whose digit differs from the wheel's virtual time `now` (level 0 if they
//! share all digits above the lowest six bits). At level 0 a slot holds
//! exactly one key; `pop` takes the lowest occupied slot (one
//! `trailing_zeros` per level bitmap) and breaks ties by `(at, kind, seq)`.
//! When level 0 is empty, the lowest occupied slot of the lowest non-empty
//! level is *cascaded*: `now` advances to the slot's base time and the
//! slot's events re-insert at strictly lower levels. Each event cascades at
//! most 10 times over its lifetime, so push and pop are O(1) amortized with
//! no comparisons against unrelated events.
//!
//! Events pushed with a timestamp earlier than `now` (the time of the last
//! pop) are scheduled *at* `now` — they fire immediately, which is the only
//! consistent reading of a past deadline. Their reported [`Event::at`] is
//! preserved, and ties against genuine `now` events are still broken by
//! `(at, kind, seq)`, which keeps the pop sequence identical to the binary
//! heap's for every schedule the engine can produce (see the equivalence
//! tests and `tests/wheel_props.rs`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use gqos_trace::SimTime;

/// What happens when an event fires.
///
/// Ordering at equal timestamps is significant and fixed: completions are
/// processed before retries, and retries before arrivals, so that a request
/// arriving exactly when the server frees up observes the freed queue slot
/// (the convention the paper's queue-length argument assumes). Within a
/// kind, the lower server (or workload) index fires first; equal events
/// fire in insertion order.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub enum EventKind {
    /// A server finishes its in-flight request.
    Completion {
        /// Index of the completing server.
        server: usize,
    },
    /// A server should re-poll its scheduler (used by non-work-conserving
    /// schedulers that report a future eligibility time).
    Retry {
        /// Index of the server to poll.
        server: usize,
    },
    /// The workload's next request arrives.
    Arrival {
        /// Index of the arriving request within the workload.
        index: usize,
    },
}

/// A scheduled event.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct Event {
    /// When the event fires.
    pub at: SimTime,
    /// What fires.
    pub kind: EventKind,
}

/// Bits per wheel level: 64 slots each.
const BITS: usize = 6;
/// Slots per level.
const SLOTS: usize = 1 << BITS;
/// Levels needed so `LEVELS * BITS >= 64` covers the whole key space.
const LEVELS: usize = 11;

/// A stored event: placement key (the clamped timestamp), original
/// timestamp, kind, and insertion sequence. The derived ordering — `(key,
/// at, kind, seq)` — is the pop order.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Debug)]
struct Entry {
    key: u64,
    at: SimTime,
    kind: EventKind,
    seq: u64,
}

/// The wheel level and slot that hold `key` when virtual time is `now`.
///
/// Level = the highest 6-bit digit where `key` and `now` differ (0 when
/// they agree above the low 6 bits); slot = that digit of `key`.
#[inline]
fn placement(now: u64, key: u64) -> (usize, usize) {
    debug_assert!(key >= now, "wheel keys are clamped to now");
    let diff = key ^ now;
    let level = if diff == 0 {
        0
    } else {
        (63 - diff.leading_zeros() as usize) / BITS
    };
    let slot = ((key >> (BITS * level)) & (SLOTS as u64 - 1)) as usize;
    (level, slot)
}

/// A priority queue of events ordered by time, then by [`EventKind`], then
/// by insertion order — fully deterministic.
///
/// Implemented as a hierarchical timing wheel (see the module docs): push
/// and pop are O(1) amortized regardless of queue population, and pop order
/// is bit-identical to [`BinaryHeapEventQueue`].
///
/// # Examples
///
/// ```
/// use gqos_sim::{Event, EventKind, EventQueue};
/// use gqos_trace::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(Event { at: SimTime::from_secs(2), kind: EventKind::Arrival { index: 1 } });
/// q.push(Event { at: SimTime::from_secs(1), kind: EventKind::Arrival { index: 0 } });
/// assert_eq!(q.pop().unwrap().at, SimTime::from_secs(1));
/// ```
#[derive(Clone, Debug)]
pub struct EventQueue {
    /// `LEVELS * SLOTS` buckets, row-major by level.
    slots: Vec<Vec<Entry>>,
    /// One occupancy bitmap per level; bit `s` set iff slot `s` is
    /// non-empty.
    occupied: [u64; LEVELS],
    /// Virtual time: the placement key of the last popped event. Keys of
    /// incoming events are clamped to at least `now`.
    now: u64,
    seq: u64,
    len: usize,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: vec![Vec::new(); LEVELS * SLOTS],
            occupied: [0; LEVELS],
            now: 0,
            seq: 0,
            len: 0,
        }
    }

    /// Empties the queue and rewinds virtual time to zero, keeping the
    /// slot buffers for reuse.
    pub fn clear(&mut self) {
        for (level, bits) in self.occupied.iter_mut().enumerate() {
            let mut b = *bits;
            while b != 0 {
                let slot = b.trailing_zeros() as usize;
                self.slots[level * SLOTS + slot].clear();
                b &= b - 1;
            }
            *bits = 0;
        }
        self.now = 0;
        self.seq = 0;
        self.len = 0;
    }

    /// Schedules an event. Timestamps earlier than the last popped event
    /// fire immediately (see the module docs).
    pub fn push(&mut self, event: Event) {
        let key = event.at.as_nanos().max(self.now);
        let (level, slot) = placement(self.now, key);
        self.slots[level * SLOTS + slot].push(Entry {
            key,
            at: event.at,
            kind: event.kind,
            seq: self.seq,
        });
        self.occupied[level] |= 1 << slot;
        self.seq += 1;
        self.len += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        loop {
            let level = self.occupied.iter().position(|&b| b != 0)?;
            let slot = self.occupied[level].trailing_zeros() as usize;
            if level == 0 {
                let cell = &mut self.slots[slot];
                let best = cell
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, entry)| *entry)
                    .map(|(i, _)| i)
                    .expect("occupancy bit set on an empty slot");
                let entry = cell.swap_remove(best);
                if cell.is_empty() {
                    self.occupied[0] &= !(1u64 << slot);
                }
                self.now = entry.key;
                self.len -= 1;
                return Some(Event {
                    at: entry.at,
                    kind: entry.kind,
                });
            }
            // Cascade: advance `now` to the slot's base time and re-insert
            // its events; each lands at a strictly lower level.
            let shift = BITS * (level + 1);
            let upper = if shift >= 64 {
                0
            } else {
                (self.now >> shift) << shift
            };
            self.now = upper | ((slot as u64) << (BITS * level));
            let index = level * SLOTS + slot;
            let mut batch = std::mem::take(&mut self.slots[index]);
            self.occupied[level] &= !(1u64 << slot);
            for &entry in &batch {
                let (l, s) = placement(self.now, entry.key);
                debug_assert!(l < level, "cascade must move events downward");
                self.slots[l * SLOTS + s].push(entry);
                self.occupied[l] |= 1 << s;
            }
            batch.clear();
            self.slots[index] = batch;
        }
    }

    /// The timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        let level = self.occupied.iter().position(|&b| b != 0)?;
        let slot = self.occupied[level].trailing_zeros() as usize;
        // The lowest occupied slot of the lowest non-empty level contains
        // the global minimum; every other occupied slot holds strictly
        // larger keys.
        self.slots[level * SLOTS + slot].iter().min().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The original binary-heap event queue, kept as the reference
/// implementation the timing wheel is differentially tested against.
///
/// Same API and pop order as [`EventQueue`]; O(log n) push/pop. Prefer
/// [`EventQueue`] everywhere except when an independent oracle is the
/// point.
///
/// # Examples
///
/// ```
/// use gqos_sim::{BinaryHeapEventQueue, Event, EventKind};
/// use gqos_trace::SimTime;
///
/// let mut q = BinaryHeapEventQueue::new();
/// q.push(Event { at: SimTime::from_secs(5), kind: EventKind::Retry { server: 0 } });
/// assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct BinaryHeapEventQueue {
    heap: BinaryHeap<Reverse<(SimTime, EventKind, u64)>>,
    seq: u64,
}

impl BinaryHeapEventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BinaryHeapEventQueue::default()
    }

    /// Schedules an event.
    pub fn push(&mut self, event: Event) {
        self.heap.push(Reverse((event.at, event.kind, self.seq)));
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap
            .pop()
            .map(|Reverse((at, kind, _))| Event { at, kind })
    }

    /// The timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// The engine's event queue: the timing wheel plus the engine's uniqueness
/// invariants —
///
/// - at most **one pending arrival** (the engine schedules arrival `i + 1`
///   only when it processes arrival `i`),
/// - at most **one pending completion per server** (a server holds one
///   in-flight request),
/// - any number of **stackable retries per server** (a non-work-conserving
///   scheduler may re-announce an eligibility time).
///
/// Violations of the uniqueness invariants are engine bookkeeping bugs and
/// panic at `push`. Pop order is identical to [`EventQueue`] /
/// [`BinaryHeapEventQueue`] — time, then [`EventKind`] (completions before
/// retries before arrivals, lower server index first), then insertion
/// order — which the equivalence tests check on randomised schedules.
///
/// Earlier revisions stored events in per-server slots and scanned all of
/// them on every pop — `O(servers)` per pop, quadratic over a fleet-scale
/// fault sweep. The wheel makes pop cost independent of the server count
/// (`event/indexed_pop_*` in `perf_report` tracks this).
///
/// # Examples
///
/// ```
/// use gqos_sim::{Event, EventKind, IndexedEventQueue};
/// use gqos_trace::SimTime;
///
/// let mut q = IndexedEventQueue::new(1);
/// q.push(Event { at: SimTime::from_secs(2), kind: EventKind::Arrival { index: 0 } });
/// q.push(Event { at: SimTime::from_secs(2), kind: EventKind::Completion { server: 0 } });
/// assert_eq!(q.pop().unwrap().kind, EventKind::Completion { server: 0 });
/// ```
#[derive(Clone, Debug, Default)]
pub struct IndexedEventQueue {
    wheel: EventQueue,
    /// Per-server "a completion is pending" flag, for the uniqueness panic.
    completion_pending: Vec<bool>,
    /// Whether the single arrival slot is taken.
    arrival_pending: bool,
}

impl IndexedEventQueue {
    /// Creates an empty queue with slots for `servers` servers.
    pub fn new(servers: usize) -> Self {
        IndexedEventQueue {
            wheel: EventQueue::new(),
            completion_pending: vec![false; servers],
            arrival_pending: false,
        }
    }

    /// Empties the queue, keeping its buffers for reuse.
    pub fn clear(&mut self) {
        self.wheel.clear();
        self.completion_pending.fill(false);
        self.arrival_pending = false;
    }

    /// Schedules an event.
    ///
    /// # Panics
    ///
    /// Panics if the event's server index is out of range, or if a slot
    /// that must be unique (a server's completion, the arrival) is already
    /// occupied — both are engine bookkeeping bugs.
    pub fn push(&mut self, event: Event) {
        match event.kind {
            EventKind::Completion { server } => {
                let pending = &mut self.completion_pending[server];
                assert!(!*pending, "server {server} already has a completion");
                *pending = true;
            }
            EventKind::Retry { server } => {
                assert!(
                    server < self.completion_pending.len(),
                    "retry for unknown server {server}"
                );
            }
            EventKind::Arrival { .. } => {
                assert!(!self.arrival_pending, "an arrival is already pending");
                self.arrival_pending = true;
            }
        }
        self.wheel.push(event);
    }

    /// Removes and returns the earliest event (see the type docs for the
    /// tie-break order).
    pub fn pop(&mut self) -> Option<Event> {
        let event = self.wheel.pop()?;
        match event.kind {
            EventKind::Completion { server } => self.completion_pending[server] = false,
            EventKind::Retry { .. } => {}
            EventKind::Arrival { .. } => self.arrival_pending = false,
        }
        Some(event)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(secs: u64, kind: EventKind) -> Event {
        Event {
            at: SimTime::from_secs(secs),
            kind,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(at(3, EventKind::Arrival { index: 2 }));
        q.push(at(1, EventKind::Arrival { index: 0 }));
        q.push(at(2, EventKind::Arrival { index: 1 }));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.at).collect();
        assert_eq!(
            order,
            vec![
                SimTime::from_secs(1),
                SimTime::from_secs(2),
                SimTime::from_secs(3)
            ]
        );
    }

    #[test]
    fn completion_precedes_arrival_at_same_instant() {
        let mut q = EventQueue::new();
        q.push(at(5, EventKind::Arrival { index: 0 }));
        q.push(at(5, EventKind::Completion { server: 0 }));
        q.push(at(5, EventKind::Retry { server: 0 }));
        assert_eq!(q.pop().unwrap().kind, EventKind::Completion { server: 0 });
        assert_eq!(q.pop().unwrap().kind, EventKind::Retry { server: 0 });
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrival { index: 0 });
    }

    #[test]
    fn equal_events_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        q.push(at(1, EventKind::Arrival { index: 7 }));
        q.push(at(1, EventKind::Arrival { index: 7 }));
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(at(9, EventKind::Retry { server: 1 }));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(9)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn arrivals_at_same_instant_pop_by_index() {
        let mut q = EventQueue::new();
        q.push(at(1, EventKind::Arrival { index: 5 }));
        q.push(at(1, EventKind::Arrival { index: 3 }));
        match q.pop().unwrap().kind {
            EventKind::Arrival { index } => assert_eq!(index, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Nanosecond-adjacent and hours-apart events exercise every wheel
    /// level; order must still be exact.
    #[test]
    fn wheel_orders_across_level_boundaries() {
        let mut q = EventQueue::new();
        let times = [
            0u64,
            1,
            63,
            64,
            65,
            4095,
            4096,
            1 << 30,
            (1 << 30) + 1,
            3_600_000_000_000, // one hour in ns
            u64::MAX / 2,
            u64::MAX,
        ];
        // Push in reverse so insertion order never matches time order.
        for (i, &t) in times.iter().rev().enumerate() {
            q.push(Event {
                at: SimTime::from_nanos(t),
                kind: EventKind::Arrival { index: i },
            });
        }
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_nanos())
            .collect();
        assert_eq!(popped, times);
    }

    /// A push earlier than the last pop fires immediately, before anything
    /// later, and still reports its original timestamp.
    #[test]
    fn wheel_clamps_past_pushes_to_the_present() {
        let mut q = EventQueue::new();
        q.push(at(5, EventKind::Completion { server: 0 }));
        assert_eq!(q.pop().unwrap().at, SimTime::from_secs(5));
        q.push(at(7, EventKind::Arrival { index: 0 }));
        q.push(at(2, EventKind::Retry { server: 0 }));
        let first = q.pop().unwrap();
        assert_eq!(first.kind, EventKind::Retry { server: 0 });
        assert_eq!(first.at, SimTime::from_secs(2));
        assert_eq!(q.pop().unwrap().at, SimTime::from_secs(7));
    }

    #[test]
    fn wheel_clear_rewinds_time_and_reuses_buffers() {
        let mut q = EventQueue::new();
        q.push(at(100, EventKind::Arrival { index: 0 }));
        assert_eq!(q.pop().unwrap().at, SimTime::from_secs(100));
        q.clear();
        assert!(q.is_empty());
        // After clear the wheel accepts (and does not clamp) early times.
        q.push(at(1, EventKind::Arrival { index: 1 }));
        assert_eq!(q.pop().unwrap().at, SimTime::from_secs(1));
    }

    #[test]
    fn indexed_queue_orders_kinds_at_equal_time() {
        let mut q = IndexedEventQueue::new(2);
        q.push(at(5, EventKind::Arrival { index: 0 }));
        q.push(at(5, EventKind::Retry { server: 1 }));
        q.push(at(5, EventKind::Retry { server: 0 }));
        q.push(at(5, EventKind::Completion { server: 1 }));
        q.push(at(5, EventKind::Completion { server: 0 }));
        assert_eq!(q.len(), 5);
        let kinds: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Completion { server: 0 },
                EventKind::Completion { server: 1 },
                EventKind::Retry { server: 0 },
                EventKind::Retry { server: 1 },
                EventKind::Arrival { index: 0 },
            ]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn indexed_queue_clear_reuses_buffers() {
        let mut q = IndexedEventQueue::new(1);
        q.push(at(1, EventKind::Completion { server: 0 }));
        q.push(at(2, EventKind::Retry { server: 0 }));
        q.clear();
        assert!(q.is_empty());
        // Slots are free again after clear.
        q.push(at(3, EventKind::Completion { server: 0 }));
        q.push(at(3, EventKind::Arrival { index: 9 }));
        assert_eq!(q.pop().unwrap().kind, EventKind::Completion { server: 0 });
    }

    #[test]
    #[should_panic(expected = "already has a completion")]
    fn indexed_queue_rejects_double_completion() {
        let mut q = IndexedEventQueue::new(1);
        q.push(at(1, EventKind::Completion { server: 0 }));
        q.push(at(2, EventKind::Completion { server: 0 }));
    }

    #[test]
    #[should_panic(expected = "an arrival is already pending")]
    fn indexed_queue_rejects_double_arrival() {
        let mut q = IndexedEventQueue::new(1);
        q.push(at(1, EventKind::Arrival { index: 0 }));
        q.push(at(2, EventKind::Arrival { index: 1 }));
    }

    #[test]
    #[should_panic(expected = "unknown server")]
    fn indexed_queue_rejects_out_of_range_retry() {
        let mut q = IndexedEventQueue::new(2);
        q.push(at(1, EventKind::Retry { server: 2 }));
    }

    /// On any engine-feasible schedule (one arrival slot, one completion
    /// slot per server, stackable retries) the indexed queue must pop in
    /// exactly the heap queue's order.
    #[test]
    fn indexed_queue_matches_heap_on_random_schedules() {
        // Small deterministic LCG so this test needs no external RNG.
        let mut state = 0x3c6e_f372_fe94_f82au64;
        let mut next = move |bound: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % bound
        };
        for servers in 1..4usize {
            for _round in 0..200 {
                let mut heap = BinaryHeapEventQueue::new();
                let mut indexed = IndexedEventQueue::new(servers);
                let mut arrival_used = false;
                let mut completion_used = vec![false; servers];
                for _ in 0..12 {
                    let t = SimTime::from_millis(next(6));
                    let kind = match next(3) {
                        0 if !arrival_used => {
                            arrival_used = true;
                            EventKind::Arrival {
                                index: next(10) as usize,
                            }
                        }
                        1 => {
                            let s = next(servers as u64) as usize;
                            if completion_used[s] {
                                continue;
                            }
                            completion_used[s] = true;
                            EventKind::Completion { server: s }
                        }
                        _ => EventKind::Retry {
                            server: next(servers as u64) as usize,
                        },
                    };
                    let e = Event { at: t, kind };
                    heap.push(e);
                    indexed.push(e);
                }
                loop {
                    let (a, b) = (heap.pop(), indexed.pop());
                    assert_eq!(a, b, "queues diverged ({servers} servers)");
                    if a.is_none() {
                        break;
                    }
                }
            }
        }
    }
}
