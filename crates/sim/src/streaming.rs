//! Incremental (streaming) simulation: feed arrivals as they become
//! available instead of materialising a whole [`Workload`](gqos_trace::Workload).
//!
//! [`StreamingSimulation`] is the engine's event loop factored out of the
//! batch driver so that arrivals can be *offered* one at a time and
//! completion records *drained* between offers. The batch
//! [`Simulation`](crate::Simulation) is reimplemented on top of this type,
//! so a streamed run over any chunking of a workload is **bit-identical**
//! to the batch run — same completion records, same nanoseconds, same
//! tie-breaks — by construction rather than by parallel maintenance of two
//! loops.
//!
//! # Why popping must wait for the next arrival
//!
//! The batch engine keeps exactly one arrival event in the queue at all
//! times (arrival `i + 1` is scheduled while processing arrival `i`), and
//! the queue breaks timestamp ties by event kind. A completion at time `T`
//! may therefore only be processed once the engine knows no arrival at a
//! time `< T` (or `== T`, which would still pop *after* the completion) is
//! coming. The streaming driver enforces this with a simple invariant: it
//! pops events only while the next arrival is already queued, or after
//! [`finish`](StreamingSimulation::finish) has promised that no further
//! arrivals exist. In between, pending completions and retries simply stay
//! queued — the per-call state is `O(servers)` events plus whatever backlog
//! the scheduler itself holds.
//!
//! # Examples
//!
//! ```
//! use gqos_sim::{FcfsScheduler, FixedRateServer, StreamingSimulation};
//! use gqos_trace::{Iops, Request, SimTime};
//!
//! let mut sim = StreamingSimulation::new(FcfsScheduler::new())
//!     .server(FixedRateServer::new(Iops::new(100.0)));
//! for ms in [0u64, 5, 300] {
//!     sim.offer(Request::at(SimTime::from_millis(ms)));
//! }
//! sim.finish();
//! assert_eq!(sim.drain_completions().count(), 3);
//! ```

use std::collections::VecDeque;

use gqos_obs::{TraceEvent, TraceHandle};
use gqos_trace::{Request, SimDuration, SimTime};

use crate::event::{Event, EventKind, IndexedEventQueue};
use crate::metrics::{CompletionRecord, RunReport};
use crate::scheduler::{Dispatch, Scheduler, ServiceClass};
use crate::server::{ServerId, ServiceModel};

/// An incremental simulation accepting arrivals one at a time.
///
/// Built with the same pieces as [`Simulation`](crate::Simulation) — a
/// scheduler, one or more servers, an optional trace handle and deadline —
/// but driven by [`offer`](StreamingSimulation::offer) /
/// [`finish`](StreamingSimulation::finish) instead of a workload reference.
/// Completion records accumulate internally until taken with
/// [`drain_completions`](StreamingSimulation::drain_completions), so a
/// caller that drains between chunks holds `O(chunk)` records at a time.
pub struct StreamingSimulation<S> {
    scheduler: S,
    servers: Vec<Box<dyn ServiceModel>>,
    trace: TraceHandle,
    deadline: Option<SimDuration>,
    queue: IndexedEventQueue,
    /// `(request, class, dispatch time)` in flight per server.
    in_flight: Vec<Option<(Request, ServiceClass, SimTime)>>,
    /// Arrivals offered but not yet injected into the event queue. Holds at
    /// most the requests offered since the last pump made progress; with an
    /// eagerly-pumping caller it stays at one element.
    pending: VecDeque<Request>,
    /// The request whose arrival event is currently queued.
    queued_arrival: Option<Request>,
    completions: Vec<CompletionRecord>,
    end_time: SimTime,
    offered: usize,
    last_arrival: SimTime,
    started: bool,
    finished: bool,
}

impl<S> std::fmt::Debug for StreamingSimulation<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingSimulation")
            .field("servers", &self.servers.len())
            .field("offered", &self.offered)
            .field("finished", &self.finished)
            .finish_non_exhaustive()
    }
}

impl<S: Scheduler> StreamingSimulation<S> {
    /// Creates a streaming simulation with no servers yet; add at least one
    /// with [`server`](StreamingSimulation::server) before offering.
    pub fn new(scheduler: S) -> Self {
        StreamingSimulation {
            scheduler,
            servers: Vec::new(),
            trace: TraceHandle::disabled(),
            deadline: None,
            queue: IndexedEventQueue::new(0),
            in_flight: Vec::new(),
            pending: VecDeque::new(),
            queued_arrival: None,
            completions: Vec::new(),
            end_time: SimTime::ZERO,
            offered: 0,
            last_arrival: SimTime::ZERO,
            started: false,
            finished: false,
        }
    }

    /// Assembles a streaming simulation from a batch
    /// [`Simulation`](crate::Simulation)'s parts, recycling `buffer` for
    /// the completion records.
    pub(crate) fn from_parts(
        scheduler: S,
        servers: Vec<Box<dyn ServiceModel>>,
        trace: TraceHandle,
        deadline: Option<SimDuration>,
        buffer: Vec<CompletionRecord>,
    ) -> Self {
        let mut sim = StreamingSimulation::new(scheduler).with_completion_buffer(buffer);
        sim.servers = servers;
        sim.trace = trace;
        sim.deadline = deadline;
        sim
    }

    /// Adds a server with the given service model. Servers are identified
    /// by the order they are added. Must be called before the first
    /// [`offer`](StreamingSimulation::offer).
    ///
    /// # Panics
    ///
    /// Panics if arrivals have already been offered.
    pub fn server<M: ServiceModel + 'static>(mut self, model: M) -> Self {
        assert!(!self.started, "servers must be added before offering");
        self.servers.push(Box::new(model));
        self
    }

    /// Attaches a trace handle (see [`Simulation::trace`](crate::Simulation::trace)).
    pub fn trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the deadline used for the per-completion `deadline_met` verdict
    /// in trace events. Without one, completions carry no verdict.
    pub fn deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Replaces the internal completion buffer with `buffer` (cleared),
    /// recycling its allocation.
    pub fn with_completion_buffer(mut self, mut buffer: Vec<CompletionRecord>) -> Self {
        buffer.clear();
        self.completions = buffer;
        self
    }

    /// The scheduler, for reading back policy-side state (e.g. shed
    /// counters in wrapper schedulers) after the run.
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }

    /// Total arrivals offered so far.
    pub fn offered(&self) -> usize {
        self.offered
    }

    /// The timestamp of the latest event processed so far.
    pub fn end_time(&self) -> SimTime {
        self.end_time
    }

    /// `true` once [`finish`](StreamingSimulation::finish) has run.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Offers the next arrival. Arrivals must be offered in non-decreasing
    /// arrival order; the engine processes every event that is already
    /// unambiguous before returning.
    ///
    /// # Panics
    ///
    /// Panics if no server was added, if `request.arrival` precedes an
    /// earlier offer, if called after [`finish`](StreamingSimulation::finish),
    /// or if the scheduler requests a retry at a non-future instant.
    pub fn offer(&mut self, request: Request) {
        assert!(!self.finished, "offer after finish");
        if !self.started {
            assert!(
                !self.servers.is_empty(),
                "simulation needs at least one server"
            );
            self.queue = IndexedEventQueue::new(self.servers.len());
            self.in_flight = (0..self.servers.len()).map(|_| None).collect();
            self.started = true;
        }
        assert!(
            request.arrival >= self.last_arrival,
            "arrivals must be offered in order: {} after {}",
            request.arrival,
            self.last_arrival
        );
        self.last_arrival = request.arrival;
        self.offered += 1;
        self.pending.push_back(request);
        self.pump();
    }

    /// Declares the arrival stream exhausted and runs the simulation to
    /// quiescence. Further [`offer`](StreamingSimulation::offer) calls
    /// panic; `finish` itself is idempotent.
    pub fn finish(&mut self) {
        self.finished = true;
        self.pump();
    }

    /// Removes and returns the completion records accumulated since the
    /// last drain, in completion order.
    pub fn drain_completions(&mut self) -> std::vec::Drain<'_, CompletionRecord> {
        self.completions.drain(..)
    }

    /// Consumes the simulation into a [`RunReport`] over the records still
    /// in the internal buffer. For the report to cover the whole run, call
    /// [`finish`](StreamingSimulation::finish) first and do not drain.
    pub fn into_report(mut self) -> RunReport {
        self.finish();
        RunReport::new(self.completions, self.offered, self.end_time)
    }

    /// Processes every event whose order relative to future arrivals is
    /// already determined (see the module docs for the invariant).
    fn pump(&mut self) {
        loop {
            if self.queued_arrival.is_none() {
                match self.pending.pop_front() {
                    Some(request) => {
                        self.queue.push(Event {
                            at: request.arrival,
                            // The index is informational in streaming mode:
                            // the queue holds at most one arrival, so it
                            // never participates in ordering.
                            kind: EventKind::Arrival {
                                index: self.offered - self.pending.len() - 1,
                            },
                        });
                        self.queued_arrival = Some(request);
                    }
                    None if self.finished => {}
                    // A completion or retry here might still be preceded by
                    // (or tie with) an arrival that has not been offered
                    // yet; stop until the caller offers it or finishes.
                    None => return,
                }
            }
            let Some(Event { at: now, kind }) = self.queue.pop() else {
                return;
            };
            self.end_time = self.end_time.max(now);
            match kind {
                EventKind::Arrival { .. } => {
                    let request = self
                        .queued_arrival
                        .take()
                        .expect("arrival event without a queued request");
                    self.trace.emit_with(|| TraceEvent::Arrival {
                        at: now,
                        id: request.id.index(),
                    });
                    self.scheduler.on_arrival(request, now);
                    for server in 0..self.servers.len() {
                        if self.in_flight[server].is_none() {
                            Self::poll_server(
                                &mut self.scheduler,
                                &mut self.servers,
                                &mut self.in_flight,
                                &mut self.queue,
                                server,
                                now,
                            );
                        }
                    }
                }
                EventKind::Completion { server } => {
                    let (request, class, dispatched) = self.in_flight[server]
                        .take()
                        .expect("completion event for idle server");
                    self.completions.push(CompletionRecord {
                        id: request.id,
                        class,
                        arrival: request.arrival,
                        dispatched,
                        completion: now,
                    });
                    self.trace.emit_with(|| {
                        let response = now - request.arrival;
                        TraceEvent::Completed {
                            at: now,
                            id: request.id.index(),
                            class: class.index(),
                            response,
                            deadline_met: self.deadline.map(|d| response <= d),
                        }
                    });
                    self.scheduler.on_completion(&request, class, now);
                    Self::poll_server(
                        &mut self.scheduler,
                        &mut self.servers,
                        &mut self.in_flight,
                        &mut self.queue,
                        server,
                        now,
                    );
                }
                EventKind::Retry { server } => {
                    if self.in_flight[server].is_none() {
                        Self::poll_server(
                            &mut self.scheduler,
                            &mut self.servers,
                            &mut self.in_flight,
                            &mut self.queue,
                            server,
                            now,
                        );
                    }
                }
            }
        }
    }

    fn poll_server(
        scheduler: &mut S,
        servers: &mut [Box<dyn ServiceModel>],
        in_flight: &mut [Option<(Request, ServiceClass, SimTime)>],
        queue: &mut IndexedEventQueue,
        server: usize,
        now: SimTime,
    ) {
        debug_assert!(in_flight[server].is_none());
        match scheduler.next_for(ServerId::new(server), now) {
            Dispatch::Serve(request, class) => {
                let service = servers[server].service_time(&request, now);
                // Zero-length service still advances the clock by one tick
                // so progress is guaranteed.
                let service = service.max(SimDuration::from_nanos(1));
                in_flight[server] = Some((request, class, now));
                queue.push(Event {
                    at: now + service,
                    kind: EventKind::Completion { server },
                });
            }
            Dispatch::After(when) => {
                assert!(
                    when > now,
                    "scheduler requested retry at {when} which is not after {now}"
                );
                queue.push(Event {
                    at: when,
                    kind: EventKind::Retry { server },
                });
            }
            Dispatch::Idle => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;
    use crate::scheduler::FcfsScheduler;
    use crate::server::FixedRateServer;
    use gqos_trace::{Iops, Workload};

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn offline(w: &Workload) -> RunReport {
        Simulation::new(w, FcfsScheduler::new())
            .server(FixedRateServer::new(Iops::new(100.0)))
            .run()
    }

    fn streamed(w: &Workload) -> RunReport {
        let mut sim = StreamingSimulation::new(FcfsScheduler::new())
            .server(FixedRateServer::new(Iops::new(100.0)));
        for &r in w.requests() {
            sim.offer(r);
        }
        sim.into_report()
    }

    #[test]
    fn matches_offline_run_exactly() {
        let mut arrivals: Vec<SimTime> = (0..50).map(|i| ms(i * 7)).collect();
        arrivals.extend(vec![ms(100); 20]); // a burst with timestamp ties
        let w = Workload::from_arrivals(arrivals);
        let a = offline(&w);
        let b = streamed(&w);
        assert_eq!(a.records(), b.records());
        assert_eq!(a.end_time(), b.end_time());
        assert_eq!(a.total_requests(), b.total_requests());
    }

    #[test]
    fn drain_between_offers_preserves_order() {
        let w = Workload::from_arrivals((0..30).map(|i| ms(i * 3)));
        let whole = streamed(&w).into_records();

        let mut sim = StreamingSimulation::new(FcfsScheduler::new())
            .server(FixedRateServer::new(Iops::new(100.0)));
        let mut collected = Vec::new();
        for &r in w.requests() {
            sim.offer(r);
            collected.extend(sim.drain_completions());
        }
        sim.finish();
        collected.extend(sim.drain_completions());
        assert_eq!(collected, whole);
    }

    #[test]
    fn completions_wait_for_the_next_arrival() {
        // One request in service; its completion is in the future, but the
        // engine must not process it while another arrival could precede it.
        let mut sim = StreamingSimulation::new(FcfsScheduler::new())
            .server(FixedRateServer::new(Iops::new(100.0)));
        sim.offer(Request::at(ms(0)));
        assert_eq!(sim.drain_completions().count(), 0);
        // A later arrival resolves the ambiguity up to its own timestamp...
        sim.offer(Request::at(ms(50)));
        assert_eq!(sim.drain_completions().count(), 1);
        // ...and finish() resolves the rest.
        sim.finish();
        assert_eq!(sim.drain_completions().count(), 1);
    }

    #[test]
    fn finish_is_idempotent_and_empty_stream_is_fine() {
        let mut sim = StreamingSimulation::new(FcfsScheduler::new())
            .server(FixedRateServer::new(Iops::new(100.0)));
        sim.finish();
        sim.finish();
        assert_eq!(sim.offered(), 0);
        assert_eq!(sim.end_time(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "offered in order")]
    fn rejects_out_of_order_offers() {
        let mut sim = StreamingSimulation::new(FcfsScheduler::new())
            .server(FixedRateServer::new(Iops::new(100.0)));
        sim.offer(Request::at(ms(10)));
        sim.offer(Request::at(ms(5)));
    }

    #[test]
    #[should_panic(expected = "offer after finish")]
    fn rejects_offers_after_finish() {
        let mut sim = StreamingSimulation::new(FcfsScheduler::new())
            .server(FixedRateServer::new(Iops::new(100.0)));
        sim.finish();
        sim.offer(Request::at(ms(1)));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn requires_a_server() {
        let mut sim = StreamingSimulation::new(FcfsScheduler::new());
        sim.offer(Request::at(ms(0)));
    }
}
