//! # gqos-trace — storage workload modelling for graduated QoS
//!
//! Foundation crate of the `gqos` workspace, a from-scratch reproduction of
//! *"Graduated QoS by Decomposing Bursts: Don't Let the Tail Wag Your
//! Server"* (Lu, Varman, Doshi — ICDCS 2009).
//!
//! This crate provides everything the QoS scheduling layers need to describe
//! and analyse arrival streams:
//!
//! - [`Workload`] — an arrival-ordered request stream with the merge / shift
//!   / window algebra used by the consolidation experiments;
//! - [`ArrivalCurve`] and [`ServiceAnalysis`] — the paper's analytical model
//!   (cumulative arrival curve, service-curve limit, Lemma 1 lower bound on
//!   forced deadline misses);
//! - [`RateSeries`] and [`stats`] — windowed rates and burstiness metrics;
//! - [`envelope`] — token-bucket `(σ, ρ)` arrival-curve envelopes;
//! - [`gen`] — deterministic synthetic generators (Poisson, ON/OFF, MMPP,
//!   paced, b-model) and [`gen::profiles`] calibrated to the paper's traces;
//! - [`spc`] — SPC-format trace I/O so real repository traces drop in.
//!
//! # Examples
//!
//! Generate a bursty workload and quantify how unbalanced it is:
//!
//! ```
//! use gqos_trace::gen::profiles::TraceProfile;
//! use gqos_trace::{BurstStats, RateSeries, SimDuration};
//!
//! let workload = TraceProfile::OpenMail.generate(SimDuration::from_secs(60), 42);
//! let series = RateSeries::new(&workload, SimDuration::from_millis(100));
//! let stats = BurstStats::new(&series);
//! assert!(stats.peak_to_mean() > 2.0); // bursts dwarf the average rate
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod column;
mod curve;
pub mod envelope;
pub mod gen;
mod request;
pub mod spc;
pub mod stats;
mod summary;
mod time;
mod window;
mod workload;

pub use column::ArrivalColumn;
pub use curve::{ArrivalCurve, BusyPeriod, ServiceAnalysis};
pub use request::{LogicalBlock, Request, RequestId, RequestKind, DEFAULT_REQUEST_BYTES};
pub use stats::{BurstEpisode, BurstStats};
pub use summary::TraceSummary;
pub use time::{Iops, SimDuration, SimTime};
pub use window::RateSeries;
pub use workload::{ArrivalCounts, Workload, WorkloadBuilder};
