//! Time-windowed request-rate series.
//!
//! The paper visualises workloads as aggregated request counts in 100 ms
//! windows (Figure 2). [`RateSeries`] produces exactly that view and backs
//! the burstiness statistics in [`crate::stats`].

use std::fmt;

use crate::time::{SimDuration, SimTime};
use crate::workload::Workload;

/// Request counts aggregated into fixed-width, contiguous time windows.
///
/// Window `i` covers `[origin + i·w, origin + (i+1)·w)`.
///
/// # Examples
///
/// ```
/// use gqos_trace::{RateSeries, SimDuration, SimTime, Workload};
///
/// let w = Workload::from_arrivals([
///     SimTime::from_millis(10),
///     SimTime::from_millis(20),
///     SimTime::from_millis(150),
/// ]);
/// let series = RateSeries::new(&w, SimDuration::from_millis(100));
/// assert_eq!(series.counts(), &[2, 1]);
/// assert_eq!(series.peak_iops(), 20.0); // 2 requests / 100 ms
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct RateSeries {
    origin: SimTime,
    window: SimDuration,
    counts: Vec<u64>,
}

impl RateSeries {
    /// Aggregates `workload` into windows of width `window`, starting at the
    /// first arrival (or time zero for an empty workload).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(workload: &Workload, window: SimDuration) -> Self {
        RateSeries::with_origin(
            workload,
            window,
            workload.first_arrival().unwrap_or(SimTime::ZERO),
        )
    }

    /// Aggregates `workload` into windows of width `window`, anchored at
    /// `origin`. Requests arriving before `origin` are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn with_origin(workload: &Workload, window: SimDuration, origin: SimTime) -> Self {
        assert!(!window.is_zero(), "window width must be positive");
        let mut counts = Vec::new();
        for r in workload.iter() {
            if r.arrival < origin {
                continue;
            }
            let idx = ((r.arrival - origin) / window) as usize;
            if idx >= counts.len() {
                counts.resize(idx + 1, 0);
            }
            counts[idx] += 1;
        }
        RateSeries {
            origin,
            window,
            counts,
        }
    }

    /// The anchor instant of window 0.
    pub fn origin(&self) -> SimTime {
        self.origin
    }

    /// The window width.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Per-window request counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of windows (including empty interior windows).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` if no window exists.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Start instant of window `i`.
    pub fn window_start(&self, i: usize) -> SimTime {
        self.origin + self.window * i as u64
    }

    /// Rate of window `i` in IOPS.
    pub fn iops_at(&self, i: usize) -> f64 {
        self.counts[i] as f64 / self.window.as_secs_f64()
    }

    /// Iterates over `(window start, IOPS)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        let secs = self.window.as_secs_f64();
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &n)| (self.window_start(i), n as f64 / secs))
    }

    /// The maximum window rate in IOPS (zero for an empty series).
    pub fn peak_iops(&self) -> f64 {
        self.counts
            .iter()
            .copied()
            .max()
            .map_or(0.0, |n| n as f64 / self.window.as_secs_f64())
    }

    /// The mean window rate in IOPS (zero for an empty series).
    pub fn mean_iops(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        let total: u64 = self.counts.iter().sum();
        total as f64 / (self.counts.len() as f64 * self.window.as_secs_f64())
    }

    /// Total requests across all windows.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl fmt::Display for RateSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} windows of {} (mean {:.1} IOPS, peak {:.1} IOPS)",
            self.len(),
            self.window,
            self.mean_iops(),
            self.peak_iops()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn windows_partition_the_timeline() {
        let w = Workload::from_arrivals([ms(0), ms(99), ms(100), ms(250)]);
        let s = RateSeries::new(&w, SimDuration::from_millis(100));
        assert_eq!(s.counts(), &[2, 1, 1]);
        assert_eq!(s.total(), 4);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn interior_gaps_are_zero_windows() {
        let w = Workload::from_arrivals([ms(0), ms(500)]);
        let s = RateSeries::new(&w, SimDuration::from_millis(100));
        assert_eq!(s.counts(), &[1, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn origin_anchors_window_zero() {
        let w = Workload::from_arrivals([ms(150), ms(250)]);
        let s = RateSeries::with_origin(&w, SimDuration::from_millis(100), ms(100));
        assert_eq!(s.counts(), &[1, 1]);
        assert_eq!(s.origin(), ms(100));
        assert_eq!(s.window_start(1), ms(200));
    }

    #[test]
    fn pre_origin_requests_are_ignored() {
        let w = Workload::from_arrivals([ms(0), ms(150)]);
        let s = RateSeries::with_origin(&w, SimDuration::from_millis(100), ms(100));
        assert_eq!(s.total(), 1);
    }

    #[test]
    fn rates_scale_by_window_width() {
        let w = Workload::from_arrivals([ms(0), ms(10), ms(20)]);
        let s = RateSeries::new(&w, SimDuration::from_millis(100));
        assert_eq!(s.iops_at(0), 30.0);
        assert_eq!(s.peak_iops(), 30.0);
        assert_eq!(s.mean_iops(), 30.0);
    }

    #[test]
    fn mean_counts_empty_windows() {
        let w = Workload::from_arrivals([ms(0), ms(199)]);
        let s = RateSeries::new(&w, SimDuration::from_millis(100));
        // 2 requests over 2 windows of 100 ms = 10 IOPS mean, 10 IOPS peak.
        assert_eq!(s.mean_iops(), 10.0);
        assert_eq!(s.peak_iops(), 10.0);
    }

    #[test]
    fn iter_yields_starts_and_rates() {
        let w = Workload::from_arrivals([ms(0), ms(100)]);
        let s = RateSeries::new(&w, SimDuration::from_millis(100));
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], (ms(0), 10.0));
        assert_eq!(v[1], (ms(100), 10.0));
    }

    #[test]
    fn empty_workload_series() {
        let s = RateSeries::new(&Workload::new(), SimDuration::from_millis(100));
        assert!(s.is_empty());
        assert_eq!(s.peak_iops(), 0.0);
        assert_eq!(s.mean_iops(), 0.0);
    }

    #[test]
    #[should_panic(expected = "window width")]
    fn zero_window_rejected() {
        let _ = RateSeries::new(&Workload::new(), SimDuration::ZERO);
    }

    #[test]
    fn display_is_informative() {
        let w = Workload::from_arrivals([ms(0)]);
        let s = RateSeries::new(&w, SimDuration::from_millis(100));
        assert!(s.to_string().contains("windows"));
    }
}
