//! Simulation time, duration, and service-rate newtypes.
//!
//! All simulation arithmetic is done on nanosecond-resolution integers so
//! that runs are exactly reproducible across platforms; floating point only
//! appears at the boundaries (statistics, rate conversions).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An instant on the simulation timeline, in nanoseconds since time zero.
///
/// `SimTime` is an absolute point; the difference of two `SimTime`s is a
/// [`SimDuration`].
///
/// # Examples
///
/// ```
/// use gqos_trace::{SimDuration, SimTime};
///
/// let t = SimTime::from_millis(250) + SimDuration::from_millis(750);
/// assert_eq!(t, SimTime::from_secs(1));
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use gqos_trace::SimDuration;
///
/// let delta = SimDuration::from_millis(10);
/// assert_eq!(delta.as_secs_f64(), 0.010);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Default)]
pub struct SimDuration(u64);

const NANOS_PER_MICRO: u64 = 1_000;
const NANOS_PER_MILLI: u64 = 1_000_000;
const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    /// The origin of the simulation timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from a raw nanosecond count.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * NANOS_PER_MICRO)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * NANOS_PER_MILLI)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Creates an instant from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, non-finite, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0 && secs <= (u64::MAX / NANOS_PER_SEC) as f64,
            "invalid simulation time in seconds: {secs}"
        );
        SimTime((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanosecond count since time zero.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// This instant expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Time elapsed from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier instant is later than self"),
        )
    }

    /// Time elapsed from `earlier` to `self`, or zero if `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, rhs: SimDuration) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Checked subtraction of a duration; `None` on underflow.
    pub fn checked_sub(self, rhs: SimDuration) -> Option<SimTime> {
        self.0.checked_sub(rhs.0).map(SimTime)
    }
}

impl SimDuration {
    /// An empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from a raw nanosecond count.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * NANOS_PER_MICRO)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * NANOS_PER_MILLI)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a span from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, non-finite, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0 && secs <= (u64::MAX / NANOS_PER_SEC) as f64,
            "invalid simulation duration in seconds: {secs}"
        );
        SimDuration((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// This span expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// `true` if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Span scaled by a non-negative factor, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid duration scale factor: {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(rhs.0).map(SimDuration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    /// Whole number of `rhs`-sized steps that fit in `self`.
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({:.6}s)", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({:.6}s)", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A service or arrival rate in I/O operations per second.
///
/// The value is guaranteed finite and strictly positive.
///
/// # Examples
///
/// ```
/// use gqos_trace::Iops;
///
/// let capacity = Iops::new(1000.0);
/// assert_eq!(capacity.service_time().as_millis_f64(), 1.0);
/// ```
#[derive(Copy, Clone, PartialEq, PartialOrd)]
pub struct Iops(f64);

impl Iops {
    /// Creates a rate from operations per second.
    ///
    /// # Panics
    ///
    /// Panics if `ops_per_sec` is not finite and strictly positive.
    pub fn new(ops_per_sec: f64) -> Self {
        Iops::try_new(ops_per_sec).unwrap_or_else(|| panic!("invalid IOPS rate: {ops_per_sec}"))
    }

    /// Creates a rate, returning `None` when `ops_per_sec` is not finite and
    /// strictly positive.
    pub fn try_new(ops_per_sec: f64) -> Option<Self> {
        (ops_per_sec.is_finite() && ops_per_sec > 0.0).then_some(Iops(ops_per_sec))
    }

    /// The rate as operations per second.
    pub const fn get(self) -> f64 {
        self.0
    }

    /// The time to serve one request at this rate, rounded to nanoseconds.
    pub fn service_time(self) -> SimDuration {
        SimDuration::from_secs_f64(1.0 / self.0)
    }

    /// The whole number of requests this rate completes within `window`
    /// (the paper's `C × δ`, i.e. the bound on the primary queue length).
    pub fn requests_within(self, window: SimDuration) -> u64 {
        (self.0 * window.as_secs_f64()).floor() as u64
    }
}

impl fmt::Debug for Iops {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Iops({})", self.0)
    }
}

impl fmt::Display for Iops {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} IOPS", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
        assert_eq!(SimTime::from_secs_f64(2.5), SimTime::from_millis(2500));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(
            SimDuration::from_secs_f64(0.010),
            SimDuration::from_millis(10)
        );
    }

    #[test]
    fn time_arithmetic_round_trips() {
        let base = SimTime::from_secs(5);
        let step = SimDuration::from_millis(1500);
        let later = base + step;
        assert_eq!(later - base, step);
        assert_eq!(later - step, base);
        assert_eq!(later.duration_since(base), step);
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
        assert_eq!(
            late.saturating_duration_since(early),
            SimDuration::from_secs(1)
        );
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_backwards() {
        let _ = SimTime::from_secs(1).duration_since(SimTime::from_secs(2));
    }

    #[test]
    fn duration_division_counts_steps() {
        let span = SimDuration::from_secs(1);
        let window = SimDuration::from_millis(100);
        assert_eq!(span / window, 10);
        assert_eq!(SimDuration::from_millis(250) / window, 2);
        assert_eq!(
            SimDuration::from_millis(250) % window,
            SimDuration::from_millis(50)
        );
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(1));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(d * 3, SimDuration::from_secs(6));
        assert_eq!(d / 4, SimDuration::from_millis(500));
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn iops_service_time() {
        assert_eq!(
            Iops::new(100.0).service_time(),
            SimDuration::from_millis(10)
        );
        assert_eq!(
            Iops::new(1_000_000.0).service_time(),
            SimDuration::from_micros(1)
        );
    }

    #[test]
    fn iops_requests_within_floors() {
        let c = Iops::new(1000.0);
        assert_eq!(c.requests_within(SimDuration::from_millis(10)), 10);
        let c = Iops::new(150.0);
        // 150 IOPS * 10 ms = 1.5 -> 1 request.
        assert_eq!(c.requests_within(SimDuration::from_millis(10)), 1);
    }

    #[test]
    fn iops_validation() {
        assert!(Iops::try_new(0.0).is_none());
        assert!(Iops::try_new(-5.0).is_none());
        assert!(Iops::try_new(f64::NAN).is_none());
        assert!(Iops::try_new(f64::INFINITY).is_none());
        assert!(Iops::try_new(1.0).is_some());
    }

    #[test]
    #[should_panic(expected = "invalid IOPS")]
    fn iops_new_panics_on_zero() {
        let _ = Iops::new(0.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_millis(10).to_string(), "0.010000s");
        assert_eq!(Iops::new(534.0).to_string(), "534.0 IOPS");
        assert!(!format!("{:?}", SimTime::ZERO).is_empty());
    }
}
