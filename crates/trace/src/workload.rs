//! An ordered stream of I/O requests and the algebra used to combine them.
//!
//! A [`Workload`] is the paper's arrival sequence `(a_i, n_i)`: requests
//! sorted by arrival time, several of which may share an instant. The
//! consolidation experiments (Figures 7 and 8) are built from the merge and
//! shift operations defined here.

use std::fmt;
use std::slice;
use std::sync::{Arc, Mutex, OnceLock};

use crate::column::ArrivalColumn;
use crate::request::{Request, RequestId};
use crate::summary::TraceSummary;
use crate::time::{SimDuration, SimTime};

/// Lazily-computed per-workload aggregates, shared by clones.
///
/// The requests of a [`Workload`] are immutable once constructed (every
/// transform builds a new workload; [`Extend`] swaps in a fresh cache), so
/// derived views can be computed once and handed out by reference: the
/// [`ArrivalColumn`] that every decomposition kernel scans, and the
/// [`TraceSummary`] statistics that experiment cells would otherwise
/// recompute per (deadline, fraction) grid point.
#[derive(Default, Debug)]
struct WorkloadCache {
    column: OnceLock<ArrivalColumn>,
    summaries: Mutex<Vec<(SimDuration, Arc<TraceSummary>)>>,
}

/// An immutable, arrival-ordered sequence of requests.
///
/// Invariants:
/// - requests are sorted by `arrival` (ties keep insertion order), and
/// - ids are the dense indices `0..len`, so `requests()[i].id.index() == i`.
///
/// # Examples
///
/// ```
/// use gqos_trace::{SimDuration, SimTime, Workload};
///
/// let w = Workload::from_arrivals([
///     SimTime::from_millis(0),
///     SimTime::from_millis(5),
///     SimTime::from_millis(5),
/// ]);
/// assert_eq!(w.len(), 3);
/// assert_eq!(w.span(), SimDuration::from_millis(5));
/// ```
#[derive(Clone, Default, Debug)]
pub struct Workload {
    requests: Vec<Request>,
    /// Memoised derived views; never compared, shared across clones.
    cache: Arc<WorkloadCache>,
}

impl PartialEq for Workload {
    fn eq(&self, other: &Self) -> bool {
        // Identity is the request sequence alone; the cache is a derived
        // view and clones may or may not share one.
        self.requests == other.requests
    }
}

impl Eq for Workload {}

impl Workload {
    /// Creates an empty workload.
    pub fn new() -> Self {
        Workload::default()
    }

    /// Builds a workload from arrival instants; other request fields take
    /// their defaults.
    pub fn from_arrivals<I>(arrivals: I) -> Self
    where
        I: IntoIterator<Item = SimTime>,
    {
        arrivals.into_iter().map(Request::at).collect()
    }

    /// Builds a workload from requests, sorting by arrival (stably) and
    /// reassigning dense ids.
    pub fn from_requests<I>(requests: I) -> Self
    where
        I: IntoIterator<Item = Request>,
    {
        let mut requests: Vec<Request> = requests.into_iter().collect();
        requests.sort_by_key(|r| r.arrival);
        Workload::from_sorted(requests)
    }

    fn from_sorted(mut requests: Vec<Request>) -> Self {
        for (i, r) in requests.iter_mut().enumerate() {
            r.id = RequestId::new(i as u64);
        }
        Workload {
            requests,
            cache: Arc::default(),
        }
    }

    /// The columnar arrival-time view of this workload, computed on first
    /// use and cached for the workload's lifetime (clones share the cache).
    ///
    /// This is the input of the allocation-free decomposition kernels in
    /// `gqos-core`: a sorted `u64` nanosecond slice the scan walks instead
    /// of the full request structs.
    pub fn arrival_column(&self) -> &ArrivalColumn {
        self.cache.column.get_or_init(|| ArrivalColumn::new(self))
    }

    /// A [`TraceSummary`] over rate windows of width `window`, memoised per
    /// distinct window so repeated experiment cells profile the trace once.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero (propagated from [`TraceSummary::new`]).
    pub fn cached_summary(&self, window: SimDuration) -> Arc<TraceSummary> {
        let mut summaries = self.cache.summaries.lock().expect("summary cache poisoned");
        if let Some((_, summary)) = summaries.iter().find(|(w, _)| *w == window) {
            return Arc::clone(summary);
        }
        let summary = Arc::new(TraceSummary::new(self, window));
        summaries.push((window, Arc::clone(&summary)));
        summary
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` if the workload holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The requests in arrival order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Iterates over the requests in arrival order.
    pub fn iter(&self) -> slice::Iter<'_, Request> {
        self.requests.iter()
    }

    /// Arrival time of the first request, if any.
    pub fn first_arrival(&self) -> Option<SimTime> {
        self.requests.first().map(|r| r.arrival)
    }

    /// Arrival time of the last request, if any.
    pub fn last_arrival(&self) -> Option<SimTime> {
        self.requests.last().map(|r| r.arrival)
    }

    /// Time between the first and last arrival (zero for fewer than two
    /// requests).
    pub fn span(&self) -> SimDuration {
        match (self.first_arrival(), self.last_arrival()) {
            (Some(first), Some(last)) => last - first,
            _ => SimDuration::ZERO,
        }
    }

    /// Mean arrival rate in IOPS over the workload's span, or zero when the
    /// span is empty.
    pub fn mean_iops(&self) -> f64 {
        let secs = self.span().as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.len() as f64 / secs
        }
    }

    /// Groups requests sharing an arrival instant into the paper's
    /// `(a_i, n_i)` pairs, in time order.
    pub fn arrival_counts(&self) -> ArrivalCounts<'_> {
        ArrivalCounts {
            rest: &self.requests,
        }
    }

    /// A copy of this workload with every arrival shifted later by `offset`
    /// (the `Shift-1s` / `Shift-100s` operation of Figure 7).
    pub fn shifted(&self, offset: SimDuration) -> Workload {
        let shifted = self.requests.iter().map(|r| Request {
            arrival: r.arrival + offset,
            ..*r
        });
        Workload::from_sorted(shifted.collect())
    }

    /// A copy with arrivals compressed (`factor < 1`) or dilated
    /// (`factor > 1`) in time around time zero. Request count is preserved;
    /// the mean rate scales by `1/factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and strictly positive.
    pub fn time_scaled(&self, factor: f64) -> Workload {
        assert!(
            factor.is_finite() && factor > 0.0,
            "invalid time scale factor: {factor}"
        );
        let scaled = self.requests.iter().map(|r| Request {
            arrival: SimTime::from_secs_f64(r.arrival.as_secs_f64() * factor),
            ..*r
        });
        // Scaling by a positive factor preserves order.
        Workload::from_sorted(scaled.collect())
    }

    /// Merges this workload with another, interleaving by arrival time
    /// (multiplexing two clients onto one server).
    pub fn merged(&self, other: &Workload) -> Workload {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut a, mut b) = (self.iter().peekable(), other.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    if x.arrival <= y.arrival {
                        out.push(*a.next().expect("peeked"));
                    } else {
                        out.push(*b.next().expect("peeked"));
                    }
                }
                (Some(_), None) => out.extend(a.by_ref().copied()),
                (None, Some(_)) => out.extend(b.by_ref().copied()),
                (None, None) => break,
            }
        }
        Workload::from_sorted(out)
    }

    /// The sub-workload with arrivals in `[start, end)`, re-identified.
    pub fn window(&self, start: SimTime, end: SimTime) -> Workload {
        let lo = self.requests.partition_point(|r| r.arrival < start);
        let hi = self.requests.partition_point(|r| r.arrival < end);
        Workload::from_sorted(self.requests[lo..hi].to_vec())
    }

    /// The first `n` requests as a new workload.
    pub fn truncated(&self, n: usize) -> Workload {
        Workload::from_sorted(self.requests[..n.min(self.len())].to_vec())
    }

    /// Number of requests arriving at or before `t` — the cumulative arrival
    /// curve `A(t)`.
    pub fn arrivals_by(&self, t: SimTime) -> u64 {
        self.requests.partition_point(|r| r.arrival <= t) as u64
    }

    /// A random subsample keeping each request independently with
    /// probability `keep`, deterministic in `seed`. Thinning a Poisson-like
    /// stream scales its rate without changing its character.
    ///
    /// # Panics
    ///
    /// Panics if `keep` is outside `[0, 1]`.
    pub fn thinned(&self, keep: f64, seed: u64) -> Workload {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        assert!(
            (0.0..=1.0).contains(&keep),
            "keep probability must be in [0, 1]: {keep}"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let kept = self.requests.iter().filter(|_| rng.gen_bool(keep)).copied();
        Workload::from_sorted(kept.collect())
    }

    /// Appends `other` after this workload, shifted so its first request
    /// arrives `gap` after this workload's last (session splicing).
    pub fn concat(&self, other: &Workload, gap: SimDuration) -> Workload {
        match (self.last_arrival(), other.first_arrival()) {
            (Some(last), Some(first)) => {
                let target_start = last + gap;
                let shift = target_start.saturating_duration_since(first);
                let shifted = other.shifted(shift);
                let mut all = self.requests.clone();
                all.extend(shifted.requests().iter().copied());
                Workload::from_sorted(all)
            }
            (None, _) => other.clone(),
            (_, None) => self.clone(),
        }
    }
}

impl FromIterator<Request> for Workload {
    fn from_iter<I: IntoIterator<Item = Request>>(iter: I) -> Self {
        Workload::from_requests(iter)
    }
}

impl Extend<Request> for Workload {
    fn extend<I: IntoIterator<Item = Request>>(&mut self, iter: I) {
        self.requests.extend(iter);
        self.requests.sort_by_key(|r| r.arrival);
        for (i, r) in self.requests.iter_mut().enumerate() {
            r.id = RequestId::new(i as u64);
        }
        // The requests changed: drop the memoised views. A fresh cache (not
        // a clear-in-place) so clones sharing the old Arc keep their still
        // valid views of the pre-extend workload.
        self.cache = Arc::default();
    }
}

impl<'a> IntoIterator for &'a Workload {
    type Item = &'a Request;
    type IntoIter = slice::Iter<'a, Request>;
    fn into_iter(self) -> Self::IntoIter {
        self.requests.iter()
    }
}

impl IntoIterator for Workload {
    type Item = Request;
    type IntoIter = std::vec::IntoIter<Request>;
    fn into_iter(self) -> Self::IntoIter {
        self.requests.into_iter()
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "workload of {} requests over {} ({:.1} IOPS mean)",
            self.len(),
            self.span(),
            self.mean_iops()
        )
    }
}

/// Iterator over `(arrival instant, request count)` pairs of a [`Workload`].
///
/// Produced by [`Workload::arrival_counts`].
#[derive(Clone, Debug)]
pub struct ArrivalCounts<'a> {
    rest: &'a [Request],
}

impl Iterator for ArrivalCounts<'_> {
    type Item = (SimTime, u64);

    fn next(&mut self) -> Option<Self::Item> {
        let first = self.rest.first()?;
        let n = self
            .rest
            .iter()
            .take_while(|r| r.arrival == first.arrival)
            .count();
        self.rest = &self.rest[n..];
        Some((first.arrival, n as u64))
    }
}

/// Incremental constructor for a [`Workload`].
///
/// # Examples
///
/// ```
/// use gqos_trace::{SimTime, WorkloadBuilder};
///
/// let mut b = WorkloadBuilder::new();
/// b.push(SimTime::from_millis(1));
/// b.push_n(SimTime::from_millis(2), 3);
/// let w = b.build();
/// assert_eq!(w.len(), 4);
/// ```
#[derive(Clone, Default, Debug)]
pub struct WorkloadBuilder {
    requests: Vec<Request>,
}

impl WorkloadBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        WorkloadBuilder::default()
    }

    /// Creates an empty builder with room for `capacity` requests.
    pub fn with_capacity(capacity: usize) -> Self {
        WorkloadBuilder {
            requests: Vec::with_capacity(capacity),
        }
    }

    /// Appends one request arriving at `t`.
    pub fn push(&mut self, t: SimTime) -> &mut Self {
        self.requests.push(Request::at(t));
        self
    }

    /// Appends `n` simultaneous requests arriving at `t`.
    pub fn push_n(&mut self, t: SimTime, n: u64) -> &mut Self {
        for _ in 0..n {
            self.requests.push(Request::at(t));
        }
        self
    }

    /// Appends a fully-specified request.
    pub fn push_request(&mut self, request: Request) -> &mut Self {
        self.requests.push(request);
        self
    }

    /// Number of requests collected so far.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` if nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Finishes the workload, sorting and assigning ids.
    pub fn build(&self) -> Workload {
        Workload::from_requests(self.requests.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::LogicalBlock;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn from_arrivals_sorts_and_ids_are_dense() {
        let w = Workload::from_arrivals([ms(5), ms(1), ms(3)]);
        let times: Vec<_> = w.iter().map(|r| r.arrival).collect();
        assert_eq!(times, vec![ms(1), ms(3), ms(5)]);
        for (i, r) in w.iter().enumerate() {
            assert_eq!(r.id.as_usize(), i);
        }
    }

    #[test]
    fn span_and_mean_rate() {
        let w = Workload::from_arrivals((0..=10).map(SimTime::from_secs));
        assert_eq!(w.span(), SimDuration::from_secs(10));
        assert!((w.mean_iops() - 1.1).abs() < 1e-9);
    }

    #[test]
    fn empty_workload_behaviour() {
        let w = Workload::new();
        assert!(w.is_empty());
        assert_eq!(w.span(), SimDuration::ZERO);
        assert_eq!(w.mean_iops(), 0.0);
        assert_eq!(w.first_arrival(), None);
        assert_eq!(w.arrival_counts().count(), 0);
    }

    #[test]
    fn arrival_counts_groups_ties() {
        let w = Workload::from_arrivals([ms(1), ms(1), ms(2), ms(5), ms(5), ms(5)]);
        let counts: Vec<_> = w.arrival_counts().collect();
        assert_eq!(counts, vec![(ms(1), 2), (ms(2), 1), (ms(5), 3)]);
    }

    #[test]
    fn shifted_moves_every_arrival() {
        let w = Workload::from_arrivals([ms(0), ms(10)]);
        let s = w.shifted(SimDuration::from_millis(100));
        assert_eq!(s.first_arrival(), Some(ms(100)));
        assert_eq!(s.last_arrival(), Some(ms(110)));
        assert_eq!(s.len(), w.len());
    }

    #[test]
    fn time_scaled_compresses() {
        let w = Workload::from_arrivals([ms(0), ms(100), ms(200)]);
        let fast = w.time_scaled(0.5);
        assert_eq!(fast.last_arrival(), Some(ms(100)));
        assert_eq!(fast.len(), 3);
        assert!((fast.mean_iops() - 2.0 * w.mean_iops()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid time scale")]
    fn time_scaled_rejects_zero() {
        let _ = Workload::new().time_scaled(0.0);
    }

    #[test]
    fn merged_interleaves_and_preserves_counts() {
        let a = Workload::from_arrivals([ms(1), ms(4)]);
        let b = Workload::from_arrivals([ms(2), ms(3), ms(9)]);
        let m = a.merged(&b);
        assert_eq!(m.len(), 5);
        let times: Vec<_> = m.iter().map(|r| r.arrival).collect();
        assert_eq!(times, vec![ms(1), ms(2), ms(3), ms(4), ms(9)]);
    }

    #[test]
    fn merged_with_empty_is_identity_on_times() {
        let a = Workload::from_arrivals([ms(1), ms(2)]);
        let m = a.merged(&Workload::new());
        assert_eq!(m.len(), 2);
        assert_eq!(m.requests()[0].arrival, ms(1));
    }

    #[test]
    fn window_selects_half_open_range() {
        let w = Workload::from_arrivals([ms(0), ms(5), ms(10), ms(15)]);
        let mid = w.window(ms(5), ms(15));
        let times: Vec<_> = mid.iter().map(|r| r.arrival).collect();
        assert_eq!(times, vec![ms(5), ms(10)]);
    }

    #[test]
    fn truncated_takes_prefix() {
        let w = Workload::from_arrivals([ms(0), ms(5), ms(10)]);
        assert_eq!(w.truncated(2).len(), 2);
        assert_eq!(w.truncated(99).len(), 3);
        assert_eq!(w.truncated(0).len(), 0);
    }

    #[test]
    fn arrivals_by_is_cumulative_curve() {
        let w = Workload::from_arrivals([ms(1), ms(1), ms(3)]);
        assert_eq!(w.arrivals_by(ms(0)), 0);
        assert_eq!(w.arrivals_by(ms(1)), 2);
        assert_eq!(w.arrivals_by(ms(2)), 2);
        assert_eq!(w.arrivals_by(ms(3)), 3);
        assert_eq!(w.arrivals_by(ms(1000)), 3);
    }

    #[test]
    fn extend_resorts_and_reassigns_ids() {
        let mut w = Workload::from_arrivals([ms(5)]);
        w.extend([Request::at(ms(1)).with_block(LogicalBlock::new(9))]);
        assert_eq!(w.requests()[0].arrival, ms(1));
        assert_eq!(w.requests()[0].block, LogicalBlock::new(9));
        assert_eq!(w.requests()[1].id.as_usize(), 1);
    }

    #[test]
    fn builder_collects_and_builds() {
        let mut b = WorkloadBuilder::with_capacity(4);
        b.push(ms(3))
            .push_n(ms(1), 2)
            .push_request(Request::at(ms(2)));
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        let w = b.build();
        let times: Vec<_> = w.iter().map(|r| r.arrival).collect();
        assert_eq!(times, vec![ms(1), ms(1), ms(2), ms(3)]);
    }

    #[test]
    fn stable_sort_preserves_tie_order() {
        // Two requests at the same instant with distinct blocks: insertion
        // order must be kept so decomposition decisions are deterministic.
        let r1 = Request::at(ms(1)).with_block(LogicalBlock::new(1));
        let r2 = Request::at(ms(1)).with_block(LogicalBlock::new(2));
        let w = Workload::from_requests([r1, r2]);
        assert_eq!(w.requests()[0].block, LogicalBlock::new(1));
        assert_eq!(w.requests()[1].block, LogicalBlock::new(2));
    }

    #[test]
    fn display_mentions_count() {
        let w = Workload::from_arrivals([ms(0), ms(1)]);
        assert!(w.to_string().contains("2 requests"));
    }

    #[test]
    fn thinned_keeps_roughly_the_fraction() {
        let w = Workload::from_arrivals((0..10_000).map(ms));
        let half = w.thinned(0.5, 9);
        let frac = half.len() as f64 / w.len() as f64;
        assert!((frac - 0.5).abs() < 0.03, "kept {frac}");
        // Deterministic and order-preserving.
        assert_eq!(half, w.thinned(0.5, 9));
        assert!(half
            .requests()
            .windows(2)
            .all(|p| p[0].arrival <= p[1].arrival));
    }

    #[test]
    fn thinned_extremes() {
        let w = Workload::from_arrivals((0..100).map(ms));
        assert_eq!(w.thinned(1.0, 1).len(), 100);
        assert_eq!(w.thinned(0.0, 1).len(), 0);
    }

    #[test]
    #[should_panic(expected = "keep probability")]
    fn thinned_validates_probability() {
        let _ = Workload::new().thinned(1.5, 0);
    }

    #[test]
    fn concat_splices_with_gap() {
        let a = Workload::from_arrivals([ms(0), ms(10)]);
        let b = Workload::from_arrivals([ms(3), ms(5)]);
        let joined = a.concat(&b, SimDuration::from_millis(100));
        assert_eq!(joined.len(), 4);
        let times: Vec<_> = joined.iter().map(|r| r.arrival).collect();
        // b's first request lands 100 ms after a's last (at 110 ms).
        assert_eq!(times, vec![ms(0), ms(10), ms(110), ms(112)]);
    }

    #[test]
    fn arrival_column_is_cached_and_shared_by_clones() {
        let w = Workload::from_arrivals([ms(1), ms(4), ms(9)]);
        let first = w.arrival_column() as *const _;
        let again = w.arrival_column() as *const _;
        assert_eq!(first, again, "column must be computed once");
        assert_eq!(
            w.arrival_column().nanos(),
            &[1_000_000, 4_000_000, 9_000_000]
        );
        let clone = w.clone();
        assert_eq!(clone.arrival_column() as *const _, first, "clones share");
    }

    #[test]
    fn extend_invalidates_cached_views() {
        let mut w = Workload::from_arrivals([ms(5)]);
        assert_eq!(w.arrival_column().nanos(), &[5_000_000]);
        let snapshot = w.clone();
        w.extend([Request::at(ms(1))]);
        assert_eq!(w.arrival_column().nanos(), &[1_000_000, 5_000_000]);
        // The pre-extend clone still sees its own (valid) cached view.
        assert_eq!(snapshot.arrival_column().nanos(), &[5_000_000]);
    }

    #[test]
    fn cached_summary_memoises_per_window() {
        let w = Workload::from_arrivals((0..100).map(|i| ms(i * 10)));
        let a = w.cached_summary(SimDuration::from_millis(100));
        let b = w.cached_summary(SimDuration::from_millis(100));
        assert!(std::sync::Arc::ptr_eq(&a, &b), "same window reuses");
        let c = w.cached_summary(SimDuration::from_millis(50));
        assert!(!std::sync::Arc::ptr_eq(&a, &c), "distinct windows differ");
        assert_eq!(a.requests(), 100);
        assert_eq!(
            *a,
            crate::TraceSummary::new(&w, SimDuration::from_millis(100))
        );
    }

    #[test]
    fn equality_ignores_cache_state() {
        let a = Workload::from_arrivals([ms(1), ms(2)]);
        let b = Workload::from_arrivals([ms(1), ms(2)]);
        let _ = a.arrival_column(); // populate one side only
        assert_eq!(a, b);
    }

    #[test]
    fn concat_with_empty_sides() {
        let a = Workload::from_arrivals([ms(1)]);
        let e = Workload::new();
        assert_eq!(a.concat(&e, SimDuration::from_secs(1)), a);
        assert_eq!(e.concat(&a, SimDuration::from_secs(1)), a);
    }
}
