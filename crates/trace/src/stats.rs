//! Burstiness statistics for workloads.
//!
//! These metrics quantify the "tail wagging the server" phenomenon the paper
//! targets: how far the instantaneous arrival rate departs from the
//! long-term average, how correlated the bursts are in time, and where the
//! burst episodes sit on the timeline.

use std::fmt;

use crate::time::{SimDuration, SimTime};
use crate::window::RateSeries;

/// Summary burstiness statistics of a windowed rate series.
///
/// # Examples
///
/// ```
/// use gqos_trace::{BurstStats, RateSeries, SimDuration, SimTime, Workload};
///
/// let w = Workload::from_arrivals((0..100).map(|i| SimTime::from_millis(i * 10)));
/// let series = RateSeries::new(&w, SimDuration::from_millis(100));
/// let stats = BurstStats::new(&series);
/// // A perfectly even workload has peak == mean.
/// assert!((stats.peak_to_mean() - 1.0).abs() < 1e-9);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct BurstStats {
    mean_iops: f64,
    peak_iops: f64,
    index_of_dispersion: f64,
    lag1_autocorrelation: f64,
}

impl BurstStats {
    /// Computes statistics over `series`.
    pub fn new(series: &RateSeries) -> Self {
        let counts = series.counts();
        BurstStats {
            mean_iops: series.mean_iops(),
            peak_iops: series.peak_iops(),
            index_of_dispersion: index_of_dispersion(counts),
            lag1_autocorrelation: autocorrelation(counts, 1),
        }
    }

    /// Mean arrival rate in IOPS.
    pub fn mean_iops(&self) -> f64 {
        self.mean_iops
    }

    /// Peak window arrival rate in IOPS.
    pub fn peak_iops(&self) -> f64 {
        self.peak_iops
    }

    /// Peak-to-mean rate ratio; 1.0 for a perfectly smooth workload, large
    /// for bursty ones (OpenMail in the paper: ≈ 4440 / 534 ≈ 8.3).
    pub fn peak_to_mean(&self) -> f64 {
        if self.mean_iops == 0.0 {
            0.0
        } else {
            self.peak_iops / self.mean_iops
        }
    }

    /// Index of dispersion for counts (variance/mean of window counts);
    /// 1.0 for a Poisson process, ≫ 1 for bursty arrivals.
    pub fn index_of_dispersion(&self) -> f64 {
        self.index_of_dispersion
    }

    /// Lag-1 autocorrelation of window counts; near zero for memoryless
    /// arrivals, positive when bursts persist across windows.
    pub fn lag1_autocorrelation(&self) -> f64 {
        self.lag1_autocorrelation
    }
}

impl fmt::Display for BurstStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:.1} IOPS, peak {:.1} IOPS (x{:.2}), IDC {:.2}, rho1 {:.3}",
            self.mean_iops,
            self.peak_iops,
            self.peak_to_mean(),
            self.index_of_dispersion,
            self.lag1_autocorrelation
        )
    }
}

/// Variance-to-mean ratio of window counts. Returns zero for fewer than two
/// windows or a zero mean.
pub fn index_of_dispersion(counts: &[u64]) -> f64 {
    if counts.len() < 2 {
        return 0.0;
    }
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<u64>() as f64 / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / (n - 1.0);
    var / mean
}

/// Sample autocorrelation of window counts at the given lag.
///
/// Returns zero when the series is too short or has zero variance.
pub fn autocorrelation(counts: &[u64], lag: usize) -> f64 {
    if lag == 0 {
        return 1.0;
    }
    if counts.len() <= lag + 1 {
        return 0.0;
    }
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<u64>() as f64 / n;
    let var: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - mean;
            d * d
        })
        .sum();
    if var == 0.0 {
        return 0.0;
    }
    let cov: f64 = counts
        .windows(lag + 1)
        .map(|w| (w[0] as f64 - mean) * (w[lag] as f64 - mean))
        .sum();
    cov / var
}

/// Estimates the Hurst exponent of a count series by rescaled-range (R/S)
/// analysis. `H ≈ 0.5` indicates short-range dependence; `H > 0.7` indicates
/// the long-range dependence reported for storage traffic.
///
/// Returns `None` when the series is shorter than 16 windows.
pub fn hurst_exponent(counts: &[u64]) -> Option<f64> {
    const MIN_LEN: usize = 16;
    if counts.len() < MIN_LEN {
        return None;
    }
    // Compute R/S at a range of block sizes and fit log(R/S) ~ H log(n).
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut block = 8usize;
    while block <= counts.len() / 2 {
        let mut rs_values = Vec::new();
        for chunk in counts.chunks_exact(block) {
            if let Some(rs) = rescaled_range(chunk) {
                rs_values.push(rs);
            }
        }
        if !rs_values.is_empty() {
            let mean_rs = rs_values.iter().sum::<f64>() / rs_values.len() as f64;
            if mean_rs > 0.0 {
                xs.push((block as f64).ln());
                ys.push(mean_rs.ln());
            }
        }
        block *= 2;
    }
    if xs.len() < 2 {
        return None;
    }
    Some(slope(&xs, &ys))
}

fn rescaled_range(chunk: &[u64]) -> Option<f64> {
    let n = chunk.len() as f64;
    let mean = chunk.iter().sum::<u64>() as f64 / n;
    let mut cum = 0.0;
    let mut min_dev = f64::INFINITY;
    let mut max_dev = f64::NEG_INFINITY;
    let mut var = 0.0;
    for &c in chunk {
        let d = c as f64 - mean;
        cum += d;
        min_dev = min_dev.min(cum);
        max_dev = max_dev.max(cum);
        var += d * d;
    }
    let std = (var / n).sqrt();
    if std == 0.0 {
        return None;
    }
    Some((max_dev - min_dev) / std)
}

fn slope(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let num: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let den: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// A contiguous run of windows whose rate exceeds a threshold.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct BurstEpisode {
    /// Start of the first over-threshold window.
    pub start: SimTime,
    /// Length of the episode.
    pub duration: SimDuration,
    /// Peak window rate within the episode, in IOPS.
    pub peak_iops: f64,
    /// Requests contained in the episode.
    pub requests: u64,
}

impl fmt::Display for BurstEpisode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "burst @{} for {} (peak {:.0} IOPS, {} requests)",
            self.start, self.duration, self.peak_iops, self.requests
        )
    }
}

/// Finds maximal runs of windows whose rate exceeds `threshold_factor` times
/// the series mean.
///
/// # Panics
///
/// Panics if `threshold_factor` is not finite and positive.
pub fn burst_episodes(series: &RateSeries, threshold_factor: f64) -> Vec<BurstEpisode> {
    assert!(
        threshold_factor.is_finite() && threshold_factor > 0.0,
        "invalid burst threshold factor: {threshold_factor}"
    );
    let threshold = series.mean_iops() * threshold_factor;
    let mut episodes = Vec::new();
    let mut current: Option<(usize, f64, u64)> = None; // (start idx, peak, reqs)
    for i in 0..series.len() {
        let rate = series.iops_at(i);
        if rate > threshold {
            let entry = current.get_or_insert((i, 0.0, 0));
            entry.1 = entry.1.max(rate);
            entry.2 += series.counts()[i];
        } else if let Some((start, peak, reqs)) = current.take() {
            episodes.push(BurstEpisode {
                start: series.window_start(start),
                duration: series.window() * (i - start) as u64,
                peak_iops: peak,
                requests: reqs,
            });
        }
    }
    if let Some((start, peak, reqs)) = current {
        episodes.push(BurstEpisode {
            start: series.window_start(start),
            duration: series.window() * (series.len() - start) as u64,
            peak_iops: peak,
            requests: reqs,
        });
    }
    episodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use crate::workload::Workload;

    fn series_from_counts(counts: &[u64]) -> RateSeries {
        // One request per count in consecutive 100 ms windows.
        let window = SimDuration::from_millis(100);
        let mut arrivals = Vec::new();
        for (i, &n) in counts.iter().enumerate() {
            for j in 0..n {
                arrivals.push(SimTime::from_millis(i as u64 * 100) + SimDuration::from_micros(j));
            }
        }
        RateSeries::with_origin(&Workload::from_arrivals(arrivals), window, SimTime::ZERO)
    }

    #[test]
    fn smooth_series_has_unit_ratios() {
        let s = series_from_counts(&[5; 50]);
        let b = BurstStats::new(&s);
        assert!((b.peak_to_mean() - 1.0).abs() < 1e-9);
        assert_eq!(b.index_of_dispersion(), 0.0);
    }

    #[test]
    fn bursty_series_has_large_dispersion() {
        let mut counts = vec![1u64; 99];
        counts.push(101);
        let s = series_from_counts(&counts);
        let b = BurstStats::new(&s);
        assert!(b.peak_to_mean() > 30.0, "ratio {}", b.peak_to_mean());
        assert!(b.index_of_dispersion() > 10.0);
    }

    #[test]
    fn index_of_dispersion_poissonish() {
        // Constant counts -> zero variance -> IDC 0.
        assert_eq!(index_of_dispersion(&[3, 3, 3, 3]), 0.0);
        // Alternating 0/2 -> mean 1, sample variance 4/3 -> IDC 4/3.
        let idc = index_of_dispersion(&[0, 2, 0, 2]);
        assert!((idc - 4.0 / 3.0).abs() < 1e-9, "idc {idc}");
    }

    #[test]
    fn index_of_dispersion_degenerate_inputs() {
        assert_eq!(index_of_dispersion(&[]), 0.0);
        assert_eq!(index_of_dispersion(&[7]), 0.0);
        assert_eq!(index_of_dispersion(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn autocorrelation_bounds_and_degenerates() {
        assert_eq!(autocorrelation(&[1, 2, 3], 0), 1.0);
        assert_eq!(autocorrelation(&[1, 2], 5), 0.0);
        assert_eq!(autocorrelation(&[4, 4, 4, 4], 1), 0.0);
    }

    #[test]
    fn autocorrelation_detects_persistence() {
        // Long alternating blocks -> strong positive lag-1 correlation.
        let mut counts = Vec::new();
        for block in 0..10 {
            let v = if block % 2 == 0 { 0 } else { 10 };
            counts.extend(std::iter::repeat_n(v, 20));
        }
        let rho = autocorrelation(&counts, 1);
        assert!(rho > 0.8, "rho {rho}");
        // Strictly alternating values -> strong negative correlation.
        let alt: Vec<u64> = (0..100).map(|i| if i % 2 == 0 { 0 } else { 10 }).collect();
        assert!(autocorrelation(&alt, 1) < -0.8);
    }

    #[test]
    fn hurst_of_short_series_is_none() {
        assert_eq!(hurst_exponent(&[1, 2, 3]), None);
    }

    #[test]
    fn hurst_of_alternating_series_is_low() {
        let alt: Vec<u64> = (0..512).map(|i| if i % 2 == 0 { 0 } else { 10 }).collect();
        let h = hurst_exponent(&alt).expect("long enough");
        assert!(h < 0.5, "H {h}");
    }

    #[test]
    fn hurst_of_persistent_series_exceeds_antipersistent() {
        // A smooth random-walk-like series (persistent) must score a higher
        // Hurst estimate than a strictly alternating (anti-persistent) one.
        let mut walk = Vec::new();
        let mut level: i64 = 50;
        let mut state: u64 = 0x9e3779b97f4a7c15;
        for _ in 0..512 {
            // xorshift for a deterministic pseudo-random step
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            level += (state % 7) as i64 - 3;
            level = level.clamp(0, 1000);
            walk.push(level as u64);
        }
        let h_walk = hurst_exponent(&walk).expect("long enough");
        let alt: Vec<u64> = (0..512).map(|i| if i % 2 == 0 { 0 } else { 10 }).collect();
        let h_alt = hurst_exponent(&alt).expect("long enough");
        assert!(
            h_walk > h_alt + 0.2,
            "walk H {h_walk}, alternating H {h_alt}"
        );
        assert!(h_walk > 0.6, "walk H {h_walk}");
    }

    #[test]
    fn burst_episodes_found_and_merged() {
        // mean over 10 windows: (8*1 + 2*11)/10 = 3 IOPS => 30 IOPS per-window
        // rate mean... series_from_counts uses 100 ms windows, so rates are
        // counts*10. Episode threshold 2x mean catches the two 11-count
        // windows as one contiguous episode.
        let s = series_from_counts(&[1, 1, 1, 1, 11, 11, 1, 1, 1, 1]);
        let eps = burst_episodes(&s, 2.0);
        assert_eq!(eps.len(), 1);
        let e = eps[0];
        assert_eq!(e.start, SimTime::from_millis(400));
        assert_eq!(e.duration, SimDuration::from_millis(200));
        assert_eq!(e.requests, 22);
        assert!((e.peak_iops - 110.0).abs() < 1e-9);
        assert!(e.to_string().contains("burst @"));
    }

    #[test]
    fn burst_episode_at_series_end_is_closed() {
        let s = series_from_counts(&[1, 1, 1, 1, 1, 1, 1, 1, 30, 30]);
        let eps = burst_episodes(&s, 3.0);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].requests, 60);
    }

    #[test]
    fn no_bursts_in_flat_series() {
        let s = series_from_counts(&[2; 20]);
        assert!(burst_episodes(&s, 1.5).is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid burst threshold")]
    fn burst_threshold_validated() {
        let s = series_from_counts(&[1, 2]);
        let _ = burst_episodes(&s, f64::NAN);
    }

    #[test]
    fn stats_display() {
        let s = series_from_counts(&[1, 2, 3]);
        assert!(BurstStats::new(&s).to_string().contains("IOPS"));
    }
}
