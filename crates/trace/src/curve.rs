//! Cumulative arrival curves, service curves, and overload analysis.
//!
//! This module implements the analytical model of Section 2.1 of the paper
//! (Figure 3): the cumulative arrival curve `A(t)`, the service curve of a
//! work-conserving rate-`C` server, and the *Service Curve Limit* (SCL) —
//! the line `S(t + δ)` above which pending requests can no longer all meet a
//! response-time bound of `δ`. From these it derives Lemma 1's lower bound on
//! the number of requests that **any** scheduler (online or offline) must
//! fail, which is the yardstick used to verify that RTT decomposition is
//! optimal.

use std::fmt;

use crate::time::{Iops, SimDuration, SimTime};
use crate::workload::Workload;

/// The cumulative arrival curve `A(t)` of a workload: a right-continuous
/// staircase counting requests that arrived at or before `t`.
///
/// # Examples
///
/// ```
/// use gqos_trace::{ArrivalCurve, SimTime, Workload};
///
/// let w = Workload::from_arrivals([SimTime::from_millis(1), SimTime::from_millis(1)]);
/// let curve = ArrivalCurve::new(&w);
/// assert_eq!(curve.cumulative_at(SimTime::from_millis(1)), 2);
/// assert_eq!(curve.cumulative_at(SimTime::ZERO), 0);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArrivalCurve {
    /// `(instant, cumulative count at and including that instant)`,
    /// strictly increasing in both components.
    steps: Vec<(SimTime, u64)>,
}

impl ArrivalCurve {
    /// Builds the arrival curve of `workload`.
    pub fn new(workload: &Workload) -> Self {
        let mut steps = Vec::new();
        let mut total = 0u64;
        for (t, n) in workload.arrival_counts() {
            total += n;
            steps.push((t, total));
        }
        ArrivalCurve { steps }
    }

    /// `A(t)`: requests arrived at or before `t`.
    pub fn cumulative_at(&self, t: SimTime) -> u64 {
        match self.steps.partition_point(|&(at, _)| at <= t) {
            0 => 0,
            i => self.steps[i - 1].1,
        }
    }

    /// The staircase breakpoints `(instant, cumulative count)`.
    pub fn steps(&self) -> &[(SimTime, u64)] {
        &self.steps
    }

    /// Total number of requests.
    pub fn total(&self) -> u64 {
        self.steps.last().map_or(0, |&(_, n)| n)
    }
}

/// A maximal interval during which a work-conserving rate-`C` server that
/// serves *every* request is continuously busy.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct BusyPeriod {
    /// First arrival of the period (service starts here).
    pub start: SimTime,
    /// Instant the backlog drains to zero.
    pub end: SimTime,
    /// Number of requests arriving within `[start, end)`.
    pub arrivals: u64,
}

impl BusyPeriod {
    /// Length of the busy period.
    pub fn len(&self) -> SimDuration {
        self.end - self.start
    }

    /// `true` if the period is degenerate (zero length).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for BusyPeriod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "busy [{} .. {}] ({} arrivals)",
            self.start, self.end, self.arrivals
        )
    }
}

/// Overload analysis of a workload against a rate-`C`, deadline-`δ` service
/// model (the paper's Figure 3).
///
/// All quantities are computed on the *fluid* model the paper analyses:
/// the server completes work continuously at `C` requests per second while
/// its backlog is non-zero.
#[derive(Clone, Debug)]
pub struct ServiceAnalysis {
    capacity: Iops,
    deadline: SimDuration,
    busy_periods: Vec<BusyPeriod>,
    /// Arrival instants where `A(a_k)` exceeds the SCL, with the overshoot
    /// amount `⌈A(a_k) − S(a_k + δ)⌉`.
    overload_instants: Vec<(SimTime, u64)>,
    lower_bound_misses: u64,
}

impl ServiceAnalysis {
    /// Analyses `workload` under capacity `capacity` and response-time bound
    /// `deadline`.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero.
    pub fn new(workload: &Workload, capacity: Iops, deadline: SimDuration) -> Self {
        assert!(!deadline.is_zero(), "deadline must be positive");
        let c = capacity.get();
        let delta = deadline.as_secs_f64();
        // Tolerance for float comparisons on cumulative work (requests).
        const EPS: f64 = 1e-9;

        let mut busy_periods = Vec::new();
        let mut overload_instants = Vec::new();
        let mut lower_bound = 0u64;

        // State of the current busy period.
        let mut period_start: Option<SimTime> = None;
        let mut period_start_secs = 0.0f64;
        let mut period_arrivals = 0u64;
        let mut backlog = 0.0f64; // outstanding requests (fluid)
        let mut last_t = 0.0f64;
        let mut period_max_deficit = 0u64;

        let close_period = |start: SimTime,
                            backlog_now: f64,
                            now_secs: f64,
                            arrivals: u64,
                            max_deficit: u64,
                            busy_periods: &mut Vec<BusyPeriod>,
                            lower_bound: &mut u64| {
            let end_secs = now_secs + backlog_now / c;
            busy_periods.push(BusyPeriod {
                start,
                end: SimTime::from_secs_f64(end_secs),
                arrivals,
            });
            *lower_bound += max_deficit;
        };

        for (t, n) in workload.arrival_counts() {
            let t_secs = t.as_secs_f64();
            if period_start.is_some() {
                // Drain the backlog up to this arrival.
                let drained = c * (t_secs - last_t);
                if backlog - drained <= EPS {
                    // The period ended strictly before this arrival.
                    let start = period_start.take().expect("period open");
                    close_period(
                        start,
                        backlog,
                        last_t,
                        period_arrivals,
                        period_max_deficit,
                        &mut busy_periods,
                        &mut lower_bound,
                    );
                    backlog = 0.0;
                    period_arrivals = 0;
                    period_max_deficit = 0;
                } else {
                    backlog -= drained;
                }
            }
            if period_start.is_none() {
                period_start = Some(t);
                period_start_secs = t_secs;
            }
            backlog += n as f64;
            period_arrivals += n;
            last_t = t_secs;

            // Lemma 1 deficit at this arrival instant: requests of this busy
            // period with deadline ≤ t + δ, minus the service any scheduler
            // can complete on them by then (they arrive no earlier than the
            // period start, where the server had no carried-over backlog).
            let servable = c * (t_secs + delta - period_start_secs);
            let deficit = period_arrivals as f64 - servable;
            if deficit > EPS {
                let overshoot = deficit.ceil() as u64;
                overload_instants.push((t, overshoot));
                period_max_deficit = period_max_deficit.max(overshoot);
            }
        }
        if let Some(start) = period_start {
            close_period(
                start,
                backlog,
                last_t,
                period_arrivals,
                period_max_deficit,
                &mut busy_periods,
                &mut lower_bound,
            );
        }

        ServiceAnalysis {
            capacity,
            deadline,
            busy_periods,
            overload_instants,
            lower_bound_misses: lower_bound,
        }
    }

    /// The analysed capacity.
    pub fn capacity(&self) -> Iops {
        self.capacity
    }

    /// The analysed response-time bound δ.
    pub fn deadline(&self) -> SimDuration {
        self.deadline
    }

    /// Busy periods of the fluid rate-`C` server serving every request.
    pub fn busy_periods(&self) -> &[BusyPeriod] {
        &self.busy_periods
    }

    /// Arrival instants whose cumulative arrivals exceed the Service Curve
    /// Limit, with the overshoot `⌈A(a_k) − S(a_k + δ)⌉` (Figure 3 points
    /// "2" and "3").
    pub fn overload_instants(&self) -> &[(SimTime, u64)] {
        &self.overload_instants
    }

    /// Lemma 1 (summed over busy periods): a lower bound on the number of
    /// requests that must miss the deadline under **any** scheduler, online
    /// or offline, at this capacity.
    pub fn lower_bound_misses(&self) -> u64 {
        self.lower_bound_misses
    }

    /// `true` if every request can meet the deadline at this capacity
    /// (the lower bound is zero and no overload instant exists).
    pub fn is_feasible(&self) -> bool {
        self.lower_bound_misses == 0
    }

    /// Fraction of the server's time spent busy over `span`, in `[0, 1]`.
    ///
    /// Returns zero for an empty span.
    pub fn utilization(&self, span: SimDuration) -> f64 {
        let total = span.as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .busy_periods
            .iter()
            .map(|p| p.len().as_secs_f64())
            .sum();
        (busy / total).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn arrival_curve_staircase() {
        let w = Workload::from_arrivals([ms(1), ms(1), ms(3), ms(7)]);
        let c = ArrivalCurve::new(&w);
        assert_eq!(c.total(), 4);
        assert_eq!(c.steps().len(), 3);
        assert_eq!(c.cumulative_at(ms(0)), 0);
        assert_eq!(c.cumulative_at(ms(1)), 2);
        assert_eq!(c.cumulative_at(ms(2)), 2);
        assert_eq!(c.cumulative_at(ms(3)), 3);
        assert_eq!(c.cumulative_at(ms(100)), 4);
    }

    #[test]
    fn arrival_curve_of_empty_workload() {
        let c = ArrivalCurve::new(&Workload::new());
        assert_eq!(c.total(), 0);
        assert_eq!(c.cumulative_at(SimTime::MAX), 0);
        assert!(c.steps().is_empty());
    }

    #[test]
    fn single_request_is_feasible_and_one_busy_period() {
        let w = Workload::from_arrivals([ms(10)]);
        let a = ServiceAnalysis::new(&w, Iops::new(100.0), SimDuration::from_millis(10));
        assert!(a.is_feasible());
        assert_eq!(a.busy_periods().len(), 1);
        let p = a.busy_periods()[0];
        assert_eq!(p.start, ms(10));
        // One request at 100 IOPS takes 10 ms of fluid service.
        assert_eq!(p.end, ms(20));
        assert_eq!(p.arrivals, 1);
        assert!(!p.is_empty());
    }

    #[test]
    fn separated_arrivals_form_separate_busy_periods() {
        // 100 IOPS -> 10 ms per request; arrivals 30 ms apart never overlap.
        let w = Workload::from_arrivals([ms(0), ms(30), ms(60)]);
        let a = ServiceAnalysis::new(&w, Iops::new(100.0), SimDuration::from_millis(10));
        assert_eq!(a.busy_periods().len(), 3);
        assert!(a.is_feasible());
    }

    #[test]
    fn burst_exceeding_scl_is_detected() {
        // Paper's Figure 3 scenario: C = 1 req per unit, δ = 1 unit, so at
        // most C·δ = 1 pending request can still meet its deadline. A burst
        // of 3 simultaneous requests must miss at least
        // ceil(3 - C·(0 + δ - 0)) = 2 deadlines.
        let w = Workload::from_arrivals([SimTime::ZERO, SimTime::ZERO, SimTime::ZERO]);
        let a = ServiceAnalysis::new(&w, Iops::new(1.0), SimDuration::from_secs(1));
        assert!(!a.is_feasible());
        assert_eq!(a.lower_bound_misses(), 2);
        assert_eq!(a.overload_instants().len(), 1);
        assert_eq!(a.overload_instants()[0], (SimTime::ZERO, 2));
    }

    #[test]
    fn deficit_accumulates_within_one_busy_period() {
        // C = 1 rps, δ = 1 s. Arrivals: 2 at t=0, 1 at t=1, 1 at t=2.
        // Backlog never drains (1 req/s arrival rate exactly matches C after
        // the initial burst), so this is one busy period. Deficit at t=0:
        // 2 - 1 = 1. At t=1: 4 arrivals? no: 3 - 1·(1+1) = 1. At t=2:
        // 4 - 3 = 1. Max deficit = 1 -> exactly one forced miss.
        let w = Workload::from_arrivals([
            SimTime::ZERO,
            SimTime::ZERO,
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        ]);
        let a = ServiceAnalysis::new(&w, Iops::new(1.0), SimDuration::from_secs(1));
        assert_eq!(a.busy_periods().len(), 1);
        assert_eq!(a.lower_bound_misses(), 1);
    }

    #[test]
    fn deficits_sum_across_busy_periods() {
        // Two identical overloaded bursts separated by ample idle time: the
        // lower bound counts both.
        let w = Workload::from_arrivals([
            SimTime::ZERO,
            SimTime::ZERO,
            SimTime::ZERO,
            SimTime::from_secs(100),
            SimTime::from_secs(100),
            SimTime::from_secs(100),
        ]);
        let a = ServiceAnalysis::new(&w, Iops::new(1.0), SimDuration::from_secs(1));
        assert_eq!(a.busy_periods().len(), 2);
        assert_eq!(a.lower_bound_misses(), 4);
    }

    #[test]
    fn higher_capacity_restores_feasibility() {
        let w = Workload::from_arrivals([SimTime::ZERO, SimTime::ZERO, SimTime::ZERO]);
        let a = ServiceAnalysis::new(&w, Iops::new(3.0), SimDuration::from_secs(1));
        assert!(a.is_feasible());
        assert_eq!(a.lower_bound_misses(), 0);
    }

    #[test]
    fn utilization_is_fraction_of_busy_time() {
        // One request at 100 IOPS = 10 ms busy in a 100 ms span.
        let w = Workload::from_arrivals([SimTime::ZERO]);
        let a = ServiceAnalysis::new(&w, Iops::new(100.0), SimDuration::from_millis(10));
        let u = a.utilization(SimDuration::from_millis(100));
        assert!((u - 0.1).abs() < 1e-9, "utilization was {u}");
        assert_eq!(a.utilization(SimDuration::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn zero_deadline_rejected() {
        let w = Workload::from_arrivals([SimTime::ZERO]);
        let _ = ServiceAnalysis::new(&w, Iops::new(1.0), SimDuration::ZERO);
    }

    #[test]
    fn empty_workload_analysis() {
        let a = ServiceAnalysis::new(&Workload::new(), Iops::new(1.0), SimDuration::from_secs(1));
        assert!(a.is_feasible());
        assert!(a.busy_periods().is_empty());
        assert_eq!(a.utilization(SimDuration::from_secs(1)), 0.0);
    }

    #[test]
    fn accessors_round_trip() {
        let w = Workload::from_arrivals([SimTime::ZERO]);
        let a = ServiceAnalysis::new(&w, Iops::new(50.0), SimDuration::from_millis(20));
        assert_eq!(a.capacity().get(), 50.0);
        assert_eq!(a.deadline(), SimDuration::from_millis(20));
        assert!(a.busy_periods()[0].to_string().contains("busy ["));
    }
}
