//! Token-bucket envelopes: the `(σ, ρ)` arrival-curve characterisation.
//!
//! A stream *conforms* to a token bucket `(σ, ρ)` when every interval
//! `[s, t]` contains at most `σ + ρ·(t − s)` arrivals. The set of minimal
//! conforming pairs forms the stream's *envelope* — the workload-side
//! counterpart of the service-curve analysis in [`crate::ServiceAnalysis`],
//! and the quantity arrival-curve QoS schedulers (pClock-style
//! specifications) and statistical admission control are parameterised by.
//!
//! For bursty storage workloads the envelope makes the provisioning dilemma
//! visible: σ explodes as ρ approaches the mean rate (the whole burst must
//! fit in the bucket), which is exactly the worst-case reservation problem
//! the paper's decomposition dissolves.

use crate::time::SimDuration;
use crate::workload::Workload;

/// One point of a token-bucket envelope: the minimum burst allowance σ
/// making the workload conform at drain rate ρ.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct EnvelopePoint {
    /// Token rate ρ in requests per second.
    pub rate: f64,
    /// Minimum bucket depth σ (requests) for full conformance at `rate`.
    pub burst: f64,
}

/// Computes the minimum bucket depth σ such that every request of
/// `workload` conforms to a token bucket of rate `rate` — i.e. the maximum
/// over arrival instants `t` of `A[s, t] − ρ·(t − s)` over all window
/// starts `s`.
///
/// Runs in `O(N)` using the standard bucket-simulation argument: track the
/// bucket level as requests consume tokens that refill at `rate`; the
/// minimal σ is the peak deficit.
///
/// # Panics
///
/// Panics if `rate` is not finite and strictly positive.
///
/// # Examples
///
/// ```
/// use gqos_trace::envelope::min_burst;
/// use gqos_trace::{SimTime, Workload};
///
/// // 5 simultaneous requests need a bucket of 5 at any finite rate.
/// let w = Workload::from_arrivals(vec![SimTime::ZERO; 5]);
/// assert_eq!(min_burst(&w, 100.0).ceil(), 5.0);
/// ```
pub fn min_burst(workload: &Workload, rate: f64) -> f64 {
    assert!(
        rate.is_finite() && rate > 0.0,
        "invalid envelope rate: {rate}"
    );
    // Simulate a bucket with unbounded depth starting empty *in deficit
    // terms*: deficit(t) = max over windows ending at t of arrivals - ρ·len.
    // Classic recurrence: deficit += 1 per arrival, drains at ρ, floored at
    // 0; σ_min = max deficit seen *after* each arrival consumes its token.
    let mut deficit = 0.0f64;
    let mut max_deficit = 0.0f64;
    let mut last_secs = match workload.first_arrival() {
        Some(t) => t.as_secs_f64(),
        None => return 0.0,
    };
    for (t, n) in workload.arrival_counts() {
        let now = t.as_secs_f64();
        deficit = (deficit - rate * (now - last_secs)).max(0.0);
        deficit += n as f64;
        max_deficit = max_deficit.max(deficit);
        last_secs = now;
    }
    max_deficit
}

/// Evaluates the envelope at each rate in `rates`.
///
/// # Panics
///
/// Panics if any rate is not finite and strictly positive.
pub fn envelope(workload: &Workload, rates: &[f64]) -> Vec<EnvelopePoint> {
    rates
        .iter()
        .map(|&rate| EnvelopePoint {
            rate,
            burst: min_burst(workload, rate),
        })
        .collect()
}

/// `true` when every interval of `workload` holds at most
/// `burst + rate·len` requests.
///
/// # Panics
///
/// Panics if `rate` is not finite and strictly positive, or `burst` is
/// negative or non-finite.
pub fn conforms(workload: &Workload, rate: f64, burst: f64) -> bool {
    assert!(
        burst.is_finite() && burst >= 0.0,
        "invalid burst allowance: {burst}"
    );
    min_burst(workload, rate) <= burst + 1e-9
}

/// The smallest deadline a pClock-style `(σ, ρ, δ)` specification could
/// promise this workload on a server of capacity `capacity`: the time to
/// drain a full bucket, `σ_min(C) / C`.
///
/// # Panics
///
/// Panics if `capacity` is not finite and strictly positive.
pub fn drain_deadline(workload: &Workload, capacity: f64) -> SimDuration {
    let sigma = min_burst(workload, capacity);
    SimDuration::from_secs_f64(sigma / capacity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn empty_workload_needs_no_bucket() {
        assert_eq!(min_burst(&Workload::new(), 10.0), 0.0);
        assert_eq!(drain_deadline(&Workload::new(), 10.0), SimDuration::ZERO);
    }

    #[test]
    fn single_request_needs_one_token() {
        let w = Workload::from_arrivals([ms(5)]);
        assert_eq!(min_burst(&w, 1.0), 1.0);
    }

    #[test]
    fn burst_depth_equals_burst_size_at_any_rate() {
        let w = Workload::from_arrivals(vec![SimTime::ZERO; 8]);
        assert_eq!(min_burst(&w, 1.0), 8.0);
        assert_eq!(min_burst(&w, 10_000.0), 8.0);
    }

    #[test]
    fn paced_stream_at_its_rate_needs_one_token() {
        // 100 requests 10 ms apart = 100/s; at ρ = 100 the bucket refills
        // exactly one token per arrival.
        let w = Workload::from_arrivals((0..100).map(|i| ms(i * 10)));
        let sigma = min_burst(&w, 100.0);
        assert!(sigma <= 1.0 + 1e-9, "sigma {sigma}");
        // At half the rate, half of each gap goes unfunded: the deficit
        // climbs by 0.5 per request.
        let sigma = min_burst(&w, 50.0);
        assert!((sigma - 50.5).abs() < 1.0, "sigma {sigma}");
    }

    #[test]
    fn envelope_is_monotone_decreasing_in_rate() {
        let mut arrivals: Vec<SimTime> = (0..200).map(|i| ms(i * 7)).collect();
        arrivals.extend(vec![ms(350); 30]);
        let w = Workload::from_arrivals(arrivals);
        let points = envelope(&w, &[50.0, 100.0, 200.0, 400.0, 1000.0]);
        for pair in points.windows(2) {
            assert!(
                pair[1].burst <= pair[0].burst + 1e-9,
                "envelope not monotone: {points:?}"
            );
        }
        // The burst floor is the largest simultaneous batch.
        assert!(points.last().unwrap().burst >= 30.0);
    }

    #[test]
    fn conforms_matches_min_burst() {
        let w = Workload::from_arrivals(vec![ms(0), ms(0), ms(0), ms(100)]);
        let sigma = min_burst(&w, 20.0);
        assert!(conforms(&w, 20.0, sigma));
        assert!(!conforms(&w, 20.0, sigma - 0.5));
        assert!(conforms(&w, 20.0, sigma + 10.0));
    }

    #[test]
    fn drain_deadline_scales_with_burst() {
        let w = Workload::from_arrivals(vec![SimTime::ZERO; 10]);
        // σ = 10 at C = 100/s -> 100 ms to drain.
        assert_eq!(drain_deadline(&w, 100.0), SimDuration::from_millis(100));
    }

    #[test]
    fn envelope_explodes_near_the_mean_rate() {
        // The provisioning dilemma: a stream alternating 5 s at 80/s with
        // 5 s at 10/s (mean 45/s) needs a huge bucket at ρ ≈ mean — the
        // whole high period must fit — but only a tiny one at 3x mean.
        let mut arrivals = Vec::new();
        for c in 0..4u64 {
            let base = c * 10_000;
            for i in 0..400 {
                arrivals.push(ms(base + i * 125 / 10)); // 80/s for 5 s
            }
            for i in 0..50 {
                arrivals.push(ms(base + 5_000 + i * 100)); // 10/s for 5 s
            }
        }
        let w = Workload::from_arrivals(arrivals);
        let mean = w.mean_iops();
        let near_mean = min_burst(&w, mean * 1.05);
        let ample = min_burst(&w, mean * 3.0);
        assert!(
            near_mean > 20.0 * ample,
            "near-mean sigma {near_mean} vs ample {ample} (mean {mean})"
        );
    }

    #[test]
    #[should_panic(expected = "invalid envelope rate")]
    fn zero_rate_rejected() {
        let _ = min_burst(&Workload::new(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid burst allowance")]
    fn negative_burst_rejected() {
        let _ = conforms(&Workload::new(), 1.0, -1.0);
    }
}
