//! The unit of work: a single block-level I/O request.

use std::fmt;

use crate::time::SimTime;

/// Identifier of a request within one [`Workload`](crate::Workload).
///
/// Identifiers are dense indices assigned in arrival order, so they double as
/// positions into per-request result arrays.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Default, Debug)]
pub struct RequestId(u64);

impl RequestId {
    /// Creates an identifier from its dense index.
    pub const fn new(index: u64) -> Self {
        RequestId(index)
    }

    /// The dense index of this identifier.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The dense index as a `usize` for direct slice indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A logical block address on the backing device.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Default, Debug)]
pub struct LogicalBlock(u64);

impl LogicalBlock {
    /// Creates a logical block address.
    pub const fn new(lba: u64) -> Self {
        LogicalBlock(lba)
    }

    /// The raw logical block address.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Absolute distance in blocks to another address (seek distance proxy).
    pub const fn distance_to(self, other: LogicalBlock) -> u64 {
        self.0.abs_diff(other.0)
    }
}

impl fmt::Display for LogicalBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lba:{}", self.0)
    }
}

/// Direction of an I/O request.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Default, Debug)]
pub enum RequestKind {
    /// A read of the addressed blocks.
    #[default]
    Read,
    /// A write of the addressed blocks.
    Write,
}

impl fmt::Display for RequestKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestKind::Read => f.write_str("read"),
            RequestKind::Write => f.write_str("write"),
        }
    }
}

/// One block-level I/O request.
///
/// The scheduling model of the paper treats requests as unit jobs — storage
/// requests are already split by the OS into roughly equal-sized block
/// requests — so `block`, `bytes`, and `kind` only matter to the mechanical
/// disk model, not to the QoS algorithms.
///
/// This is a passive data record; fields are public by design.
///
/// # Examples
///
/// ```
/// use gqos_trace::{Request, SimTime};
///
/// let r = Request::at(SimTime::from_millis(5));
/// assert_eq!(r.arrival, SimTime::from_millis(5));
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct Request {
    /// Dense identifier within the owning workload.
    pub id: RequestId,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Starting logical block address.
    pub block: LogicalBlock,
    /// Transfer size in bytes.
    pub bytes: u32,
    /// Read or write.
    pub kind: RequestKind,
}

/// Default transfer size: storage QoS work assumes OS-split block requests
/// of at most a few tens of KiB; 8 KiB is a typical OLTP page.
pub const DEFAULT_REQUEST_BYTES: u32 = 8 * 1024;

impl Request {
    /// Creates a request arriving at `arrival` with default block, size, and
    /// kind. The id is assigned when the request joins a workload.
    pub fn at(arrival: SimTime) -> Self {
        Request {
            id: RequestId::default(),
            arrival,
            block: LogicalBlock::default(),
            bytes: DEFAULT_REQUEST_BYTES,
            kind: RequestKind::default(),
        }
    }

    /// Returns this request with the given id.
    pub fn with_id(mut self, id: RequestId) -> Self {
        self.id = id;
        self
    }

    /// Returns this request with the given arrival instant.
    pub fn with_arrival(mut self, arrival: SimTime) -> Self {
        self.arrival = arrival;
        self
    }

    /// Returns this request with the given block address.
    pub fn with_block(mut self, block: LogicalBlock) -> Self {
        self.block = block;
        self
    }

    /// Returns this request with the given transfer size in bytes.
    pub fn with_bytes(mut self, bytes: u32) -> Self {
        self.bytes = bytes;
        self
    }

    /// Returns this request with the given kind.
    pub fn with_kind(mut self, kind: RequestKind) -> Self {
        self.kind = kind;
        self
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} @{} ({} B, {})",
            self.id, self.kind, self.arrival, self.bytes, self.block
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_id_round_trips() {
        let id = RequestId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.as_usize(), 42);
        assert_eq!(id.to_string(), "r42");
    }

    #[test]
    fn logical_block_distance_is_symmetric() {
        let a = LogicalBlock::new(100);
        let b = LogicalBlock::new(175);
        assert_eq!(a.distance_to(b), 75);
        assert_eq!(b.distance_to(a), 75);
        assert_eq!(a.distance_to(a), 0);
    }

    #[test]
    fn builder_style_setters() {
        let r = Request::at(SimTime::from_secs(1))
            .with_id(RequestId::new(7))
            .with_arrival(SimTime::from_secs(2))
            .with_block(LogicalBlock::new(512))
            .with_bytes(4096)
            .with_kind(RequestKind::Write);
        assert_eq!(r.id, RequestId::new(7));
        assert_eq!(r.arrival, SimTime::from_secs(2));
        assert_eq!(r.block, LogicalBlock::new(512));
        assert_eq!(r.bytes, 4096);
        assert_eq!(r.kind, RequestKind::Write);
    }

    #[test]
    fn default_request_is_read_with_page_size() {
        let r = Request::at(SimTime::ZERO);
        assert_eq!(r.kind, RequestKind::Read);
        assert_eq!(r.bytes, DEFAULT_REQUEST_BYTES);
    }

    #[test]
    fn display_is_nonempty() {
        let r = Request::at(SimTime::from_millis(3));
        assert!(r.to_string().contains("read"));
        assert_eq!(RequestKind::Write.to_string(), "write");
    }
}
