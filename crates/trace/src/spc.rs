//! SPC-format trace I/O.
//!
//! The UMass Trace Repository distributes the WebSearch and FinTrans traces
//! in the Storage Performance Council format: one CSV record per request,
//!
//! ```text
//! ASU,LBA,Size,Opcode,Timestamp
//! 0,47126,8192,R,0.011413
//! ```
//!
//! where `ASU` is the application storage unit, `LBA` the logical block
//! address, `Size` the transfer size in bytes, `Opcode` `R`/`W` (case
//! insensitive), and `Timestamp` the arrival time in seconds. This module
//! reads and writes that format so the paper's original traces can be used
//! verbatim in place of the synthetic profiles.

use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

use crate::request::{LogicalBlock, Request, RequestKind};
use crate::time::SimTime;
use crate::workload::Workload;

/// An error produced while parsing an SPC trace.
#[derive(Debug)]
pub enum ParseSpcError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed record, with its 1-based line and field position and a
    /// description.
    Malformed {
        /// 1-based line number of the offending record.
        line: usize,
        /// 1-based comma-separated field index the error was detected in.
        column: usize,
        /// What was wrong with the record.
        reason: String,
    },
}

impl fmt::Display for ParseSpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseSpcError::Io(e) => write!(f, "i/o error reading SPC trace: {e}"),
            ParseSpcError::Malformed {
                line,
                column,
                reason,
            } => {
                write!(
                    f,
                    "malformed SPC record at line {line}, field {column}: {reason}"
                )
            }
        }
    }
}

impl Error for ParseSpcError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseSpcError::Io(e) => Some(e),
            ParseSpcError::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for ParseSpcError {
    fn from(e: io::Error) -> Self {
        ParseSpcError::Io(e)
    }
}

/// An incremental SPC record reader: an iterator yielding one parsed
/// [`Request`] per trace record, without materialising the whole file.
///
/// This is the streaming counterpart of [`read_trace`] (which is built on
/// it): blank lines and `#` comments are skipped, and each record goes
/// through the same hardened [`parse_record`] path, so the two agree on
/// every accept/reject decision. Requests are yielded in **file order**
/// with default ids; callers that need a sorted, densely-identified stream
/// (the contract of a `Workload`) must sort and assign ids themselves —
/// `read_trace` does so globally, the chunked `gqos-stream` adapter per
/// chunk.
///
/// # Examples
///
/// ```
/// use gqos_trace::spc::Records;
///
/// let trace = "# header\n0,47126,8192,R,0.011413\n0,47134,8192,W,0.024\n";
/// let mut records = Records::new(trace.as_bytes());
/// assert!(records.next().unwrap().is_ok());
/// assert!(records.next().unwrap().is_ok());
/// assert!(records.next().is_none());
/// ```
#[derive(Debug)]
pub struct Records<R: Read> {
    lines: io::Lines<BufReader<R>>,
    line_no: usize,
}

impl<R: Read> Records<R> {
    /// Creates a reader over `reader`. A `&mut` reference may be passed.
    pub fn new(reader: R) -> Self {
        Records {
            lines: BufReader::new(reader).lines(),
            line_no: 0,
        }
    }

    /// The 1-based line number of the most recently yielded record (0
    /// before the first), for error reporting by callers.
    pub fn line_number(&self) -> usize {
        self.line_no
    }
}

impl<R: Read> Iterator for Records<R> {
    type Item = Result<Request, ParseSpcError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let line = match self.lines.next()? {
                Ok(line) => line,
                Err(e) => return Some(Err(ParseSpcError::Io(e))),
            };
            self.line_no += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            return Some(parse_record(trimmed, self.line_no));
        }
    }
}

/// Reads an SPC-format trace into a [`Workload`].
///
/// A `&mut` reference may be passed for `reader`. Blank lines and lines
/// beginning with `#` are skipped. Records with more than five fields keep
/// only the first five (some repository variants append extras).
/// Out-of-order timestamps are sorted globally; for a bounded-memory
/// incremental read, use [`Records`] directly.
///
/// # Errors
///
/// Returns [`ParseSpcError`] on I/O failure or the first malformed record.
///
/// # Examples
///
/// ```
/// use gqos_trace::spc;
///
/// let trace = "0,47126,8192,R,0.011413\n0,47134,8192,W,0.024\n";
/// let w = spc::read_trace(trace.as_bytes())?;
/// assert_eq!(w.len(), 2);
/// # Ok::<(), gqos_trace::spc::ParseSpcError>(())
/// ```
pub fn read_trace<R: Read>(reader: R) -> Result<Workload, ParseSpcError> {
    let requests = Records::new(reader).collect::<Result<Vec<_>, _>>()?;
    Ok(Workload::from_requests(requests))
}

/// The largest timestamp (in seconds) the nanosecond simulation clock can
/// represent; anything larger in a trace is a corrupt record, not a valid
/// 580-year experiment.
const MAX_TIMESTAMP_SECS: f64 = (u64::MAX / 1_000_000_000) as f64;

fn parse_record(record: &str, line: usize) -> Result<Request, ParseSpcError> {
    let malformed = |column: usize, reason: String| ParseSpcError::Malformed {
        line,
        column,
        reason,
    };
    let fields: Vec<&str> = record.split(',').map(str::trim).collect();
    let field = |column: usize, name: &str| {
        fields
            .get(column - 1)
            .copied()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| malformed(column, format!("missing field `{name}`")))
    };

    let _asu = field(1, "asu")?;
    let lba: u64 = field(2, "lba")?
        .parse()
        .map_err(|e| malformed(2, format!("bad LBA: {e}")))?;
    let size: u32 = field(3, "size")?
        .parse()
        .map_err(|e| malformed(3, format!("bad size: {e}")))?;
    let opcode = field(4, "opcode")?;
    let kind = match opcode {
        "R" | "r" => RequestKind::Read,
        "W" | "w" => RequestKind::Write,
        other => return Err(malformed(4, format!("bad opcode `{other}`"))),
    };
    let ts: f64 = field(5, "timestamp")?
        .parse()
        .map_err(|e| malformed(5, format!("bad timestamp: {e}")))?;
    if !ts.is_finite() || ts < 0.0 {
        return Err(malformed(
            5,
            format!("negative or non-finite timestamp {ts}"),
        ));
    }
    // Pre-empt the SimTime constructor's panic on unrepresentable instants.
    if ts > MAX_TIMESTAMP_SECS {
        return Err(malformed(
            5,
            format!("timestamp {ts} overflows the nanosecond clock"),
        ));
    }

    Ok(Request::at(SimTime::from_secs_f64(ts))
        .with_block(LogicalBlock::new(lba))
        .with_bytes(size)
        .with_kind(kind))
}

/// Writes `workload` in SPC format. All requests are emitted under ASU 0.
///
/// A `&mut` reference may be passed for `writer`.
///
/// # Errors
///
/// Returns any underlying I/O error.
///
/// # Examples
///
/// ```
/// use gqos_trace::{spc, SimTime, Workload};
///
/// let w = Workload::from_arrivals([SimTime::from_millis(5)]);
/// let mut out = Vec::new();
/// spc::write_trace(&w, &mut out)?;
/// let text = String::from_utf8(out).unwrap();
/// assert!(text.starts_with("0,"));
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn write_trace<W: Write>(workload: &Workload, mut writer: W) -> io::Result<()> {
    for r in workload.iter() {
        let op = match r.kind {
            RequestKind::Read => 'R',
            RequestKind::Write => 'W',
        };
        writeln!(
            writer,
            "0,{},{},{},{:.6}",
            r.block.get(),
            r.bytes,
            op,
            r.arrival.as_secs_f64()
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn parses_canonical_records() {
        let trace = "0,47126,8192,R,0.011413\n1,100,4096,w,1.5\n";
        let w = read_trace(trace.as_bytes()).expect("valid trace");
        assert_eq!(w.len(), 2);
        let r0 = &w.requests()[0];
        assert_eq!(r0.block, LogicalBlock::new(47126));
        assert_eq!(r0.bytes, 8192);
        assert_eq!(r0.kind, RequestKind::Read);
        assert_eq!(r0.arrival, SimTime::from_secs_f64(0.011413));
        assert_eq!(w.requests()[1].kind, RequestKind::Write);
    }

    #[test]
    fn skips_blank_lines_and_comments() {
        let trace = "# header comment\n\n0,1,512,R,0.0\n   \n0,2,512,R,1.0\n";
        let w = read_trace(trace.as_bytes()).expect("valid trace");
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn tolerates_extra_fields_and_whitespace() {
        let trace = "0, 10, 8192 , R , 2.0, extra, fields\n";
        let w = read_trace(trace.as_bytes()).expect("valid trace");
        assert_eq!(w.len(), 1);
        assert_eq!(w.requests()[0].arrival, SimTime::from_secs(2));
    }

    #[test]
    fn sorts_out_of_order_timestamps() {
        let trace = "0,1,512,R,5.0\n0,2,512,R,1.0\n";
        let w = read_trace(trace.as_bytes()).expect("valid trace");
        assert_eq!(w.first_arrival(), Some(SimTime::from_secs(1)));
    }

    #[test]
    fn rejects_bad_opcode_with_line_and_column() {
        let trace = "0,1,512,R,0.0\n0,1,512,X,1.0\n";
        let err = read_trace(trace.as_bytes()).unwrap_err();
        match err {
            ParseSpcError::Malformed {
                line,
                column,
                ref reason,
            } => {
                assert_eq!(line, 2);
                assert_eq!(column, 4);
                assert!(reason.contains("opcode"), "{reason}");
            }
            other => panic!("unexpected error {other}"),
        }
        assert!(err.to_string().contains("line 2, field 4"));
    }

    #[test]
    fn rejects_unrepresentable_timestamp_instead_of_panicking() {
        // Finite but beyond what the nanosecond u64 clock can hold: must be
        // a parse error, not an assertion failure inside SimTime.
        let err = read_trace("0,1,512,R,1e300\n".as_bytes()).unwrap_err();
        match err {
            ParseSpcError::Malformed {
                column, ref reason, ..
            } => {
                assert_eq!(column, 5);
                assert!(reason.contains("overflows"), "{reason}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_nan_timestamp() {
        let err = read_trace("0,1,512,R,NaN\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("timestamp"), "{err}");
    }

    #[test]
    fn rejects_missing_fields() {
        let err = read_trace("0,1,512\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("missing field"));
    }

    #[test]
    fn rejects_negative_timestamp() {
        let err = read_trace("0,1,512,R,-3\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("timestamp"));
    }

    #[test]
    fn rejects_unparsable_numbers() {
        assert!(read_trace("0,abc,512,R,0\n".as_bytes()).is_err());
        assert!(read_trace("0,1,xyz,R,0\n".as_bytes()).is_err());
        assert!(read_trace("0,1,512,R,zzz\n".as_bytes()).is_err());
    }

    #[test]
    fn round_trip_preserves_workload() {
        let original = read_trace("0,5,4096,W,0.25\n0,9,8192,R,1.75\n".as_bytes()).unwrap();
        let mut bytes = Vec::new();
        write_trace(&original, &mut bytes).unwrap();
        let reparsed = read_trace(bytes.as_slice()).unwrap();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn incremental_reader_agrees_with_read_trace() {
        let trace = "# hdr\n0,5,4096,W,0.25\n\n0,9,8192,R,0.10\n0,1,512,r,0.50\n";
        let streamed: Vec<Request> = Records::new(trace.as_bytes())
            .collect::<Result<_, _>>()
            .expect("valid trace");
        // File order, default ids.
        assert_eq!(streamed.len(), 3);
        assert_eq!(streamed[0].arrival, SimTime::from_secs_f64(0.25));
        assert_eq!(streamed[1].arrival, SimTime::from_secs_f64(0.10));
        // read_trace = Records + global sort + dense ids.
        let whole = read_trace(trace.as_bytes()).expect("valid trace");
        let mut sorted = streamed.clone();
        sorted.sort_by_key(|r| r.arrival);
        let resorted: Vec<Request> = sorted
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.with_id(crate::request::RequestId::new(i as u64)))
            .collect();
        assert_eq!(whole.requests(), resorted.as_slice());
    }

    #[test]
    fn incremental_reader_reports_error_line() {
        let mut records = Records::new("0,1,512,R,0.0\n0,1,512,X,1.0\n".as_bytes());
        assert!(records.next().unwrap().is_ok());
        assert_eq!(records.line_number(), 1);
        let err = records.next().unwrap().unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn empty_input_is_empty_workload() {
        let w = read_trace("".as_bytes()).unwrap();
        assert!(w.is_empty());
        assert_eq!(w.span(), SimDuration::ZERO);
    }

    #[test]
    fn error_source_chain() {
        let err = read_trace("0,1,512,R,bad\n".as_bytes()).unwrap_err();
        assert!(err.source().is_none());
        let io_err = ParseSpcError::from(io::Error::other("boom"));
        assert!(io_err.source().is_some());
    }
}
