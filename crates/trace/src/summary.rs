//! One-look characterisation of a workload.

use std::fmt;

use crate::request::RequestKind;
use crate::stats::{autocorrelation, hurst_exponent, index_of_dispersion};
use crate::time::{SimDuration, SimTime};
use crate::window::RateSeries;
use crate::workload::Workload;

/// A full statistical profile of a workload: the numbers a provider looks
/// at before quoting an SLA.
///
/// # Examples
///
/// ```
/// use gqos_trace::{SimDuration, SimTime, TraceSummary, Workload};
///
/// let w = Workload::from_arrivals((0..200).map(|i| SimTime::from_millis(i * 5)));
/// let s = TraceSummary::new(&w, SimDuration::from_millis(100));
/// assert_eq!(s.requests(), 200);
/// assert!((s.mean_iops() - 200.0).abs() < 5.0);
/// assert!(s.peak_to_mean() < 1.2); // perfectly even
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct TraceSummary {
    requests: usize,
    span: SimDuration,
    first_arrival: Option<SimTime>,
    mean_iops: f64,
    peak_iops: f64,
    window: SimDuration,
    index_of_dispersion: f64,
    lag1_autocorrelation: f64,
    hurst: Option<f64>,
    read_fraction: f64,
    mean_bytes: f64,
}

impl TraceSummary {
    /// Profiles `workload` using rate windows of width `window`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(workload: &Workload, window: SimDuration) -> Self {
        let series = RateSeries::new(workload, window);
        let reads = workload
            .iter()
            .filter(|r| r.kind == RequestKind::Read)
            .count();
        let total_bytes: u64 = workload.iter().map(|r| r.bytes as u64).sum();
        let n = workload.len();
        TraceSummary {
            requests: n,
            span: workload.span(),
            first_arrival: workload.first_arrival(),
            mean_iops: series.mean_iops(),
            peak_iops: series.peak_iops(),
            window,
            index_of_dispersion: index_of_dispersion(series.counts()),
            lag1_autocorrelation: autocorrelation(series.counts(), 1),
            hurst: hurst_exponent(series.counts()),
            read_fraction: if n == 0 { 0.0 } else { reads as f64 / n as f64 },
            mean_bytes: if n == 0 {
                0.0
            } else {
                total_bytes as f64 / n as f64
            },
        }
    }

    /// Total requests.
    pub fn requests(&self) -> usize {
        self.requests
    }

    /// Time between first and last arrival.
    pub fn span(&self) -> SimDuration {
        self.span
    }

    /// First arrival instant, if any.
    pub fn first_arrival(&self) -> Option<SimTime> {
        self.first_arrival
    }

    /// Mean windowed arrival rate in IOPS.
    pub fn mean_iops(&self) -> f64 {
        self.mean_iops
    }

    /// Peak windowed arrival rate in IOPS.
    pub fn peak_iops(&self) -> f64 {
        self.peak_iops
    }

    /// The window width the rates were computed over.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Peak/mean rate ratio (0.0 for an empty workload).
    pub fn peak_to_mean(&self) -> f64 {
        if self.mean_iops == 0.0 {
            0.0
        } else {
            self.peak_iops / self.mean_iops
        }
    }

    /// Index of dispersion for window counts.
    pub fn index_of_dispersion(&self) -> f64 {
        self.index_of_dispersion
    }

    /// Lag-1 autocorrelation of window counts.
    pub fn lag1_autocorrelation(&self) -> f64 {
        self.lag1_autocorrelation
    }

    /// Hurst exponent estimate (R/S), when the series is long enough.
    pub fn hurst(&self) -> Option<f64> {
        self.hurst
    }

    /// Fraction of read requests.
    pub fn read_fraction(&self) -> f64 {
        self.read_fraction
    }

    /// Mean transfer size in bytes.
    pub fn mean_bytes(&self) -> f64 {
        self.mean_bytes
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} requests over {} ({:.1}% reads, {:.0} B mean)",
            self.requests,
            self.span,
            self.read_fraction * 100.0,
            self.mean_bytes
        )?;
        write!(
            f,
            "rate: mean {:.1}, peak {:.1} IOPS (x{:.1}) in {} windows; IDC {:.2}, rho1 {:.2}, H {}",
            self.mean_iops,
            self.peak_iops,
            self.peak_to_mean(),
            self.window,
            self.index_of_dispersion,
            self.lag1_autocorrelation,
            self.hurst
                .map(|h| format!("{h:.2}"))
                .unwrap_or_else(|| "n/a".into()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{LogicalBlock, Request};

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn summary_of_even_stream() {
        let w = Workload::from_arrivals((0..300).map(|i| ms(i * 10)));
        let s = TraceSummary::new(&w, SimDuration::from_millis(100));
        assert_eq!(s.requests(), 300);
        assert!((s.mean_iops() - 100.0).abs() < 5.0);
        assert!(s.peak_to_mean() < 1.2);
        assert!(s.index_of_dispersion() < 0.2);
        assert_eq!(s.first_arrival(), Some(ms(0)));
        assert_eq!(s.window(), SimDuration::from_millis(100));
    }

    #[test]
    fn summary_of_bursty_stream() {
        let mut arrivals: Vec<SimTime> = (0..200).map(|i| ms(i * 10)).collect();
        arrivals.extend(vec![ms(1000); 100]);
        let w = Workload::from_arrivals(arrivals);
        let s = TraceSummary::new(&w, SimDuration::from_millis(100));
        assert!(s.peak_to_mean() > 4.0, "ratio {}", s.peak_to_mean());
        assert!(s.index_of_dispersion() > 5.0);
    }

    #[test]
    fn io_mix_fields() {
        let w = Workload::from_requests([
            Request::at(ms(0)).with_bytes(4096),
            Request::at(ms(1))
                .with_bytes(8192)
                .with_kind(RequestKind::Write)
                .with_block(LogicalBlock::new(5)),
        ]);
        let s = TraceSummary::new(&w, SimDuration::from_millis(10));
        assert_eq!(s.read_fraction(), 0.5);
        assert_eq!(s.mean_bytes(), 6144.0);
    }

    #[test]
    fn empty_workload_summary() {
        let s = TraceSummary::new(&Workload::new(), SimDuration::from_millis(100));
        assert_eq!(s.requests(), 0);
        assert_eq!(s.mean_iops(), 0.0);
        assert_eq!(s.peak_to_mean(), 0.0);
        assert_eq!(s.read_fraction(), 0.0);
        assert_eq!(s.mean_bytes(), 0.0);
        assert_eq!(s.first_arrival(), None);
        assert!(s.hurst().is_none());
    }

    #[test]
    fn display_is_two_lines() {
        let w = Workload::from_arrivals((0..50).map(|i| ms(i * 20)));
        let text = TraceSummary::new(&w, SimDuration::from_millis(100)).to_string();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("IDC"));
    }

    #[test]
    fn hurst_present_for_long_varying_series() {
        // A pseudo-randomly spread stream: window counts vary, so the R/S
        // estimate exists (a perfectly even stream has zero variance and
        // yields None).
        let w = Workload::from_arrivals((0..5000u64).map(|i| ms((i * 7919) % 20011)));
        let s = TraceSummary::new(&w, SimDuration::from_millis(100));
        assert!(s.hurst().is_some());
        assert!(s.lag1_autocorrelation().abs() <= 1.0);

        let even = Workload::from_arrivals((0..5000).map(|i| ms(i * 2)));
        let se = TraceSummary::new(&even, SimDuration::from_millis(100));
        assert!(se.hurst().is_none(), "zero-variance series has no estimate");
    }
}
