//! Paced (jittered-periodic) modulated arrivals.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{ArrivalProcess, IoMix, MmppState};
use crate::time::{SimDuration, SimTime};
use crate::workload::Workload;

/// State-modulated *paced* arrivals: within each state the stream is
/// periodic at the state's rate, with each arrival jittered by a bounded
/// fraction of the period.
///
/// Paced streams model the well-behaved portion of production storage
/// traffic better than Poisson at millisecond timescales: an application
/// issuing I/O at a steady pace has far less short-window variance than a
/// memoryless process. The practical consequence — central to the paper's
/// consolidation result — is additivity: merging two paced streams of rates
/// `R₁` and `R₂` needs capacity `≈ R₁ + R₂`, with no statistical pooling of
/// noise.
///
/// # Examples
///
/// ```
/// use gqos_trace::gen::{ArrivalProcess, MmppState, PacedGen};
/// use gqos_trace::SimDuration;
///
/// let mut gen = PacedGen::new(
///     vec![MmppState::new(100.0, SimDuration::from_secs(10))],
///     0.3,
///     7,
/// );
/// let w = gen.generate(SimDuration::from_secs(10));
/// assert!((w.len() as i64 - 1000).abs() < 30);
/// ```
#[derive(Clone, Debug)]
pub struct PacedGen {
    states: Vec<MmppState>,
    jitter: f64,
    mix: IoMix,
    rng: StdRng,
}

impl PacedGen {
    /// Creates a paced generator over the given states (visited like an
    /// MMPP: exponential holding, uniform jumps) with per-arrival jitter of
    /// `jitter` periods (`0` = strictly periodic, values near `1` approach
    /// Poisson-like local randomness).
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty or `jitter` is outside `[0, 1]`.
    pub fn new(states: Vec<MmppState>, jitter: f64, seed: u64) -> Self {
        PacedGen::with_mix(states, jitter, IoMix::default(), seed)
    }

    /// Creates a paced generator with an explicit I/O mix.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty or `jitter` is outside `[0, 1]`.
    pub fn with_mix(states: Vec<MmppState>, jitter: f64, mix: IoMix, seed: u64) -> Self {
        assert!(
            !states.is_empty(),
            "paced generator needs at least one state"
        );
        assert!(
            (0.0..=1.0).contains(&jitter),
            "jitter must be in [0, 1]: {jitter}"
        );
        PacedGen {
            states,
            jitter,
            mix,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured states.
    pub fn states(&self) -> &[MmppState] {
        &self.states
    }

    /// The configured jitter fraction.
    pub fn jitter(&self) -> f64 {
        self.jitter
    }
}

impl ArrivalProcess for PacedGen {
    fn generate(&mut self, duration: SimDuration) -> Workload {
        let end = SimTime::ZERO + duration;
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        let mut state = 0usize;
        while t < end {
            let s = self.states[state];
            let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
            let hold = s.mean_holding.mul_f64(-u.ln());
            let period_end = t.checked_add(hold).unwrap_or(end).min(end);
            if s.rate > 0.0 {
                let interval = 1.0 / s.rate;
                // Random phase so merged copies do not phase-lock.
                let mut next = t.as_secs_f64() + self.rng.gen_range(0.0..interval);
                let end_s = period_end.as_secs_f64();
                while next < end_s {
                    let jitter = if self.jitter > 0.0 {
                        self.rng
                            .gen_range(-self.jitter * interval..=self.jitter * interval)
                    } else {
                        0.0
                    };
                    let at = (next + jitter).max(0.0);
                    if at < end_s {
                        out.push(
                            self.mix
                                .request_at(SimTime::from_secs_f64(at), &mut self.rng),
                        );
                    }
                    next += interval;
                }
            }
            t = period_end;
            if self.states.len() > 1 {
                let mut nxt = self.rng.gen_range(0..self.states.len() - 1);
                if nxt >= state {
                    nxt += 1;
                }
                state = nxt;
            }
        }
        Workload::from_requests(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::index_of_dispersion;
    use crate::window::RateSeries;

    fn steady(rate: f64, jitter: f64, seed: u64) -> PacedGen {
        PacedGen::new(
            vec![MmppState::new(rate, SimDuration::from_secs(1000))],
            jitter,
            seed,
        )
    }

    #[test]
    fn deterministic_given_seed() {
        let d = SimDuration::from_secs(20);
        assert_eq!(
            steady(200.0, 0.3, 5).generate(d),
            steady(200.0, 0.3, 5).generate(d)
        );
    }

    #[test]
    fn hits_target_rate() {
        let w = steady(500.0, 0.4, 1).generate(SimDuration::from_secs(40));
        let rate = w.len() as f64 / 40.0;
        assert!((rate - 500.0).abs() < 20.0, "rate {rate}");
    }

    #[test]
    fn far_smoother_than_poisson() {
        // Paced traffic's window-count dispersion is well below the Poisson
        // value of 1.
        let w = steady(1000.0, 0.4, 2).generate(SimDuration::from_secs(60));
        let idc = index_of_dispersion(RateSeries::new(&w, SimDuration::from_millis(100)).counts());
        assert!(idc < 0.3, "idc {idc}");
    }

    #[test]
    fn merged_paced_streams_add_without_pooling() {
        // Peak window rate of the merged stream is close to the sum of the
        // individual peaks (the additivity the consolidation result needs).
        let a = steady(400.0, 0.3, 3).generate(SimDuration::from_secs(30));
        let b = steady(400.0, 0.3, 4).generate(SimDuration::from_secs(30));
        let m = a.merged(&b);
        let window = SimDuration::from_millis(10);
        let peak_m = RateSeries::new(&m, window).peak_iops();
        let peak_a = RateSeries::new(&a, window).peak_iops();
        assert!(
            peak_m < 1.35 * 2.0 * peak_a.min(400.0 * 1.5),
            "merged peak {peak_m} vs individual {peak_a}"
        );
    }

    #[test]
    fn zero_jitter_is_strictly_periodic() {
        let w = steady(100.0, 0.0, 6).generate(SimDuration::from_secs(10));
        let times: Vec<f64> = w.iter().map(|r| r.arrival.as_secs_f64()).collect();
        for pair in times.windows(2) {
            let gap = pair[1] - pair[0];
            assert!((gap - 0.01).abs() < 1e-6, "gap {gap}");
        }
    }

    #[test]
    fn multi_state_changes_rate() {
        let mut gen = PacedGen::new(
            vec![
                MmppState::new(100.0, SimDuration::from_secs(5)),
                MmppState::new(1000.0, SimDuration::from_secs(5)),
            ],
            0.2,
            9,
        );
        let w = gen.generate(SimDuration::from_secs(60));
        let series = RateSeries::new(&w, SimDuration::from_secs(1));
        assert!(series.peak_iops() > 500.0);
        let mean = w.mean_iops();
        assert!((200.0..900.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn accessors() {
        let g = steady(100.0, 0.25, 0);
        assert_eq!(g.states().len(), 1);
        assert_eq!(g.jitter(), 0.25);
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn empty_states_rejected() {
        let _ = PacedGen::new(vec![], 0.2, 0);
    }

    #[test]
    #[should_panic(expected = "jitter must be in")]
    fn bad_jitter_rejected() {
        let _ = PacedGen::new(vec![MmppState::new(1.0, SimDuration::from_secs(1))], 1.5, 0);
    }
}
