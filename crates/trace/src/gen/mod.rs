//! Synthetic bursty-arrival generators.
//!
//! The paper evaluates on proprietary traces (UMass WebSearch / FinTrans,
//! HP OpenMail). These generators synthesise arrival processes with the same
//! qualitative structure — a well-behaved majority plus unpredictable bursts
//! whose instantaneous rate far exceeds the long-term mean — so every
//! experiment can run self-contained. Real SPC-format traces can be dropped
//! in via [`crate::spc`] instead.
//!
//! All generators are deterministic given their seed.

mod bmodel;
mod mmpp;
mod onoff;
mod paced;
mod poisson;
pub mod profiles;

pub use bmodel::BModelGen;
pub use mmpp::{MmppGen, MmppState};
pub use onoff::OnOffGen;
pub use paced::PacedGen;
pub use poisson::PoissonGen;

use rand::Rng;

use crate::request::{LogicalBlock, Request, RequestKind};
use crate::time::{SimDuration, SimTime};
use crate::workload::Workload;

/// A source of synthetic arrival streams.
///
/// Implementations own their random state; calling [`generate`] twice
/// continues the same random sequence, so create a fresh generator (same
/// seed) to reproduce a workload.
///
/// [`generate`]: ArrivalProcess::generate
pub trait ArrivalProcess {
    /// Generates all requests arriving in `[0, duration)`.
    fn generate(&mut self, duration: SimDuration) -> Workload;
}

/// How generated requests address the device: read/write mix, address range,
/// and transfer size. Only the mechanical disk model consumes these fields;
/// the QoS algorithms treat requests as unit jobs.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct IoMix {
    /// Fraction of reads in `[0, 1]`.
    pub read_fraction: f64,
    /// Blocks are drawn uniformly from `[0, block_span)`.
    pub block_span: u64,
    /// Transfer size per request in bytes.
    pub bytes: u32,
}

impl Default for IoMix {
    fn default() -> Self {
        IoMix {
            read_fraction: 0.7,
            block_span: 1 << 30,
            bytes: crate::request::DEFAULT_REQUEST_BYTES,
        }
    }
}

impl IoMix {
    /// Materialises a request at `arrival` using this mix.
    pub fn request_at<R: Rng>(&self, arrival: SimTime, rng: &mut R) -> Request {
        let kind = if rng.gen_bool(self.read_fraction.clamp(0.0, 1.0)) {
            RequestKind::Read
        } else {
            RequestKind::Write
        };
        Request::at(arrival)
            .with_block(LogicalBlock::new(rng.gen_range(0..self.block_span.max(1))))
            .with_bytes(self.bytes)
            .with_kind(kind)
    }
}

/// Replaces each request of `workload` with a batch of requests: the batch
/// size is geometric with the given mean, and the extra copies land within
/// `spread` after the original arrival. Block-level storage traces are
/// clumpy at small timescales (one logical operation issues several block
/// requests back-to-back); batching reproduces that texture, which matters
/// for small-deadline capacity requirements.
///
/// The result has roughly `mean_batch` times the request count of the
/// input, so generators feeding this should divide their event rate
/// accordingly.
///
/// # Panics
///
/// Panics if `mean_batch < 1` or is not finite.
pub fn batch_arrivals(
    workload: &Workload,
    mean_batch: f64,
    spread: SimDuration,
    seed: u64,
) -> Workload {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    assert!(
        mean_batch.is_finite() && mean_batch >= 1.0,
        "mean batch size must be >= 1: {mean_batch}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let p = 1.0 / mean_batch;
    let mut out = Vec::with_capacity((workload.len() as f64 * mean_batch) as usize);
    for r in workload.iter() {
        out.push(*r);
        // Geometric(p) batch size: keep adding copies while the coin says so.
        while !rng.gen_bool(p) {
            let jitter = if spread.is_zero() {
                SimDuration::ZERO
            } else {
                SimDuration::from_nanos(rng.gen_range(0..spread.as_nanos().max(1)))
            };
            out.push(Request {
                arrival: r.arrival + jitter,
                ..*r
            });
        }
    }
    Workload::from_requests(out)
}

/// Emits Poisson arrivals at `rate` ops/sec into `out` for the interval
/// `[start, end)`. Shared by the modulated generators.
pub(crate) fn poisson_arrivals_into<R: Rng>(
    rng: &mut R,
    mix: &IoMix,
    rate: f64,
    start: SimTime,
    end: SimTime,
    out: &mut Vec<Request>,
) {
    if rate <= 0.0 || start >= end {
        return;
    }
    let mut t = start.as_secs_f64();
    let end_s = end.as_secs_f64();
    loop {
        // Exponential inter-arrival via inverse transform.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        t += -u.ln() / rate;
        if t >= end_s {
            break;
        }
        out.push(mix.request_at(SimTime::from_secs_f64(t), rng));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn io_mix_defaults_are_sane() {
        let mix = IoMix::default();
        assert!(mix.read_fraction > 0.0 && mix.read_fraction < 1.0);
        assert!(mix.block_span > 0);
        assert!(mix.bytes > 0);
    }

    #[test]
    fn io_mix_respects_read_fraction_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let all_reads = IoMix {
            read_fraction: 1.0,
            ..IoMix::default()
        };
        let all_writes = IoMix {
            read_fraction: 0.0,
            ..IoMix::default()
        };
        for _ in 0..32 {
            assert_eq!(
                all_reads.request_at(SimTime::ZERO, &mut rng).kind,
                RequestKind::Read
            );
            assert_eq!(
                all_writes.request_at(SimTime::ZERO, &mut rng).kind,
                RequestKind::Write
            );
        }
    }

    #[test]
    fn poisson_arrivals_hit_target_rate() {
        let mut rng = StdRng::seed_from_u64(7);
        let mix = IoMix::default();
        let mut out = Vec::new();
        poisson_arrivals_into(
            &mut rng,
            &mix,
            1000.0,
            SimTime::ZERO,
            SimTime::from_secs(50),
            &mut out,
        );
        let rate = out.len() as f64 / 50.0;
        assert!((rate - 1000.0).abs() < 50.0, "rate {rate}");
        assert!(out.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn poisson_zero_rate_or_empty_interval_is_empty() {
        let mut rng = StdRng::seed_from_u64(7);
        let mix = IoMix::default();
        let mut out = Vec::new();
        poisson_arrivals_into(
            &mut rng,
            &mix,
            0.0,
            SimTime::ZERO,
            SimTime::from_secs(10),
            &mut out,
        );
        assert!(out.is_empty());
        poisson_arrivals_into(
            &mut rng,
            &mix,
            100.0,
            SimTime::from_secs(5),
            SimTime::from_secs(5),
            &mut out,
        );
        assert!(out.is_empty());
    }
}
