//! ON/OFF burst generator with heavy-tailed burst durations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Pareto};

use super::{poisson_arrivals_into, ArrivalProcess, IoMix};
use crate::time::{SimDuration, SimTime};
use crate::workload::Workload;

/// Alternating ON/OFF arrival process.
///
/// During OFF periods requests arrive as a Poisson stream at `base_rate`;
/// during ON periods at `burst_rate`. OFF durations are exponential with the
/// given mean; ON durations follow a Pareto distribution, giving the
/// heavy-tailed burst lengths observed in storage traces (occasional very
/// long bursts dominate capacity requirements — the paper's "tail").
///
/// # Examples
///
/// ```
/// use gqos_trace::gen::{ArrivalProcess, OnOffGen};
/// use gqos_trace::SimDuration;
///
/// let mut gen = OnOffGen::builder(100.0, 2000.0)
///     .mean_off(SimDuration::from_secs(10))
///     .on_pareto(1.5, SimDuration::from_millis(200))
///     .seed(7)
///     .build();
/// let w = gen.generate(SimDuration::from_secs(60));
/// assert!(!w.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct OnOffGen {
    base_rate: f64,
    burst_rate: f64,
    mean_off: SimDuration,
    pareto_shape: f64,
    pareto_scale: SimDuration,
    max_on: SimDuration,
    mix: IoMix,
    rng: StdRng,
}

/// Configures an [`OnOffGen`]; created by [`OnOffGen::builder`].
#[derive(Clone, Debug)]
pub struct OnOffBuilder {
    base_rate: f64,
    burst_rate: f64,
    mean_off: SimDuration,
    pareto_shape: f64,
    pareto_scale: SimDuration,
    max_on: SimDuration,
    mix: IoMix,
    seed: u64,
}

impl OnOffGen {
    /// Starts building a generator with the given OFF-period (`base_rate`)
    /// and ON-period (`burst_rate`) arrival rates, in ops/sec.
    ///
    /// # Panics
    ///
    /// Panics if either rate is negative or non-finite.
    pub fn builder(base_rate: f64, burst_rate: f64) -> OnOffBuilder {
        assert!(
            base_rate.is_finite() && base_rate >= 0.0,
            "invalid base rate: {base_rate}"
        );
        assert!(
            burst_rate.is_finite() && burst_rate >= 0.0,
            "invalid burst rate: {burst_rate}"
        );
        OnOffBuilder {
            base_rate,
            burst_rate,
            mean_off: SimDuration::from_secs(10),
            pareto_shape: 1.5,
            pareto_scale: SimDuration::from_millis(200),
            max_on: SimDuration::from_secs(30),
            mix: IoMix::default(),
            seed: 0,
        }
    }

    /// The OFF-period arrival rate in ops/sec.
    pub fn base_rate(&self) -> f64 {
        self.base_rate
    }

    /// The ON-period arrival rate in ops/sec.
    pub fn burst_rate(&self) -> f64 {
        self.burst_rate
    }
}

impl OnOffBuilder {
    /// Mean of the exponential OFF-period duration.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is zero.
    pub fn mean_off(mut self, mean: SimDuration) -> Self {
        assert!(!mean.is_zero(), "mean OFF duration must be positive");
        self.mean_off = mean;
        self
    }

    /// Pareto parameters of the ON-period duration: tail index `shape`
    /// (smaller = heavier tail) and minimum duration `scale`.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is not finite and positive, or `scale` is zero.
    pub fn on_pareto(mut self, shape: f64, scale: SimDuration) -> Self {
        assert!(
            shape.is_finite() && shape > 0.0,
            "invalid Pareto shape: {shape}"
        );
        assert!(!scale.is_zero(), "Pareto scale must be positive");
        self.pareto_shape = shape;
        self.pareto_scale = scale;
        self
    }

    /// Upper cap on a single ON period (keeps heavy-tailed draws bounded).
    pub fn max_on(mut self, max: SimDuration) -> Self {
        self.max_on = max;
        self
    }

    /// I/O mix of the generated requests.
    pub fn mix(mut self, mix: IoMix) -> Self {
        self.mix = mix;
        self
    }

    /// Random seed; identical seeds reproduce identical workloads.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Finishes the generator.
    pub fn build(self) -> OnOffGen {
        OnOffGen {
            base_rate: self.base_rate,
            burst_rate: self.burst_rate,
            mean_off: self.mean_off,
            pareto_shape: self.pareto_shape,
            pareto_scale: self.pareto_scale,
            max_on: self.max_on,
            mix: self.mix,
            rng: StdRng::seed_from_u64(self.seed),
        }
    }
}

impl ArrivalProcess for OnOffGen {
    fn generate(&mut self, duration: SimDuration) -> Workload {
        let end = SimTime::ZERO + duration;
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        let pareto = Pareto::new(self.pareto_scale.as_secs_f64(), self.pareto_shape)
            .expect("validated pareto parameters");
        let mut on = false;
        while t < end {
            let period = if on {
                let drawn = SimDuration::from_secs_f64(pareto.sample(&mut self.rng));
                drawn.min(self.max_on)
            } else {
                let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
                self.mean_off.mul_f64(-u.ln())
            };
            let period_end = t.checked_add(period).unwrap_or(end).min(end);
            let rate = if on { self.burst_rate } else { self.base_rate };
            poisson_arrivals_into(&mut self.rng, &self.mix, rate, t, period_end, &mut out);
            t = period_end;
            on = !on;
        }
        Workload::from_requests(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::BurstStats;
    use crate::window::RateSeries;

    fn bursty() -> OnOffGen {
        OnOffGen::builder(100.0, 3000.0)
            .mean_off(SimDuration::from_secs(5))
            .on_pareto(1.5, SimDuration::from_millis(300))
            .seed(11)
            .build()
    }

    #[test]
    fn deterministic_given_seed() {
        let d = SimDuration::from_secs(30);
        assert_eq!(bursty().generate(d), bursty().generate(d));
    }

    #[test]
    fn produces_bursts_above_base_rate() {
        let w = bursty().generate(SimDuration::from_secs(120));
        let series = RateSeries::new(&w, SimDuration::from_millis(100));
        let stats = BurstStats::new(&series);
        assert!(
            stats.peak_to_mean() > 3.0,
            "peak/mean {}",
            stats.peak_to_mean()
        );
        assert!(stats.index_of_dispersion() > 2.0);
    }

    #[test]
    fn mean_rate_between_base_and_burst() {
        let w = bursty().generate(SimDuration::from_secs(120));
        let mean = w.mean_iops();
        assert!(mean > 100.0 && mean < 3000.0, "mean {mean}");
    }

    #[test]
    fn zero_base_rate_gives_silent_off_periods() {
        let mut g = OnOffGen::builder(0.0, 1000.0)
            .mean_off(SimDuration::from_secs(2))
            .on_pareto(1.5, SimDuration::from_millis(100))
            .seed(3)
            .build();
        let w = g.generate(SimDuration::from_secs(60));
        // Still produces requests (the bursts), but far fewer than 1000/s.
        assert!(!w.is_empty());
        assert!(w.mean_iops() < 1000.0);
    }

    #[test]
    fn accessors() {
        let g = bursty();
        assert_eq!(g.base_rate(), 100.0);
        assert_eq!(g.burst_rate(), 3000.0);
    }

    #[test]
    #[should_panic(expected = "invalid base rate")]
    fn negative_base_rate_rejected() {
        let _ = OnOffGen::builder(-1.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "Pareto scale")]
    fn zero_pareto_scale_rejected() {
        let _ = OnOffGen::builder(1.0, 10.0).on_pareto(1.5, SimDuration::ZERO);
    }

    #[test]
    fn max_on_caps_burst_length() {
        let mut g = OnOffGen::builder(0.0, 2000.0)
            .mean_off(SimDuration::from_secs(20))
            // Heavy tail that would frequently exceed the cap.
            .on_pareto(0.6, SimDuration::from_millis(500))
            .max_on(SimDuration::from_millis(800))
            .seed(5)
            .build();
        let w = g.generate(SimDuration::from_secs(600));
        let series = RateSeries::new(&w, SimDuration::from_millis(100));
        // With OFF periods vastly longer than the cap, no run of non-empty
        // 100 ms windows can much exceed the 800 ms cap (8 windows, plus
        // boundary effects).
        let mut longest_run = 0usize;
        let mut run = 0usize;
        for &c in series.counts() {
            if c > 0 {
                run += 1;
                longest_run = longest_run.max(run);
            } else {
                run = 0;
            }
        }
        assert!(longest_run <= 10, "burst of {longest_run} windows");
    }
}
