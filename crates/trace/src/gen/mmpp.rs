//! Markov-modulated Poisson process generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{poisson_arrivals_into, ArrivalProcess, IoMix};
use crate::time::{SimDuration, SimTime};
use crate::workload::Workload;

/// One state of a Markov-modulated Poisson process.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct MmppState {
    /// Poisson arrival rate while in this state, in ops/sec.
    pub rate: f64,
    /// Mean (exponential) holding time of the state.
    pub mean_holding: SimDuration,
}

impl MmppState {
    /// Creates a state.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative/non-finite or `mean_holding` is zero.
    pub fn new(rate: f64, mean_holding: SimDuration) -> Self {
        assert!(rate.is_finite() && rate >= 0.0, "invalid MMPP rate: {rate}");
        assert!(
            !mean_holding.is_zero(),
            "MMPP holding time must be positive"
        );
        MmppState { rate, mean_holding }
    }
}

/// Markov-modulated Poisson arrivals: the process jumps between states, each
/// with its own rate and exponential holding time; the next state is chosen
/// uniformly among the others.
///
/// A multi-level MMPP captures workloads such as web search: a dominant
/// steady level, an elevated level, and short intense bursts.
///
/// # Examples
///
/// ```
/// use gqos_trace::gen::{ArrivalProcess, MmppGen, MmppState};
/// use gqos_trace::SimDuration;
///
/// let mut gen = MmppGen::new(
///     vec![
///         MmppState::new(300.0, SimDuration::from_secs(5)),
///         MmppState::new(1500.0, SimDuration::from_millis(400)),
///     ],
///     13,
/// );
/// let w = gen.generate(SimDuration::from_secs(30));
/// assert!(!w.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct MmppGen {
    states: Vec<MmppState>,
    mix: IoMix,
    rng: StdRng,
}

impl MmppGen {
    /// Creates a generator starting in the first state, with the default
    /// [`IoMix`].
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty.
    pub fn new(states: Vec<MmppState>, seed: u64) -> Self {
        MmppGen::with_mix(states, IoMix::default(), seed)
    }

    /// Creates a generator with an explicit I/O mix.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty.
    pub fn with_mix(states: Vec<MmppState>, mix: IoMix, seed: u64) -> Self {
        assert!(!states.is_empty(), "MMPP needs at least one state");
        MmppGen {
            states,
            mix,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured states.
    pub fn states(&self) -> &[MmppState] {
        &self.states
    }
}

impl ArrivalProcess for MmppGen {
    fn generate(&mut self, duration: SimDuration) -> Workload {
        let end = SimTime::ZERO + duration;
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        let mut state = 0usize;
        while t < end {
            let s = self.states[state];
            let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
            let hold = s.mean_holding.mul_f64(-u.ln());
            let period_end = t.checked_add(hold).unwrap_or(end).min(end);
            poisson_arrivals_into(&mut self.rng, &self.mix, s.rate, t, period_end, &mut out);
            t = period_end;
            if self.states.len() > 1 {
                // Uniform jump to a different state.
                let mut next = self.rng.gen_range(0..self.states.len() - 1);
                if next >= state {
                    next += 1;
                }
                state = next;
            }
        }
        Workload::from_requests(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::index_of_dispersion;
    use crate::window::RateSeries;

    fn two_level() -> MmppGen {
        MmppGen::new(
            vec![
                MmppState::new(200.0, SimDuration::from_secs(5)),
                MmppState::new(2000.0, SimDuration::from_millis(500)),
            ],
            21,
        )
    }

    #[test]
    fn deterministic_given_seed() {
        let d = SimDuration::from_secs(30);
        assert_eq!(two_level().generate(d), two_level().generate(d));
    }

    #[test]
    fn burstier_than_poisson() {
        let w = two_level().generate(SimDuration::from_secs(120));
        let series = RateSeries::new(&w, SimDuration::from_millis(100));
        assert!(index_of_dispersion(series.counts()) > 2.0);
    }

    #[test]
    fn single_state_behaves_like_poisson() {
        let mut g = MmppGen::new(vec![MmppState::new(500.0, SimDuration::from_secs(1))], 4);
        let w = g.generate(SimDuration::from_secs(60));
        assert!(
            (w.mean_iops() - 500.0).abs() < 60.0,
            "mean {}",
            w.mean_iops()
        );
    }

    #[test]
    fn mean_rate_is_time_weighted_average() {
        // Equal holding times of 1 s at 100 and 900 ops/s -> about 500 mean.
        let mut g = MmppGen::new(
            vec![
                MmppState::new(100.0, SimDuration::from_secs(1)),
                MmppState::new(900.0, SimDuration::from_secs(1)),
            ],
            8,
        );
        let w = g.generate(SimDuration::from_secs(300));
        let mean = w.mean_iops();
        assert!((mean - 500.0).abs() < 80.0, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn empty_states_rejected() {
        let _ = MmppGen::new(vec![], 0);
    }

    #[test]
    #[should_panic(expected = "invalid MMPP rate")]
    fn bad_rate_rejected() {
        let _ = MmppState::new(f64::NAN, SimDuration::from_secs(1));
    }

    #[test]
    fn states_accessor() {
        let g = two_level();
        assert_eq!(g.states().len(), 2);
        assert_eq!(g.states()[0].rate, 200.0);
    }
}
