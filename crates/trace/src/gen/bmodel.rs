//! The b-model: self-similar traffic via biased bisection.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{ArrivalProcess, IoMix};
use crate::time::{SimDuration, SimTime};
use crate::workload::Workload;

/// Self-similar arrival generator using the *b-model* (biased binary
/// cascade), a standard model for bursty, long-range-dependent disk traffic.
///
/// The interval is bisected `levels` times; at each split a fraction `bias`
/// of the requests lands on one (randomly chosen) half and `1 − bias` on the
/// other. `bias = 0.5` yields smooth traffic; values toward 1.0 concentrate
/// the workload into ever-sharper bursts. Within the finest sub-interval,
/// requests are spread uniformly at random.
///
/// # Examples
///
/// ```
/// use gqos_trace::gen::{ArrivalProcess, BModelGen};
/// use gqos_trace::SimDuration;
///
/// let mut gen = BModelGen::new(10_000, 0.75, 12, 99);
/// let w = gen.generate(SimDuration::from_secs(100));
/// assert_eq!(w.len(), 10_000);
/// ```
#[derive(Clone, Debug)]
pub struct BModelGen {
    total_requests: u64,
    bias: f64,
    levels: u32,
    mix: IoMix,
    rng: StdRng,
}

impl BModelGen {
    /// Creates a generator producing exactly `total_requests` requests, with
    /// split bias `bias ∈ [0.5, 1.0)` over `levels` bisection levels.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is outside `[0.5, 1.0)` or `levels` exceeds 40.
    pub fn new(total_requests: u64, bias: f64, levels: u32, seed: u64) -> Self {
        BModelGen::with_mix(total_requests, bias, levels, IoMix::default(), seed)
    }

    /// Creates a generator with an explicit I/O mix.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is outside `[0.5, 1.0)` or `levels` exceeds 40.
    pub fn with_mix(total_requests: u64, bias: f64, levels: u32, mix: IoMix, seed: u64) -> Self {
        assert!(
            (0.5..1.0).contains(&bias),
            "b-model bias must be in [0.5, 1.0): {bias}"
        );
        assert!(levels <= 40, "too many bisection levels: {levels}");
        BModelGen {
            total_requests,
            bias,
            levels,
            mix,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured bias.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// The number of bisection levels.
    pub fn levels(&self) -> u32 {
        self.levels
    }
}

impl ArrivalProcess for BModelGen {
    fn generate(&mut self, duration: SimDuration) -> Workload {
        // Distribute counts down the binary cascade iteratively.
        let mut counts = vec![self.total_requests];
        for _ in 0..self.levels {
            let mut next = Vec::with_capacity(counts.len() * 2);
            for &n in &counts {
                let big = (n as f64 * self.bias).round() as u64;
                let big = big.min(n);
                let small = n - big;
                if self.rng.gen_bool(0.5) {
                    next.push(big);
                    next.push(small);
                } else {
                    next.push(small);
                    next.push(big);
                }
            }
            counts = next;
        }
        // Spread each leaf's requests uniformly within its sub-interval.
        let leaf_ns = duration.as_nanos() / counts.len() as u64;
        let mut out = Vec::with_capacity(self.total_requests as usize);
        for (i, &n) in counts.iter().enumerate() {
            let start = i as u64 * leaf_ns;
            for _ in 0..n {
                let offset = if leaf_ns > 0 {
                    self.rng.gen_range(0..leaf_ns)
                } else {
                    0
                };
                let t = SimTime::from_nanos(start + offset);
                out.push(self.mix.request_at(t, &mut self.rng));
            }
        }
        Workload::from_requests(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{hurst_exponent, index_of_dispersion};
    use crate::window::RateSeries;

    #[test]
    fn exact_request_count() {
        let mut g = BModelGen::new(5_000, 0.7, 10, 1);
        let w = g.generate(SimDuration::from_secs(50));
        assert_eq!(w.len(), 5_000);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = SimDuration::from_secs(10);
        let mut a = BModelGen::new(1000, 0.8, 8, 2);
        let mut b = BModelGen::new(1000, 0.8, 8, 2);
        assert_eq!(a.generate(d), b.generate(d));
    }

    #[test]
    fn bias_half_is_smooth_high_bias_is_bursty() {
        let d = SimDuration::from_secs(100);
        let smooth = BModelGen::new(50_000, 0.5, 10, 3).generate(d);
        let bursty = BModelGen::new(50_000, 0.85, 10, 3).generate(d);
        let w100 = SimDuration::from_millis(100);
        let idc_smooth = index_of_dispersion(RateSeries::new(&smooth, w100).counts());
        let idc_bursty = index_of_dispersion(RateSeries::new(&bursty, w100).counts());
        assert!(
            idc_bursty > 10.0 * idc_smooth,
            "smooth {idc_smooth}, bursty {idc_bursty}"
        );
    }

    #[test]
    fn high_bias_yields_high_hurst() {
        let d = SimDuration::from_secs(200);
        let w = BModelGen::new(100_000, 0.8, 11, 4).generate(d);
        let series = RateSeries::with_origin(&w, SimDuration::from_millis(100), SimTime::ZERO);
        let h = hurst_exponent(series.counts()).expect("long series");
        assert!(h > 0.65, "H {h}");
    }

    #[test]
    fn arrivals_stay_within_duration() {
        let d = SimDuration::from_secs(5);
        let mut g = BModelGen::new(2000, 0.9, 6, 5);
        let w = g.generate(d);
        assert!(w.last_arrival().unwrap() < SimTime::ZERO + d);
    }

    #[test]
    fn zero_requests_is_empty() {
        let mut g = BModelGen::new(0, 0.7, 8, 6);
        assert!(g.generate(SimDuration::from_secs(10)).is_empty());
    }

    #[test]
    #[should_panic(expected = "bias must be in")]
    fn bias_below_half_rejected() {
        let _ = BModelGen::new(10, 0.4, 4, 0);
    }

    #[test]
    #[should_panic(expected = "bisection levels")]
    fn excessive_levels_rejected() {
        let _ = BModelGen::new(10, 0.7, 64, 0);
    }

    #[test]
    fn accessors() {
        let g = BModelGen::new(10, 0.7, 4, 0);
        assert_eq!(g.bias(), 0.7);
        assert_eq!(g.levels(), 4);
    }
}
