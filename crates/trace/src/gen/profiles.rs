//! Calibrated stand-ins for the paper's evaluation traces.
//!
//! The ICDCS 2009 evaluation uses three proprietary block-level traces:
//!
//! - **WebSearch** (UMass): user search I/O — a high, fairly steady rate
//!   with moderate bursts.
//! - **FinTrans** (UMass): OLTP at two financial institutions — a low
//!   average rate punctuated by extreme short spikes.
//! - **OpenMail** (HP Labs): busy e-mail servers — a high average rate with
//!   long, heavy bursts (the paper reports ≈534 IOPS average vs ≈4440 IOPS
//!   peak in 100 ms windows).
//!
//! The real traces are not redistributable, so these profiles synthesise
//! arrival processes matching the published statistics and — more
//! importantly — the *shape* of the capacity/QoS trade-off each trace
//! induces (Table 1's sharp knee between the 90% and 100% columns).
//!
//! Each profile is a **base process** (Poisson or MMPP, the well-behaved
//! majority) merged with **spike layers**: independent ON/OFF processes of
//! increasing rate and decreasing duty cycle. Layer `k` holds a small,
//! known share of the total requests, so relaxing the guaranteed fraction
//! `f` progressively exempts the taller layers — which is precisely the
//! graduated-capacity structure of the paper's Table 1. The constants in
//! [`websearch_with`], [`fintrans_with`], and [`openmail_with`] were tuned
//! against the paper's capacity ratios (see EXPERIMENTS.md).

use std::fmt;

use super::{batch_arrivals, ArrivalProcess, MmppState, OnOffGen, PacedGen};
use crate::time::SimDuration;
use crate::workload::Workload;

/// Default span of a generated profile workload.
///
/// Long enough to contain several instances of even the rarest spike
/// layer, short enough that full experiment sweeps finish in seconds.
pub const DEFAULT_PROFILE_SPAN: SimDuration = SimDuration::from_secs(1200);

/// One spike layer: an ON/OFF burst process riding on the base traffic.
#[derive(Copy, Clone, PartialEq, Debug)]
struct SpikeLayer {
    /// Arrival rate while the layer is ON, in IOPS.
    rate: f64,
    /// Pareto minimum ON duration (seconds).
    on_scale_s: f64,
    /// Pareto tail index of the ON duration.
    on_shape: f64,
    /// Mean exponential OFF duration (seconds).
    mean_off_s: f64,
    /// Cap on one ON period (seconds).
    max_on_s: f64,
}

fn spike(rate: f64, on_scale_s: f64, on_shape: f64, mean_off_s: f64, max_on_s: f64) -> SpikeLayer {
    SpikeLayer {
        rate,
        on_scale_s,
        on_shape,
        mean_off_s,
        max_on_s,
    }
}

/// Merges a base workload with spike layers, deriving per-layer seeds.
fn compose(base: Workload, layers: &[SpikeLayer], span: SimDuration, seed: u64) -> Workload {
    let mut workload = base;
    for (i, layer) in layers.iter().enumerate() {
        let layer_seed = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(0x1000 + i as u64);
        let mut gen = OnOffGen::builder(0.0, layer.rate)
            .mean_off(SimDuration::from_secs_f64(layer.mean_off_s))
            .on_pareto(layer.on_shape, SimDuration::from_secs_f64(layer.on_scale_s))
            .max_on(SimDuration::from_secs_f64(layer.max_on_s))
            .seed(layer_seed)
            .build();
        workload = workload.merged(&gen.generate(span));
    }
    workload
}

/// Builds a profile base: a slow MMPP (plateau levels holding for minutes,
/// so consolidation shifts of 1–100 s leave a workload aligned with its
/// shifted self, as real busy-hour traces are) whose arrivals are then
/// clumped into small batches (block traces are clumpy at millisecond
/// scale: one logical operation issues several block requests).
fn plateau_base(states: Vec<MmppState>, mean_batch: f64, span: SimDuration, seed: u64) -> Workload {
    let mut gen = PacedGen::new(states, 0.4, seed);
    let events = gen.generate(span);
    batch_arrivals(
        &events,
        mean_batch,
        SimDuration::from_millis(2),
        seed.wrapping_add(0x5eed),
    )
}

/// The three evaluation workloads of the paper.
///
/// # Examples
///
/// ```
/// use gqos_trace::gen::profiles::TraceProfile;
/// use gqos_trace::SimDuration;
///
/// let w = TraceProfile::FinTrans.generate(SimDuration::from_secs(60), 1);
/// assert!(!w.is_empty());
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum TraceProfile {
    /// UMass web search engine stand-in (`WS` in the paper's tables).
    WebSearch,
    /// UMass financial OLTP stand-in (`FT`).
    FinTrans,
    /// HP OpenMail stand-in (`OM`).
    OpenMail,
}

impl TraceProfile {
    /// All profiles in the order the paper tabulates them.
    pub const ALL: [TraceProfile; 3] = [
        TraceProfile::WebSearch,
        TraceProfile::FinTrans,
        TraceProfile::OpenMail,
    ];

    /// The paper's abbreviation: `WS`, `FT`, or `OM`.
    pub fn abbrev(self) -> &'static str {
        match self {
            TraceProfile::WebSearch => "WS",
            TraceProfile::FinTrans => "FT",
            TraceProfile::OpenMail => "OM",
        }
    }

    /// Generates the profile's workload over `span` with the given seed.
    pub fn generate(self, span: SimDuration, seed: u64) -> Workload {
        match self {
            TraceProfile::WebSearch => websearch_with(span, seed),
            TraceProfile::FinTrans => fintrans_with(span, seed),
            TraceProfile::OpenMail => openmail_with(span, seed),
        }
    }

    /// Generates the profile's workload over the
    /// [default span](DEFAULT_PROFILE_SPAN).
    pub fn generate_default(self, seed: u64) -> Workload {
        self.generate(DEFAULT_PROFILE_SPAN, seed)
    }
}

impl fmt::Display for TraceProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceProfile::WebSearch => f.write_str("WebSearch"),
            TraceProfile::FinTrans => f.write_str("FinTrans"),
            TraceProfile::OpenMail => f.write_str("OpenMail"),
        }
    }
}

/// WebSearch stand-in over the default span.
pub fn websearch(seed: u64) -> Workload {
    websearch_with(DEFAULT_PROFILE_SPAN, seed)
}

/// WebSearch stand-in: a steady two-level MMPP base (most of the traffic)
/// with moderate spike layers — the least bursty of the three traces.
pub fn websearch_with(span: SimDuration, seed: u64) -> Workload {
    let base = plateau_base(
        vec![
            MmppState::new(240.0, SimDuration::from_secs(250)), // ~312 IOPS batched
            MmppState::new(335.0, SimDuration::from_secs(180)), // ~436 IOPS batched
        ],
        1.3,
        span,
        seed.wrapping_mul(0x9e37_79b9).wrapping_add(1),
    );
    let layers = [
        // rate, on_scale, on_shape, mean_off, max_on
        spike(650.0, 0.05, 2.0, 30.0, 0.5),
        spike(1000.0, 0.03, 2.2, 60.0, 0.15),
        spike(2200.0, 0.008, 2.5, 250.0, 0.025),
    ];
    compose(base, &layers, span, seed)
}

/// FinTrans stand-in over the default span.
pub fn fintrans(seed: u64) -> Workload {
    fintrans_with(DEFAULT_PROFILE_SPAN, seed)
}

/// FinTrans stand-in: low steady OLTP traffic with rare, extreme
/// transaction bursts — the most burst-dominated workload relative to its
/// mean (full guarantees cost ≈7.5× the 90% capacity at δ = 5 ms in the
/// paper).
pub fn fintrans_with(span: SimDuration, seed: u64) -> Workload {
    let base = plateau_base(
        vec![
            // FinTrans has no sustained plateau (its 50 ms capacity sits at
            // the mean): the 10 ms headroom comes from millisecond clumps.
            MmppState::new(78.0, SimDuration::from_secs(60)),
        ],
        1.3,
        span,
        seed.wrapping_mul(0x9e37_79b9).wrapping_add(2),
    );
    let layers = [
        spike(240.0, 0.08, 1.7, 13.0, 0.8),
        spike(420.0, 0.03, 2.0, 60.0, 0.15),
        // The extreme layer must be able to fill a 100 ms stats window with
        // several times the ~105 IOPS composite mean on its own (the paper's
        // FT peaks sit an order of magnitude over the base), so its
        // one-window burst budget (rate x max_on) stays well above 5x the
        // mean rather than relying on chance overlap with the other layers.
        spike(4200.0, 0.010, 2.5, 300.0, 0.04),
    ];
    compose(base, &layers, span, seed)
}

/// OpenMail stand-in over the default span.
pub fn openmail(seed: u64) -> Workload {
    openmail_with(DEFAULT_PROFILE_SPAN, seed)
}

/// OpenMail stand-in: high mail-server traffic whose base is itself uneven,
/// plus long heavy delivery bursts — the burstiest workload in absolute
/// terms (≈534 IOPS mean with ≈4440 IOPS peaks in the paper).
pub fn openmail_with(span: SimDuration, seed: u64) -> Workload {
    let base = plateau_base(
        vec![
            MmppState::new(165.0, SimDuration::from_secs(300)), // ~330 IOPS batched
            MmppState::new(500.0, SimDuration::from_secs(180)), // ~1000 IOPS batched
        ],
        2.0,
        span,
        seed.wrapping_mul(0x9e37_79b9).wrapping_add(3),
    );
    let layers = [
        spike(1800.0, 0.10, 1.8, 18.0, 0.8),
        spike(3200.0, 0.05, 2.0, 45.0, 0.3),
        spike(5500.0, 0.02, 2.2, 150.0, 0.08),
        spike(9500.0, 0.008, 2.5, 400.0, 0.03),
    ];
    compose(base, &layers, span, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::BurstStats;
    use crate::window::RateSeries;

    // Profiles modulate on 1–5 minute timescales, so statistics need the
    // full default span to be representative.
    const SPAN: SimDuration = DEFAULT_PROFILE_SPAN;
    const SHORT: SimDuration = SimDuration::from_secs(120);

    fn stats(w: &Workload) -> BurstStats {
        BurstStats::new(&RateSeries::new(w, SimDuration::from_millis(100)))
    }

    #[test]
    fn profiles_are_deterministic() {
        for p in TraceProfile::ALL {
            assert_eq!(p.generate(SHORT, 7), p.generate(SHORT, 7), "{p}");
        }
    }

    #[test]
    fn profiles_differ_across_seeds() {
        for p in TraceProfile::ALL {
            assert_ne!(p.generate(SHORT, 1), p.generate(SHORT, 2), "{p}");
        }
    }

    #[test]
    fn websearch_mean_rate_in_range() {
        let mean = websearch_with(SPAN, 3).mean_iops();
        assert!((250.0..550.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn fintrans_mean_rate_in_range() {
        let mean = fintrans_with(SPAN, 3).mean_iops();
        assert!((70.0..230.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn openmail_mean_rate_in_range() {
        let mean = openmail_with(SPAN, 3).mean_iops();
        assert!((330.0..900.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn all_profiles_are_bursty() {
        for p in TraceProfile::ALL {
            let w = p.generate(SPAN, 11);
            let s = stats(&w);
            // Every profile's 100 ms peaks dwarf its mean (the paper's
            // tail-wagging premise).
            assert!(
                s.peak_to_mean() > 2.5,
                "{p}: peak/mean {}",
                s.peak_to_mean()
            );
        }
    }

    #[test]
    fn fintrans_spikes_dwarf_its_base() {
        // FinTrans's defining trait: its extreme spikes tower over its tiny
        // base rate (peak windows more than 5x the mean).
        let ft = stats(&fintrans_with(SPAN, 5)).peak_to_mean();
        assert!(ft > 5.0, "FT peak/mean {ft}");
    }

    #[test]
    fn openmail_has_highest_mean_rate() {
        let om = openmail_with(SPAN, 9).mean_iops();
        let ws = websearch_with(SPAN, 9).mean_iops();
        let ft = fintrans_with(SPAN, 9).mean_iops();
        assert!(om > ws && om > ft, "OM {om}, WS {ws}, FT {ft}");
    }

    #[test]
    fn spikes_are_a_minority_of_requests() {
        // The defining property for Table 1's knee: the tall spikes hold a
        // small share of requests, so exempting ~10% removes the bursts.
        // Windows above 3x the mean (above any sustained plateau) hold well
        // under 15% of requests.
        for p in TraceProfile::ALL {
            let w = p.generate(SPAN, 13);
            let series = RateSeries::new(&w, SimDuration::from_millis(100));
            let mean = series.mean_iops();
            let in_bursts: u64 = series
                .counts()
                .iter()
                .filter(|&&c| c as f64 / 0.1 > 3.0 * mean)
                .sum();
            let share = in_bursts as f64 / w.len() as f64;
            assert!(share < 0.15, "{p}: burst share {share:.2}");
        }
    }

    #[test]
    fn abbreviations_and_display() {
        assert_eq!(TraceProfile::WebSearch.abbrev(), "WS");
        assert_eq!(TraceProfile::FinTrans.abbrev(), "FT");
        assert_eq!(TraceProfile::OpenMail.abbrev(), "OM");
        assert_eq!(TraceProfile::OpenMail.to_string(), "OpenMail");
    }

    #[test]
    fn default_span_generation_works() {
        let w = TraceProfile::FinTrans.generate_default(1);
        assert!(w.span() > SimDuration::from_secs(600));
    }
}
