//! Memoryless (Poisson) arrival generator — the smooth baseline.

use rand::rngs::StdRng;
use rand::SeedableRng;

use super::{poisson_arrivals_into, ArrivalProcess, IoMix};
use crate::time::{SimDuration, SimTime};
use crate::workload::Workload;

/// Poisson arrivals at a constant rate.
///
/// Useful as the non-bursty control in experiments and as the base layer of
/// composite profiles.
///
/// # Examples
///
/// ```
/// use gqos_trace::gen::{ArrivalProcess, PoissonGen};
/// use gqos_trace::SimDuration;
///
/// let mut gen = PoissonGen::new(500.0, 42);
/// let w = gen.generate(SimDuration::from_secs(10));
/// assert!((w.mean_iops() - 500.0).abs() < 50.0);
/// ```
#[derive(Clone, Debug)]
pub struct PoissonGen {
    rate: f64,
    mix: IoMix,
    rng: StdRng,
}

impl PoissonGen {
    /// Creates a generator with `rate` ops/sec and the default [`IoMix`].
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or non-finite.
    pub fn new(rate: f64, seed: u64) -> Self {
        PoissonGen::with_mix(rate, IoMix::default(), seed)
    }

    /// Creates a generator with an explicit I/O mix.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or non-finite.
    pub fn with_mix(rate: f64, mix: IoMix, seed: u64) -> Self {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "invalid Poisson rate: {rate}"
        );
        PoissonGen {
            rate,
            mix,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured arrival rate in ops/sec.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl ArrivalProcess for PoissonGen {
    fn generate(&mut self, duration: SimDuration) -> Workload {
        let mut out = Vec::new();
        poisson_arrivals_into(
            &mut self.rng,
            &self.mix,
            self.rate,
            SimTime::ZERO,
            SimTime::ZERO + duration,
            &mut out,
        );
        Workload::from_requests(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::index_of_dispersion;
    use crate::window::RateSeries;

    #[test]
    fn deterministic_given_seed() {
        let mut a = PoissonGen::new(200.0, 9);
        let mut b = PoissonGen::new(200.0, 9);
        let d = SimDuration::from_secs(5);
        assert_eq!(a.generate(d), b.generate(d));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = PoissonGen::new(200.0, 9);
        let mut b = PoissonGen::new(200.0, 10);
        let d = SimDuration::from_secs(5);
        assert_ne!(a.generate(d), b.generate(d));
    }

    #[test]
    fn dispersion_is_near_one() {
        let mut g = PoissonGen::new(1000.0, 3);
        let w = g.generate(SimDuration::from_secs(60));
        let series = RateSeries::new(&w, SimDuration::from_millis(100));
        let idc = index_of_dispersion(series.counts());
        assert!((idc - 1.0).abs() < 0.3, "idc {idc}");
    }

    #[test]
    fn zero_rate_is_empty() {
        let mut g = PoissonGen::new(0.0, 3);
        assert!(g.generate(SimDuration::from_secs(10)).is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid Poisson rate")]
    fn negative_rate_rejected() {
        let _ = PoissonGen::new(-1.0, 0);
    }

    #[test]
    fn arrivals_within_bounds() {
        let mut g = PoissonGen::new(500.0, 5);
        let d = SimDuration::from_secs(2);
        let w = g.generate(d);
        assert!(w.last_arrival().unwrap() < SimTime::ZERO + d);
    }
}
