//! Columnar (structure-of-arrays) projection of a workload's arrival times.
//!
//! The hot analytical kernels — RTT decomposition, budgeted feasibility
//! probes, capacity-grid sweeps — only ever look at *arrival instants*, yet
//! the row-oriented [`Workload`] stores full [`Request`](crate::Request)
//! records (arrival, id, block, kind, bytes). An [`ArrivalColumn`] strips the
//! stream down to a dense, sorted `u64` nanosecond slice so a probe touches
//! 8 bytes per request instead of a whole struct, and iterates a branch-free
//! integer array the optimiser can keep in cache.
//!
//! Columns are built once per workload and memoised by
//! [`Workload::arrival_column`]; constructing one directly is only needed
//! when no `Workload` exists (tests, ad-hoc kernels).

use std::fmt;

use crate::time::SimTime;
use crate::workload::Workload;

/// A dense, arrival-ordered column of request arrival times in nanoseconds.
///
/// Invariant: the slice is sorted ascending (ties allowed), mirroring the
/// workload ordering invariant, and `nanos()[i]` is the arrival instant of
/// request `i` of the source workload.
///
/// # Examples
///
/// ```
/// use gqos_trace::{ArrivalColumn, SimTime, Workload};
///
/// let w = Workload::from_arrivals([SimTime::from_millis(2), SimTime::from_millis(7)]);
/// let col = ArrivalColumn::new(&w);
/// assert_eq!(col.nanos(), &[2_000_000, 7_000_000]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct ArrivalColumn {
    nanos: Box<[u64]>,
}

impl ArrivalColumn {
    /// Projects `workload` onto its arrival-time column.
    ///
    /// Prefer [`Workload::arrival_column`], which computes the column once
    /// and caches it for the workload's lifetime.
    pub fn new(workload: &Workload) -> Self {
        ArrivalColumn {
            nanos: workload
                .iter()
                .map(|r| r.arrival.as_nanos())
                .collect::<Vec<u64>>()
                .into_boxed_slice(),
        }
    }

    /// Builds a column from raw nanosecond arrivals.
    ///
    /// # Panics
    ///
    /// Panics if `nanos` is not sorted ascending — kernels rely on the
    /// ordering invariant.
    pub fn from_nanos(nanos: Vec<u64>) -> Self {
        assert!(
            nanos.windows(2).all(|p| p[0] <= p[1]),
            "arrival column must be sorted ascending"
        );
        ArrivalColumn {
            nanos: nanos.into_boxed_slice(),
        }
    }

    /// The sorted arrival instants in nanoseconds — the kernel input.
    pub fn nanos(&self) -> &[u64] {
        &self.nanos
    }

    /// Number of arrivals in the column.
    pub fn len(&self) -> usize {
        self.nanos.len()
    }

    /// `true` if the column holds no arrivals.
    pub fn is_empty(&self) -> bool {
        self.nanos.is_empty()
    }

    /// Arrival instant of request `i`, if in range.
    pub fn get(&self, i: usize) -> Option<SimTime> {
        self.nanos.get(i).map(|&n| SimTime::from_nanos(n))
    }
}

impl fmt::Debug for ArrivalColumn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArrivalColumn")
            .field("len", &self.len())
            .field("first_ns", &self.nanos.first())
            .field("last_ns", &self.nanos.last())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn projects_arrivals_in_order() {
        let w = Workload::from_arrivals([ms(5), ms(1), ms(3), ms(3)]);
        let col = ArrivalColumn::new(&w);
        assert_eq!(col.nanos(), &[1_000_000, 3_000_000, 3_000_000, 5_000_000]);
        assert_eq!(col.len(), 4);
        assert!(!col.is_empty());
        assert_eq!(col.get(0), Some(ms(1)));
        assert_eq!(col.get(4), None);
    }

    #[test]
    fn empty_column() {
        let col = ArrivalColumn::new(&Workload::new());
        assert!(col.is_empty());
        assert_eq!(col.nanos(), &[] as &[u64]);
    }

    #[test]
    fn from_nanos_accepts_sorted() {
        let col = ArrivalColumn::from_nanos(vec![0, 0, 7, 9]);
        assert_eq!(col.len(), 4);
    }

    #[test]
    #[should_panic(expected = "sorted ascending")]
    fn from_nanos_rejects_unsorted() {
        let _ = ArrivalColumn::from_nanos(vec![5, 3]);
    }

    #[test]
    fn matches_workload_row_by_row() {
        let w = Workload::from_arrivals((0..100).map(|i| ms(i * 7 % 50)));
        let col = ArrivalColumn::new(&w);
        for (i, r) in w.iter().enumerate() {
            assert_eq!(col.nanos()[i], r.arrival.as_nanos());
        }
    }

    #[test]
    fn debug_is_compact() {
        let col = ArrivalColumn::new(&Workload::from_arrivals([ms(1), ms(2)]));
        let text = format!("{col:?}");
        assert!(text.contains("len"));
        assert!(!text.contains("2000000,")); // no full element dump
    }
}
