//! The SPC parser must never panic: any byte soup — malformed fields,
//! truncated records, NaN/huge/negative numbers, stray separators — yields
//! either a parsed workload or a structured [`ParseSpcError`], with
//! line/field context on malformed records.

use gqos_trace::spc::{self, ParseSpcError};
use proptest::prelude::*;

/// Fragments biased toward the parser's decision points: numbers around
/// every representability edge, opcodes of both cases, junk, separators.
fn fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("0".to_string()),
        Just("47126".to_string()),
        Just("8192".to_string()),
        Just("R".to_string()),
        Just("w".to_string()),
        Just("X".to_string()),
        Just("0.011413".to_string()),
        Just("-3".to_string()),
        Just("NaN".to_string()),
        Just("inf".to_string()),
        Just("-inf".to_string()),
        Just("1e300".to_string()),
        Just("18446744073".to_string()), // ≈ the clock's last second
        Just("18446744074".to_string()), // just past it
        Just("999999999999999999999".to_string()),
        Just(String::new()),
        Just(" ".to_string()),
        Just("#".to_string()),
        junk(),
        any::<f64>().prop_map(|v| v.to_string()),
        any::<u64>().prop_map(|v| v.to_string()),
    ]
}

/// Short strings over a hostile alphabet (the vendored proptest has no
/// regex strategies).
fn junk() -> impl Strategy<Value = String> {
    const ALPHABET: &[char] = &['a', 'z', '0', '9', '.', ',', '-', ' ', 'e', '+'];
    prop::collection::vec(0usize..ALPHABET.len(), 0..8)
        .prop_map(|indices| indices.into_iter().map(|i| ALPHABET[i]).collect())
}

/// A line is a few fragments joined by commas (sometimes the wrong number
/// of fields, sometimes trailing or leading separators).
fn line() -> impl Strategy<Value = String> {
    prop::collection::vec(fragment(), 0..8).prop_map(|parts| parts.join(","))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Parsing arbitrary structured-ish lines never panics, and every
    /// malformed error carries usable context.
    #[test]
    fn parser_never_panics_on_adversarial_lines(
        lines in prop::collection::vec(line(), 0..12),
    ) {
        let input = lines.join("\n");
        match spc::read_trace(input.as_bytes()) {
            Ok(workload) => {
                // Whatever parsed must be internally consistent.
                prop_assert!(workload.len() <= lines.len());
            }
            Err(ParseSpcError::Malformed { line, column, reason }) => {
                prop_assert!(line >= 1 && line <= lines.len());
                prop_assert!((1..=5).contains(&column), "column {column}");
                prop_assert!(!reason.is_empty());
            }
            Err(ParseSpcError::Io(_)) => {
                // Reading from a byte slice cannot fail, but the arm must
                // stay total.
            }
        }
    }

    /// Truncating a valid trace at an arbitrary byte never panics.
    #[test]
    fn truncation_never_panics(cut in 0usize..120) {
        let full = "0,47126,8192,R,0.011413\n0,47134,8192,W,0.024\n0,9,512,r,1.5\n";
        let cut = cut.min(full.len());
        let _ = spc::read_trace(full.as_bytes()[..cut].as_ref());
    }

    /// Every non-negative finite timestamp within clock range round-trips
    /// through write + read without panicking.
    #[test]
    fn representable_timestamps_parse(ts in 0.0f64..1.0e9) {
        let text = format!("0,1,512,R,{ts}\n");
        let parsed = spc::read_trace(text.as_bytes());
        prop_assert!(parsed.is_ok(), "rejected valid timestamp {ts}");
    }
}
