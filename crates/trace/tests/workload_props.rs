//! Property-based tests of the workload algebra and trace I/O.

use proptest::prelude::*;

use gqos_trace::{
    spc, LogicalBlock, Request, RequestKind, ServiceAnalysis, SimDuration, SimTime, Workload,
};

prop_compose! {
    fn arb_request()(
        millis in 0u64..100_000,
        lba in 0u64..1_000_000,
        bytes in 512u32..65_536,
        is_read in any::<bool>(),
    ) -> Request {
        Request::at(SimTime::from_millis(millis))
            .with_block(LogicalBlock::new(lba))
            .with_bytes(bytes)
            .with_kind(if is_read { RequestKind::Read } else { RequestKind::Write })
    }
}

fn arb_workload(max: usize) -> impl Strategy<Value = Workload> {
    prop::collection::vec(arb_request(), 0..max).prop_map(Workload::from_requests)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn workload_is_always_sorted_with_dense_ids(w in arb_workload(64)) {
        for (i, r) in w.iter().enumerate() {
            prop_assert_eq!(r.id.as_usize(), i);
        }
        prop_assert!(w.requests().windows(2).all(|p| p[0].arrival <= p[1].arrival));
    }

    #[test]
    fn merge_is_commutative_on_multisets(a in arb_workload(32), b in arb_workload(32)) {
        let ab = a.merged(&b);
        let ba = b.merged(&a);
        prop_assert_eq!(ab.len(), ba.len());
        let times = |w: &Workload| w.iter().map(|r| r.arrival).collect::<Vec<_>>();
        prop_assert_eq!(times(&ab), times(&ba));
    }

    #[test]
    fn shift_then_window_recovers_everything(
        w in arb_workload(48),
        shift_ms in 0u64..50_000,
    ) {
        let shift = SimDuration::from_millis(shift_ms);
        let s = w.shifted(shift);
        prop_assert_eq!(s.len(), w.len());
        // Windowing the full shifted range returns every request.
        if let (Some(first), Some(last)) = (s.first_arrival(), s.last_arrival()) {
            let all = s.window(first, last + SimDuration::from_nanos(1));
            prop_assert_eq!(all.len(), s.len());
        }
        // Pairwise gaps are preserved.
        for (x, y) in w.iter().zip(s.iter()) {
            prop_assert_eq!(y.arrival, x.arrival + shift);
        }
    }

    #[test]
    fn truncate_window_counts_are_consistent(w in arb_workload(48), n in 0usize..64) {
        let t = w.truncated(n);
        prop_assert_eq!(t.len(), n.min(w.len()));
        // arrivals_by at the last arrival covers the whole workload.
        if let Some(last) = w.last_arrival() {
            prop_assert_eq!(w.arrivals_by(last), w.len() as u64);
        }
    }

    #[test]
    fn spc_round_trip_is_lossless_at_microsecond_granularity(
        reqs in prop::collection::vec(arb_request(), 0..48),
    ) {
        // SPC text carries 6 decimal places of seconds: quantise arrivals
        // to whole microseconds so the round trip is exact.
        let w = Workload::from_requests(reqs.into_iter().map(|r| Request {
            arrival: SimTime::from_micros(r.arrival.as_nanos() / 1_000),
            ..r
        }));
        let mut bytes = Vec::new();
        spc::write_trace(&w, &mut bytes).expect("serialise");
        let back = spc::read_trace(bytes.as_slice()).expect("parse");
        prop_assert_eq!(w, back);
    }

    #[test]
    fn busy_periods_are_ordered_and_disjoint(
        w in arb_workload(48),
        cap in 10u64..1000,
        delta_ms in 1u64..100,
    ) {
        let analysis = ServiceAnalysis::new(
            &w,
            gqos_trace::Iops::new(cap as f64),
            SimDuration::from_millis(delta_ms),
        );
        let periods = analysis.busy_periods();
        for p in periods {
            prop_assert!(p.end >= p.start);
        }
        for pair in periods.windows(2) {
            prop_assert!(pair[0].end <= pair[1].start, "periods overlap");
        }
        let covered: u64 = periods.iter().map(|p| p.arrivals).sum();
        prop_assert_eq!(covered, w.len() as u64);
        // A feasible analysis reports no overload instants.
        if analysis.is_feasible() {
            prop_assert!(analysis.overload_instants().is_empty());
        } else {
            prop_assert!(!analysis.overload_instants().is_empty());
        }
    }

    #[test]
    fn thinning_is_a_subset_preserving_order(w in arb_workload(64), seed in any::<u64>()) {
        let t = w.thinned(0.5, seed);
        prop_assert!(t.len() <= w.len());
        // Every kept arrival exists in the original multiset.
        let mut orig: Vec<SimTime> = w.iter().map(|r| r.arrival).collect();
        for r in t.iter() {
            let pos = orig.iter().position(|&a| a == r.arrival);
            prop_assert!(pos.is_some());
            orig.remove(pos.expect("checked"));
        }
    }
}
