//! Golden streaming-vs-offline equivalence suite.
//!
//! The streaming contract: an [`OnlineShaper`] run over *any* chunking of
//! a workload is bit-identical to the offline `WorkloadShaper` run — same
//! completion records (ids, classes, nanosecond timestamps), same end
//! time, same sketch buckets. Checked here for all four recombination
//! policies × chunk sizes {1, 7, 4096, whole-trace}, for SPC-file
//! ingestion, and for the sharded gateway across 1/2/4/8 workers.

use gqos_core::{QosTarget, RecombinePolicy, WorkloadShaper};
use gqos_parallel::WorkerPool;
use gqos_stream::{IngestGateway, OnlineShaper, SpcStream, TenantSpec, WorkloadStream};
use gqos_trace::gen::profiles::TraceProfile;
use gqos_trace::{SimDuration, Workload};

/// A planned shaper over a calibrated bursty workload — the same setup the
/// paper's figures use, so the equivalence check exercises real queueing,
/// overflow, and tie-breaking rather than a trivially idle server.
fn planned() -> (Workload, WorkloadShaper) {
    let workload = TraceProfile::OpenMail.generate(SimDuration::from_secs(20), 42);
    let target = QosTarget::new(0.90, SimDuration::from_millis(20));
    let shaper = WorkloadShaper::plan(&workload, target);
    (workload, shaper)
}

#[test]
fn every_policy_and_chunking_is_bit_identical_to_offline() {
    let (workload, offline) = planned();
    let online = OnlineShaper::from(offline);
    let chunk_sizes = [1usize, 7, 4096, workload.len()];
    for policy in RecombinePolicy::ALL {
        let reference = offline.run(&workload, policy);
        let ref_sketch = reference.response_sketch();
        for chunk in chunk_sizes {
            let streamed = online
                .run(&mut WorkloadStream::new(workload.clone(), chunk), policy)
                .expect("workload stream");
            assert_eq!(
                reference.records(),
                streamed.report.records(),
                "{policy} records diverged at chunk size {chunk}"
            );
            assert_eq!(
                reference.end_time(),
                streamed.report.end_time(),
                "{policy} end time diverged at chunk size {chunk}"
            );
            assert_eq!(
                ref_sketch.nonzero_buckets(),
                streamed.report.response_sketch().nonzero_buckets(),
                "{policy} sketch buckets diverged at chunk size {chunk}"
            );
        }
    }
}

#[test]
fn observed_sketches_are_bit_identical_to_offline() {
    let (workload, offline) = planned();
    let online = OnlineShaper::from(offline);
    for policy in RecombinePolicy::ALL {
        let reference = offline.run(&workload, policy);
        let obs = online
            .run_observed(
                &mut WorkloadStream::new(workload.clone(), 7),
                policy,
                |_| {},
            )
            .expect("workload stream");
        assert_eq!(obs.sketch, reference.response_sketch(), "{policy}");
        assert_eq!(obs.completed, reference.completed(), "{policy}");
        assert_eq!(obs.end_time, reference.end_time(), "{policy}");
    }
}

#[test]
fn spc_ingestion_matches_the_offline_reader() {
    // Round-trip a workload through SPC text, then stream the text back in
    // small chunks: the run must match the offline run over the parsed
    // trace exactly.
    let (workload, offline) = planned();
    let mut spc = String::new();
    for r in workload.requests() {
        spc.push_str(&format!(
            "0,{},{},R,{:.6}\n",
            r.block.get(),
            r.bytes,
            r.arrival.as_nanos() as f64 / 1e9,
        ));
    }
    let parsed = gqos_trace::spc::read_trace(spc.as_bytes()).expect("round-trip parse");
    let online = OnlineShaper::from(offline);
    for policy in [RecombinePolicy::Fcfs, RecombinePolicy::Miser] {
        let reference = offline.run(&parsed, policy);
        let streamed = online
            .run(&mut SpcStream::new(spc.as_bytes(), 64), policy)
            .expect("spc stream");
        assert_eq!(
            reference.records(),
            streamed.report.records(),
            "{policy} SPC streaming diverged"
        );
    }
}

#[test]
fn peak_memory_tracks_chunk_size_not_trace_length() {
    // The acceptance bound: on a trace at least 10× the chunk size, the
    // resident-chunk footprint must equal chunk × size_of::<Request>(),
    // independent of trace length.
    let (workload, offline) = planned();
    let online = OnlineShaper::from(offline);
    let chunk = 4096.min(workload.len() / 10).max(1);
    assert!(
        workload.len() >= 10 * chunk,
        "trace must dwarf the chunk for the bound to mean anything"
    );
    let obs = online
        .run_observed(
            &mut WorkloadStream::new(workload.clone(), chunk),
            RecombinePolicy::Miser,
            |_| {},
        )
        .expect("workload stream");
    assert_eq!(
        obs.peak_chunk_bytes,
        chunk * std::mem::size_of::<gqos_trace::Request>()
    );
    assert_eq!(obs.chunks, workload.len().div_ceil(chunk));
    assert_eq!(obs.completed, workload.len());
}

#[test]
fn sharded_gateway_is_byte_identical_across_worker_counts() {
    let specs = || -> Vec<TenantSpec> {
        let (workload, offline) = planned();
        RecombinePolicy::ALL
            .iter()
            .enumerate()
            .map(|(i, &policy)| TenantSpec {
                name: format!("tenant-{i}"),
                workload: workload.clone().shifted(SimDuration::from_millis(i as u64)),
                shaper: OnlineShaper::from(offline),
                policy,
                inbox_bound: 32,
                chunk: 128,
            })
            .collect()
    };
    let reference = IngestGateway::new(WorkerPool::new(1)).run(specs());
    for workers in [2usize, 4, 8] {
        let sharded = IngestGateway::new(WorkerPool::new(workers)).run(specs());
        assert_eq!(
            reference, sharded,
            "gateway reports diverged at {workers} workers"
        );
    }
    for report in &reference {
        assert_eq!(report.completed, report.offered, "{}", report.name);
    }
}
