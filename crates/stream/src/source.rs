//! Arrival sources: chunked, bounded-memory request streams.
//!
//! An [`ArrivalStream`] yields the arrival process in fixed-capacity sorted
//! chunks instead of one materialised `Workload` vector, so ingestion
//! memory is bounded by the chunk size regardless of trace length. Three
//! adapters cover the repo's sources:
//!
//! - [`WorkloadStream`] — an in-memory [`Workload`] re-served in chunks
//!   (the golden reference: ids and order are exactly the workload's);
//! - [`SpcStream`] — an incremental SPC file reader built on
//!   [`gqos_trace::spc::Records`], never holding more than one chunk of
//!   parsed records;
//! - [`SyntheticStream`] — any arrival-time iterator (e.g. a generator's
//!   output fed lazily).
//!
//! # Chunk contract
//!
//! Every adapter upholds, and every consumer may assume:
//!
//! 1. chunks are sorted by arrival time (stable within equal timestamps);
//! 2. the first arrival of chunk `k+1` is `>=` the last arrival of chunk
//!    `k` (violations surface as [`StreamError::OutOfOrder`] — the
//!    bounded-reorder contract: reordering beyond one chunk cannot be
//!    repaired in bounded memory);
//! 3. request ids are dense and sequential across the whole stream, in
//!    exactly the order the requests are yielded — the same ids
//!    [`Workload::from_requests`] would have assigned to the full trace.
//!
//! Together these make a chunked run reproduce the offline run's
//! per-request identity bit-for-bit.

use std::error::Error;
use std::fmt;
use std::io::Read;

use gqos_trace::spc::{ParseSpcError, Records};
use gqos_trace::{Request, RequestId, SimTime, Workload};

/// Default chunk capacity: large enough to amortise per-chunk overheads,
/// small enough that a resident chunk is a few hundred KiB.
pub const DEFAULT_CHUNK: usize = 4096;

/// An error produced while pulling the next chunk from a stream.
#[derive(Debug)]
pub enum StreamError {
    /// The underlying SPC reader rejected a record or failed on I/O.
    Parse(ParseSpcError),
    /// An arrival in a later chunk precedes the previous chunk's maximum:
    /// the source is reordered beyond the chunk horizon and cannot be
    /// repaired in bounded memory.
    OutOfOrder {
        /// 0-based index of the offending chunk.
        chunk: usize,
        /// Latest arrival seen in earlier chunks.
        prev: SimTime,
        /// The violating (earlier) arrival in the current chunk.
        next: SimTime,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Parse(e) => write!(f, "arrival stream parse failure: {e}"),
            StreamError::OutOfOrder { chunk, prev, next } => write!(
                f,
                "arrival stream reordered beyond the chunk horizon: chunk {chunk} \
                 starts at {next}, before the previous chunk's last arrival {prev}"
            ),
        }
    }
}

impl Error for StreamError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StreamError::Parse(e) => Some(e),
            StreamError::OutOfOrder { .. } => None,
        }
    }
}

impl From<ParseSpcError> for StreamError {
    fn from(e: ParseSpcError) -> Self {
        StreamError::Parse(e)
    }
}

/// A source of arrivals in fixed-capacity sorted chunks.
///
/// See the [module docs](self) for the chunk contract every implementation
/// must uphold.
pub trait ArrivalStream {
    /// The configured maximum chunk length.
    fn chunk_capacity(&self) -> usize;

    /// Clears `buf` and fills it with the next chunk (at most
    /// [`chunk_capacity`](ArrivalStream::chunk_capacity) requests),
    /// returning the number of requests written. Zero means the stream is
    /// exhausted; subsequent calls keep returning zero.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError`] on a malformed source record or an
    /// out-of-order arrival beyond the chunk horizon.
    fn next_chunk(&mut self, buf: &mut Vec<Request>) -> Result<usize, StreamError>;
}

/// Shared tail logic for id-assigning adapters: stable-sort the chunk,
/// check the cross-chunk ordering contract, assign dense sequential ids.
fn seal_chunk(
    buf: &mut [Request],
    next_id: &mut u64,
    last_arrival: &mut Option<SimTime>,
    chunk_index: usize,
) -> Result<(), StreamError> {
    buf.sort_by_key(|r| r.arrival);
    if let (Some(prev), Some(first)) = (*last_arrival, buf.first().map(|r| r.arrival)) {
        if first < prev {
            return Err(StreamError::OutOfOrder {
                chunk: chunk_index,
                prev,
                next: first,
            });
        }
    }
    for r in buf.iter_mut() {
        r.id = RequestId::new(*next_id);
        *next_id += 1;
    }
    if let Some(last) = buf.last() {
        *last_arrival = Some(last.arrival);
    }
    Ok(())
}

/// An in-memory [`Workload`] served in chunks.
///
/// The reference adapter: ids and ordering are exactly the workload's own
/// (already sorted with dense ids), so a chunked run over this stream must
/// be bit-identical to the offline run over the same workload.
///
/// # Examples
///
/// ```
/// use gqos_stream::{ArrivalStream, WorkloadStream};
/// use gqos_trace::{SimTime, Workload};
///
/// let w = Workload::from_arrivals((0..10).map(SimTime::from_millis));
/// let mut stream = WorkloadStream::new(w, 4);
/// let mut buf = Vec::new();
/// let mut total = 0;
/// while stream.next_chunk(&mut buf).unwrap() > 0 {
///     total += buf.len();
/// }
/// assert_eq!(total, 10);
/// ```
#[derive(Clone, Debug)]
pub struct WorkloadStream {
    workload: Workload,
    chunk: usize,
    next: usize,
}

impl WorkloadStream {
    /// Creates a stream over `workload` yielding chunks of at most `chunk`
    /// requests.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn new(workload: Workload, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk capacity must be positive");
        WorkloadStream {
            workload,
            chunk,
            next: 0,
        }
    }
}

impl ArrivalStream for WorkloadStream {
    fn chunk_capacity(&self) -> usize {
        self.chunk
    }

    fn next_chunk(&mut self, buf: &mut Vec<Request>) -> Result<usize, StreamError> {
        buf.clear();
        let requests = self.workload.requests();
        let end = (self.next + self.chunk).min(requests.len());
        buf.extend_from_slice(&requests[self.next..end]);
        let n = end - self.next;
        self.next = end;
        Ok(n)
    }
}

/// An incremental SPC trace reader yielding sorted chunks.
///
/// Reads one record at a time through [`gqos_trace::spc::Records`] (the
/// same hardened parser as `spc::read_trace`), sorts each chunk, and
/// assigns dense sequential ids. Sources reordered within one chunk are
/// repaired; reordering across the chunk horizon is a
/// [`StreamError::OutOfOrder`].
///
/// # Examples
///
/// ```
/// use gqos_stream::{ArrivalStream, SpcStream};
///
/// let trace = "0,1,512,R,0.002\n0,2,512,R,0.001\n0,3,512,W,0.005\n";
/// let mut stream = SpcStream::new(trace.as_bytes(), 2);
/// let mut buf = Vec::new();
/// assert_eq!(stream.next_chunk(&mut buf).unwrap(), 2);
/// // The first chunk was sorted: 0.001 before 0.002.
/// assert!(buf[0].arrival < buf[1].arrival);
/// ```
#[derive(Debug)]
pub struct SpcStream<R: Read> {
    records: Records<R>,
    /// One record read past the chunk boundary, if any.
    lookahead: Option<Request>,
    chunk: usize,
    chunks_read: usize,
    next_id: u64,
    last_arrival: Option<SimTime>,
    exhausted: bool,
}

impl<R: Read> SpcStream<R> {
    /// Creates a stream reading SPC records from `reader` in chunks of at
    /// most `chunk` requests.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn new(reader: R, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk capacity must be positive");
        SpcStream {
            records: Records::new(reader),
            lookahead: None,
            chunk,
            chunks_read: 0,
            next_id: 0,
            last_arrival: None,
            exhausted: false,
        }
    }
}

impl<R: Read> ArrivalStream for SpcStream<R> {
    fn chunk_capacity(&self) -> usize {
        self.chunk
    }

    fn next_chunk(&mut self, buf: &mut Vec<Request>) -> Result<usize, StreamError> {
        buf.clear();
        if self.exhausted {
            return Ok(0);
        }
        if let Some(r) = self.lookahead.take() {
            buf.push(r);
        }
        while buf.len() < self.chunk {
            match self.records.next() {
                Some(Ok(r)) => buf.push(r),
                Some(Err(e)) => return Err(e.into()),
                None => {
                    self.exhausted = true;
                    break;
                }
            }
        }
        if buf.is_empty() {
            return Ok(0);
        }
        seal_chunk(
            buf,
            &mut self.next_id,
            &mut self.last_arrival,
            self.chunks_read,
        )?;
        self.chunks_read += 1;
        Ok(buf.len())
    }
}

/// An arrival-time iterator (e.g. a synthetic generator's output) served
/// in sorted chunks with dense sequential ids.
///
/// # Examples
///
/// ```
/// use gqos_stream::{ArrivalStream, SyntheticStream};
/// use gqos_trace::SimTime;
///
/// let mut stream =
///     SyntheticStream::new((0..100u64).map(SimTime::from_millis), 32);
/// let mut buf = Vec::new();
/// assert_eq!(stream.next_chunk(&mut buf).unwrap(), 32);
/// assert_eq!(buf[0].id.index(), 0);
/// ```
#[derive(Debug)]
pub struct SyntheticStream<I> {
    arrivals: I,
    chunk: usize,
    chunks_read: usize,
    next_id: u64,
    last_arrival: Option<SimTime>,
}

impl<I: Iterator<Item = SimTime>> SyntheticStream<I> {
    /// Creates a stream over `arrivals` yielding chunks of at most `chunk`
    /// requests. Arrivals may be unordered within a chunk (they are
    /// sorted), but not across chunks.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn new(arrivals: I, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk capacity must be positive");
        SyntheticStream {
            arrivals,
            chunk,
            chunks_read: 0,
            next_id: 0,
            last_arrival: None,
        }
    }
}

impl<I: Iterator<Item = SimTime>> ArrivalStream for SyntheticStream<I> {
    fn chunk_capacity(&self) -> usize {
        self.chunk
    }

    fn next_chunk(&mut self, buf: &mut Vec<Request>) -> Result<usize, StreamError> {
        buf.clear();
        buf.extend(self.arrivals.by_ref().take(self.chunk).map(Request::at));
        if buf.is_empty() {
            return Ok(0);
        }
        seal_chunk(
            buf,
            &mut self.next_id,
            &mut self.last_arrival,
            self.chunks_read,
        )?;
        self.chunks_read += 1;
        Ok(buf.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn drain<A: ArrivalStream>(mut stream: A) -> Vec<Request> {
        let mut buf = Vec::new();
        let mut all = Vec::new();
        loop {
            let n = stream.next_chunk(&mut buf).expect("stream ok");
            if n == 0 {
                break;
            }
            all.extend_from_slice(&buf);
        }
        all
    }

    #[test]
    fn workload_stream_reproduces_the_workload() {
        let w = Workload::from_arrivals((0..25).map(|i| ms(i * 3)));
        for chunk in [1usize, 4, 7, 25, 100] {
            let all = drain(WorkloadStream::new(w.clone(), chunk));
            assert_eq!(all.as_slice(), w.requests(), "chunk {chunk}");
        }
    }

    #[test]
    fn workload_stream_exhaustion_is_sticky() {
        let w = Workload::from_arrivals([ms(1)]);
        let mut s = WorkloadStream::new(w, 8);
        let mut buf = Vec::new();
        assert_eq!(s.next_chunk(&mut buf).unwrap(), 1);
        assert_eq!(s.next_chunk(&mut buf).unwrap(), 0);
        assert_eq!(s.next_chunk(&mut buf).unwrap(), 0);
    }

    #[test]
    fn spc_stream_matches_read_trace_ids_and_order() {
        // In-chunk disorder is sorted away; ids match the offline reader's
        // global sort because the disorder never crosses a chunk boundary.
        let trace = "0,1,512,R,0.002\n0,2,512,R,0.001\n0,3,512,W,0.005\n0,4,512,R,0.004\n";
        let offline = gqos_trace::spc::read_trace(trace.as_bytes()).unwrap();
        let streamed = drain(SpcStream::new(trace.as_bytes(), 2));
        assert_eq!(streamed.as_slice(), offline.requests());
    }

    #[test]
    fn spc_stream_rejects_cross_chunk_disorder() {
        // 5.0 then 1.0 with chunk size 1: the disorder crosses the chunk
        // horizon and must surface as a typed error.
        let trace = "0,1,512,R,5.0\n0,2,512,R,1.0\n";
        let mut s = SpcStream::new(trace.as_bytes(), 1);
        let mut buf = Vec::new();
        assert_eq!(s.next_chunk(&mut buf).unwrap(), 1);
        let err = s.next_chunk(&mut buf).unwrap_err();
        assert!(
            matches!(err, StreamError::OutOfOrder { chunk: 1, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("chunk horizon"));
    }

    #[test]
    fn spc_stream_propagates_parse_errors() {
        let trace = "0,1,512,R,0.0\n0,1,512,X,1.0\n";
        let mut s = SpcStream::new(trace.as_bytes(), 16);
        let err = s.next_chunk(&mut Vec::new()).unwrap_err();
        assert!(matches!(err, StreamError::Parse(_)));
        assert!(err.source().is_some());
    }

    #[test]
    fn synthetic_stream_assigns_dense_ids() {
        let all = drain(SyntheticStream::new((0..10u64).map(ms), 3));
        for (i, r) in all.iter().enumerate() {
            assert_eq!(r.id.index(), i as u64);
        }
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn synthetic_stream_rejects_cross_chunk_disorder() {
        let times = [ms(5), ms(6), ms(1)];
        let mut s = SyntheticStream::new(times.into_iter(), 2);
        let mut buf = Vec::new();
        assert_eq!(s.next_chunk(&mut buf).unwrap(), 2);
        assert!(s.next_chunk(&mut buf).is_err());
    }

    #[test]
    #[should_panic(expected = "chunk capacity must be positive")]
    fn zero_chunk_rejected() {
        let _ = WorkloadStream::new(Workload::new(), 0);
    }
}
