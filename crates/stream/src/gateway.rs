//! Sharded multi-tenant admission: bounded per-tenant inboxes with
//! shed-to-Q2 backpressure, fanned across a
//! [`WorkerPool`](gqos_parallel::WorkerPool).
//!
//! Each tenant is an independent lane — its own arrival stream, shaper
//! provision, recombination policy, and inbox bound — so lanes partition
//! cleanly across workers and the gateway's output is assembled
//! positionally: for a fixed tenant list the result is **byte-identical**
//! for any worker count (1, 2, 4, 8, …).
//!
//! # Backpressure semantics
//!
//! A tenant's inbox is the pending backlog of its policy scheduler,
//! bounded at [`TenantSpec::inbox_bound`] entries. An arrival that finds
//! the inbox full is *shed*: it is never dropped, but demoted past the
//! policy's own decomposition into a best-effort FIFO served at
//! [`ServiceClass::OVERFLOW`] only when the policy has nothing eligible
//! (work-conserving, never pre-empting a policy decision and never
//! overriding a non-work-conserving policy's `After` holdback). Every
//! shed is counted and, when a trace is attached, emitted as a
//! [`TraceEvent::Diverted`] with the full queue depth at the instant of
//! the shed.

use std::collections::{HashSet, VecDeque};
use std::fmt;

use gqos_core::RecombinePolicy;
use gqos_parallel::WorkerPool;
use gqos_sim::{
    CompletionRecord, Dispatch, LatencySketch, LongTermStore, Scheduler, ServerId, ServiceClass,
    StreamingSimulation, TraceEvent, TraceHandle, WindowSnapshot, WindowedSketch,
};
use gqos_trace::{Request, SimDuration, SimTime, Workload};

use crate::shaper::policy_parts;
use crate::source::{ArrivalStream, WorkloadStream};
use crate::OnlineShaper;

/// Wraps a policy scheduler with a bounded inbox: arrivals beyond the
/// bound are shed to a best-effort overflow FIFO instead of growing the
/// policy's queues without limit.
///
/// With a bound no arrival ever reaches, the wrapper is an exact no-op —
/// every dispatch, class, and completion matches the bare inner scheduler.
///
/// # Examples
///
/// ```
/// use gqos_sim::{Dispatch, FcfsScheduler, Scheduler, ServerId, ServiceClass};
/// use gqos_stream::ShedScheduler;
/// use gqos_trace::{Request, SimTime};
///
/// let mut s = ShedScheduler::new(FcfsScheduler::new(), 1);
/// s.on_arrival(Request::at(SimTime::ZERO), SimTime::ZERO);
/// s.on_arrival(Request::at(SimTime::ZERO), SimTime::ZERO); // inbox full
/// assert_eq!(s.shed_count(), 1);
/// // The shed request is served best-effort once the inner queue drains.
/// let _ = s.next_for(ServerId::new(0), SimTime::ZERO);
/// match s.next_for(ServerId::new(0), SimTime::ZERO) {
///     Dispatch::Serve(_, class) => assert_eq!(class, ServiceClass::OVERFLOW),
///     other => panic!("unexpected {other:?}"),
/// }
/// ```
#[derive(Debug)]
pub struct ShedScheduler<S> {
    inner: S,
    bound: usize,
    shed: VecDeque<Request>,
    /// Ids of shed requests currently in service, so their completions are
    /// not reflected into the inner scheduler (which never saw them).
    in_service: HashSet<u64>,
    shed_count: usize,
    /// When set, every arrival at or after this instant is shed regardless
    /// of inbox depth — the handoff window of a drain-and-migrate.
    drain_from: Option<SimTime>,
    trace: TraceHandle,
}

impl<S: Scheduler> ShedScheduler<S> {
    /// Wraps `inner` with an inbox bounded at `bound` pending requests.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn new(inner: S, bound: usize) -> Self {
        Self::with_trace(inner, bound, TraceHandle::disabled())
    }

    /// Like [`new`](ShedScheduler::new), emitting a
    /// [`TraceEvent::Diverted`] into `trace` for every shed arrival.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn with_trace(inner: S, bound: usize, trace: TraceHandle) -> Self {
        assert!(bound > 0, "inbox bound must be positive");
        ShedScheduler {
            inner,
            bound,
            shed: VecDeque::new(),
            in_service: HashSet::new(),
            shed_count: 0,
            drain_from: None,
            trace,
        }
    }

    /// Marks the scheduler as draining from `at`: every arrival at or
    /// after that instant is shed to the best-effort lane regardless of
    /// inbox depth, so the inner policy's backlog can only shrink. Already
    /// admitted requests still run to completion — nothing is dropped.
    #[must_use]
    pub fn with_drain_from(mut self, at: SimTime) -> Self {
        self.drain_from = Some(at);
        self
    }

    /// The drain cutover instant, if one is set.
    pub fn drain_from(&self) -> Option<SimTime> {
        self.drain_from
    }

    /// The wrapped policy scheduler.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The configured inbox bound.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Arrivals shed to the best-effort lane so far.
    pub fn shed_count(&self) -> usize {
        self.shed_count
    }

    /// Shed requests still waiting for service.
    pub fn shed_pending(&self) -> usize {
        self.shed.len()
    }
}

impl<S: Scheduler> Scheduler for ShedScheduler<S> {
    fn on_arrival(&mut self, request: Request, now: SimTime) {
        let depth = self.inner.pending() + self.shed.len();
        let draining = self.drain_from.is_some_and(|at| now >= at);
        if depth >= self.bound || draining {
            self.shed_count += 1;
            self.trace.emit_with(|| TraceEvent::Diverted {
                at: now,
                id: request.id.index(),
                queue_depth: depth as u64,
            });
            self.shed.push_back(request);
        } else {
            self.inner.on_arrival(request, now);
        }
    }

    fn next_for(&mut self, server: ServerId, now: SimTime) -> Dispatch {
        match self.inner.next_for(server, now) {
            Dispatch::Idle => match self.shed.pop_front() {
                Some(request) => {
                    self.in_service.insert(request.id.index());
                    Dispatch::Serve(request, ServiceClass::OVERFLOW)
                }
                None => Dispatch::Idle,
            },
            decision => decision,
        }
    }

    fn on_completion(&mut self, request: &Request, class: ServiceClass, now: SimTime) {
        if !self.in_service.remove(&request.id.index()) {
            self.inner.on_completion(request, class, now);
        }
    }

    fn pending(&self) -> usize {
        self.inner.pending() + self.shed.len()
    }
}

/// One tenant's lane configuration.
///
/// This is a passive data record; fields are public by design.
#[derive(Clone, PartialEq, Debug)]
pub struct TenantSpec {
    /// Display name, carried through to the report.
    pub name: String,
    /// The tenant's arrival stream (materialised; streamed in chunks).
    pub workload: Workload,
    /// Provision and deadline for the tenant's lane.
    pub shaper: OnlineShaper,
    /// Recombination policy for the lane.
    pub policy: RecombinePolicy,
    /// Inbox bound: pending requests beyond this are shed to best-effort.
    pub inbox_bound: usize,
    /// Ingestion chunk size for the lane.
    pub chunk: usize,
}

/// The outcome of one tenant's lane.
///
/// This is a passive result record; fields are public by design.
#[derive(Clone, PartialEq, Debug)]
pub struct TenantReport {
    /// The tenant's name, copied from its spec.
    pub name: String,
    /// The policy the lane ran.
    pub policy: RecombinePolicy,
    /// Requests offered to the lane.
    pub offered: usize,
    /// Requests that completed service.
    pub completed: usize,
    /// Arrivals shed to the best-effort lane by the inbox bound.
    pub shed: usize,
    /// Instant of the lane's last event.
    pub end_time: SimTime,
    /// Largest resident ingestion chunk, in bytes.
    pub peak_chunk_bytes: usize,
    /// Sketch over all of the lane's response times.
    pub sketch: LatencySketch,
    /// Every completion record, in completion order — the byte-identity
    /// witness for determinism checks across worker counts.
    pub records: Vec<CompletionRecord>,
}

impl TenantReport {
    /// The gateway's feedback tap for the SLO-window controller:
    /// partitions this lane's response times into fixed `window`-wide
    /// sketches keyed by **completion instant**, quiet windows included
    /// (they surface as typed no-signal snapshots, never a zero
    /// quantile — see [`WindowSnapshot::signal`]).
    ///
    /// Lossless by construction: merging every returned snapshot
    /// reproduces [`TenantReport::sketch`] bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn window_feedback(&self, window: SimDuration) -> Vec<WindowSnapshot> {
        let mut windowed = WindowedSketch::new(window);
        let mut out = Vec::new();
        for r in &self.records {
            let latency = r.response_time().as_nanos();
            // Records are in completion order, so instants are monotone
            // and recording can never reject as out-of-order.
            out.extend(
                windowed
                    .record(r.completion, latency)
                    .expect("completion-ordered records cannot be out of order"),
            );
        }
        out.push(windowed.finish());
        out
    }

    /// Feeds this lane's window feedback into a long-horizon store under
    /// the tenant's name: every closed `window`-wide snapshot is merged
    /// into the store's retention ladder, keyed by its start instant.
    /// Keep `window` no wider than (and dividing) the store's tier-0
    /// width for exact time attribution.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn feed_longterm(&self, window: SimDuration, store: &mut LongTermStore<String>) {
        for snapshot in self.window_feedback(window) {
            store
                .ingest_snapshot(&self.name, &snapshot)
                .expect("window feedback snapshots are time-ordered");
        }
    }
}

/// A sharded admission gateway: runs each tenant lane independently on a
/// worker pool, assembling reports in tenant order.
///
/// # Examples
///
/// ```
/// use gqos_core::{Provision, RecombinePolicy};
/// use gqos_parallel::WorkerPool;
/// use gqos_stream::{IngestGateway, OnlineShaper, TenantSpec};
/// use gqos_trace::{Iops, SimDuration, SimTime, Workload};
///
/// let spec = TenantSpec {
///     name: "tenant-a".into(),
///     workload: Workload::from_arrivals((0..50).map(SimTime::from_millis)),
///     shaper: OnlineShaper::new(
///         Provision::new(Iops::new(200.0), Iops::new(100.0)),
///         SimDuration::from_millis(20),
///     ),
///     policy: RecombinePolicy::FairQueue,
///     inbox_bound: 64,
///     chunk: 16,
/// };
/// let reports = IngestGateway::new(WorkerPool::serial()).run(vec![spec]);
/// assert_eq!(reports[0].completed, 50);
/// ```
#[derive(Copy, Clone, Debug)]
pub struct IngestGateway {
    pool: WorkerPool,
}

impl IngestGateway {
    /// Creates a gateway sharding lanes across `pool`.
    pub fn new(pool: WorkerPool) -> Self {
        IngestGateway { pool }
    }

    /// The gateway's worker pool.
    pub fn pool(&self) -> WorkerPool {
        self.pool
    }

    /// Runs every tenant lane to completion, returning reports in tenant
    /// order. Lanes are independent, so the result does not depend on the
    /// worker count: for a fixed `tenants` list the reports are
    /// byte-identical whether the pool is serial or 8-wide.
    pub fn run(&self, tenants: Vec<TenantSpec>) -> Vec<TenantReport> {
        self.pool.map(tenants, run_lane)
    }
}

impl fmt::Display for IngestGateway {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gateway({} workers)", self.pool.threads())
    }
}

/// Drives one tenant lane start to finish. Lanes run untraced: trace
/// handles are single-threaded by design (`Rc`-shared sinks), so sharded
/// lanes report through counters and sketches instead.
fn run_lane(spec: TenantSpec) -> TenantReport {
    let (scheduler, servers) = policy_parts(
        spec.shaper.provision(),
        spec.shaper.deadline(),
        spec.policy,
        None,
    );
    let mut sim = StreamingSimulation::new(ShedScheduler::new(scheduler, spec.inbox_bound));
    for server in servers {
        sim = sim.server(server);
    }
    let mut stream = WorkloadStream::new(spec.workload, spec.chunk);
    let mut buf = Vec::new();
    let mut peak_chunk_bytes = 0usize;
    loop {
        let n = stream
            .next_chunk(&mut buf)
            .expect("workload streams cannot fail");
        if n == 0 {
            break;
        }
        peak_chunk_bytes = peak_chunk_bytes.max(n * std::mem::size_of::<Request>());
        for &request in buf.iter() {
            sim.offer(request);
        }
    }
    sim.finish();
    let shed = sim.scheduler().shed_count();
    let report = sim.into_report();
    TenantReport {
        name: spec.name,
        policy: spec.policy,
        offered: report.total_requests(),
        completed: report.completed(),
        shed,
        end_time: report.end_time(),
        peak_chunk_bytes,
        sketch: report.response_sketch(),
        records: report.into_records(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqos_core::{Provision, WorkloadShaper};
    use gqos_sim::FcfsScheduler;
    use gqos_trace::{Iops, SimDuration};

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn shaper() -> OnlineShaper {
        OnlineShaper::new(
            Provision::new(Iops::new(250.0), Iops::new(100.0)),
            SimDuration::from_millis(20),
        )
    }

    fn bursty(seed: u64) -> Workload {
        let mut arrivals: Vec<SimTime> = (0..150).map(|i| ms(i * 5 + seed)).collect();
        arrivals.extend(vec![ms(300 + seed); 30]);
        Workload::from_arrivals(arrivals)
    }

    fn specs() -> Vec<TenantSpec> {
        RecombinePolicy::ALL
            .iter()
            .enumerate()
            .map(|(i, &policy)| TenantSpec {
                name: format!("tenant-{i}"),
                workload: bursty(i as u64),
                shaper: shaper(),
                policy,
                inbox_bound: 8,
                chunk: 16,
            })
            .collect()
    }

    #[test]
    fn generous_bound_is_a_no_op_wrapper() {
        // With an unreachable bound, the lane must reproduce the plain
        // offline shaper byte for byte — sheds included (zero).
        let w = bursty(0);
        let offline = WorkloadShaper::new(shaper().provision(), shaper().deadline());
        for policy in RecombinePolicy::ALL {
            let reference = offline.run(&w, policy);
            let report = run_lane(TenantSpec {
                name: "t".into(),
                workload: w.clone(),
                shaper: shaper(),
                policy,
                inbox_bound: usize::MAX,
                chunk: 32,
            });
            assert_eq!(report.shed, 0, "{policy}");
            assert_eq!(report.records, reference.records(), "{policy}");
            assert_eq!(report.end_time, reference.end_time(), "{policy}");
        }
    }

    #[test]
    fn tight_bound_sheds_but_completes_everything() {
        let report = run_lane(TenantSpec {
            name: "t".into(),
            workload: bursty(0),
            shaper: shaper(),
            policy: RecombinePolicy::Miser,
            inbox_bound: 4,
            chunk: 16,
        });
        assert!(report.shed > 0, "burst of 30 must overflow a 4-deep inbox");
        assert_eq!(
            report.completed, report.offered,
            "shedding must demote, never drop"
        );
        let overflow = report
            .records
            .iter()
            .filter(|r| r.class == ServiceClass::OVERFLOW)
            .count();
        assert!(
            overflow >= report.shed,
            "shed requests must complete best-effort"
        );
    }

    #[test]
    fn sheds_are_traced_as_diverted() {
        let (trace, sink) = TraceHandle::memory();
        let mut s = ShedScheduler::with_trace(FcfsScheduler::new(), 2, trace);
        for i in 0..5u64 {
            s.on_arrival(
                Request::at(ms(0)).with_id(gqos_trace::RequestId::new(i)),
                ms(0),
            );
        }
        assert_eq!(s.shed_count(), 3);
        assert_eq!(s.shed_pending(), 3);
        assert_eq!(s.pending(), 5);
        assert_eq!(s.inner().pending(), 2);
        let diverted: Vec<u64> = sink
            .borrow()
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Diverted {
                    id, queue_depth, ..
                } => {
                    assert!(*queue_depth >= 2);
                    Some(*id)
                }
                _ => None,
            })
            .collect();
        assert_eq!(diverted, vec![2, 3, 4]);
    }

    #[test]
    fn shed_completions_do_not_reach_the_inner_scheduler() {
        // A shed request's completion must not be reflected into the inner
        // scheduler; an admitted request's must.
        let mut s = ShedScheduler::new(FcfsScheduler::new(), 1);
        let admitted = Request::at(ms(0)).with_id(gqos_trace::RequestId::new(0));
        let shed = Request::at(ms(0)).with_id(gqos_trace::RequestId::new(1));
        s.on_arrival(admitted, ms(0));
        s.on_arrival(shed, ms(0));
        let Dispatch::Serve(first, class) = s.next_for(ServerId::new(0), ms(0)) else {
            panic!("expected admitted dispatch");
        };
        assert_eq!(class, ServiceClass::PRIMARY);
        s.on_completion(&first, class, ms(1));
        let Dispatch::Serve(second, class) = s.next_for(ServerId::new(0), ms(1)) else {
            panic!("expected shed dispatch");
        };
        assert_eq!(class, ServiceClass::OVERFLOW);
        assert_eq!(second.id, shed.id);
        s.on_completion(&second, class, ms(2));
        assert_eq!(s.pending(), 0);
        assert_eq!(s.next_for(ServerId::new(0), ms(2)), Dispatch::Idle);
    }

    #[test]
    fn reports_are_identical_across_worker_counts() {
        let reference = IngestGateway::new(WorkerPool::serial()).run(specs());
        for workers in [2usize, 4, 8] {
            let sharded = IngestGateway::new(WorkerPool::new(workers)).run(specs());
            assert_eq!(
                reference, sharded,
                "gateway output diverged at {workers} workers"
            );
        }
        assert_eq!(reference.len(), 4);
        assert!(reference.iter().all(|r| r.completed == r.offered));
    }

    #[test]
    fn longterm_feed_is_lossless_against_the_lane_sketch() {
        use gqos_sim::{LongTermStore, RetentionConfig};
        let report = run_lane(TenantSpec {
            name: "t".into(),
            workload: bursty(0),
            shaper: shaper(),
            policy: RecombinePolicy::FairQueue,
            inbox_bound: 8,
            chunk: 16,
        });
        let mut store: LongTermStore<String> = LongTermStore::new(RetentionConfig::default_tiers());
        report.feed_longterm(SimDuration::from_millis(100), &mut store);
        // The retention ladder's cumulative sketch reproduces the lane's
        // whole-run sketch bit for bit — retention loses nothing.
        assert_eq!(store.cumulative(&report.name).unwrap(), &report.sketch);
    }

    #[test]
    fn gateway_display_names_worker_count() {
        let gw = IngestGateway::new(WorkerPool::new(4));
        assert_eq!(gw.to_string(), "gateway(4 workers)");
        assert_eq!(gw.pool().threads(), 4);
    }

    #[test]
    #[should_panic(expected = "inbox bound must be positive")]
    fn zero_bound_rejected() {
        let _ = ShedScheduler::new(FcfsScheduler::new(), 0);
    }
}
