//! # gqos-stream — chunked bounded-memory ingestion
//!
//! Streaming front-end for the `gqos` workspace: decompose and serve
//! *unbounded* arrival streams in `O(maxQ1 + chunk)` memory instead of
//! materialising whole workloads, per the online spirit of Algorithm 1 in
//! *"Graduated QoS by Decomposing Bursts"* (ICDCS 2009).
//!
//! Three layers:
//!
//! - [`ArrivalStream`] + adapters ([`WorkloadStream`], [`SpcStream`],
//!   [`SyntheticStream`]) — arrivals in fixed-capacity sorted chunks with
//!   dense cross-chunk request ids;
//! - [`OnlineShaper`] — drives the four recombination policies chunk by
//!   chunk through `gqos_sim::StreamingSimulation`; results are
//!   bit-identical to the offline `WorkloadShaper` for any chunking
//!   (golden-tested in `tests/golden_equiv.rs`);
//! - [`IngestGateway`] + [`ShedScheduler`] — sharded multi-tenant
//!   admission with bounded per-tenant inboxes and shed-to-Q2
//!   backpressure, byte-identical across worker counts; plus
//!   [`drain_migrate`] — a zero-drop drain-and-migrate handoff that moves
//!   a live lane between server bins over a [`DrainPlan`] window without
//!   dropping a single request.
//!
//! # Examples
//!
//! Stream an SPC trace through FairQueue without ever holding the full
//! trace:
//!
//! ```
//! use gqos_core::{Provision, RecombinePolicy};
//! use gqos_stream::{OnlineShaper, SpcStream};
//! use gqos_trace::{Iops, SimDuration};
//!
//! let trace = "0,0,512,R,0.000\n0,8,512,R,0.001\n0,16,512,W,0.002\n";
//! let shaper = OnlineShaper::new(
//!     Provision::new(Iops::new(200.0), Iops::new(100.0)),
//!     SimDuration::from_millis(20),
//! );
//! let obs = shaper
//!     .run_observed(
//!         &mut SpcStream::new(trace.as_bytes(), 2),
//!         RecombinePolicy::FairQueue,
//!         |_| {},
//!     )
//!     .unwrap();
//! assert_eq!(obs.completed, 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod drain;
mod gateway;
mod shaper;
mod source;

pub use drain::{drain_migrate, DrainPlan, DrainReport};
pub use gateway::{IngestGateway, ShedScheduler, TenantReport, TenantSpec};
pub use shaper::{OnlineShaper, StreamObservation, StreamReport};
pub use source::{
    ArrivalStream, SpcStream, StreamError, SyntheticStream, WorkloadStream, DEFAULT_CHUNK,
};
