//! Zero-drop tenant drain-and-migrate through the ingest gateway.
//!
//! A live reconfiguration — SLA renegotiation onto a different server bin,
//! or evacuating a node the placer marked down — must move a tenant's lane
//! without dropping a single request. [`drain_migrate`] implements the
//! three-phase handoff the control plane's `DrainTenant` command rides on:
//!
//! 1. **Before the window** (`t < plan.start()`): arrivals are admitted on
//!    the old bin exactly as a normal lane run — same decisions, same
//!    nanoseconds.
//! 2. **Inside the window** (`plan.start() <= t < plan.end()`): the old
//!    lane's [`ShedScheduler`] is put into drain mode
//!    ([`ShedScheduler::with_drain_from`]): every new arrival is shed to
//!    the best-effort overflow FIFO — counted, traced as
//!    [`TraceEvent::Diverted`], and served at `OVERFLOW` class on the old
//!    bin once the policy's backlog empties. Already-admitted requests run
//!    to completion undisturbed.
//! 3. **After the window** (`t >= plan.end()`): arrivals are re-admitted
//!    on the target bin, each traced as [`TraceEvent::Migrated`].
//!
//! The handoff is bracketed by [`TraceEvent::DrainStarted`] and
//! [`TraceEvent::DrainCompleted`] so a replayed trace (`gqos-obs`'s
//! `DrainRecord` reconstruction) can
//! audit the shed and migrated counts independently. The invariant the
//! chaos harness pins: **offered == completed on both lanes** — shedding
//! demotes, migration redirects, nothing is ever dropped.

use gqos_sim::{StreamingSimulation, TraceEvent, TraceHandle};
use gqos_trace::{Request, SimDuration, SimTime, Workload};

use crate::gateway::{ShedScheduler, TenantReport, TenantSpec};
use crate::shaper::policy_parts;
use crate::source::{ArrivalStream, WorkloadStream};

/// The handoff window of a drain-and-migrate: shedding starts at `start`
/// and the target bin takes over at `start + window`.
///
/// # Examples
///
/// ```
/// use gqos_stream::DrainPlan;
/// use gqos_trace::{SimDuration, SimTime};
///
/// let plan = DrainPlan::new(SimTime::from_millis(100), SimDuration::from_millis(50));
/// assert_eq!(plan.end(), SimTime::from_millis(150));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct DrainPlan {
    start: SimTime,
    window: SimDuration,
}

impl DrainPlan {
    /// A handoff window starting at `start` and lasting `window`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero (the cutover would be ill-defined: the
    /// drain trace events would bracket an empty interval) or if
    /// `start + window` overflows the timeline.
    pub fn new(start: SimTime, window: SimDuration) -> Self {
        assert!(!window.is_zero(), "drain window must be positive");
        assert!(
            start.as_nanos().checked_add(window.as_nanos()).is_some(),
            "drain window end overflows the timeline"
        );
        DrainPlan { start, window }
    }

    /// First instant at which old-lane arrivals are shed.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// The handoff window length.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// First instant served by the target bin (exclusive end of the shed
    /// window).
    pub fn end(&self) -> SimTime {
        self.start + self.window
    }
}

/// The audited outcome of a [`drain_migrate`] handoff.
///
/// This is a passive result record; fields are public by design.
#[derive(Clone, PartialEq, Debug)]
pub struct DrainReport {
    /// The tenant being moved (control-plane id, carried into the trace).
    pub tenant: u64,
    /// The bin the tenant drained from.
    pub from_server: usize,
    /// The bin the tenant migrated to.
    pub to_server: usize,
    /// The old lane's report: pre-window admissions plus window sheds,
    /// all completed on `from_server`.
    pub old: TenantReport,
    /// The new lane's report: post-window arrivals, all completed on
    /// `to_server`.
    pub new: TenantReport,
    /// Arrivals inside the handoff window, every one shed to best-effort
    /// (never dropped) on the old bin.
    pub window_shed: u64,
    /// Arrivals re-admitted on the target bin after the window.
    pub migrated: u64,
}

impl DrainReport {
    /// Total requests offered across both lanes.
    pub fn offered(&self) -> usize {
        self.old.offered + self.new.offered
    }

    /// Total requests completed across both lanes.
    pub fn completed(&self) -> usize {
        self.old.completed + self.new.completed
    }

    /// Requests lost in the handoff — zero by construction; exposed so
    /// harnesses can assert the invariant rather than trust it.
    pub fn dropped(&self) -> usize {
        self.offered() - self.completed()
    }
}

/// Drains `spec`'s lane off `from_server` and migrates it to `to_server`
/// over the handoff window `plan`, with the zero-drop guarantee described
/// in the [module docs](self).
///
/// Emits [`TraceEvent::DrainStarted`] / [`TraceEvent::DrainCompleted`]
/// brackets, a [`TraceEvent::Diverted`] per window shed, and a
/// [`TraceEvent::Migrated`] per re-admitted arrival into `trace`. Request
/// ids in those events are *lane-local* (each lane re-identifies its
/// window of the workload from 0), matching every other per-lane trace in
/// the gateway.
///
/// Both lanes run single-threaded: trace handles are `Rc`-shared by
/// design, so a traced drain is a one-lane operation — the control plane
/// serialises drains, it does not fan them out.
pub fn drain_migrate(
    spec: &TenantSpec,
    plan: DrainPlan,
    tenant: u64,
    from_server: usize,
    to_server: usize,
    trace: &TraceHandle,
) -> DrainReport {
    trace.emit_with(|| TraceEvent::DrainStarted {
        at: plan.start,
        tenant,
        from_server,
    });
    let window_shed = spec.workload.window(plan.start, plan.end()).len() as u64;
    let old = run_lane_part(
        spec,
        spec.workload.window(SimTime::ZERO, plan.end()),
        Some(plan.start),
        trace.clone(),
        |_| {},
    );
    let new_workload = spec.workload.window(plan.end(), SimTime::MAX);
    let migrated = new_workload.len() as u64;
    let new = run_lane_part(
        spec,
        new_workload,
        None,
        TraceHandle::disabled(),
        |request| {
            trace.emit_with(|| TraceEvent::Migrated {
                at: request.arrival,
                id: request.id.index(),
                tenant,
                to_server,
            });
        },
    );
    trace.emit_with(|| TraceEvent::DrainCompleted {
        at: plan.end(),
        tenant,
        shed: window_shed,
        migrated,
    });
    DrainReport {
        tenant,
        from_server,
        to_server,
        old,
        new,
        window_shed,
        migrated,
    }
}

/// Drives one lane over `workload` with the spec's shaper, policy, and
/// inbox bound — `run_lane` with an optional drain cutover, a shed trace,
/// and an offer hook.
fn run_lane_part(
    spec: &TenantSpec,
    workload: Workload,
    drain_from: Option<SimTime>,
    shed_trace: TraceHandle,
    mut on_offer: impl FnMut(&Request),
) -> TenantReport {
    let (scheduler, servers) = policy_parts(
        spec.shaper.provision(),
        spec.shaper.deadline(),
        spec.policy,
        None,
    );
    let mut shed = ShedScheduler::with_trace(scheduler, spec.inbox_bound, shed_trace);
    if let Some(at) = drain_from {
        shed = shed.with_drain_from(at);
    }
    let mut sim = StreamingSimulation::new(shed);
    for server in servers {
        sim = sim.server(server);
    }
    let mut stream = WorkloadStream::new(workload, spec.chunk);
    let mut buf = Vec::new();
    let mut peak_chunk_bytes = 0usize;
    loop {
        let n = stream
            .next_chunk(&mut buf)
            .expect("workload streams cannot fail");
        if n == 0 {
            break;
        }
        peak_chunk_bytes = peak_chunk_bytes.max(n * std::mem::size_of::<Request>());
        for &request in buf.iter() {
            on_offer(&request);
            sim.offer(request);
        }
    }
    sim.finish();
    let shed = sim.scheduler().shed_count();
    let report = sim.into_report();
    TenantReport {
        name: spec.name.clone(),
        policy: spec.policy,
        offered: report.total_requests(),
        completed: report.completed(),
        shed,
        end_time: report.end_time(),
        peak_chunk_bytes,
        sketch: report.response_sketch(),
        records: report.into_records(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqos_core::{Provision, RecombinePolicy};
    use gqos_sim::ServiceClass;
    use gqos_trace::Iops;

    use crate::OnlineShaper;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn spec() -> TenantSpec {
        TenantSpec {
            name: "drainee".into(),
            workload: Workload::from_arrivals((0..200).map(|i| ms(i * 5))),
            shaper: OnlineShaper::new(
                Provision::new(Iops::new(250.0), Iops::new(100.0)),
                SimDuration::from_millis(20),
            ),
            policy: RecombinePolicy::FairQueue,
            inbox_bound: 64,
            chunk: 16,
        }
    }

    #[test]
    fn drain_is_zero_drop_and_splits_at_the_window() {
        let plan = DrainPlan::new(ms(300), SimDuration::from_millis(100));
        let report = drain_migrate(&spec(), plan, 7, 0, 3, &TraceHandle::disabled());
        // 200 arrivals at 5ms spacing: [0, 300) → 60 pre-window,
        // [300, 400) → 20 shed in-window, [400, ∞) → 120 migrated.
        assert_eq!(report.window_shed, 20);
        assert_eq!(report.migrated, 120);
        assert_eq!(report.old.offered, 80);
        assert_eq!(report.new.offered, 120);
        assert_eq!(report.offered(), 200);
        assert_eq!(report.dropped(), 0, "drain must never drop a request");
        assert!(report.old.shed as u64 >= report.window_shed);
        let overflow = report
            .old
            .records
            .iter()
            .filter(|r| r.class == ServiceClass::OVERFLOW)
            .count();
        assert!(
            overflow as u64 >= report.window_shed,
            "window arrivals must complete best-effort on the old bin"
        );
    }

    #[test]
    fn drain_trace_brackets_and_counts_the_handoff() {
        let (trace, sink) = TraceHandle::memory();
        let plan = DrainPlan::new(ms(300), SimDuration::from_millis(100));
        let report = drain_migrate(&spec(), plan, 7, 1, 2, &trace);
        let events = sink.borrow().events().to_vec();
        let started = events.iter().any(|e| {
            matches!(
                e,
                TraceEvent::DrainStarted { at, tenant: 7, from_server: 1 } if *at == ms(300)
            )
        });
        assert!(started, "missing DrainStarted bracket");
        let migrated = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::Migrated {
                        tenant: 7,
                        to_server: 2,
                        ..
                    }
                )
            })
            .count() as u64;
        assert_eq!(migrated, report.migrated);
        let diverted = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Diverted { .. }))
            .count() as u64;
        assert!(diverted >= report.window_shed);
        let completed = events.iter().find_map(|e| match e {
            TraceEvent::DrainCompleted {
                at,
                tenant: 7,
                shed,
                migrated,
            } => Some((*at, *shed, *migrated)),
            _ => None,
        });
        assert_eq!(completed, Some((ms(400), 20, 120)));
    }

    #[test]
    fn pre_window_service_is_untouched_by_the_drain() {
        // A drain scheduled after the whole workload must reproduce the
        // plain lane byte for byte on the old bin, with nothing migrated.
        let s = spec();
        let last = s.workload.last_arrival().unwrap();
        let plan = DrainPlan::new(
            last + SimDuration::from_millis(1),
            SimDuration::from_millis(1),
        );
        let report = drain_migrate(&s, plan, 1, 0, 1, &TraceHandle::disabled());
        let plain = run_lane_part(
            &s,
            s.workload.clone(),
            None,
            TraceHandle::disabled(),
            |_| {},
        );
        assert_eq!(report.old.records, plain.records);
        assert_eq!(report.window_shed, 0);
        assert_eq!(report.migrated, 0);
        assert_eq!(report.new.offered, 0);
    }

    #[test]
    #[should_panic(expected = "drain window must be positive")]
    fn zero_window_rejected() {
        let _ = DrainPlan::new(ms(0), SimDuration::ZERO);
    }
}
