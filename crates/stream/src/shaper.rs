//! Online shaping: drive the paper's recombination policies chunk by
//! chunk instead of over a materialised workload.
//!
//! [`OnlineShaper`] is the streaming counterpart of
//! [`WorkloadShaper`](gqos_core::WorkloadShaper): the same provision, the
//! same deadline, the same four [`RecombinePolicy`] configurations — but
//! fed from an [`ArrivalStream`] through a
//! [`StreamingSimulation`](gqos_sim::StreamingSimulation), so peak input
//! memory is one resident chunk (`O(chunk)`) plus the scheduler backlog
//! (`O(maxQ1)` for the primary queue by Algorithm 1's bound) regardless of
//! trace length.
//!
//! Because the streaming engine is the *same* event loop the offline
//! engine runs on (see `gqos_sim::StreamingSimulation`), a chunked run
//! here is **bit-identical** to the offline `WorkloadShaper` run over the
//! recombined workload: same completion records, same nanoseconds, same
//! tie-breaks, for any chunking. The golden equivalence suite in
//! `tests/golden_equiv.rs` pins this across all four policies and chunk
//! sizes from 1 to whole-trace.

use std::mem;

use gqos_core::{FairQueueScheduler, MiserScheduler, Provision, RecombinePolicy, SplitScheduler};
use gqos_sim::{
    CompletionRecord, FcfsScheduler, FixedRateServer, LatencySketch, LongTermStore, RunReport,
    Scheduler, ServiceClass, StreamingSimulation, TraceHandle,
};
use gqos_trace::{Request, SimDuration, SimTime};

use crate::source::{ArrivalStream, StreamError};

/// Builds the scheduler and server set for `policy`, mirroring
/// `WorkloadShaper::run` / `run_traced` exactly: same constructors, same
/// rates, same server order. Boxing the scheduler lets one generic drive
/// loop serve all four policies without changing any scheduling decision.
pub(crate) fn policy_parts(
    provision: Provision,
    deadline: SimDuration,
    policy: RecombinePolicy,
    trace: Option<&TraceHandle>,
) -> (Box<dyn Scheduler>, Vec<FixedRateServer>) {
    let p = provision;
    let scheduler: Box<dyn Scheduler> = match (policy, trace) {
        (RecombinePolicy::Fcfs, None) => Box::new(FcfsScheduler::new()),
        (RecombinePolicy::Fcfs, Some(t)) => Box::new(FcfsScheduler::with_trace(t.clone())),
        (RecombinePolicy::Split, None) => Box::new(SplitScheduler::new(p, deadline)),
        (RecombinePolicy::Split, Some(t)) => {
            Box::new(SplitScheduler::with_trace(p, deadline, t.clone()))
        }
        (RecombinePolicy::FairQueue, None) => Box::new(FairQueueScheduler::new(p, deadline)),
        (RecombinePolicy::FairQueue, Some(t)) => {
            Box::new(FairQueueScheduler::with_trace(p, deadline, t.clone()))
        }
        (RecombinePolicy::Miser, None) => Box::new(MiserScheduler::new(p, deadline)),
        (RecombinePolicy::Miser, Some(t)) => {
            Box::new(MiserScheduler::with_trace(p, deadline, t.clone()))
        }
    };
    let servers = match policy {
        RecombinePolicy::Split => vec![
            FixedRateServer::new(p.cmin()),
            FixedRateServer::new(p.delta_c()),
        ],
        _ => vec![FixedRateServer::new(p.total())],
    };
    (scheduler, servers)
}

/// The outcome of a record-accumulating streamed run: the full
/// [`RunReport`] plus the ingestion-side footprint numbers.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// The simulation report — bit-identical to the offline shaper's.
    pub report: RunReport,
    /// Number of chunks pulled from the stream.
    pub chunks: usize,
    /// Largest resident chunk, in bytes (`len × size_of::<Request>()`) —
    /// the peak-RSS proxy for the input side of the pipeline.
    pub peak_chunk_bytes: usize,
}

/// The outcome of a bounded-memory observed run: aggregate sketches and
/// counters only, never the per-request records.
///
/// This is a passive result record; fields are public by design.
#[derive(Clone, PartialEq, Debug)]
pub struct StreamObservation {
    /// Sketch over all response times — bit-identical to
    /// [`RunReport::response_sketch`] of the offline run.
    pub sketch: LatencySketch,
    /// Sketch over primary-class (`Q1`) response times.
    pub primary: LatencySketch,
    /// Sketch over overflow-class (`Q2`) response times.
    pub overflow: LatencySketch,
    /// Requests offered to the scheduler.
    pub offered: usize,
    /// Requests that completed service.
    pub completed: usize,
    /// Instant of the last processed event.
    pub end_time: SimTime,
    /// Number of chunks pulled from the stream.
    pub chunks: usize,
    /// Largest resident chunk, in bytes.
    pub peak_chunk_bytes: usize,
    /// Largest number of completion records buffered between drains — the
    /// output-side footprint, bounded by the backlog a chunk can flush.
    pub peak_resident_records: usize,
}

/// A configured online shaper: provision + deadline, driven from an
/// [`ArrivalStream`].
///
/// # Examples
///
/// Stream a workload through Miser in chunks of 64 and check the result
/// matches the offline shaper exactly:
///
/// ```
/// use gqos_core::{Provision, RecombinePolicy, WorkloadShaper};
/// use gqos_stream::{OnlineShaper, WorkloadStream};
/// use gqos_trace::{Iops, SimDuration, SimTime, Workload};
///
/// let workload = Workload::from_arrivals((0..500).map(|i| SimTime::from_millis(i * 2)));
/// let provision = Provision::new(Iops::new(300.0), Iops::new(100.0));
/// let deadline = SimDuration::from_millis(20);
///
/// let offline = WorkloadShaper::new(provision, deadline)
///     .run(&workload, RecombinePolicy::Miser);
/// let streamed = OnlineShaper::new(provision, deadline)
///     .run(
///         &mut WorkloadStream::new(workload, 64),
///         RecombinePolicy::Miser,
///     )
///     .unwrap();
/// assert_eq!(offline.records(), streamed.report.records());
/// ```
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct OnlineShaper {
    provision: Provision,
    deadline: SimDuration,
}

impl OnlineShaper {
    /// Creates an online shaper from an explicit provision.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero.
    pub fn new(provision: Provision, deadline: SimDuration) -> Self {
        assert!(!deadline.is_zero(), "deadline must be positive");
        OnlineShaper {
            provision,
            deadline,
        }
    }

    /// The shaper's provision.
    pub fn provision(&self) -> Provision {
        self.provision
    }

    /// The shaper's deadline.
    pub fn deadline(&self) -> SimDuration {
        self.deadline
    }

    /// Streams every chunk through `policy`, accumulating the full record
    /// set, and returns the report plus footprint counters. Bit-identical
    /// to `WorkloadShaper::run` over the same arrivals.
    ///
    /// # Errors
    ///
    /// Propagates [`StreamError`] from the source; events processed before
    /// the error are discarded.
    pub fn run<A: ArrivalStream + ?Sized>(
        &self,
        stream: &mut A,
        policy: RecombinePolicy,
    ) -> Result<StreamReport, StreamError> {
        self.drive(stream, policy, None)
    }

    /// Like [`run`](OnlineShaper::run), with the full event trace routed
    /// into `trace` — same events, verdicts, and order as
    /// `WorkloadShaper::run_traced`.
    ///
    /// # Errors
    ///
    /// Propagates [`StreamError`] from the source.
    pub fn run_traced<A: ArrivalStream + ?Sized>(
        &self,
        stream: &mut A,
        policy: RecombinePolicy,
        trace: TraceHandle,
    ) -> Result<StreamReport, StreamError> {
        self.drive(stream, policy, Some(trace))
    }

    /// Streams every chunk through `policy` in bounded memory: completion
    /// records are drained after each chunk into per-class latency
    /// sketches (and `sink`, for callers that forward them — pass
    /// `|_| {}` to discard) instead of accumulating. The aggregate sketch
    /// is bit-identical to [`RunReport::response_sketch`] of the offline
    /// run; peak footprint is one chunk of requests plus the drained
    /// backlog, not the whole trace.
    ///
    /// # Errors
    ///
    /// Propagates [`StreamError`] from the source.
    pub fn run_observed<A, F>(
        &self,
        stream: &mut A,
        policy: RecombinePolicy,
        mut sink: F,
    ) -> Result<StreamObservation, StreamError>
    where
        A: ArrivalStream + ?Sized,
        F: FnMut(CompletionRecord),
    {
        let (scheduler, servers) = policy_parts(self.provision, self.deadline, policy, None);
        let mut sim = StreamingSimulation::new(scheduler);
        for server in servers {
            sim = sim.server(server);
        }
        let mut obs = StreamObservation {
            sketch: LatencySketch::new(),
            primary: LatencySketch::new(),
            overflow: LatencySketch::new(),
            offered: 0,
            completed: 0,
            end_time: SimTime::ZERO,
            chunks: 0,
            peak_chunk_bytes: 0,
            peak_resident_records: 0,
        };
        let mut buf = Vec::new();
        let mut drain = |sim: &mut StreamingSimulation<Box<dyn Scheduler>>,
                         obs: &mut StreamObservation| {
            let mut resident = 0usize;
            for record in sim.drain_completions() {
                resident += 1;
                let response = record.response_time().as_nanos();
                obs.sketch.record(response);
                match record.class {
                    ServiceClass::PRIMARY => obs.primary.record(response),
                    _ => obs.overflow.record(response),
                }
                sink(record);
            }
            obs.completed += resident;
            obs.peak_resident_records = obs.peak_resident_records.max(resident);
        };
        loop {
            let n = stream.next_chunk(&mut buf)?;
            if n == 0 {
                break;
            }
            obs.chunks += 1;
            obs.peak_chunk_bytes = obs.peak_chunk_bytes.max(n * mem::size_of::<Request>());
            for &request in buf.iter() {
                sim.offer(request);
            }
            drain(&mut sim, &mut obs);
        }
        sim.finish();
        drain(&mut sim, &mut obs);
        obs.offered = sim.offered();
        obs.end_time = sim.end_time();
        Ok(obs)
    }

    /// Like [`run_observed`](OnlineShaper::run_observed), additionally
    /// feeding every completion into a long-horizon [`LongTermStore`]
    /// under `tenant`, keyed by completion instant. This is the shaper's
    /// side of the retention tap: the same store the gateway feeds from
    /// `TenantReport::window_feedback` can absorb ad-hoc shaper runs, and
    /// because the store's tiers are built purely by sketch `merge`, its
    /// cumulative sketch for `tenant` afterwards contains these
    /// completions losslessly (bit-identical merge with whatever it
    /// already held).
    ///
    /// Completions drain in simulation-time order, so the store's
    /// out-of-order rejection can never fire here.
    ///
    /// # Errors
    ///
    /// Propagates [`StreamError`] from the source.
    pub fn run_longterm<A: ArrivalStream + ?Sized>(
        &self,
        stream: &mut A,
        policy: RecombinePolicy,
        tenant: &str,
        store: &mut LongTermStore<String>,
    ) -> Result<StreamObservation, StreamError> {
        let key = tenant.to_string();
        self.run_observed(stream, policy, |record| {
            store
                .record(&key, record.completion, record.response_time().as_nanos())
                .expect("completion-ordered drains cannot be out of order");
        })
    }

    fn drive<A: ArrivalStream + ?Sized>(
        &self,
        stream: &mut A,
        policy: RecombinePolicy,
        trace: Option<TraceHandle>,
    ) -> Result<StreamReport, StreamError> {
        let (scheduler, servers) =
            policy_parts(self.provision, self.deadline, policy, trace.as_ref());
        let mut sim = StreamingSimulation::new(scheduler);
        for server in servers {
            sim = sim.server(server);
        }
        if let Some(trace) = trace {
            sim = sim.trace(trace).deadline(self.deadline);
        }
        let mut buf = Vec::new();
        let mut chunks = 0usize;
        let mut peak_chunk_bytes = 0usize;
        loop {
            let n = stream.next_chunk(&mut buf)?;
            if n == 0 {
                break;
            }
            chunks += 1;
            peak_chunk_bytes = peak_chunk_bytes.max(n * mem::size_of::<Request>());
            for &request in buf.iter() {
                sim.offer(request);
            }
        }
        Ok(StreamReport {
            report: sim.into_report(),
            chunks,
            peak_chunk_bytes,
        })
    }
}

impl From<gqos_core::WorkloadShaper> for OnlineShaper {
    /// Adopts an offline shaper's provision and deadline, so a plan made
    /// with `WorkloadShaper::plan` can drive the streaming path.
    fn from(shaper: gqos_core::WorkloadShaper) -> Self {
        OnlineShaper::new(shaper.provision(), shaper.deadline())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::WorkloadStream;
    use gqos_core::WorkloadShaper;
    use gqos_trace::{Iops, Workload};

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn bursty() -> Workload {
        let mut arrivals: Vec<SimTime> = (0..200).map(|i| ms(i * 5)).collect();
        arrivals.extend(vec![ms(333); 40]);
        Workload::from_arrivals(arrivals)
    }

    fn shapers() -> (WorkloadShaper, OnlineShaper) {
        let provision = Provision::new(Iops::new(250.0), Iops::new(100.0));
        let deadline = SimDuration::from_millis(20);
        (
            WorkloadShaper::new(provision, deadline),
            OnlineShaper::new(provision, deadline),
        )
    }

    #[test]
    fn chunked_run_matches_offline_for_every_policy() {
        let w = bursty();
        let (offline, online) = shapers();
        for policy in RecombinePolicy::ALL {
            let reference = offline.run(&w, policy);
            let streamed = online
                .run(&mut WorkloadStream::new(w.clone(), 13), policy)
                .expect("workload stream");
            assert_eq!(
                reference.records(),
                streamed.report.records(),
                "{policy} diverged under chunking"
            );
            assert_eq!(reference.end_time(), streamed.report.end_time());
            assert_eq!(streamed.chunks, w.len().div_ceil(13));
            assert_eq!(
                streamed.peak_chunk_bytes,
                13 * std::mem::size_of::<Request>()
            );
        }
    }

    #[test]
    fn observed_run_sketches_match_offline_report() {
        let w = bursty();
        let (offline, online) = shapers();
        for policy in RecombinePolicy::ALL {
            let reference = offline.run(&w, policy);
            let mut forwarded = 0usize;
            let obs = online
                .run_observed(&mut WorkloadStream::new(w.clone(), 7), policy, |_| {
                    forwarded += 1;
                })
                .expect("workload stream");
            assert_eq!(obs.sketch, reference.response_sketch(), "{policy}");
            assert_eq!(
                obs.primary,
                reference.response_sketch_for(ServiceClass::PRIMARY),
                "{policy}"
            );
            assert_eq!(
                obs.overflow,
                reference.response_sketch_for(ServiceClass::OVERFLOW),
                "{policy}"
            );
            assert_eq!(obs.completed, reference.completed());
            assert_eq!(obs.offered, reference.total_requests());
            assert_eq!(obs.end_time, reference.end_time());
            assert_eq!(forwarded, obs.completed);
        }
    }

    #[test]
    fn observed_run_footprint_is_bounded_by_chunking() {
        // The ingestion footprint must track the chunk size, not the trace
        // length: a 10×-longer trace at the same chunk size reports the
        // same peak chunk bytes.
        let (_, online) = shapers();
        let short = Workload::from_arrivals((0..100).map(|i| ms(i * 5)));
        let long = Workload::from_arrivals((0..1000).map(|i| ms(i * 5)));
        let chunk = 10;
        let a = online
            .run_observed(
                &mut WorkloadStream::new(short, chunk),
                RecombinePolicy::Fcfs,
                |_| {},
            )
            .unwrap();
        let b = online
            .run_observed(
                &mut WorkloadStream::new(long, chunk),
                RecombinePolicy::Fcfs,
                |_| {},
            )
            .unwrap();
        assert_eq!(a.peak_chunk_bytes, b.peak_chunk_bytes);
        assert_eq!(a.peak_chunk_bytes, chunk * std::mem::size_of::<Request>());
    }

    #[test]
    fn longterm_run_feeds_the_store_losslessly() {
        // The store's cumulative sketch after a shaper run must equal the
        // observation's aggregate sketch bit for bit: the retention tap
        // loses nothing relative to the run itself.
        use gqos_sim::RetentionConfig;
        let w = bursty();
        let (_, online) = shapers();
        for policy in RecombinePolicy::ALL {
            let mut store = LongTermStore::new(RetentionConfig::default_tiers());
            let obs = online
                .run_longterm(
                    &mut WorkloadStream::new(w.clone(), 11),
                    policy,
                    "tenant-a",
                    &mut store,
                )
                .expect("workload stream");
            assert_eq!(
                store.cumulative(&"tenant-a".to_string()),
                Some(&obs.sketch),
                "{policy}: store cumulative diverged from the run sketch"
            );
        }
    }

    #[test]
    fn traced_run_matches_untraced() {
        let w = bursty();
        let (_, online) = shapers();
        let (trace, sink) = TraceHandle::memory();
        let traced = online
            .run_traced(
                &mut WorkloadStream::new(w.clone(), 9),
                RecombinePolicy::Miser,
                trace,
            )
            .unwrap();
        let plain = online
            .run(&mut WorkloadStream::new(w, 9), RecombinePolicy::Miser)
            .unwrap();
        assert_eq!(traced.report.records(), plain.report.records());
        assert!(!sink.borrow().is_empty(), "no trace events captured");
    }

    #[test]
    fn adopts_offline_shaper_plan() {
        let (offline, _) = shapers();
        let online = OnlineShaper::from(offline);
        assert_eq!(online.provision(), offline.provision());
        assert_eq!(online.deadline(), offline.deadline());
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn zero_deadline_rejected() {
        let _ = OnlineShaper::new(
            Provision::new(Iops::new(1.0), Iops::new(1.0)),
            SimDuration::ZERO,
        );
    }
}
