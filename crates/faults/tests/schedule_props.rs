//! No-panic property suite for the fault generators: adversarial
//! `(seed, span, severity, correlation)` inputs must either produce a
//! valid schedule or a typed [`ScheduleError`] — never a panic, and
//! never a silently clamped schedule.

use gqos_faults::{
    ChannelFaultSchedule, FaultSchedule, FleetFaultSchedule, ScheduleError, MAX_GENERATED_SPAN,
};
use gqos_trace::{SimDuration, SimTime};
use proptest::prelude::*;

/// Reinterprets raw bits as `f64`, covering NaN, infinities, subnormals,
/// and negative zero alongside ordinary values.
fn bits_to_f64(bits: u64) -> f64 {
    f64::from_bits(bits)
}

/// The validity verdict `try_generate` must agree with.
fn valid_inputs(span: SimDuration, severity: f64) -> bool {
    !span.is_zero()
        && span <= MAX_GENERATED_SPAN
        && severity.is_finite()
        && (0.0..=1.0).contains(&severity)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn try_generate_never_panics_and_types_every_rejection(
        seed in any::<u64>(),
        span_nanos in any::<u64>(),
        severity_bits in any::<u64>(),
    ) {
        let span = SimDuration::from_nanos(span_nanos);
        let severity = bits_to_f64(severity_bits);
        match FaultSchedule::try_generate(seed, span, severity) {
            Ok(schedule) => {
                prop_assert!(valid_inputs(span, severity));
                // Every generated window starts inside the span and the
                // schedule evaluates without panicking.
                for w in schedule.windows() {
                    prop_assert!(w.start <= SimTime::ZERO + span);
                    prop_assert!(!w.duration.is_zero());
                }
                let _ = schedule.rate_factor_at(SimTime::ZERO + span.mul_f64(0.5));
                let _ = schedule.finish_time(SimTime::ZERO, SimDuration::from_nanos(1));
            }
            Err(e) => {
                prop_assert!(!valid_inputs(span, severity), "valid input rejected: {e}");
                match e {
                    ScheduleError::ZeroSpan => prop_assert!(span.is_zero()),
                    ScheduleError::SpanOverflow { .. } => {
                        prop_assert!(span > MAX_GENERATED_SPAN)
                    }
                    ScheduleError::BadSeverity { .. } => prop_assert!(
                        !severity.is_finite() || !(0.0..=1.0).contains(&severity)
                    ),
                    ScheduleError::BadCorrelation { .. } => {
                        prop_assert!(false, "no correlation parameter here")
                    }
                }
            }
        }
    }

    #[test]
    fn valid_inputs_always_generate_and_reproduce(
        seed in any::<u64>(),
        span_secs in 1u64..10_000,
        severity in 0.0f64..=1.0,
    ) {
        let span = SimDuration::from_secs(span_secs);
        let a = FaultSchedule::try_generate(seed, span, severity);
        prop_assert!(a.is_ok());
        prop_assert_eq!(a, FaultSchedule::try_generate(seed, span, severity));
    }

    #[test]
    fn channel_try_generate_never_panics(
        seed in any::<u64>(),
        span_nanos in any::<u64>(),
        severity_bits in any::<u64>(),
    ) {
        let span = SimDuration::from_nanos(span_nanos);
        let severity = bits_to_f64(severity_bits);
        match ChannelFaultSchedule::try_generate(seed, span, severity) {
            Ok(channel) => {
                prop_assert!(valid_inputs(span, severity));
                // Fates are total and deterministic over the whole span.
                let at = SimTime::ZERO + span.mul_f64(0.5);
                prop_assert_eq!(channel.fate(at, seed), channel.fate(at, seed));
            }
            Err(_) => prop_assert!(!valid_inputs(span, severity)),
        }
    }

    #[test]
    fn fleet_try_generate_never_panics(
        seed in any::<u64>(),
        nodes in 0usize..12,
        span_nanos in any::<u64>(),
        severity_bits in any::<u64>(),
        correlation_bits in any::<u64>(),
    ) {
        let span = SimDuration::from_nanos(span_nanos);
        let severity = bits_to_f64(severity_bits);
        let correlation = bits_to_f64(correlation_bits);
        let valid = valid_inputs(span, severity)
            && correlation.is_finite()
            && (0.0..=1.0).contains(&correlation);
        match FleetFaultSchedule::try_generate(seed, nodes, span, severity, correlation) {
            Ok(fleet) => {
                prop_assert!(valid);
                prop_assert_eq!(fleet.len(), nodes);
                let _ = fleet.outages();
            }
            Err(_) => prop_assert!(!valid),
        }
    }
}
