//! Deterministic control-channel fault timelines: dropped, duplicated,
//! and delayed message deliveries.
//!
//! The server-side [`FaultSchedule`](crate::FaultSchedule) models what a
//! machine does to the *work*; this module models what the network does
//! to the *commands*. A [`ChannelFaultSchedule`] assigns every message
//! send a [`ChannelFate`] — delivered after some latency, delivered twice,
//! or dropped outright — as a pure function of `(seed, send instant,
//! message key)`. Per-message delay draws vary independently, so messages
//! sent close together naturally *reorder* without any extra machinery:
//! a retry routinely overtakes the original it retransmits.
//!
//! Determinism is the point: the control-plane chaos harness replays the
//! exact same loss pattern from a pinned seed, so an invariant violation
//! reproduces from the failing seed alone.

use std::fmt;

use gqos_trace::{SimDuration, SimTime};
use rand::{Rng, SeedableRng};

use crate::schedule::{splitmix64, ScheduleError, MAX_GENERATED_SPAN};

/// One class of channel misbehaviour.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum ChannelFaultKind {
    /// Each message in the window is lost with the given probability.
    Drop {
        /// Per-message loss probability in `[0, 1]`.
        probability: f64,
    },
    /// Each message in the window is delivered **twice** with the given
    /// probability — the second copy after an extra deterministic delay.
    Duplicate {
        /// Per-message duplication probability in `[0, 1]`.
        probability: f64,
    },
    /// Each message in the window is delayed by an extra deterministic
    /// uniform draw in `[0, max]` on top of the base latency. Unequal
    /// draws on nearby messages reorder them.
    Delay {
        /// Largest added latency.
        max: SimDuration,
    },
}

impl fmt::Display for ChannelFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelFaultKind::Drop { probability } => {
                write!(f, "drop p={probability:.2}")
            }
            ChannelFaultKind::Duplicate { probability } => {
                write!(f, "duplicate p={probability:.2}")
            }
            ChannelFaultKind::Delay { max } => write!(f, "delay <= {max}"),
        }
    }
}

/// One channel fault active over `[start, start + duration)`.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct ChannelWindow {
    /// Instant the fault begins.
    pub start: SimTime,
    /// How long the fault lasts.
    pub duration: SimDuration,
    /// What the channel does to messages in the window.
    pub kind: ChannelFaultKind,
}

impl ChannelWindow {
    /// Creates a window.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is zero or a probability is not finite or
    /// outside `[0, 1]`.
    pub fn new(start: SimTime, duration: SimDuration, kind: ChannelFaultKind) -> Self {
        assert!(!duration.is_zero(), "channel window must have a duration");
        match kind {
            ChannelFaultKind::Drop { probability }
            | ChannelFaultKind::Duplicate { probability } => {
                assert!(
                    probability.is_finite() && (0.0..=1.0).contains(&probability),
                    "channel fault probability must be in [0, 1]: {probability}"
                );
            }
            ChannelFaultKind::Delay { .. } => {}
        }
        ChannelWindow {
            start,
            duration,
            kind,
        }
    }

    /// First instant after the window (saturating at the end of time).
    pub fn end(&self) -> SimTime {
        self.start
            .checked_add(self.duration)
            .unwrap_or(SimTime::MAX)
    }

    /// `true` while the fault is active at `t`.
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end()
    }
}

impl fmt::Display for ChannelWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} for {} from {}", self.kind, self.duration, self.start)
    }
}

/// What the channel did to one message send.
///
/// `delivery` is the total latency of the primary copy (`None` when the
/// message was dropped — and a dropped message has no duplicate either).
/// `duplicate` is the total latency of an extra copy when a duplication
/// window fired.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ChannelFate {
    /// Latency of the delivered message, `None` when dropped.
    pub delivery: Option<SimDuration>,
    /// Latency of the extra duplicate copy, if one was created.
    pub duplicate: Option<SimDuration>,
}

impl ChannelFate {
    /// `true` when the message (and any duplicate) was lost.
    pub fn is_dropped(&self) -> bool {
        self.delivery.is_none()
    }
}

/// A deterministic timeline of channel faults, reproducible from a `u64`
/// seed.
///
/// Outside every window the channel is perfect: each message is delivered
/// exactly once after [`base_latency`](Self::base_latency). Inside a
/// window, each message's fate is a stateless [`splitmix64`] draw keyed
/// by the schedule seed, the message key, and the window index — the same
/// `(at, key)` always resolves to the same [`ChannelFate`].
///
/// # Examples
///
/// ```
/// use gqos_faults::{ChannelFaultSchedule, ChannelFate};
/// use gqos_trace::{SimDuration, SimTime};
///
/// let ch = ChannelFaultSchedule::new(7, SimDuration::from_millis(1))
///     .with_drop(SimTime::from_secs(1), SimDuration::from_secs(1), 1.0);
/// // Outside the window: perfect delivery at base latency.
/// let ok = ch.fate(SimTime::ZERO, 0);
/// assert_eq!(ok.delivery, Some(SimDuration::from_millis(1)));
/// // Inside a p=1 drop window: lost.
/// assert!(ch.fate(SimTime::from_millis(1500), 0).is_dropped());
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct ChannelFaultSchedule {
    seed: u64,
    base_latency: SimDuration,
    windows: Vec<ChannelWindow>,
}

impl ChannelFaultSchedule {
    /// An empty (perfect) channel with the given base one-way latency.
    pub fn new(seed: u64, base_latency: SimDuration) -> Self {
        ChannelFaultSchedule {
            seed,
            base_latency,
            windows: Vec::new(),
        }
    }

    /// The schedule's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault-free one-way latency.
    pub fn base_latency(&self) -> SimDuration {
        self.base_latency
    }

    /// `true` when no faults are scheduled — a perfect channel.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The schedule's windows, sorted by start time.
    pub fn windows(&self) -> &[ChannelWindow] {
        &self.windows
    }

    /// Adds a window, keeping the timeline sorted by start time.
    pub fn push(&mut self, window: ChannelWindow) {
        let at = self.windows.partition_point(|w| w.start <= window.start);
        self.windows.insert(at, window);
    }

    /// Builder form of [`push`](Self::push).
    pub fn with_window(mut self, window: ChannelWindow) -> Self {
        self.push(window);
        self
    }

    /// Adds a message-loss window.
    pub fn with_drop(self, start: SimTime, duration: SimDuration, probability: f64) -> Self {
        self.with_window(ChannelWindow::new(
            start,
            duration,
            ChannelFaultKind::Drop { probability },
        ))
    }

    /// Adds a message-duplication window.
    pub fn with_duplicate(self, start: SimTime, duration: SimDuration, probability: f64) -> Self {
        self.with_window(ChannelWindow::new(
            start,
            duration,
            ChannelFaultKind::Duplicate { probability },
        ))
    }

    /// Adds a delay window (per-message extra latency in `[0, max]`).
    pub fn with_delay(self, start: SimTime, duration: SimDuration, max: SimDuration) -> Self {
        self.with_window(ChannelWindow::new(
            start,
            duration,
            ChannelFaultKind::Delay { max },
        ))
    }

    /// The fate of one message sent at `at` with unique `key` (e.g. a
    /// hash of command id, attempt number, and direction). Pure and
    /// stateless: identical `(at, key)` always returns the same fate.
    pub fn fate(&self, at: SimTime, key: u64) -> ChannelFate {
        let mut latency = self.base_latency;
        let mut dropped = false;
        let mut duplicate_extra: Option<SimDuration> = None;
        for (i, w) in self.windows.iter().enumerate() {
            if !w.contains(at) {
                continue;
            }
            let h = splitmix64(
                self.seed
                    ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (i as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9),
            );
            match w.kind {
                ChannelFaultKind::Drop { probability } => {
                    if unit(h) < probability {
                        dropped = true;
                    }
                }
                ChannelFaultKind::Duplicate { probability } => {
                    if unit(h) < probability {
                        // The extra copy trails the primary by a draw in
                        // (0, 2 × base + 1 ns] from a decorrelated hash.
                        let spread = self.base_latency.as_nanos().saturating_mul(2) + 1;
                        let extra = splitmix64(h) % spread + 1;
                        duplicate_extra = Some(SimDuration::from_nanos(extra));
                    }
                }
                ChannelFaultKind::Delay { max } => {
                    if !max.is_zero() {
                        let draw = splitmix64(h ^ 0x94D0_49BB_1331_11EB) % (max.as_nanos() + 1);
                        latency = latency
                            .checked_add(SimDuration::from_nanos(draw))
                            .unwrap_or(SimDuration::MAX);
                    }
                }
            }
        }
        if dropped {
            return ChannelFate {
                delivery: None,
                duplicate: None,
            };
        }
        ChannelFate {
            delivery: Some(latency),
            duplicate: duplicate_extra
                .map(|extra| latency.checked_add(extra).unwrap_or(SimDuration::MAX)),
        }
    }

    /// Generates a reproducible channel-fault mix for a `span`-long run
    /// at `severity` in `[0, 1]`: an early loss window, a mid-run
    /// duplication window, and a late delay window, each scaled by
    /// severity. Severity zero yields the perfect channel. Identical
    /// `(seed, span, severity)` triples yield identical schedules.
    ///
    /// # Panics
    ///
    /// Panics with the [`ScheduleError`] message on malformed inputs;
    /// [`try_generate`](Self::try_generate) returns the typed error.
    pub fn generate(seed: u64, span: SimDuration, severity: f64) -> ChannelFaultSchedule {
        match ChannelFaultSchedule::try_generate(seed, span, severity) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`generate`](Self::generate) with typed rejection.
    ///
    /// # Errors
    ///
    /// Exactly the [`FaultSchedule::try_generate`] contract:
    /// [`ScheduleError::ZeroSpan`], [`ScheduleError::SpanOverflow`], or
    /// [`ScheduleError::BadSeverity`].
    ///
    /// [`FaultSchedule::try_generate`]: crate::FaultSchedule::try_generate
    pub fn try_generate(
        seed: u64,
        span: SimDuration,
        severity: f64,
    ) -> Result<ChannelFaultSchedule, ScheduleError> {
        if span.is_zero() {
            return Err(ScheduleError::ZeroSpan);
        }
        if span > MAX_GENERATED_SPAN {
            return Err(ScheduleError::SpanOverflow { span });
        }
        if !(severity.is_finite() && (0.0..=1.0).contains(&severity)) {
            return Err(ScheduleError::BadSeverity { severity });
        }
        // One-way base latency: 0.02 % of the span, at least 1 ns, so
        // request→response round trips stay small against the command
        // deadline at any span.
        let base = SimDuration::from_nanos(span.mul_f64(0.0002).as_nanos().max(1));
        let mut s = ChannelFaultSchedule::new(seed, base);
        if severity == 0.0 {
            return Ok(s);
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xC0A7_C0A7_C0A7_C0A7);
        let at = |frac: f64| SimTime::ZERO + span.mul_f64(frac);

        // Early loss: retries must punch through it.
        let start = rng.gen_range(0.05f64..0.25);
        let dur = rng.gen_range(0.15f64..0.30);
        s = s.with_drop(at(start), span.mul_f64(dur), 0.6 * severity);

        // Mid-run duplication: dedup must absorb it.
        let start = rng.gen_range(0.35f64..0.55);
        let dur = rng.gen_range(0.15f64..0.25);
        s = s.with_duplicate(at(start), span.mul_f64(dur), 0.5 * severity);

        // Late delay: reordering across in-flight commands.
        let start = rng.gen_range(0.60f64..0.80);
        let dur = rng.gen_range(0.10f64..0.20);
        let max = span.mul_f64(0.004 * severity);
        if !max.is_zero() {
            s = s.with_delay(at(start), span.mul_f64(dur), max);
        }
        Ok(s)
    }
}

impl fmt::Display for ChannelFaultSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "perfect channel ({})", self.base_latency);
        }
        write!(
            f,
            "{} channel faults (seed {}, base {})",
            self.windows.len(),
            self.seed,
            self.base_latency
        )
    }
}

/// Uniform `[0, 1)` from a hash: the top 53 bits as a float mantissa.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn dms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn perfect_channel_delivers_everything_once() {
        let ch = ChannelFaultSchedule::new(1, dms(2));
        assert!(ch.is_empty());
        for key in 0..100 {
            let fate = ch.fate(ms(key), key);
            assert_eq!(fate.delivery, Some(dms(2)));
            assert_eq!(fate.duplicate, None);
            assert!(!fate.is_dropped());
        }
        assert!(ch.to_string().contains("perfect"));
    }

    #[test]
    fn fates_are_deterministic_and_window_scoped() {
        let ch = ChannelFaultSchedule::new(9, dms(1))
            .with_drop(ms(100), dms(100), 0.5)
            .with_delay(ms(300), dms(100), dms(10));
        for key in 0..50 {
            assert_eq!(ch.fate(ms(150), key), ch.fate(ms(150), key));
        }
        // Outside every window: clean delivery.
        assert_eq!(ch.fate(ms(50), 7).delivery, Some(dms(1)));
        // Inside the delay window: latency within [base, base + max].
        for key in 0..50 {
            let fate = ch.fate(ms(350), key);
            let lat = fate.delivery.expect("delay never drops");
            assert!(lat >= dms(1) && lat <= dms(11), "latency {lat}");
        }
        // A p = 0.5 drop window drops some keys and passes others.
        let dropped = (0..100)
            .filter(|&k| ch.fate(ms(150), k).is_dropped())
            .count();
        assert!(dropped > 10 && dropped < 90, "dropped {dropped}/100");
    }

    #[test]
    fn certain_drop_loses_the_duplicate_too() {
        let ch = ChannelFaultSchedule::new(3, dms(1))
            .with_drop(ms(0), dms(100), 1.0)
            .with_duplicate(ms(0), dms(100), 1.0);
        let fate = ch.fate(ms(50), 42);
        assert!(fate.is_dropped());
        assert_eq!(fate.duplicate, None);
        // Past the windows both disappear.
        let clean = ch.fate(ms(150), 42);
        assert_eq!(clean.delivery, Some(dms(1)));
        assert_eq!(clean.duplicate, None);
    }

    #[test]
    fn duplicates_trail_the_primary() {
        let ch = ChannelFaultSchedule::new(3, dms(1)).with_duplicate(ms(0), dms(100), 1.0);
        for key in 0..20 {
            let fate = ch.fate(ms(10), key);
            let primary = fate.delivery.unwrap();
            let copy = fate.duplicate.expect("p = 1 duplicates");
            assert!(copy > primary, "duplicate must arrive strictly later");
        }
    }

    #[test]
    fn generate_is_reproducible_and_typed_on_bad_input() {
        let span = SimDuration::from_secs(60);
        let a = ChannelFaultSchedule::generate(42, span, 0.8);
        assert_eq!(a, ChannelFaultSchedule::generate(42, span, 0.8));
        assert_ne!(a, ChannelFaultSchedule::generate(43, span, 0.8));
        assert_eq!(a.windows().len(), 3);
        assert!(ChannelFaultSchedule::generate(42, span, 0.0).is_empty());
        assert_eq!(
            ChannelFaultSchedule::try_generate(42, SimDuration::ZERO, 0.5).unwrap_err(),
            ScheduleError::ZeroSpan
        );
        assert!(matches!(
            ChannelFaultSchedule::try_generate(42, span, f64::NAN),
            Err(ScheduleError::BadSeverity { .. })
        ));
        assert!(matches!(
            ChannelFaultSchedule::try_generate(42, SimDuration::MAX, 0.5),
            Err(ScheduleError::SpanOverflow { .. })
        ));
    }

    #[test]
    fn window_validation_panics_on_bad_probability() {
        let result = std::panic::catch_unwind(|| {
            ChannelWindow::new(ms(0), dms(1), ChannelFaultKind::Drop { probability: 2.0 })
        });
        assert!(result.is_err());
        let result = std::panic::catch_unwind(|| {
            ChannelWindow::new(
                ms(0),
                SimDuration::ZERO,
                ChannelFaultKind::Delay { max: dms(1) },
            )
        });
        assert!(result.is_err());
    }
}
