//! Correlated multi-node fault timelines for a whole fleet.
//!
//! A rack-level power event hits many servers at once; an isolated disk
//! rebuild hits one. [`FleetFaultSchedule`] spans that range with a
//! single `correlation` knob: each node either shares one *common*
//! [`FaultSchedule`] (probability `correlation`) or draws its own
//! independent schedule from a node-derived seed. At `correlation = 1`
//! every node fails in lockstep; at `0` the nodes are fully independent.
//! Everything is a pure function of `(seed, nodes, span, severity,
//! correlation)`, so the control-plane chaos harness can replay a whole
//! fleet's failure pattern from one pinned seed.

use std::fmt;

use gqos_trace::{SimDuration, SimTime};

use crate::schedule::{splitmix64, FaultKind, FaultSchedule, ScheduleError};

/// Per-node fault schedules with tunable cross-node correlation.
#[derive(Clone, PartialEq, Debug)]
pub struct FleetFaultSchedule {
    nodes: Vec<FaultSchedule>,
    seed: u64,
    correlation: f64,
}

impl FleetFaultSchedule {
    /// Generates one schedule per node.
    ///
    /// # Panics
    ///
    /// Panics with the [`ScheduleError`] message on malformed inputs;
    /// [`try_generate`](Self::try_generate) returns the typed error.
    pub fn generate(
        seed: u64,
        nodes: usize,
        span: SimDuration,
        severity: f64,
        correlation: f64,
    ) -> FleetFaultSchedule {
        match FleetFaultSchedule::try_generate(seed, nodes, span, severity, correlation) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Generates one schedule per node: node `i` shares the common
    /// schedule when its seeded draw falls below `correlation`, and
    /// otherwise gets an independent schedule derived from `seed` and
    /// `i`. Identical inputs yield identical fleets.
    ///
    /// # Errors
    ///
    /// The [`FaultSchedule::try_generate`] span/severity contract, plus
    /// [`ScheduleError::BadCorrelation`] when `correlation` is not
    /// finite or outside `[0, 1]`.
    pub fn try_generate(
        seed: u64,
        nodes: usize,
        span: SimDuration,
        severity: f64,
        correlation: f64,
    ) -> Result<FleetFaultSchedule, ScheduleError> {
        if !(correlation.is_finite() && (0.0..=1.0).contains(&correlation)) {
            return Err(ScheduleError::BadCorrelation { correlation });
        }
        let common = FaultSchedule::try_generate(seed, span, severity)?;
        let schedules = (0..nodes)
            .map(|i| {
                let h = splitmix64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let draw = (h >> 11) as f64 / (1u64 << 53) as f64;
                if draw < correlation {
                    Ok(common.clone())
                } else {
                    let node_seed = splitmix64(seed.wrapping_add(1 + i as u64));
                    FaultSchedule::try_generate(node_seed, span, severity)
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FleetFaultSchedule {
            nodes: schedules,
            seed,
            correlation,
        })
    }

    /// The fleet seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The cross-node correlation the fleet was generated with.
    pub fn correlation(&self) -> f64 {
        self.correlation
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` for a zero-node fleet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node `i`'s schedule.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn node(&self, i: usize) -> &FaultSchedule {
        &self.nodes[i]
    }

    /// All per-node schedules, by node index.
    pub fn nodes(&self) -> &[FaultSchedule] {
        &self.nodes
    }

    /// Every outage across the fleet as `(node, start, end)`, sorted by
    /// start time with ties on node index — the raw material a control
    /// plane turns into `NodeDown`/`NodeUp` command pairs.
    pub fn outages(&self) -> Vec<(usize, SimTime, SimTime)> {
        let mut out: Vec<(usize, SimTime, SimTime)> = self
            .nodes
            .iter()
            .enumerate()
            .flat_map(|(i, s)| {
                s.windows()
                    .iter()
                    .filter(|w| matches!(w.kind, FaultKind::Outage))
                    .map(move |w| (i, w.start, w.end()))
            })
            .collect();
        out.sort_by_key(|&(node, start, _)| (start, node));
        out
    }
}

impl fmt::Display for FleetFaultSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, correlation {:.2} (seed {})",
            self.nodes.len(),
            self.correlation,
            self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_is_reproducible() {
        let span = SimDuration::from_secs(120);
        let a = FleetFaultSchedule::generate(42, 8, span, 0.8, 0.5);
        let b = FleetFaultSchedule::generate(42, 8, span, 0.8, 0.5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert_eq!(a.seed(), 42);
        assert_eq!(a.correlation(), 0.5);
        assert!(a.to_string().contains("8 nodes"));
    }

    #[test]
    fn full_correlation_fails_every_node_in_lockstep() {
        let span = SimDuration::from_secs(120);
        let fleet = FleetFaultSchedule::generate(7, 6, span, 0.9, 1.0);
        let first = fleet.node(0);
        for i in 1..fleet.len() {
            assert_eq!(fleet.node(i), first, "node {i} diverged at correlation 1");
        }
    }

    #[test]
    fn zero_correlation_decorrelates_the_nodes() {
        let span = SimDuration::from_secs(120);
        let fleet = FleetFaultSchedule::generate(7, 6, span, 0.9, 0.0);
        let first = fleet.node(0);
        assert!(
            (1..fleet.len()).any(|i| fleet.node(i) != first),
            "independent nodes all drew the same schedule"
        );
    }

    #[test]
    fn outages_list_is_sorted_and_severity_gated() {
        let span = SimDuration::from_secs(120);
        // High severity: every node schedule includes an outage.
        let fleet = FleetFaultSchedule::generate(11, 4, span, 0.9, 0.0);
        let outages = fleet.outages();
        assert_eq!(outages.len(), 4);
        for pair in outages.windows(2) {
            assert!(pair[0].1 <= pair[1].1, "outages out of order");
        }
        for &(node, start, end) in &outages {
            assert!(node < 4);
            assert!(start < end);
        }
        // Low severity: no outages anywhere.
        let calm = FleetFaultSchedule::generate(11, 4, span, 0.3, 0.0);
        assert!(calm.outages().is_empty());
    }

    #[test]
    fn bad_inputs_are_typed() {
        let span = SimDuration::from_secs(1);
        assert!(matches!(
            FleetFaultSchedule::try_generate(1, 4, span, 0.5, f64::NAN),
            Err(ScheduleError::BadCorrelation { .. })
        ));
        assert!(matches!(
            FleetFaultSchedule::try_generate(1, 4, span, 0.5, 1.5),
            Err(ScheduleError::BadCorrelation { .. })
        ));
        assert!(matches!(
            FleetFaultSchedule::try_generate(1, 4, SimDuration::ZERO, 0.5, 0.5),
            Err(ScheduleError::ZeroSpan)
        ));
        assert!(matches!(
            FleetFaultSchedule::try_generate(1, 4, span, 2.0, 0.5),
            Err(ScheduleError::BadSeverity { .. })
        ));
        assert!(FleetFaultSchedule::try_generate(1, 0, span, 0.5, 0.5)
            .unwrap()
            .is_empty());
    }
}
